"""Micro-benchmarks of the observability layer's hot-path overhead.

The contract the fleet relies on: instrumenting the stream hot path
with a real :class:`~repro.obs.trace.Tracer` (versus the zero-overhead
:data:`~repro.obs.trace.NULL_TRACER` default) costs **under 3%** of
wall time, and a :class:`~repro.obs.hist.LogHistogram` observation is
cheap enough to sit on every tick.  ``make bench-obs`` appends these
records to ``BENCH_obs.json`` so ``make bench-check`` catches any
regression of that contract.

The stream workload is pre-materialized proxy blocks (a plain list is a
valid session source) — no simulator, no training — so the measurement
isolates exactly the instrumented streaming math.
"""

import statistics
import time

import numpy as np
import pytest

from repro.obs.hist import LogHistogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.opm import OpmMeter, QuantizedModel
from repro.stream import StreamService, StreamSession
from repro.stream.source import ProxyBlock

CYCLES = 48_000
CHUNK = 1_024
Q = 24
SESSIONS = 4

#: Max tolerated tracing overhead on the stream hot path.
OVERHEAD_LIMIT = 0.03


@pytest.fixture(scope="module")
def qmodel():
    rng = np.random.default_rng(0)
    return QuantizedModel(
        proxies=np.arange(Q, dtype=np.int64),
        int_weights=rng.integers(-511, 512, size=Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.fixture(scope="module")
def block_lists():
    rng = np.random.default_rng(1)
    lists = []
    for _ in range(SESSIONS):
        blocks = []
        for start in range(0, CYCLES, CHUNK):
            n = min(CHUNK, CYCLES - start)
            blocks.append(ProxyBlock(
                start_cycle=start,
                toggles=(rng.random((n, Q)) < 0.3).astype(np.uint8),
                last=start + n >= CYCLES,
            ))
        lists.append(blocks)
    return lists


def _run_stream(qmodel, block_lists, tracer=None) -> dict:
    meter = OpmMeter(qmodel, t=8)
    sessions = [
        StreamSession(f"s{k}", list(blocks), meter)
        for k, blocks in enumerate(block_lists)
    ]
    service = StreamService(
        meter, sessions, registry=MetricsRegistry(), tracer=tracer,
    )
    return service.run()


def test_perf_stream_tracing_overhead(benchmark, qmodel, block_lists):
    """Traced vs untraced stream run; the gap must stay under 3%.

    Both variants use a private registry (the exact histograms record
    in either case), so the measured delta is the tracer alone — span
    open/close, attribute capture, and finished-span collection.
    """
    _run_stream(qmodel, block_lists)  # warm caches before timing
    overhead, baseline = _measure_overhead(qmodel, block_lists, rounds=7)
    if overhead >= OVERHEAD_LIMIT:
        # One escalation on a noisy box: more rounds, keep the verdict.
        overhead, baseline = _measure_overhead(
            qmodel, block_lists, rounds=15
        )

    snap = benchmark.pedantic(
        lambda: _run_stream(qmodel, block_lists, tracer=Tracer()),
        rounds=1, iterations=1,
    )
    assert snap["counters"]["cycles_processed"] == SESSIONS * CYCLES
    benchmark.extra_info["baseline_s"] = f"{baseline:.6f}"
    benchmark.extra_info["tracing_overhead_pct"] = f"{overhead * 100:.3f}"
    assert overhead < OVERHEAD_LIMIT, (
        f"tracing overhead {overhead * 100:.2f}% exceeds "
        f"{OVERHEAD_LIMIT * 100:.0f}% over {baseline:.6f}s baseline"
    )


def _measure_overhead(qmodel, block_lists, rounds: int) -> tuple:
    """(median per-round traced/untraced ratio - 1, min untraced time).

    Each round times the two variants back to back, so clock drift and
    allocator state hit both equally; the per-round ratio then isolates
    the tracer, and the median across rounds shrugs off the scheduling
    spikes that would dominate a min- or mean-based estimate.
    """
    ratios, base_times = [], []
    for _ in range(rounds):
        base = _timed(lambda: _run_stream(qmodel, block_lists))
        traced = _timed(
            lambda: _run_stream(qmodel, block_lists, tracer=Tracer())
        )
        base_times.append(base)
        ratios.append(traced / base)
    return statistics.median(ratios) - 1.0, min(base_times)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_perf_histogram_observe(benchmark):
    """Recording into the exact log-bucketed histogram, per value."""
    rng = np.random.default_rng(2)
    values = (10.0 ** rng.uniform(-5, 0, size=50_000)).tolist()

    def record():
        h = LogHistogram()
        for v in values:
            h.observe(v)
        return h

    best = min(_timed(record) for _ in range(5))
    h = benchmark.pedantic(record, rounds=1, iterations=1)
    assert h.count == len(values)
    benchmark.extra_info["observations_per_sec"] = (
        f"{len(values) / best:.0f}"
    )


def test_perf_span_open_close(benchmark):
    """Bare span enter/exit cost on a live tracer, per span."""
    n = 20_000

    def spans():
        tracer = Tracer()
        for _ in range(n):
            with tracer.span("bench.span"):
                pass
        return tracer

    best = min(_timed(spans) for _ in range(5))
    tracer = benchmark.pedantic(spans, rounds=1, iterations=1)
    assert len(tracer.spans) == n
    benchmark.extra_info["spans_per_sec"] = f"{n / best:.0f}"
