"""Fig. 10: per-cycle accuracy vs Q (n1 design)."""


def test_fig10(run_exp, ctx_n1):
    res = run_exp("fig10", ctx_n1)
    # Paper: APOLLO reaches NRMSE < 10%, R^2 > 0.95 with ~150 proxies.
    assert res.summary["best_apollo_nrmse"] < 0.15
    assert res.summary["best_apollo_r2"] > 0.90
    # Who-wins shape: MCP-vs-Lasso margins are small at reproduction
    # scale (see EXPERIMENTS.md), so the stable claims are (a) APOLLO at
    # or below Lasso at the headline Q, (b) at or below Lasso's curve on
    # average over the upper half of the sweep, and (c) strictly below
    # Simmani everywhere that matters.
    assert res.summary["apollo_wins_headline_q"]
    assert (
        res.summary["apollo_mean_upper_nrmse"]
        <= 1.05 * res.summary["lasso_mean_upper_nrmse"]
    )
    assert res.summary["apollo_beats_simmani_at_max_q"]
    # NRMSE improves (weakly) as Q grows for APOLLO.
    nrmses = [r["apollo_nrmse"] for r in res.rows]
    assert nrmses[-1] <= nrmses[0]
