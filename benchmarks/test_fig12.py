"""Fig. 12: per-cycle accuracy vs Q on the second (a77) design."""


def test_fig12(run_exp, ctx_a77):
    res = run_exp("fig12", ctx_a77)
    # Paper: the method generalizes — same shape on Cortex-A77.
    assert res.summary["best_apollo_nrmse"] < 0.18
    assert res.summary["best_apollo_r2"] > 0.88
    wins, total = map(
        int, res.summary["apollo_leq_simmani_points"].split("/")
    )
    assert wins >= (total + 1) // 2
