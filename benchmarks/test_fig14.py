"""Fig. 14: variance inflation factors of selected proxies."""


def test_fig14(run_exp, ctx_n1):
    res = run_exp("fig14", ctx_n1)
    # Paper: APOLLO shows much lower VIF than Lasso.
    assert res.summary["apollo_below_lasso"]
    vif = {r["method"]: r["mean_vif"] for r in res.rows}
    # Simmani's unsupervised clustering also de-correlates (paper's
    # observation) — it should not be wildly above APOLLO.
    assert vif["Simmani [40]"] < vif["Lasso [53]"] * 2
