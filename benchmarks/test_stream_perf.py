"""Micro-benchmarks of the streaming introspection pipeline.

Times end-to-end streaming throughput (simulate -> capture -> batched
OPM inference -> aggregate) as a function of concurrent session count,
so the batched-GEMV amortization and any per-session overhead are
visible as cycles/sec in the ``--benchmark-json`` output.

The quantized model is built directly from random integer weights over
monitorable nets — no training — so the benchmark isolates the stream
path itself.
"""

import numpy as np
import pytest

from repro.opm import OpmMeter, QuantizedModel
from repro.rtl import Simulator
from repro.stream import (
    SimulatorSource,
    StreamConfig,
    StreamService,
    StreamSession,
)

CYCLES = 4_000
CHUNK = 256
Q = 24


@pytest.fixture(scope="module")
def core(ctx_n1):
    return ctx_n1.core


@pytest.fixture(scope="module")
def qmodel(core):
    rng = np.random.default_rng(0)
    proxies = np.sort(
        rng.choice(core.netlist.n_nets, size=Q, replace=False)
    )
    return QuantizedModel(
        proxies=proxies,
        int_weights=rng.integers(-511, 512, size=Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.mark.parametrize("n_sessions", [1, 2, 4])
def test_perf_stream_service(benchmark, core, qmodel, n_sessions):
    """Full streaming run: ``n_sessions`` concurrent per-core streams
    multiplexed through one batched inference path."""
    nl = core.netlist
    meter = OpmMeter(qmodel, t=8)
    sim = Simulator(nl, engine="packed")
    rng = np.random.default_rng(1)
    stims = [
        rng.integers(
            0, 2, size=(CYCLES, len(nl.input_ids)), dtype=np.uint8
        )
        for _ in range(n_sessions)
    ]
    cfg = StreamConfig(ring_capacity=1024, window_ring_capacity=256)

    def run():
        sessions = [
            StreamSession(
                f"s{k}",
                SimulatorSource(
                    nl, qmodel.proxies, stims[k],
                    chunk_cycles=CHUNK, simulator=sim,
                ),
                meter,
                config=cfg,
            )
            for k in range(n_sessions)
        ]
        service = StreamService(meter, sessions)
        return service.run()

    snap = benchmark.pedantic(run, rounds=3, iterations=1)
    assert snap["counters"]["cycles_processed"] == n_sessions * CYCLES
    benchmark.extra_info["n_sessions"] = str(n_sessions)
    benchmark.extra_info["cycles_per_sec"] = (
        f"{snap['gauges']['cycles_per_second']:.0f}"
    )
