"""Fig. 17: OPM delta-I vs ground truth (voltage-droop introspection)."""


def test_fig17(run_exp, ctx_n1):
    res = run_exp("fig17", ctx_n1)
    # Paper: Pearson 0.946 between OPM and ground-truth delta-I.
    assert res.summary["pearson"] > 0.85
    # Deep droop/overshoot events track well (sign agreement).
    assert res.summary["deep_agreement"] > 0.9
    # Disagreements cluster near the origin: their mean |delta-I| is
    # well below the overall mean.
    assert res.summary["disagreement_magnitude_ratio"] < 0.75
    # Proactive mitigation reduces the worst droop.
    assert res.summary["droop_reduction_pct"] > 0
