"""Fig. 13: sum of absolute weights, MCP vs Lasso."""


def test_fig13(run_exp, ctx_n1):
    res = run_exp("fig13", ctx_n1)
    # Paper: MCP keeps larger weights at every matched Q.
    wins, total = map(int, res.summary["mcp_larger"].split("/"))
    assert wins == total
    for row in res.rows:
        assert row["mcp_abs_weight_sum"] > 0
        assert row["lasso_abs_weight_sum"] > 0
