"""Ablations of APOLLO's design choices."""


def test_ablations(run_exp, ctx_n1):
    res = run_exp("ablations", ctx_n1)
    # Relaxation should not hurt (paper: it fine-tunes the fit).
    assert res.summary["relaxation_gain_nrmse"] >= -0.01
    # Training only on high-power cycles degrades generalization
    # (the paper's argument for GA-driven power diversity).
    assert res.summary["diversity_gain_nrmse"] > 0
    # Every non-sabotaged ablation still produces a working model (the
    # diversity-ablated row is *meant* to be bad and may crater).
    for row in res.rows:
        if "high-power" in row["ablation"]:
            continue
        assert row["test_r2"] > 0.5
