"""Regenerate Tables 1, 3, 4, 5."""


def test_table1(run_exp, ctx_n1):
    res = run_exp("table1", ctx_n1)
    methods = [r["method"] for r in res.rows]
    assert any("APOLLO" in m for m in methods)
    # APOLLO is the only per-cycle + automatic + runtime-capable row.
    apollo = [r for r in res.rows if "APOLLO" in r["method"]][0]
    assert "per-cycle" in apollo["resolution"]


def test_table3(run_exp, ctx_n1):
    res = run_exp("table3", ctx_n1)
    assert res.summary["apollo_counters"] == 1
    assert res.summary["apollo_multipliers"] == 0
    simmani = [r for r in res.rows if "Simmani" in r["method"]][0]
    q = res.summary["q"]
    assert simmani["multipliers"] == q * q


def test_table4(run_exp, ctx_n1):
    res = run_exp("table4", ctx_n1)
    assert res.summary["n_benchmarks"] == 12
    # the suite covers low- and high-power regions (paper's stated goal)
    assert res.summary["power_ratio"] > 2.0
    # the power viruses sit at the top of the table
    ranked = sorted(
        res.rows, key=lambda r: -r["mean_power_mw"]
    )
    top2 = {r["benchmark"] for r in ranked[:2]}
    assert any("maxpwr" in b for b in top2)
    # throttling reduces the virus's power
    by_name = {r["benchmark"]: r["mean_power_mw"] for r in res.rows}
    assert by_name["throttling_1"] < by_name["maxpwr_cpu"]


def test_table5(run_exp, ctx_n1):
    res = run_exp("table5", ctx_n1)
    selections = {r["method"]: r["selection"] for r in res.rows}
    assert selections["APOLLO (per-cycle)"] == "MCP"
    assert "K-means" in selections["Simmani"]
