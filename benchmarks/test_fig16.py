"""Fig. 16: emulator-assisted long-trace power introspection."""


def test_fig16(run_exp, ctx_n1):
    res = run_exp("fig16", ctx_n1)
    # Storage collapse: proxies vs all signals (paper: >200 GB -> 1.1 GB).
    assert res.summary["reduction_factor"] > 20
    assert res.summary["paper_scale_full_GB"] > 200
    assert res.summary["paper_scale_proxy_GB"] < 5
    # The trace shows distinct power phases.
    assert res.summary["phase_dynamic_range"] > 1.15
