"""Fig. 15: proxy distribution and the OPM (Q, B) trade-off."""


def test_fig15a(run_exp, ctx_n1):
    res = run_exp("fig15a", ctx_n1)
    # Paper: a sizable fraction of proxies are gated clocks (39/159) and
    # execution units (vector/issue/load-store) dominate the rest.
    q = res.summary["q"]
    assert res.summary["gated_clock_proxies"] > 0
    assert res.summary["units_covered"] >= 4
    assert res.summary["execution_unit_proxies"] > 0


def test_fig15b(run_exp, ctx_n1):
    res = run_exp("fig15b", ctx_n1)
    # Paper: accuracy loss negligible for B >= 10, visible at B = 6
    # (compare NRMSE *perturbation* magnitudes — coarse quantization can
    # shift NRMSE in either direction).
    assert abs(res.summary["max_loss_at_b10plus"]) < 0.002
    assert abs(res.summary["max_loss_at_b6"]) > abs(
        res.summary["max_loss_at_b10plus"]
    )
    # Paper: headline OPM is ~0.2% of N1 gate area; same order here.
    assert res.summary["headline_area_pct_paper_scale"] < 1.5
    # Area grows with both Q and B.
    by_q = {}
    for row in res.rows:
        by_q.setdefault(row["bits"], {})[row["q"]] = row["area_pct_self"]
    for bits, series in by_q.items():
        qs = sorted(series)
        assert series[qs[-1]] > series[qs[0]]
