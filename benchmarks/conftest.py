"""Benchmark fixtures: shared experiment contexts and result output.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper.  Contexts are session-scoped and the underlying datasets are
disk-cached under ``.artifacts``, so the first invocation pays the full
pipeline cost and later ones only the experiment math.

Each benchmark writes its rendered table to ``results/<id>.txt`` and
attaches the experiment summary to the benchmark's ``extra_info`` so the
numbers appear in ``--benchmark-json`` output too.

The perf-suite modules additionally *append* one record per benchmark
(wall time plus any numeric ``extra_info`` throughput stats) to the
repo-root trajectory files ``BENCH_substrate.json`` / ``BENCH_stream.json``
— a flat list of ``{bench, value, unit, commit, timestamp}`` objects, so
``make bench-*`` runs accumulate a perf history across commits.

``make bench-check`` (``python benchmarks/conftest.py``) is the
regression gate over that history: for every bench, the newest
commit's best wall-time record must be within
:data:`TRAJECTORY_TOLERANCE` (20%) of the best record from any earlier
commit — so a perf regression that lands in one commit fails the next
trajectory check instead of silently becoming the new baseline, while
repeated noisy runs at one commit never gate against each other.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext, run_experiment

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Perf-suite module -> trajectory file it appends to.
TRAJECTORY_FILES = {
    "test_substrate_perf": "BENCH_substrate.json",
    "test_stream_perf": "BENCH_stream.json",
    "test_parallel_perf": "BENCH_parallel.json",
    "test_resilience_perf": "BENCH_resilience.json",
    "test_serve_perf": "BENCH_serve.json",
    "test_obs_perf": "BENCH_obs.json",
}

#: Regression gate: a wall-time bench may be at most this much slower
#: than its best prior record before ``make bench-check`` fails.
TRAJECTORY_TOLERANCE = 0.20


def check_trajectory(
    path: Path, tolerance: float = TRAJECTORY_TOLERANCE
) -> list[str]:
    """Compare each bench's latest-commit best against best prior commits.

    Returns a list of human-readable regression messages (empty = pass).
    Only wall-time records (``unit == "s"``) gate — throughput extras
    (``/s``) are informational.  Records are grouped by commit: repeated
    runs at one commit are machine noise, so the gate takes each
    commit's *best* and fails only when the newest commit's best is more
    than ``tolerance`` slower than the best of any earlier commit.  A
    bench recorded at a single commit has no prior and passes.
    """
    try:
        history = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(history, list):
        return []
    by_bench: dict[str, list[tuple[str, float]]] = {}
    for rec in history:
        if not isinstance(rec, dict) or rec.get("unit") != "s":
            continue
        try:
            by_bench.setdefault(str(rec["bench"]), []).append(
                (str(rec.get("commit", "unknown")), float(rec["value"]))
            )
        except (KeyError, TypeError, ValueError):
            continue
    failures = []
    for bench, records in sorted(by_bench.items()):
        last_commit = records[-1][0]
        latest = min(v for c, v in records if c == last_commit)
        prior = [v for c, v in records if c != last_commit]
        if not prior:
            continue
        best_prior = min(prior)
        if latest > best_prior * (1.0 + tolerance):
            failures.append(
                f"{path.name}: {bench} regressed "
                f"{(latest / best_prior - 1.0) * 100:.1f}% "
                f"(best at {last_commit} {latest:.6f}s vs best prior "
                f"{best_prior:.6f}s, tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def main() -> int:
    """``python benchmarks/conftest.py`` == the ``make bench-check`` gate."""
    failures: list[str] = []
    checked = 0
    for fname in sorted(set(TRAJECTORY_FILES.values())):
        path = REPO_ROOT / fname
        if not path.exists():
            continue
        checked += 1
        failures.extend(check_trajectory(path))
    if failures:
        print("bench trajectory regressions:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"bench trajectories OK ({checked} files, "
        f"tolerance {TRAJECTORY_TOLERANCE * 100:.0f}% vs best prior)"
    )
    return 0


def _git_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=REPO_ROOT,
        )
        return proc.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _append_records(path: Path, records: list[dict]) -> None:
    history: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except ValueError:
            pass  # unreadable trajectory: start a fresh list
    history.extend(records)
    path.write_text(json.dumps(history, indent=1) + "\n")


@pytest.fixture(autouse=True)
def bench_record(request):
    """Append this benchmark's numbers to its module's trajectory file."""
    yield
    fname = TRAJECTORY_FILES.get(request.module.__name__)
    bench = request.node.funcargs.get("benchmark")
    stats = getattr(bench, "stats", None)
    if fname is None or stats is None:
        return
    commit = _git_commit()
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    name = request.node.name
    records = [{
        "bench": name,
        "value": float(stats.stats.mean),
        "unit": "s",
        "commit": commit,
        "timestamp": stamp,
    }]
    for key, raw in bench.extra_info.items():
        try:
            value = float(raw)
        except (TypeError, ValueError):
            continue
        records.append({
            "bench": f"{name}:{key}",
            "value": value,
            "unit": "/s" if "per_sec" in key else "",
            "commit": commit,
            "timestamp": stamp,
        })
    _append_records(REPO_ROOT / fname, records)


@pytest.fixture(scope="session")
def ctx_n1():
    return ExperimentContext(design="n1", scale=SCALE)


@pytest.fixture(scope="session")
def ctx_a77():
    return ExperimentContext(design="a77", scale=SCALE)


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).resolve().parents[1] / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def run_exp(benchmark, results_dir):
    """Run an experiment under the benchmark timer; save its rendering."""

    def _run(exp_id: str, ctx, **kw):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, ctx=ctx, **kw),
            rounds=1,
            iterations=1,
        )
        (results_dir / f"{result.id}.txt").write_text(
            result.render() + "\n"
        )
        benchmark.extra_info.update(
            {k: str(v) for k, v in result.summary.items()}
        )
        return result

    return _run


if __name__ == "__main__":
    raise SystemExit(main())
