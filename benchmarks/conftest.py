"""Benchmark fixtures: shared experiment contexts and result output.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper.  Contexts are session-scoped and the underlying datasets are
disk-cached under ``.artifacts``, so the first invocation pays the full
pipeline cost and later ones only the experiment math.

Each benchmark writes its rendered table to ``results/<id>.txt`` and
attaches the experiment summary to the benchmark's ``extra_info`` so the
numbers appear in ``--benchmark-json`` output too.

The perf-suite modules additionally *append* one record per benchmark
(wall time plus any numeric ``extra_info`` throughput stats) to the
repo-root trajectory files ``BENCH_substrate.json`` / ``BENCH_stream.json``
— a flat list of ``{bench, value, unit, commit, timestamp}`` objects, so
``make bench-*`` runs accumulate a perf history across commits.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext, run_experiment

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Perf-suite module -> trajectory file it appends to.
TRAJECTORY_FILES = {
    "test_substrate_perf": "BENCH_substrate.json",
    "test_stream_perf": "BENCH_stream.json",
    "test_parallel_perf": "BENCH_parallel.json",
    "test_resilience_perf": "BENCH_resilience.json",
    "test_serve_perf": "BENCH_serve.json",
}


def _git_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=REPO_ROOT,
        )
        return proc.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _append_records(path: Path, records: list[dict]) -> None:
    history: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except ValueError:
            pass  # unreadable trajectory: start a fresh list
    history.extend(records)
    path.write_text(json.dumps(history, indent=1) + "\n")


@pytest.fixture(autouse=True)
def bench_record(request):
    """Append this benchmark's numbers to its module's trajectory file."""
    yield
    fname = TRAJECTORY_FILES.get(request.module.__name__)
    bench = request.node.funcargs.get("benchmark")
    stats = getattr(bench, "stats", None)
    if fname is None or stats is None:
        return
    commit = _git_commit()
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    name = request.node.name
    records = [{
        "bench": name,
        "value": float(stats.stats.mean),
        "unit": "s",
        "commit": commit,
        "timestamp": stamp,
    }]
    for key, raw in bench.extra_info.items():
        try:
            value = float(raw)
        except (TypeError, ValueError):
            continue
        records.append({
            "bench": f"{name}:{key}",
            "value": value,
            "unit": "/s" if "per_sec" in key else "",
            "commit": commit,
            "timestamp": stamp,
        })
    _append_records(REPO_ROOT / fname, records)


@pytest.fixture(scope="session")
def ctx_n1():
    return ExperimentContext(design="n1", scale=SCALE)


@pytest.fixture(scope="session")
def ctx_a77():
    return ExperimentContext(design="a77", scale=SCALE)


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).resolve().parents[1] / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def run_exp(benchmark, results_dir):
    """Run an experiment under the benchmark timer; save its rendering."""

    def _run(exp_id: str, ctx, **kw):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, ctx=ctx, **kw),
            rounds=1,
            iterations=1,
        )
        (results_dir / f"{result.id}.txt").write_text(
            result.render() + "\n"
        )
        benchmark.extra_info.update(
            {k: str(v) for k, v in result.summary.items()}
        )
        return result

    return _run
