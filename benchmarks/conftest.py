"""Benchmark fixtures: shared experiment contexts and result output.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper.  Contexts are session-scoped and the underlying datasets are
disk-cached under ``.artifacts``, so the first invocation pays the full
pipeline cost and later ones only the experiment math.

Each benchmark writes its rendered table to ``results/<id>.txt`` and
attaches the experiment summary to the benchmark's ``extra_info`` so the
numbers appear in ``--benchmark-json`` output too.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext, run_experiment

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def ctx_n1():
    return ExperimentContext(design="n1", scale=SCALE)


@pytest.fixture(scope="session")
def ctx_a77():
    return ExperimentContext(design="a77", scale=SCALE)


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).resolve().parents[1] / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def run_exp(benchmark, results_dir):
    """Run an experiment under the benchmark timer; save its rendering."""

    def _run(exp_id: str, ctx, **kw):
        result = benchmark.pedantic(
            lambda: run_experiment(exp_id, ctx=ctx, **kw),
            rounds=1,
            iterations=1,
        )
        (results_dir / f"{result.id}.txt").write_text(
            result.render() + "\n"
        )
        benchmark.extra_info.update(
            {k: str(v) for k, v in result.summary.items()}
        )
        return result

    return _run
