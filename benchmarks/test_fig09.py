"""Fig. 9: headline model accuracy on the 12 testing benchmarks."""


def test_fig09(run_exp, ctx_n1):
    res = run_exp("fig09", ctx_n1)
    # Paper: R^2 = 0.95, NRMSE = 9.4% at Q = 159.
    assert res.summary["r2"] > 0.90
    assert res.summary["nrmse"] < 0.15
    # Paper: NMAE < 10% for every benchmark; allow 2x at repro scale.
    assert res.summary["worst_benchmark_nmae"] < 0.25
    # Paper: unbiased average power (0.6% difference); allow 10%.
    assert res.summary["avg_bias_pct"] < 10.0
