"""Extension: SPEC-like workload suite introspection."""


def test_ext_workloads(run_exp, ctx_n1):
    res = run_exp("ext_workloads", ctx_n1)
    assert res.summary["n_workloads"] == 6
    # the suite spans a real power range
    assert res.summary["power_span"] > 1.5
    # the proxy model tracks signoff on every workload
    assert res.summary["worst_r2_vs_signoff"] > 0.5
    # signatures are distinct: the streaming kernel tops power, the
    # pointer chase bottoms IPC
    by_name = {r["workload"]: r for r in res.rows}
    assert (
        by_name["libquantum_like"]["mean_power_mw"]
        > by_name["mcf_like"]["mean_power_mw"]
    )
    assert by_name["mcf_like"]["ipc"] < by_name["libquantum_like"]["ipc"]