"""Micro-benchmarks of the substrate itself.

These time the hot paths that every experiment leans on — gate-level
simulation throughput, MCP coordinate descent, proxy-column extraction —
so performance regressions in the substrate are visible next to the
experiment regenerations.
"""

import numpy as np
import pytest

from repro.core.solvers import coordinate_descent, precompute
from repro.power import PowerAnalyzer
from repro.rtl import ENGINES, RecordSpec, Simulator, ToggleTrace


@pytest.fixture(scope="module")
def core(ctx_n1):
    return ctx_n1.core


@pytest.mark.parametrize("engine", list(ENGINES))
def test_perf_gate_sim_accumulate(benchmark, core, engine):
    """Gate-level simulation with a power accumulator (no trace).

    Parametrized over every registered engine on the same 16-lane
    batched workload (the GA evaluates a whole generation per call), so
    the ratios between rows are the engines' relative speedups over the
    uint8 reference.
    """
    sim = Simulator(core.netlist, engine=engine)
    pa = PowerAnalyzer(core.netlist)
    w = pa.label_weights()
    rng = np.random.default_rng(0)
    stim = rng.integers(
        0, 2, size=(16, 500, len(core.netlist.input_ids)), dtype=np.uint8
    )

    def run():
        return sim.run(stim, RecordSpec(accumulators={"p": w}))

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["lane_cycles_per_sec"] = (
        f"{res.cycles_per_second:.0f}"
    )


@pytest.mark.parametrize("engine", list(ENGINES))
def test_perf_gate_sim_full_trace(benchmark, core, engine):
    """Gate-level simulation recording the full packed toggle trace."""
    sim = Simulator(core.netlist, engine=engine)
    rng = np.random.default_rng(0)
    stim = rng.integers(
        0, 2, size=(16, 300, len(core.netlist.input_ids)), dtype=np.uint8
    )
    res = benchmark.pedantic(
        lambda: sim.run(stim, RecordSpec(full_trace=True)),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["trace_mb"] = f"{res.trace.nbytes / 1e6:.1f}"


def test_perf_mcp_coordinate_descent(benchmark):
    """One MCP fit on a realistic screened problem size."""
    rng = np.random.default_rng(1)
    n, m = 6000, 1200
    X = (rng.random((n, m)) < 0.25).astype(np.float64)
    w_true = np.zeros(m)
    w_true[rng.choice(m, 40, replace=False)] = rng.uniform(0.5, 3, 40)
    y = X @ w_true + 0.1 * rng.standard_normal(n)
    pre = precompute(X, y)
    benchmark.pedantic(
        lambda: coordinate_descent(X, y, lam=0.05, _precomputed=pre),
        rounds=3,
        iterations=1,
    )


def test_perf_trace_column_extraction(benchmark):
    """Extracting Q proxy columns from a packed trace."""
    rng = np.random.default_rng(2)
    dense = rng.integers(0, 2, size=(1, 12000, 10000), dtype=np.uint8)
    trace = ToggleTrace.from_dense(dense)
    cols = np.sort(rng.choice(10000, size=150, replace=False))
    out = benchmark.pedantic(
        lambda: trace.dense(cols), rounds=5, iterations=1
    )
    assert out.shape == (1, 12000, 150)


def test_perf_pipeline_model(benchmark, ctx_n1):
    """Cycle-level pipeline model throughput."""
    from repro.isa import random_program
    from repro.uarch import Pipeline

    prog = random_program(np.random.default_rng(3), 60)
    pipe = Pipeline(ctx_n1.params)
    benchmark.pedantic(
        lambda: pipe.run(prog, 2000), rounds=3, iterations=1
    )
