"""Extensions beyond the paper (its §9 future work + §1 DVFS use case)."""


def test_ext_highlevel(run_exp, ctx_n1):
    res = run_exp("ext_highlevel", ctx_n1)
    # The abstraction trade: clearly faster, clearly less accurate than
    # RTL-proxy APOLLO — but still a usable power trace.
    assert res.summary["speedup_vs_rtl_flow"] > 5
    assert res.summary["highlevel_r2"] > 0.6
    assert res.summary["apollo_r2"] > res.summary["highlevel_r2"]


def test_ext_dvfs(run_exp, ctx_n1):
    res = run_exp("ext_dvfs", ctx_n1)
    # The governor respects the budget better than fixed-boost while
    # delivering far more performance than fixed-eco.
    assert res.summary["violation_reduction"] > 0
    assert res.summary["governed_perf"] > res.summary["eco_perf"]


def test_ext_counters(run_exp, ctx_n1):
    res = run_exp("ext_counters", ctx_n1)
    # §1's claim: counters are much worse than APOLLO at fine grain...
    assert res.summary["fine_grain_gap"] > 1.5
    # ...and recover (partially) at coarse grain.
    assert (
        res.summary["counter_coarse_nrmse"]
        < res.summary["counter_fine_nrmse"]
    )


def test_ext_didt(run_exp, ctx_n1):
    res = run_exp("ext_didt", ctx_n1)
    # The ramp-fitness virus produces a positive worst-case ramp and a
    # real droop.
    assert res.summary["didt_fitness"] > 0
    assert res.summary["droop_didt_mv"] > 0


def test_ext_multicore(run_exp, ctx_n1):
    res = run_exp("ext_multicore", ctx_n1)
    # De-phasing synchronized viruses flattens the socket envelope and
    # shrinks the shared-rail droop.
    assert res.summary["peak_reduction_pct"] > 0
    assert (
        res.summary["staggered_droop_mv"]
        <= res.summary["aligned_droop_mv"]
    )
