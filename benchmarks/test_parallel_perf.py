"""Benchmarks of the parallel execution layer (repro.parallel).

Times GA fitness evaluation three ways — plain serial, a cold
WorkerPool+EvalCache run, and a warm-cache rerun — asserting along the
way that every configuration produces a bit-identical ``GaResult``
(the layer's core contract: workers and caching are pure throughput
knobs).  The serial-vs-warm speedup and the warm run's cache hit rate
land in ``extra_info`` and hence in ``BENCH_parallel.json``, so the
trajectory records both wall time and cache effectiveness per commit.

The GA is seed-deterministic, so a warm cache turns every fitness
evaluation into a content-addressed lookup; on single-core runners the
recorded speedup comes from the cache, on multi-core runners from the
pool as well.
"""

from __future__ import annotations

import time

import pytest

from repro.genbench import BenchmarkEvolver, GaConfig
from repro.parallel import EvalCache, program_fingerprint

WORKERS = 4

#: Cross-test scratch: the serial baseline feeds the speedup number.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def core(ctx_n1):
    return ctx_n1.core


@pytest.fixture(scope="module")
def cfg():
    return GaConfig(
        population=12, generations=5, eval_cycles=240, seed=11
    )


def _signature(result):
    return [
        (program_fingerprint(i.program), i.power, i.generation, i.fitness)
        for i in result.individuals
    ]


def _serial_baseline(core, cfg):
    if "serial_sig" not in _RESULTS:
        t0 = time.perf_counter()
        with BenchmarkEvolver(core, cfg) as ev:
            result = ev.run()
        _RESULTS["serial_mean"] = time.perf_counter() - t0
        _RESULTS["serial_sig"] = _signature(result)
    return _RESULTS["serial_sig"]


def test_perf_ga_serial(benchmark, core, cfg):
    """Baseline: one GA run, no pool, no cache."""

    def run():
        with BenchmarkEvolver(core, cfg) as ev:
            return ev.run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _RESULTS["serial_mean"] = float(benchmark.stats.stats.mean)
    _RESULTS["serial_sig"] = _signature(result)
    benchmark.extra_info["n_individuals"] = str(len(result.individuals))


def test_perf_ga_pool_warm_cache(benchmark, core, cfg, tmp_path):
    """GA with a 4-worker pool and a warm content-addressed cache.

    The cold pass fills the cache (and is itself checked bit-identical
    to serial); the timed warm passes serve every evaluation from the
    cache.  Asserts the >= 1.5x speedup and a positive hit rate that
    ``make bench-parallel`` is meant to track.
    """
    serial_sig = _serial_baseline(core, cfg)
    cache = EvalCache(disk_dir=tmp_path / "evc")

    with BenchmarkEvolver(core, cfg, workers=WORKERS, cache=cache) as ev:
        cold = ev.run()
    assert _signature(cold) == serial_sig

    def run():
        with BenchmarkEvolver(
            core, cfg, workers=WORKERS, cache=cache
        ) as ev:
            result = ev.run()
            _RESULTS["warm_hits"] = ev.n_cache_hits
            _RESULTS["warm_sim"] = ev.n_simulated
            _RESULTS["warm_reuse"] = ev.n_elite_reuses
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert _signature(result) == serial_sig

    evaluated = (
        _RESULTS["warm_hits"] + _RESULTS["warm_sim"]
        + _RESULTS["warm_reuse"]
    )
    hit_rate = _RESULTS["warm_hits"] / max(1, evaluated)
    speedup = (
        _RESULTS["serial_mean"] / float(benchmark.stats.stats.mean)
    )
    assert hit_rate > 0.0
    assert _RESULTS["warm_sim"] == 0
    assert speedup >= 1.5
    benchmark.extra_info["speedup_pool_vs_serial"] = f"{speedup:.2f}"
    benchmark.extra_info["cache_hit_rate"] = f"{hit_rate:.3f}"
    benchmark.extra_info["workers"] = str(WORKERS)
