"""Fig. 3(b): GA training-benchmark generation."""


def test_fig03(run_exp, ctx_n1):
    res = run_exp("fig03", ctx_n1)
    # Paper: >5x ratio between max and min individuals.
    assert res.summary["max_min_ratio"] > 5.0
    # The envelope converges upward toward a power virus.
    assert res.summary["envelope_gain"] >= 1.0
    # Later generations discover the virus (not generation 0).
    assert res.summary["virus_generation"] >= 1
