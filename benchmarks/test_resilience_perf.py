"""Benchmarks of the resilience layer (repro.resilience).

The headline number is **checkpoint overhead**: the same GA run timed
bare and with per-generation checkpointing, with the relative slowdown
recorded to ``BENCH_resilience.json`` (and asserted under the 5% budget
the design doc promises).  A second benchmark tracks raw
``CheckpointStore`` save+load+verify throughput so a regression in the
atomic-write/hash path is visible even before it moves the GA number.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.genbench import BenchmarkEvolver, GaConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel import program_fingerprint
from repro.resilience import CheckpointStore

#: Checkpoint overhead budget, as a fraction of bare GA wall time.
OVERHEAD_BUDGET = 0.05

#: Cross-test scratch: the bare baseline feeds the overhead number.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def core(ctx_n1):
    return ctx_n1.core


@pytest.fixture(scope="module")
def cfg():
    return GaConfig(
        population=12, generations=5, eval_cycles=240, seed=11
    )


def _signature(result):
    return [
        (program_fingerprint(i.program), i.power, i.generation, i.fitness)
        for i in result.individuals
    ]


def _bare_baseline(core, cfg):
    if "bare_sig" not in _RESULTS:
        t0 = time.perf_counter()
        with BenchmarkEvolver(core, cfg) as ev:
            result = ev.run()
        _RESULTS["bare_mean"] = time.perf_counter() - t0
        _RESULTS["bare_sig"] = _signature(result)
    return _RESULTS["bare_sig"]


def test_perf_ga_bare(benchmark, core, cfg):
    """Baseline: one GA run with no checkpointing."""

    def run():
        with BenchmarkEvolver(core, cfg) as ev:
            return ev.run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _RESULTS["bare_mean"] = float(benchmark.stats.stats.mean)
    _RESULTS["bare_sig"] = _signature(result)
    benchmark.extra_info["n_individuals"] = str(len(result.individuals))


def test_perf_ga_checkpoint_overhead(benchmark, core, cfg, tmp_path):
    """GA with per-generation checkpoints: overhead must stay < 5%.

    Every generation saves population, elite traces, counters, and RNG
    state through the hash-verified atomic-write path; the result must
    still be bit-identical to the bare run, and the wall-time cost of
    all that durability is the fraction this trajectory tracks.
    """
    bare_sig = _bare_baseline(core, cfg)

    def run():
        store = CheckpointStore(
            tmp_path / f"ck-{time.monotonic_ns()}",
            metrics=MetricsRegistry(),
        )
        with BenchmarkEvolver(core, cfg, checkpoints=store) as ev:
            result = ev.run()
        _RESULTS["saves"] = store.metrics.counter(
            "resilience.checkpoint.saves"
        ).value
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert _signature(result) == bare_sig
    assert _RESULTS["saves"] == cfg.generations

    overhead = (
        float(benchmark.stats.stats.mean) / _RESULTS["bare_mean"] - 1.0
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"checkpoint overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
    benchmark.extra_info["checkpoint_overhead_frac"] = f"{overhead:.4f}"
    benchmark.extra_info["checkpoints_per_run"] = str(cfg.generations)


def test_perf_checkpoint_store_roundtrip(benchmark, tmp_path):
    """Raw save+load+verify throughput of a GA-sized checkpoint."""
    rng = np.random.default_rng(0)
    arrays = {
        "pop": rng.integers(0, 2, size=(12, 16, 5)).astype(np.int64),
        "traces": rng.integers(0, 255, size=(4, 240, 64)).astype(
            np.uint8
        ),
        "scores": rng.random(12),
    }
    meta = {"generation": 3, "identity": "bench"}
    store = CheckpointStore(
        tmp_path / "ck", keep=3, metrics=MetricsRegistry()
    )
    state = {"step": 0}

    def roundtrip():
        state["step"] += 1
        store.save("bench", state["step"], arrays, meta=meta)
        return store.load("bench", state["step"])

    ck = benchmark.pedantic(roundtrip, rounds=5, iterations=2)
    np.testing.assert_array_equal(ck.arrays["pop"], arrays["pop"])
    per_sec = 1.0 / float(benchmark.stats.stats.mean)
    benchmark.extra_info["roundtrips_per_sec"] = f"{per_sec:.1f}"
