"""Fig. 11: multi-cycle accuracy vs window size T."""


def test_fig11(run_exp, ctx_n1):
    res = run_exp("fig11", ctx_n1)
    # Paper: the APOLLO multi-cycle model (tau = 8) beats Simmani at
    # ~1/3 the proxies across T, and Simmani's NRMSE *grows* with T —
    # both shapes must reproduce.
    tau_wins, total = map(
        int, res.summary["tau_beats_simmani_windows"].split("/")
    )
    assert tau_wins >= total - 1
    assert res.summary["simmani_degrades_with_t"]
    # The simple per-cycle average wins most windows too.
    wins, total = map(
        int, res.summary["apollo_beats_simmani_windows"].split("/")
    )
    assert wins >= (total + 1) // 2
    # APOLLO_tau stays at or below the per-cycle average.
    t_wins, t_total = map(
        int, res.summary["tau_model_competitive_windows"].split("/")
    )
    assert t_wins >= t_total - 1
    # Accuracy improves with larger T (averaging smooths residuals).
    assert res.rows[-1]["apollo_avg_nrmse"] < res.rows[0][
        "apollo_avg_nrmse"
    ]
