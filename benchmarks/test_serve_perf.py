"""Micro-benchmarks of the fleet serving layer (``repro.serve``).

Times the same seeded load three ways — a direct single-process
:class:`StreamService` (the floor: no protocol, no shards), a one-shard
gateway (adds the framed protocol + tick loop), and a sharded gateway —
and reports ``sessions_per_sec`` / ``cycles_per_sec`` plus the p99
per-tick pump latency in ``extra_info``, so serving overhead and shard
scaling land in the ``BENCH_serve.json`` trajectory.

``test_perf_serve_transport`` additionally races the two
:class:`WorkerPool` transports (pickle envelopes vs the shared-memory
data plane) over an identical large-block fleet and records bytes
moved per tick alongside wall time, so ``make bench-check`` gates the
data plane's latency win and the IPC reduction never silently erodes.

Every variant asserts bit-identical window readings against the offline
:class:`OpmMeter`, so the perf numbers can never drift away from a
correct configuration.
"""

import numpy as np
import pytest

from repro.opm import OpmMeter, QuantizedModel
from repro.parallel import HAVE_SHM, WorkerPool, leaked_segments
from repro.serve import Gateway, LoadGenConfig, ModelRegistry, plan, run_load
from repro.stream import ProxyBlock, StreamConfig, StreamService, StreamSession

N_SESSIONS = 16
CYCLES = 4_096
CHUNK = 128
Q = 24
T = 8
SEED = 20211018

LOAD = LoadGenConfig(
    n_sessions=N_SESSIONS, cycles=CYCLES, chunk_cycles=CHUNK, seed=SEED,
)


@pytest.fixture(scope="module")
def qmodel():
    rng = np.random.default_rng(0)
    return QuantizedModel(
        proxies=np.arange(Q, dtype=np.int64),
        int_weights=rng.integers(-511, 512, size=Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.fixture(scope="module")
def plans(qmodel):
    return plan(LOAD, qmodel.q)


@pytest.fixture(scope="module")
def expected_windows(qmodel, plans):
    meter = OpmMeter(qmodel, t=T)
    return [meter.read(p.stimulus) for p in plans]


def _registry(qmodel):
    reg = ModelRegistry()
    reg.publish("v1", qmodel, activate=True)
    return reg


def _check(windows_per_session, expected_windows):
    for got, want in zip(windows_per_session, expected_windows):
        np.testing.assert_array_equal(
            np.asarray(got).view(np.uint8), want.view(np.uint8)
        )


def test_perf_serve_direct_service(
    benchmark, qmodel, plans, expected_windows
):
    """Floor: the same load through a bare StreamService (no serving)."""
    meter = OpmMeter(qmodel, t=T)
    cfg = StreamConfig(
        queue_depth=len(plans[0].chunks) + 1,
        window_ring_capacity=CYCLES // T + 1,
    )

    def run():
        sessions = []
        for k, p in enumerate(plans):
            blocks = [
                ProxyBlock(
                    start_cycle=i * CHUNK, toggles=c,
                    last=i == len(p.chunks) - 1,
                )
                for i, c in enumerate(p.chunks)
            ]
            sessions.append(
                StreamSession(f"s{k}", blocks, meter, config=cfg)
            )
        StreamService(meter, sessions).run()
        return [s.window_ring.values() for s in sessions]

    windows = benchmark.pedantic(run, rounds=3, iterations=1)
    _check(windows, expected_windows)
    total = N_SESSIONS * CYCLES
    benchmark.extra_info["sessions_per_sec"] = (
        f"{N_SESSIONS / benchmark.stats.stats.mean:.1f}"
    )
    benchmark.extra_info["cycles_per_sec"] = (
        f"{total / benchmark.stats.stats.mean:.0f}"
    )


@pytest.mark.parametrize("n_shards", [1, 4])
def test_perf_serve_gateway(
    benchmark, qmodel, plans, expected_windows, n_shards
):
    """The served path: framed protocol + tick loop + shard routing."""
    state = {}

    def run():
        gateway = Gateway(_registry(qmodel), n_shards=n_shards, t=T)
        report = run_load(gateway, LOAD)
        state["gateway"], state["report"] = gateway, report
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.cycles_total == N_SESSIONS * CYCLES
    assert report.dropped_blocks == 0
    # readings dict preserves open order == plan order
    _check(list(report.readings.values()), expected_windows)
    benchmark.extra_info["n_shards"] = str(n_shards)
    benchmark.extra_info["sessions_per_sec"] = (
        f"{report.sessions_per_sec:.1f}"
    )
    benchmark.extra_info["cycles_per_sec"] = (
        f"{report.cycles_per_sec:.0f}"
    )
    benchmark.extra_info["pump_latency_p99_s"] = (
        f"{state['gateway'].pump_latency_p99():.6f}"
    )


# --- transport comparison: pickle envelopes vs shared-memory plane ----
#
# Sized so per-tick toggle traffic (~20 MB) dominates session
# bookkeeping: the pickle transport must serialize every stacked block
# through the executor pipe, while the shm plane ships ~100 B
# descriptors.  Same fleet shape for both transports.

TR_SESSIONS = 32
TR_CYCLES = 8_192
TR_CHUNK = 2_048
TR_Q = 512
TR_T = 32
TR_SHARDS = 4
TR_WORKERS = 2
TR_SLAB = 128 << 20

TR_LOAD = LoadGenConfig(
    n_sessions=TR_SESSIONS, cycles=TR_CYCLES, chunk_cycles=TR_CHUNK,
    seed=SEED,
)

#: transport -> measured IPC bytes per tick, so the shm run can assert
#: the reduction against the pickle run from the same session.
_IPC_PER_TICK: dict[str, float] = {}


@pytest.fixture(scope="module")
def tr_qmodel():
    rng = np.random.default_rng(0)
    return QuantizedModel(
        proxies=np.arange(TR_Q, dtype=np.int64),
        int_weights=rng.integers(-511, 512, size=TR_Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.fixture(scope="module")
def tr_expected(tr_qmodel):
    meter = OpmMeter(tr_qmodel, t=TR_T)
    return [meter.read(p.stimulus) for p in plan(TR_LOAD, tr_qmodel.q)]


@pytest.mark.parametrize("transport", ["pickle", "shm"])
def test_perf_serve_transport(
    benchmark, tr_qmodel, tr_expected, transport
):
    """Same fleet, same load, same pool size — only the transport moves."""
    if transport == "shm" and not HAVE_SHM:
        pytest.skip("multiprocessing.shared_memory unavailable")
    pool = WorkerPool(
        workers=TR_WORKERS, transport=transport, slab_bytes=TR_SLAB,
    )
    state = {}

    def run():
        gateway = Gateway(
            _registry(tr_qmodel), n_shards=TR_SHARDS, t=TR_T, pool=pool,
        )
        report = run_load(gateway, TR_LOAD)
        state["gateway"], state["report"] = gateway, report
        return report

    try:
        run()  # warm the pool: fork + first-dispatch cost stays untimed
        report = benchmark.pedantic(run, rounds=3, iterations=1)
        gateway = state["gateway"]
        assert report.cycles_total == TR_SESSIONS * TR_CYCLES
        assert report.dropped_blocks == 0
        _check(list(report.readings.values()), tr_expected)
        ipc_per_tick = (
            gateway.metrics.counter("serve.ipc.bytes.total").value
            / max(gateway.ticks, 1)
        )
    finally:
        pool.close()
    if transport == "shm":
        assert leaked_segments() == []
        if "pickle" in _IPC_PER_TICK:  # absent under -k shm
            assert _IPC_PER_TICK["pickle"] / ipc_per_tick >= 10.0
    _IPC_PER_TICK[transport] = ipc_per_tick
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["sessions_per_sec"] = (
        f"{report.sessions_per_sec:.1f}"
    )
    benchmark.extra_info["tick_p99_s"] = f"{report.tick_p99_s:.6f}"
    benchmark.extra_info["ipc_bytes_per_tick"] = f"{ipc_per_tick:.0f}"
