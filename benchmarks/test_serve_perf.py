"""Micro-benchmarks of the fleet serving layer (``repro.serve``).

Times the same seeded load three ways — a direct single-process
:class:`StreamService` (the floor: no protocol, no shards), a one-shard
gateway (adds the framed protocol + tick loop), and a sharded gateway —
and reports ``sessions_per_sec`` / ``cycles_per_sec`` plus the p99
per-tick pump latency in ``extra_info``, so serving overhead and shard
scaling land in the ``BENCH_serve.json`` trajectory.

``test_perf_serve_transport`` additionally races the two
:class:`WorkerPool` transports (pickle envelopes vs the shared-memory
data plane) over an identical large-block fleet and records bytes
moved per tick alongside wall time, so ``make bench-check`` gates the
data plane's latency win and the IPC reduction never silently erodes.

Every variant asserts bit-identical window readings against the offline
:class:`OpmMeter`, so the perf numbers can never drift away from a
correct configuration.
"""

import time

import numpy as np
import pytest

from repro.opm import OpmMeter, QuantizedModel
from repro.parallel import HAVE_SHM, WorkerPool, leaked_segments
from repro.serve import Gateway, LoadGenConfig, ModelRegistry, plan, run_load
from repro.stream import ProxyBlock, StreamConfig, StreamService, StreamSession

N_SESSIONS = 16
CYCLES = 4_096
CHUNK = 128
Q = 24
T = 8
SEED = 20211018

LOAD = LoadGenConfig(
    n_sessions=N_SESSIONS, cycles=CYCLES, chunk_cycles=CHUNK, seed=SEED,
)


@pytest.fixture(scope="module")
def qmodel():
    rng = np.random.default_rng(0)
    return QuantizedModel(
        proxies=np.arange(Q, dtype=np.int64),
        int_weights=rng.integers(-511, 512, size=Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.fixture(scope="module")
def plans(qmodel):
    return plan(LOAD, qmodel.q)


@pytest.fixture(scope="module")
def expected_windows(qmodel, plans):
    meter = OpmMeter(qmodel, t=T)
    return [meter.read(p.stimulus) for p in plans]


def _registry(qmodel):
    reg = ModelRegistry()
    reg.publish("v1", qmodel, activate=True)
    return reg


def _check(windows_per_session, expected_windows):
    for got, want in zip(windows_per_session, expected_windows):
        np.testing.assert_array_equal(
            np.asarray(got).view(np.uint8), want.view(np.uint8)
        )


def test_perf_serve_direct_service(
    benchmark, qmodel, plans, expected_windows
):
    """Floor: the same load through a bare StreamService (no serving)."""
    meter = OpmMeter(qmodel, t=T)
    cfg = StreamConfig(
        queue_depth=len(plans[0].chunks) + 1,
        window_ring_capacity=CYCLES // T + 1,
    )

    def run():
        sessions = []
        for k, p in enumerate(plans):
            blocks = [
                ProxyBlock(
                    start_cycle=i * CHUNK, toggles=c,
                    last=i == len(p.chunks) - 1,
                )
                for i, c in enumerate(p.chunks)
            ]
            sessions.append(
                StreamSession(f"s{k}", blocks, meter, config=cfg)
            )
        StreamService(meter, sessions).run()
        return [s.window_ring.values() for s in sessions]

    windows = benchmark.pedantic(run, rounds=3, iterations=1)
    _check(windows, expected_windows)
    total = N_SESSIONS * CYCLES
    benchmark.extra_info["sessions_per_sec"] = (
        f"{N_SESSIONS / benchmark.stats.stats.mean:.1f}"
    )
    benchmark.extra_info["cycles_per_sec"] = (
        f"{total / benchmark.stats.stats.mean:.0f}"
    )


@pytest.mark.parametrize("n_shards", [1, 4])
def test_perf_serve_gateway(
    benchmark, qmodel, plans, expected_windows, n_shards
):
    """The served path: framed protocol + tick loop + shard routing."""
    state = {}

    def run():
        gateway = Gateway(_registry(qmodel), n_shards=n_shards, t=T)
        report = run_load(gateway, LOAD)
        state["gateway"], state["report"] = gateway, report
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.cycles_total == N_SESSIONS * CYCLES
    assert report.dropped_blocks == 0
    # readings dict preserves open order == plan order
    _check(list(report.readings.values()), expected_windows)
    benchmark.extra_info["n_shards"] = str(n_shards)
    benchmark.extra_info["sessions_per_sec"] = (
        f"{report.sessions_per_sec:.1f}"
    )
    benchmark.extra_info["cycles_per_sec"] = (
        f"{report.cycles_per_sec:.0f}"
    )
    benchmark.extra_info["pump_latency_p99_s"] = (
        f"{state['gateway'].pump_latency_p99():.6f}"
    )


# --- transport comparison: pickle envelopes vs shared-memory plane ----
#
# Sized so per-tick toggle traffic (~20 MB) dominates session
# bookkeeping: the pickle transport must serialize every stacked block
# through the executor pipe, while the shm plane ships ~100 B
# descriptors.  Same fleet shape for both transports.

TR_SESSIONS = 32
TR_CYCLES = 8_192
TR_CHUNK = 2_048
TR_Q = 512
TR_T = 32
TR_SHARDS = 4
TR_WORKERS = 2
TR_SLAB = 128 << 20

TR_LOAD = LoadGenConfig(
    n_sessions=TR_SESSIONS, cycles=TR_CYCLES, chunk_cycles=TR_CHUNK,
    seed=SEED,
)

#: transport -> measured IPC bytes per tick, so the shm run can assert
#: the reduction against the pickle run from the same session.
_IPC_PER_TICK: dict[str, float] = {}


@pytest.fixture(scope="module")
def tr_qmodel():
    rng = np.random.default_rng(0)
    return QuantizedModel(
        proxies=np.arange(TR_Q, dtype=np.int64),
        int_weights=rng.integers(-511, 512, size=TR_Q),
        int_intercept=40,
        step=0.01,
        bits=10,
    )


@pytest.fixture(scope="module")
def tr_expected(tr_qmodel):
    meter = OpmMeter(tr_qmodel, t=TR_T)
    return [meter.read(p.stimulus) for p in plan(TR_LOAD, tr_qmodel.q)]


@pytest.mark.parametrize("transport", ["pickle", "shm"])
def test_perf_serve_transport(
    benchmark, tr_qmodel, tr_expected, transport
):
    """Same fleet, same load, same pool size — only the transport moves."""
    if transport == "shm" and not HAVE_SHM:
        pytest.skip("multiprocessing.shared_memory unavailable")
    pool = WorkerPool(
        workers=TR_WORKERS, transport=transport, slab_bytes=TR_SLAB,
    )
    state = {}

    def run():
        gateway = Gateway(
            _registry(tr_qmodel), n_shards=TR_SHARDS, t=TR_T, pool=pool,
        )
        report = run_load(gateway, TR_LOAD)
        state["gateway"], state["report"] = gateway, report
        return report

    try:
        run()  # warm the pool: fork + first-dispatch cost stays untimed
        report = benchmark.pedantic(run, rounds=3, iterations=1)
        gateway = state["gateway"]
        assert report.cycles_total == TR_SESSIONS * TR_CYCLES
        assert report.dropped_blocks == 0
        _check(list(report.readings.values()), tr_expected)
        ipc_per_tick = (
            gateway.metrics.counter("serve.ipc.bytes.total").value
            / max(gateway.ticks, 1)
        )
    finally:
        pool.close()
    if transport == "shm":
        assert leaked_segments() == []
        if "pickle" in _IPC_PER_TICK:  # absent under -k shm
            assert _IPC_PER_TICK["pickle"] / ipc_per_tick >= 10.0
    _IPC_PER_TICK[transport] = ipc_per_tick
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["sessions_per_sec"] = (
        f"{report.sessions_per_sec:.1f}"
    )
    benchmark.extra_info["tick_p99_s"] = f"{report.tick_p99_s:.6f}"
    benchmark.extra_info["ipc_bytes_per_tick"] = f"{ipc_per_tick:.0f}"


# --- overload: 2x offered load against a fixed admission capacity ----
#
# Sixteen clients race to open against a fleet capped at 8 live
# best-effort sessions (critical headroom 2x).  Every 4th offered
# session carries a droop watcher, so the gateway classes it critical:
# the acceptance bar is that *zero* droop sessions shed while the
# best-effort overflow does, the shed set is bit-identical run to run,
# and the p99 tick latency of the admitted sessions stays within 1.5x
# of the same fleet running uncontended (no admission, no overflow).

OV_SESSIONS = 16          # offered; capacity admits 10 (4 crit + 6 be)
OV_CYCLES = 4_096
OV_CHUNK = 512
OV_CAP = 8                # best-effort live-session cap

OV_LOAD = LoadGenConfig(
    n_sessions=OV_SESSIONS, cycles=OV_CYCLES, chunk_cycles=OV_CHUNK,
    seed=SEED,
)


def _tick_p99(durations):
    """Wall-clock per-tick p99 — smooth, unlike the log-histogram's
    power-of-two bucket edges (adjacent buckets are 2x apart, which a
    1.5x regression bound could never resolve)."""
    return float(np.percentile(np.asarray(durations), 99))


def _overload_drive(qmodel, plans):
    """Offer 2x capacity, run admitted sessions to completion.

    Returns ``(shed, admitted_names, windows, p99)`` where ``shed`` is
    the deterministic record of rejected opens.
    """
    from repro.errors import AdmissionError
    from repro.serve import AdmissionConfig
    from repro.stream.aggregate import DroopWatcher

    gateway = Gateway(
        _registry(qmodel), n_shards=2, t=T,
        admission=AdmissionConfig(
            open_rate=32.0, open_burst=64,
            push_rate=1024.0, push_burst=2048,
            max_live_sessions=OV_CAP, critical_headroom=2.0,
        ),
    )
    handles, shed = [], []
    for k, _p in enumerate(plans):
        critical = k % 4 == 0
        try:
            handles.append(gateway.open_session(
                f"ov{k}",
                droop=DroopWatcher() if critical else None,
            ))
        except AdmissionError as exc:
            shed.append((f"ov{k}", critical, exc.reason))
    steps = OV_CYCLES // OV_CHUNK
    durs = []
    for step in range(steps):
        for h in handles:
            chunk = plans[int(h.name.split("#")[0][2:])].chunks[step]
            gateway.push(h, chunk, last=step == steps - 1)
        t0 = time.perf_counter()
        gateway.tick()
        durs.append(time.perf_counter() - t0)
    while True:
        t0 = time.perf_counter()
        alive = gateway.tick()
        durs.append(time.perf_counter() - t0)
        if not alive:
            break
    windows = {h.name: h.pop_windows() for h in handles}
    gateway.close()
    return shed, [h.name for h in handles], windows, _tick_p99(durs)


def _uncontended_p99(qmodel, plans, admitted_idx):
    """The same admitted fleet — droop watchers and all — with no
    admission layer and no overflow pressure."""
    from repro.stream.aggregate import DroopWatcher

    gateway = Gateway(_registry(qmodel), n_shards=2, t=T)
    handles = [
        gateway.open_session(
            f"ov{k}", droop=DroopWatcher() if k % 4 == 0 else None,
        )
        for k in admitted_idx
    ]
    steps = OV_CYCLES // OV_CHUNK
    durs = []
    for step in range(steps):
        for h, k in zip(handles, admitted_idx):
            gateway.push(
                h, plans[k].chunks[step], last=step == steps - 1
            )
        t0 = time.perf_counter()
        gateway.tick()
        durs.append(time.perf_counter() - t0)
    while True:
        t0 = time.perf_counter()
        alive = gateway.tick()
        durs.append(time.perf_counter() - t0)
        if not alive:
            break
    gateway.close()
    return _tick_p99(durs)


def test_perf_serve_overload_shedding(benchmark, qmodel):
    """2x overload: deterministic best-effort sheds, bounded p99."""
    plans_ov = plan(OV_LOAD, qmodel.q)
    state = {"p99s": []}

    def run():
        shed, admitted, windows, p99 = _overload_drive(qmodel, plans_ov)
        state["shed"], state["admitted"] = shed, admitted
        state["windows"] = windows
        state["p99s"].append(p99)
        return shed

    shed = benchmark.pedantic(run, rounds=3, iterations=1)
    # Shedding is deterministic: every round rejected the same opens
    # for the same reasons (pedantic reran `run`; all rounds must agree
    # with the returned record).
    again, *_ = _overload_drive(qmodel, plans_ov)
    assert again == shed
    # Zero critical (droop-watcher) sessions shed; best-effort did shed.
    assert shed, "2x offered load must shed"
    assert all(not critical for _n, critical, _r in shed)
    assert {r for _n, _c, r in shed} == {"live_sessions"}
    admitted_idx = [int(n.split("#")[0][2:]) for n in state["admitted"]]
    assert [k for k in range(OV_SESSIONS) if k % 4 == 0] == [
        k for k in admitted_idx if k % 4 == 0
    ]
    # Admitted sessions stayed bit-exact under overload.
    meter = OpmMeter(qmodel, t=T)
    for name, k in zip(state["admitted"], admitted_idx):
        np.testing.assert_array_equal(
            np.asarray(state["windows"][name]),
            meter.read(plans_ov[k].stimulus),
        )
    # p99 tick latency for admitted work within 1.5x of uncontended.
    base = min(
        _uncontended_p99(qmodel, plans_ov, admitted_idx)
        for _ in range(3)
    )
    contended = min(state["p99s"])
    assert contended <= 1.5 * max(base, 1e-6), (
        f"admitted p99 {contended:.6f}s vs uncontended {base:.6f}s"
    )
    benchmark.extra_info["offered_sessions"] = str(OV_SESSIONS)
    benchmark.extra_info["admitted_sessions"] = str(len(admitted_idx))
    benchmark.extra_info["shed_sessions"] = str(len(shed))
    benchmark.extra_info["tick_p99_s"] = f"{contended:.6f}"
    benchmark.extra_info["uncontended_p99_s"] = f"{base:.6f}"
