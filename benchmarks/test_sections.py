"""§7.5 (OPM overheads) and §8.1 (inference throughput)."""


def test_sec75(run_exp, ctx_n1):
    res = run_exp("sec7_5", ctx_n1)
    # Paper: 0.2% area and 0.9% power overhead at N1 scale, 2-cycle
    # latency.  Same order of magnitude expected at paper scale.
    assert res.summary["area_pct_paper_scale"] < 2.0
    assert res.summary["power_pct_paper_scale"] < 5.0
    assert res.summary["latency_cycles"] == 2


def test_sec81(run_exp, ctx_n1):
    res = run_exp("sec8_1", ctx_n1)
    # Paper: APOLLO ~1 minute per 1e9 cycles; CNN/PCA orders of
    # magnitude slower because they read every signal.
    assert res.summary["apollo_minutes_per_1e9"] < 10
    assert res.summary["cnn_over_apollo"] > 50
    assert res.summary["pca_over_apollo"] > 10
