"""Extension: zero-touch retargeting to the m0-like embedded core."""


def test_ext_littlecore(run_exp):
    res = run_exp("ext_littlecore", None)
    # The automated pipeline lands a usable model on a design it never
    # saw during development.
    assert res.summary["r2"] > 0.85
    assert res.summary["nrmse"] < 0.25
    # quantization stays near-lossless
    assert (
        abs(res.summary["opm_nrmse"] - res.summary["nrmse"]) < 0.01
    )
    # the GA still finds a wide power range on the little core
    assert res.summary["ga_power_ratio"] > 3
