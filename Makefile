# Convenience targets for the APOLLO reproduction.

PYTHON ?= python

.PHONY: install test bench results examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_SCALE=tiny $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

results:
	$(PYTHON) -m repro.cli run-all --out results

examples:
	for ex in examples/*.py; do echo "=== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf .artifacts results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
