# Convenience targets for the APOLLO reproduction.

PYTHON ?= python

.PHONY: install test bench bench-substrate bench-stream bench-parallel \
	bench-resilience bench-serve bench-obs bench-check chaos chaos-serve \
	trace-demo serve-demo obs-demo results examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test: obs-demo
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_SCALE=tiny $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Substrate micro-benchmarks only (gate-sim engines, MCP solver, trace
# ops).  Each run *appends* per-bench records to BENCH_substrate.json
# (the perf trajectory, via benchmarks/conftest.py); the raw
# pytest-benchmark dump goes to a separate .raw.json snapshot.
bench-substrate:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_substrate_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_substrate.raw.json

# Streaming-pipeline throughput (cycles/sec vs concurrent session
# count), appending to BENCH_stream.json alongside the substrate numbers.
bench-stream:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_stream_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_stream.raw.json

# Parallel-layer benchmarks: GA evaluation serial vs WorkerPool+EvalCache
# (asserting bit-identical results), appending speedup and cache-hit-rate
# records to BENCH_parallel.json.
bench-parallel:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_parallel_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_parallel.raw.json

# Resilience benchmarks: per-generation checkpoint overhead vs a bare GA
# run (asserted < 5%) and raw CheckpointStore save/load throughput,
# appending to BENCH_resilience.json.
bench-resilience:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_resilience.raw.json

# Serving-layer benchmarks: the same seeded load through a direct
# StreamService vs the gateway (1 shard and 4 shards), plus a
# pickle-vs-shm WorkerPool transport race on a large-block fleet,
# asserting bit-identical readings and appending sessions/sec, p99
# tick latency, and IPC bytes-per-tick to BENCH_serve.json so
# bench-check gates data-plane regressions.
bench-serve:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_serve_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_serve.raw.json

# Observability-layer benchmarks: traced vs untraced stream hot path
# (tracing overhead asserted < 3%), LogHistogram observe and span
# open/close throughput, appending to BENCH_obs.json.
bench-obs:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_obs_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_obs.raw.json

# Perf-trajectory regression gate: for every bench in every
# BENCH_*.json, the newest commit's best wall time must be within 20%
# of the best earlier-commit record.  Exit 1 on regression.
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/conftest.py

# Seeded chaos run: inject a deterministic fault plan (worker kills,
# torn checkpoints, corrupt cache entries, mid-stage interrupts) into a
# full train+quantize pipeline and verify the recovered model is
# bit-identical to a fault-free baseline.  Exit 1 on mismatch.
chaos:
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos --seed 5 --workers 2 \
		--out results/chaos

# Serving-layer chaos gate: drive a seeded fleet load while killing
# shards mid-tick, SIGKILLing pool workers, stalling pull sources,
# overflowing shm slabs, and flooding admission with best-effort opens;
# verify the fleet report, every session's windows, and the sequence
# accounting are bit-identical to a fault-free baseline, with no shed
# spillover and no leaked shm segments.  Exit 1 on mismatch.
chaos-serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos-serve --seed 5 --workers 2 \
		--out results/chaos-serve

# Tiny end-to-end traced pipeline run: exports Chrome/JSONL traces plus
# a provenance manifest under results/trace-demo and self-checks them.
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro.obs.demo --out results/trace-demo
	PYTHONPATH=src $(PYTHON) -m repro.cli trace results/trace-demo/trace.json
	PYTHONPATH=src $(PYTHON) -m repro.cli manifest results/trace-demo/manifest.json

# Self-checking fleet serving demo: seeded loadgen -> 2-shard gateway
# (with a mid-run hot model swap and an injected shard death) -> fleet
# report; asserts every streamed reading and the report totals are
# bit-identical to offline OpmMeter runs.  Writes results/serve-demo/.
serve-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve --demo --out results/serve-demo
	PYTHONPATH=src $(PYTHON) -m repro.cli fleet-report results/serve-demo/fleet-report.json

# Self-checking fleet observability demo: traced gateway load ->
# asserts every tick renders as one connected trace tree, the exact
# latency histograms saw every observation, and the OpenMetrics
# exposition round-trips.  Runs as part of `make test`.
obs-demo:
	PYTHONPATH=src $(PYTHON) -m repro.serve.obs_demo --out results/obs-demo

results:
	$(PYTHON) -m repro.cli run-all --out results

examples:
	for ex in examples/*.py; do echo "=== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf .artifacts results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
