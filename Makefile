# Convenience targets for the APOLLO reproduction.

PYTHON ?= python

.PHONY: install test bench bench-substrate bench-stream results examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_SCALE=tiny $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Substrate micro-benchmarks only (gate-sim engines, MCP solver, trace
# ops), with machine-readable output for tracking the perf trajectory.
bench-substrate:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_substrate_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_substrate.json

# Streaming-pipeline throughput (cycles/sec vs concurrent session
# count), machine-readable alongside the substrate numbers.
bench-stream:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_stream_perf.py \
		--benchmark-only \
		--benchmark-json=BENCH_stream.json

results:
	$(PYTHON) -m repro.cli run-all --out results

examples:
	for ex in examples/*.py; do echo "=== $$ex"; $(PYTHON) $$ex; done

clean:
	rm -rf .artifacts results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
