"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists
so ``pip install -e . --no-use-pep517`` works on offline machines where
PEP 660 editable builds (which require ``wheel``) are unavailable.
"""

from setuptools import setup

setup()
