"""Tiny end-to-end traced pipeline run (the ``make trace-demo`` target).

Runs every paper stage — GA micro-benchmark evolution, MCP proxy
selection + ridge relaxation, the design-time flow (uarch / RTL /
inference), OPM quantization and a short streaming session — at a
deliberately small scale, all under one :class:`~repro.obs.trace.Tracer`
and one :class:`~repro.obs.provenance.RunManifest`, then exports:

* ``trace.json``   — Chrome trace-event JSON (chrome://tracing, Perfetto)
* ``trace.jsonl``  — one span per line, grep-friendly
* ``manifest.json``— the provenance sidecar

and self-checks that the exports parse, round-trip nesting, and cover
every expected pipeline stage.  ``apollo-repro trace``/``manifest``
render the same files afterwards.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import asdict
from pathlib import Path

from repro.config import GLOBAL_SEED
from repro.core import ProxySelector, train_apollo
from repro.core.model import MODEL_SCHEMA_VERSION
from repro.design import build_core
from repro.genbench import BenchmarkEvolver, GaConfig, build_training_dataset
from repro.obs.provenance import RunManifest
from repro.obs.trace import Tracer, load_trace, render_tree
from repro.rtl.simulator import ENGINES
from repro.uarch import CoreParams

__all__ = ["run_demo", "main"]

#: Span names the demo's trace must contain — the acceptance contract
#: that the observability layer covers every paper pipeline stage.
REQUIRED_SPANS = frozenset({
    "ga.run",
    "ga.generation",
    "select.path",
    "solver.cd",
    "train.apollo",
    "train.relax",
    "flow.estimate",
    "flow.uarch",
    "flow.rtl",
    "flow.inference",
    "rtl.sim.run",
    "stream.run",
    "stream.drain",
})

_DEMO_PARAMS = CoreParams(
    name="trace-demo",
    fetch_width=2,
    issue_width=2,
    retire_width=2,
    n_alu=2,
    n_mul=1,
    n_vec=1,
    vec_lanes=2,
    lsu_ports=1,
    iq_size=8,
    rob_size=16,
    bp_entries=16,
)

_DEMO_GA = dict(
    population=6, generations=3, eval_cycles=120, program_length=24,
    elite=1, seed=GLOBAL_SEED,
)


def run_demo(out_dir: str | Path, engine: str = "packed", q: int = 8):
    """Run the traced tiny pipeline; returns ``(tracer, manifest, paths)``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    tracer = Tracer()
    cfg = GaConfig(**_DEMO_GA)
    manifest = RunManifest(
        run="trace-demo",
        design=_DEMO_PARAMS.name,
        scale="tiny",
        seed=cfg.seed,
        engine=engine,
        q=q,
        config={"ga": asdict(cfg), "core": asdict(_DEMO_PARAMS)},
        model_schema_version=MODEL_SCHEMA_VERSION,
    )

    with manifest.stage("ga"):
        core = build_core(_DEMO_PARAMS)
        ga = BenchmarkEvolver(
            core, cfg, engine=engine, tracer=tracer
        ).run()
    with manifest.stage("dataset"):
        train = build_training_dataset(
            core, ga, target_cycles=720, replay_cycles=120, engine=engine
        )
    with manifest.stage("train"):
        model = train_apollo(
            train.features(),
            train.labels,
            q=q,
            candidate_ids=train.candidate_ids,
            selector=ProxySelector(screen_width=300, tracer=tracer),
            tracer=tracer,
        )
    with manifest.stage("flow"):
        from repro.flow.design_time import DesignTimeFlow
        from repro.genbench.workloads import mcf_like

        flow = DesignTimeFlow(core, model, engine=engine, tracer=tracer)
        est = flow.estimate(mcf_like(), cycles=400)
    with manifest.stage("stream"):
        from repro.opm import OpmMeter, quantize_model
        from repro.stream import (
            SimulatorSource,
            StreamService,
            StreamSession,
        )

        meter = OpmMeter(quantize_model(model, bits=10), t=8)
        source = SimulatorSource.from_program(
            core, model.proxies, mcf_like(), cycles=512,
            chunk_cycles=128, engine=engine, tracer=tracer,
        )
        service = StreamService(
            meter,
            [StreamSession("demo", source, meter)],
            tracer=tracer,
        )
        service.run()

    manifest.extra["flow_total_seconds"] = round(est.total_seconds, 6)
    manifest.extra["ga_individuals"] = len(ga.individuals)

    paths = {
        "chrome": tracer.to_chrome(out / "trace.json"),
        "jsonl": tracer.to_jsonl(out / "trace.jsonl"),
        "manifest": manifest.save(out / "manifest.json"),
    }
    _self_check(paths)
    return tracer, manifest, paths


def _collect_names(roots) -> set[str]:
    names: set[str] = set()
    stack = list(roots)
    while stack:
        s = stack.pop()
        names.add(s.name)
        stack.extend(s.children)
    return names


def _self_check(paths: dict) -> None:
    """Exports must parse, nest, and cover every pipeline stage."""
    for key in ("chrome", "jsonl"):
        roots = load_trace(paths[key])
        names = _collect_names(roots)
        missing = REQUIRED_SPANS - names
        if missing:
            raise AssertionError(
                f"{paths[key]} missing spans: {sorted(missing)}"
            )
        if not any(r.children for r in roots):
            raise AssertionError(f"{paths[key]} lost span nesting")
    m = RunManifest.load(paths["manifest"])
    for field in ("design", "seed", "engine", "q", "config_hash"):
        if getattr(m, field) in (None, ""):
            raise AssertionError(f"manifest missing {field}")
    if not m.stages:
        raise AssertionError("manifest has no stage timings")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="traced tiny end-to-end APOLLO pipeline run"
    )
    parser.add_argument(
        "--out", default="results/trace-demo",
        help="output directory for trace.json / trace.jsonl / manifest.json",
    )
    parser.add_argument(
        "--engine", choices=list(ENGINES), default="packed"
    )
    parser.add_argument("--q", type=int, default=8)
    args = parser.parse_args(argv)

    tracer, manifest, paths = run_demo(
        args.out, engine=args.engine, q=args.q
    )
    print(manifest.render())
    print()
    print(render_tree(tracer.roots))
    print()
    for key, path in paths.items():
        print(f"# {key}: {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
