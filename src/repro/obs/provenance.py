"""Run provenance: what produced a result, captured as a JSON sidecar.

A :class:`RunManifest` records everything needed to interpret (or
re-run) a pipeline result without the process that made it: design and
scale, every seed, the simulation engine, the proxy count Q, a hash of
the configuration, the model-artifact schema version, and per-stage
wall/CPU times.  ``save()`` writes it as a JSON sidecar next to the
results it describes; ``apollo-repro manifest <file>`` renders it.

Stage times come from either source:

* ``with manifest.stage("ga"):`` — measures wall (``perf_counter``) and
  CPU (``process_time``) around a block;
* ``manifest.record_tracer(tracer)`` — imports every *root* span of a
  :class:`~repro.obs.trace.Tracer` as a stage (wall time only), so a
  traced run gets its manifest for free.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from contextlib import contextmanager
from pathlib import Path

from repro.errors import ObsError

__all__ = ["RunManifest", "config_hash", "MANIFEST_SCHEMA_VERSION"]

#: Sidecar schema version; bump on incompatible layout changes.
MANIFEST_SCHEMA_VERSION = 1

_FORMAT = "apollo-repro-manifest"


def config_hash(config) -> str:
    """Stable short hash of a configuration mapping/dataclass-dict.

    Canonical JSON (sorted keys, ``str`` fallback for exotic values)
    hashed with SHA-256; 12 hex chars is plenty to distinguish configs
    while staying readable in tables.
    """
    blob = json.dumps(
        config, sort_keys=True, default=str, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


class RunManifest:
    """Provenance for one pipeline run; serializes to a JSON sidecar."""

    def __init__(
        self,
        run: str,
        design: str | None = None,
        scale: str | None = None,
        seed: int | None = None,
        engine: str | None = None,
        q: int | None = None,
        config: dict | None = None,
        model_schema_version: int | None = None,
        extra: dict | None = None,
    ) -> None:
        self.run = run
        self.design = design
        self.scale = scale
        self.seed = seed
        self.engine = engine
        self.q = q
        self.config = dict(config) if config else None
        self.config_hash = config_hash(self.config) if self.config else None
        self.model_schema_version = model_schema_version
        self.extra = dict(extra) if extra else {}
        self.created_at = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        self.host = platform.node() or "unknown"
        self.python = platform.python_version()
        self.stages: dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    def add_stage(
        self, name: str, wall_s: float, cpu_s: float | None = None
    ) -> None:
        """Record one stage's timings (accumulates on repeated names)."""
        st = self.stages.setdefault(name, {"wall_s": 0.0, "cpu_s": None})
        st["wall_s"] += float(wall_s)
        if cpu_s is not None:
            st["cpu_s"] = (st["cpu_s"] or 0.0) + float(cpu_s)

    @contextmanager
    def stage(self, name: str):
        """Measure a block's wall + CPU time as stage ``name``."""
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield self
        finally:
            self.add_stage(
                name,
                time.perf_counter() - w0,
                time.process_time() - c0,
            )

    def record_tracer(self, tracer) -> None:
        """Import every root span of a tracer as a stage (wall only)."""
        for span in tracer.roots:
            self.add_stage(span.name, span.duration)

    # ------------------------------------------------------------------ #
    def record_fault_plan(self, injector_or_plan) -> None:
        """Record the chaos fault plan (and what actually fired).

        Accepts a :class:`~repro.resilience.FaultInjector` (recording
        both plan and fired log) or a bare
        :class:`~repro.resilience.FaultPlan`.  Stored under
        ``extra["fault_plan"]`` so a faulted run's manifest is a full
        reproduction recipe.
        """
        if hasattr(injector_or_plan, "summary"):
            self.extra["fault_plan"] = injector_or_plan.summary()
        else:
            self.extra["fault_plan"] = {
                "plan": injector_or_plan.to_dict(),
                "fired": [],
            }

    def record_resume(
        self, stage: str, step: int, checkpoint_path=None
    ) -> None:
        """Record that ``stage`` resumed from checkpoint ``step``.

        Accumulates under ``extra["resumed_from"]`` — one entry per
        resumed stage — so manifests show a run's full restart lineage.
        """
        lineage = self.extra.setdefault("resumed_from", [])
        lineage.append(
            {
                "stage": stage,
                "step": int(step),
                "checkpoint": (
                    None if checkpoint_path is None else str(checkpoint_path)
                ),
            }
        )

    @property
    def total_wall_s(self) -> float:
        return sum(st["wall_s"] for st in self.stages.values())

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run": self.run,
            "created_at": self.created_at,
            "host": self.host,
            "python": self.python,
            "design": self.design,
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "q": self.q,
            "config_hash": self.config_hash,
            "config": self.config,
            "model_schema_version": self.model_schema_version,
            "stages": self.stages,
            "extra": self.extra,
        }

    def save(self, path: str | Path) -> Path:
        """Write the sidecar; conventionally ``<results>.manifest.json``."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def sidecar_for(cls, results_path: str | Path) -> Path:
        """The conventional sidecar location next to a results file."""
        p = Path(results_path)
        return p.with_name(p.name + ".manifest.json")

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        p = Path(path)
        if not p.exists():
            raise ObsError(f"no manifest at {p}")
        data = json.loads(p.read_text())
        if data.get("format") != _FORMAT:
            raise ObsError(
                f"{p} is not an {_FORMAT} sidecar "
                f"(format={data.get('format')!r})"
            )
        version = int(data.get("schema_version", 0))
        if version > MANIFEST_SCHEMA_VERSION:
            raise ObsError(
                f"{p} uses manifest schema v{version}, newer than "
                f"supported v{MANIFEST_SCHEMA_VERSION}"
            )
        m = cls(
            run=data.get("run", "unknown"),
            design=data.get("design"),
            scale=data.get("scale"),
            seed=data.get("seed"),
            engine=data.get("engine"),
            q=data.get("q"),
            config=data.get("config"),
            model_schema_version=data.get("model_schema_version"),
            extra=data.get("extra"),
        )
        m.created_at = data.get("created_at", m.created_at)
        m.host = data.get("host", m.host)
        m.python = data.get("python", m.python)
        # A stored hash wins over the recomputed one (the sidecar is the
        # record of what ran, even if hashing rules ever change).
        if data.get("config_hash"):
            m.config_hash = data["config_hash"]
        m.stages = {
            str(k): {
                "wall_s": float(v.get("wall_s", 0.0)),
                "cpu_s": (
                    None if v.get("cpu_s") is None else float(v["cpu_s"])
                ),
            }
            for k, v in (data.get("stages") or {}).items()
        }
        return m

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Human-readable summary: identity block + stage-time table."""
        lines = [f"run: {self.run}   [{self.created_at}]"]
        for label, value in (
            ("design", self.design),
            ("scale", self.scale),
            ("seed", self.seed),
            ("engine", self.engine),
            ("Q", self.q),
            ("config hash", self.config_hash),
            ("model schema", self.model_schema_version),
            ("host", f"{self.host} (python {self.python})"),
        ):
            if value is not None:
                lines.append(f"  {label:<13} {value}")
        for k, v in self.extra.items():
            lines.append(f"  {k:<13} {v}")
        if self.stages:
            lines.append("")
            lines.append(
                f"  {'stage':<26} {'wall [s]':>10} {'cpu [s]':>10}"
            )
            for name, st in self.stages.items():
                cpu = (
                    f"{st['cpu_s']:>10.3f}" if st["cpu_s"] is not None
                    else f"{'-':>10}"
                )
                lines.append(
                    f"  {name:<26} {st['wall_s']:>10.3f} {cpu}"
                )
            lines.append(
                f"  {'total':<26} {self.total_wall_s:>10.3f}"
            )
        return "\n".join(lines)
