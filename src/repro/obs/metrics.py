"""Shared operational metrics: counters, gauges, histograms.

Promoted from ``repro.stream.metrics`` (kept there as a re-export shim)
so *every* layer — the GA, the solvers, the flows, the streaming service
— can publish into one registry.  The vocabulary stays deliberately
small and Prometheus-flavored, and ``snapshot()`` is plain
JSON-serializable data, so fleet tooling can scrape a run without
touching NumPy objects.

Misuse keeps raising :class:`~repro.errors.StreamError` — the type the
registry raised before the promotion — so existing callers' error
handling is unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.obs.hist import LogHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "default_registry",
]


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise StreamError(f"counter {self.name!r} cannot decrease")
        self.value += int(n)


@dataclass
class Gauge:
    """Last-observed value (queue depth, EMA power, ...)."""

    name: str
    value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Fixed-boundary histogram with sum/count for mean recovery.

    ``edges`` are the upper bounds of each bucket; one overflow bucket
    catches everything above the last edge (Prometheus ``le`` semantics,
    cumulative form left to the consumer).
    """

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise StreamError(
                f"histogram {name!r} needs ascending bucket edges"
            )
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        for i, edge in enumerate(self.edges):
            if v <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += v

    def observe_many(self, values) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


@dataclass
class MetricsRegistry:
    """Name -> metric container with one-call JSON snapshots.

    Metric *creation* (the get-or-create lookups) and ``snapshot()``
    hold an internal lock, so shards running on gateway worker threads
    and the asyncio exposition endpoint can hit one registry
    concurrently without corrupting the dicts.  Updates on an already
    created metric object remain lock-free (single attribute writes).
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    hists: dict[str, LogHistogram] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False,
    )

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self.counters:
                self.counters[name] = Counter(name)
            return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self.gauges:
                self.gauges[name] = Gauge(name)
            return self.gauges[name]

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        with self._lock:
            if name not in self.histograms:
                self.histograms[name] = Histogram(name, edges)
            return self.histograms[name]

    def hist(
        self,
        name: str,
        lo: float = 1e-6,
        hi: float = 1e3,
        growth: float = 2 ** 0.25,
    ) -> LogHistogram:
        """Get-or-create a mergeable :class:`LogHistogram`."""
        with self._lock:
            if name not in self.hists:
                self.hists[name] = LogHistogram(lo=lo, hi=hi, growth=growth)
            return self.hists[name]

    def snapshot(self) -> dict:
        """Plain-data view of every metric (JSON-serializable)."""
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            histograms = dict(self.histograms)
            hists = dict(self.hists)
        return {
            "counters": {
                n: c.value for n, c in sorted(counters.items())
            },
            "gauges": {
                n: g.value for n, g in sorted(gauges.items())
            },
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "count": h.total,
                    "sum": h.sum,
                    "mean": h.mean,
                }
                for n, h in sorted(histograms.items())
            },
            "hists": {
                n: h.snapshot() for n, h in sorted(hists.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


_DEFAULT_REGISTRY: MetricsRegistry | None = None
_DEFAULT_REGISTRY_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry (created on first use).

    Layers that are not handed an explicit registry can publish here, so
    one snapshot covers a whole in-process pipeline.  Creation is
    double-checked under a module lock so concurrent first callers (the
    asyncio gateway's shards) share one instance.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        with _DEFAULT_REGISTRY_LOCK:
            if _DEFAULT_REGISTRY is None:
                _DEFAULT_REGISTRY = MetricsRegistry()
    return _DEFAULT_REGISTRY
