"""OpenMetrics text exposition for a :class:`MetricsRegistry`.

:func:`render_openmetrics` turns a registry snapshot into the
OpenMetrics/Prometheus text format — counters, gauges, and both
histogram flavors (fixed-edge and :class:`LogHistogram`) with
cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count`` — so
any scraper (or ``apollo-repro obs top``) can read live gateway state
off the ``GET /metrics`` side port.

Dotted internal metric names map to the exposition charset by replacing
every non ``[a-zA-Z0-9_]`` character with ``_``
(``serve.tick.latency`` -> ``serve_tick_latency``); shard/version
components stay inside the name rather than labels, keeping the
renderer dependency-free and the mapping trivially invertible for our
own vocabulary.

:func:`parse_openmetrics` is the inverse used by the CLI poller and the
tests: it reads the sample lines (ignoring comments) back into a flat
``{name or name{labels}: value}`` dict.
"""

from __future__ import annotations

import re

__all__ = ["render_openmetrics", "parse_openmetrics"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_openmetrics(registry) -> str:
    """Render a registry (or a plain ``snapshot()`` dict) to text."""
    snap = registry if isinstance(registry, dict) else registry.snapshot()
    lines: list[str] = []

    for name, value in snap.get("counters", {}).items():
        n = _sanitize(name)
        lines.append(f"# TYPE {n} counter")
        lines.append(f"{n}_total {_fmt(value)}")

    for name, value in snap.get("gauges", {}).items():
        n = _sanitize(name)
        lines.append(f"# TYPE {n} gauge")
        lines.append(f"{n} {_fmt(value)}")

    for name, h in snap.get("histograms", {}).items():
        n = _sanitize(name)
        lines.append(f"# TYPE {n} histogram")
        cum = 0
        for edge, cnt in zip(h["edges"], h["counts"]):
            cum += cnt
            lines.append(f'{n}_bucket{{le="{_fmt(edge)}"}} {cum}')
        cum += h["counts"][-1]
        lines.append(f'{n}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{n}_sum {_fmt(h['sum'])}")
        lines.append(f"{n}_count {h['count']}")

    for name, h in snap.get("hists", {}).items():
        n = _sanitize(name)
        lines.append(f"# TYPE {n} histogram")
        lo, growth = float(h["lo"]), float(h["growth"])
        cum = 0
        for k in sorted(int(b) for b in h["buckets"]):
            cum += int(h["buckets"][str(k)])
            edge = lo * growth ** k
            lines.append(f'{n}_bucket{{le="{_fmt(edge)}"}} {cum}')
        lines.append(f'{n}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{n}_sum {_fmt(h['sum'])}")
        lines.append(f"{n}_count {h['count']}")
        for qname in ("p50", "p90", "p99", "p999"):
            if qname in h:
                lines.append(
                    f'{n}{{quantile="{qname}"}} {_fmt(h[qname])}'
                )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*(?:\{[^}]*\})?)\s+(?P<value>\S+)$"
)


def parse_openmetrics(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{sample_name: value}``.

    Inverse of :func:`render_openmetrics` for our own output: comment
    and ``# EOF`` lines are skipped, label sets stay part of the key
    verbatim (``foo_bucket{le="0.1"}``).
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            continue
        raw = m.group("value")
        value = {
            "+Inf": float("inf"), "-Inf": float("-inf"), "NaN": float("nan"),
        }.get(raw)
        if value is None:
            try:
                value = float(raw)
            except ValueError:
                continue
        out[m.group("name")] = value
    return out
