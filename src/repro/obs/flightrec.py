"""Bounded flight recorder for post-mortem evidence.

A :class:`FlightRecorder` keeps the last *N* events per named lane
(gateway, shard-0, shard-1, ...) in bounded ring buffers: finished
spans (via :meth:`attach_tracer`), health transitions (via
:meth:`watch_health`), and free-form events such as recent power
readings (via :meth:`record`).  Memory stays O(lanes * capacity)
regardless of run length.

On shard death, health demotion, or SIGTERM the recorder dumps a
post-mortem JSON *atomically* (same-dir tmp + fsync + rename, through
:mod:`repro.resilience.atomic`), so a crash mid-dump can never leave a
torn file — the post-mortem either exists completely or not at all.
Each distinct ``reason`` is dumped at most once per recorder (the first
demotion wins; later ticks do not overwrite the evidence).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.errors import ObsError
from repro.resilience.atomic import atomic_write_bytes

__all__ = ["FlightRecorder", "load_postmortem"]

#: Schema tag written into every post-mortem dump.
POSTMORTEM_SCHEMA = 1


class FlightRecorder:
    """Per-lane bounded ring buffers with atomic post-mortem dumps."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ObsError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._lanes: dict[str, deque] = {}
        self._seq = 0
        self._dumped: dict[str, Path] = {}

    # ------------------------------------------------------------------ #
    def record(self, lane: str, kind: str, **data) -> None:
        """Append one event to a lane's ring (oldest evicted at cap)."""
        with self._lock:
            ring = self._lanes.get(lane)
            if ring is None:
                ring = self._lanes[lane] = deque(maxlen=self.capacity)
            self._seq += 1
            ring.append({"seq": self._seq, "kind": kind, **data})

    def attach_tracer(self, tracer, lane_of=None) -> None:
        """Record every finished span of ``tracer``.

        ``lane_of(span) -> str`` picks the ring (defaults to the span's
        ``pid`` rendered as ``lane-<pid>``, with pid 0 as ``main``).
        """
        def on_close(span):
            if lane_of is not None:
                lane = lane_of(span)
            else:
                lane = "main" if span.pid == 0 else f"lane-{span.pid}"
            self.record(
                lane,
                "span",
                name=span.name,
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                start=span.start,
                dur=span.duration,
                attrs=dict(span.attrs),
            )

        tracer.add_close_hook(on_close)

    def watch_health(self, lane: str, health, on_demote=None) -> None:
        """Record ``health``'s transitions; optionally act on demotions.

        ``on_demote(lane, old, new, reason)`` fires for transitions into
        ``degraded`` or ``failed`` — the gateway uses it to trigger a
        post-mortem dump.
        """
        def listener(old, new, reason):
            self.record(
                lane, "health", old=old, new=new, reason=reason,
            )
            if on_demote is not None and new in ("degraded", "failed"):
                on_demote(lane, old, new, reason)

        health.subscribe(listener)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-data view of every ring (oldest first)."""
        with self._lock:
            return {
                lane: list(ring)
                for lane, ring in sorted(self._lanes.items())
            }

    @property
    def dumped(self) -> dict[str, Path]:
        """Post-mortem paths already written, keyed by reason."""
        with self._lock:
            return dict(self._dumped)

    def dump(self, path: str | Path, reason: str) -> Path | None:
        """Atomically write a post-mortem JSON; once per ``reason``.

        Returns the written path, or ``None`` when this reason was
        already dumped (the first capture is the evidence; later
        triggers must not rewrite it with post-incident state).
        """
        path = Path(path)
        with self._lock:
            if reason in self._dumped:
                return None
            self._dumped[reason] = path
        doc = {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "wall_time": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "capacity": self.capacity,
            "lanes": self.snapshot(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            path, (json.dumps(doc, indent=1) + "\n").encode()
        )
        return path


def load_postmortem(path: str | Path) -> dict:
    """Load and sanity-check a post-mortem dump."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != POSTMORTEM_SCHEMA:
        raise ObsError(
            f"unknown post-mortem schema {doc.get('schema')!r} at {path}"
        )
    return doc
