"""Nested-span tracing with JSONL and Chrome trace-event export.

A :class:`Tracer` records *spans*: named intervals with a monotonic
start, a duration, free-form attributes, and parent/child nesting.  The
API is the usual context-manager shape::

    tracer = Tracer()
    with tracer.span("ga.run", generations=14) as sp:
        with tracer.span("ga.generation", generation=0) as g:
            ...
            g.set(mean_power=3.2)
    tracer.to_chrome("trace.json")     # load in chrome://tracing / Perfetto
    tracer.to_jsonl("trace.jsonl")     # one span per line, grep-friendly

Design points:

* **Zero-overhead default.**  Every instrumented function takes
  ``tracer=None`` and falls back to :data:`NULL_TRACER`, whose
  ``span()`` returns a shared inert context manager — no allocation, no
  timing, no collection.  ``tracer.enabled`` gates any attribute
  computation that is not already free (e.g. per-iteration residual
  histories).
* **Thread safety.**  The open-span stack is thread-local (each thread
  nests independently), finished spans go into one lock-protected list,
  and Chrome export tags each thread with its own ``tid``.
* **Plain data.**  Attributes must be JSON-serializable; exports contain
  explicit ``span_id``/``parent_id`` fields so either file format
  round-trips the tree exactly (see :func:`load_trace`).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObsError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "load_jsonl",
    "load_chrome",
    "render_tree",
]


@dataclass
class Span:
    """One finished (or in-flight) traced interval.

    ``start`` is seconds on the tracer's monotonic clock (relative to
    tracer creation, so exported timestamps are small and comparable
    within one trace); ``duration`` is filled at exit.
    """

    name: str
    span_id: int
    parent_id: int | None
    tid: int
    start: float
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs) -> None:
        """Attach attributes to the span (JSON-serializable values)."""
        self.attrs.update(attrs)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __bool__(self) -> bool:  # real spans are truthy, the null span
        return True              # is falsy — ``if sp:`` gates attr work


class _SpanCm:
    """Context manager that opens a :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", repr(exc))
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects nested spans; export with :meth:`to_jsonl`/:meth:`to_chrome`."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._tids: dict[int, int] = {}
        self.spans: list[Span] = []  # finished spans, completion order
        self.roots: list[Span] = []

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs) -> _SpanCm:
        """Open a nested span: ``with tracer.span("stage", k=v) as sp:``."""
        return _SpanCm(self, name, attrs)

    def _stack(self) -> list[Span]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _open(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tid = self._tids.setdefault(
                threading.get_ident(), len(self._tids)
            )
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            tid=tid,
            start=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._stack()
        if not stack or stack[-1] is not span:  # pragma: no cover
            raise ObsError(
                f"span {span.name!r} closed out of order"
            )
        stack.pop()
        with self._lock:
            self.spans.append(span)
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)

    # ------------------------------------------------------------------ #
    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name, completion order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every finished span with this name."""
        return sum(s.duration for s in self.find(name))

    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | Path) -> Path:
        """One JSON object per finished span, start-time order."""
        path = Path(path)
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
        with path.open("w") as fh:
            for s in spans:
                fh.write(json.dumps({
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "name": s.name,
                    "tid": s.tid,
                    "start": s.start,
                    "dur": s.duration,
                    "attrs": s.attrs,
                }) + "\n")
        return path

    def to_chrome(self, path: str | Path) -> Path:
        """Chrome trace-event JSON (complete ``"X"`` events, microseconds).

        Loadable in ``chrome://tracing`` or Perfetto; ``span_id`` and
        ``parent_id`` ride along in ``args`` so :func:`load_chrome` can
        rebuild exact nesting without containment heuristics.
        """
        path = Path(path)
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
        events = [
            {
                "name": s.name,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": 0,
                "tid": s.tid,
                "args": {
                    **s.attrs,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                },
            }
            for s in spans
        ]
        path.write_text(json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=1,
        ) + "\n")
        return path


class _NullSpan:
    """Inert span: accepts the full :class:`Span` surface, does nothing."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: tuple = ()
    duration = 0.0

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: ``span()`` returns one shared inert object."""

    enabled = False
    spans: tuple = ()
    roots: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def find(self, name: str) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0


#: Shared no-op tracer; the default for every ``tracer=`` parameter.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------- #
# Loading exported traces (the CLI's side of the contract).
# --------------------------------------------------------------------- #
def _link(records: list[dict]) -> list[Span]:
    """Rebuild the span forest from exported flat records."""
    spans: dict[int, Span] = {}
    for r in records:
        spans[int(r["span_id"])] = Span(
            name=str(r["name"]),
            span_id=int(r["span_id"]),
            parent_id=(
                None if r.get("parent_id") is None else int(r["parent_id"])
            ),
            tid=int(r.get("tid", 0)),
            start=float(r["start"]),
            duration=float(r["dur"]),
            attrs=dict(r.get("attrs", {})),
        )
    roots: list[Span] = []
    for s in sorted(spans.values(), key=lambda s: s.start):
        if s.parent_id is not None and s.parent_id in spans:
            spans[s.parent_id].children.append(s)
        else:
            roots.append(s)
    return roots


def load_jsonl(path: str | Path) -> list[Span]:
    """Load a :meth:`Tracer.to_jsonl` export; returns the root spans."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return _link(records)


def load_chrome(path: str | Path) -> list[Span]:
    """Load a :meth:`Tracer.to_chrome` export; returns the root spans."""
    doc = json.loads(Path(path).read_text())
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    records = []
    for e in events:
        if e.get("ph") != "X":
            continue
        args = dict(e.get("args", {}))
        records.append({
            "span_id": args.pop("span_id", len(records)),
            "parent_id": args.pop("parent_id", None),
            "name": e["name"],
            "tid": e.get("tid", 0),
            "start": float(e["ts"]) / 1e6,
            "dur": float(e.get("dur", 0.0)) / 1e6,
            "attrs": args,
        })
    return _link(records)


def load_trace(path: str | Path) -> list[Span]:
    """Auto-detect the export format (JSONL vs Chrome JSON) and load."""
    p = Path(path)
    if not p.exists():
        raise ObsError(f"no trace file at {p}")
    text = p.read_text()
    first = text.lstrip()[:1]
    if first == "{" and "traceEvents" in text[:2048]:
        return load_chrome(p)
    return load_jsonl(p)


def render_tree(roots: list[Span], max_attrs: int = 4) -> str:
    """Human-readable span tree: one line per span, indented by depth."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = {
            k: v for k, v in span.attrs.items()
            if not isinstance(v, (list, dict))
        }
        shown = list(attrs.items())[:max_attrs]
        suffix = "".join(
            f"  {k}={v:.4g}" if isinstance(v, float) else f"  {k}={v}"
            for k, v in shown
        )
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 30 - 2 * depth)}} "
            f"{span.duration * 1e3:9.2f} ms{suffix}"
        )
        for child in sorted(span.children, key=lambda s: s.start):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.start):
        walk(root, 0)
    return "\n".join(lines)
