"""Nested-span tracing with context propagation and Chrome export.

A :class:`Tracer` records *spans*: named intervals with a monotonic
start, a duration, free-form attributes, and parent/child nesting.  The
API is the usual context-manager shape::

    tracer = Tracer()
    with tracer.span("ga.run", generations=14) as sp:
        with tracer.span("ga.generation", generation=0) as g:
            ...
            g.set(mean_power=3.2)
    tracer.to_chrome("trace.json")     # load in chrome://tracing / Perfetto
    tracer.to_jsonl("trace.jsonl")     # one span per line, grep-friendly

Distributed traces cross process and connection boundaries through
:class:`SpanContext` — a serializable ``(trace_id, span_id, parent_id)``
triple.  ``span.ctx`` captures a span's context, ``to_header()`` /
``from_header()`` move it through a wire-protocol frame header, and
``tracer.span(name, ctx=remote_ctx, lane="shard-0")`` opens a child of
the *remote* parent in a named process lane.  Worker timings measured in
forked children (raw ``time.perf_counter()``, which forks share on
Linux) are stitched in after the fact with :meth:`Tracer.record_remote`.

Design points:

* **Zero-overhead default.**  Every instrumented function takes
  ``tracer=None`` and falls back to :data:`NULL_TRACER`, whose
  ``span()`` returns a shared inert context manager — no allocation, no
  timing, no collection.  ``tracer.enabled`` gates any attribute
  computation that is not already free (e.g. per-iteration residual
  histories).
* **Thread safety.**  The open-span stack is thread-local (each thread
  nests independently), finished spans go into one lock-protected list,
  and Chrome export tags each thread with its own ``tid``.
* **Process lanes.**  :meth:`Tracer.register_lane` names a Chrome
  ``pid`` lane (gateway / shard-i / worker-NNNN); the exporter emits
  ``process_name``/``thread_name`` metadata events so lanes render
  separately instead of flattening into one process row.
* **Plain data.**  Attributes must be JSON-serializable; exports contain
  explicit ``trace_id``/``span_id``/``parent_id`` fields so either file
  format round-trips the tree exactly (see :func:`load_trace`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObsError

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "load_jsonl",
    "load_chrome",
    "render_tree",
]


@dataclass(frozen=True)
class SpanContext:
    """Serializable identity of a span, for cross-process propagation.

    ``trace_id`` names the whole tree; ``span_id`` this span; and
    ``parent_id`` its parent (``None`` at the root).  The compact dict
    form (:meth:`to_header`) rides inside wire-protocol frame headers.
    """

    trace_id: str
    span_id: int
    parent_id: int | None = None

    def to_header(self) -> dict:
        """Compact JSON-safe dict for a protocol frame header."""
        h = {"t": self.trace_id, "s": self.span_id}
        if self.parent_id is not None:
            h["p"] = self.parent_id
        return h

    @classmethod
    def from_header(cls, header: dict | None) -> "SpanContext | None":
        """Inverse of :meth:`to_header`; ``None`` passes through."""
        if not header:
            return None
        try:
            return cls(
                trace_id=str(header["t"]),
                span_id=int(header["s"]),
                parent_id=(
                    None if header.get("p") is None else int(header["p"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObsError(f"malformed span context header: {header!r}") from exc


@dataclass
class Span:
    """One finished (or in-flight) traced interval.

    ``start`` is seconds on the tracer's monotonic clock (relative to
    tracer creation, so exported timestamps are small and comparable
    within one trace); ``duration`` is filled at exit.
    """

    name: str
    span_id: int
    parent_id: int | None
    tid: int
    start: float
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    trace_id: str = ""
    pid: int = 0

    def set(self, **attrs) -> None:
        """Attach attributes to the span (JSON-serializable values)."""
        self.attrs.update(attrs)

    @property
    def ctx(self) -> SpanContext:
        """This span's propagatable :class:`SpanContext`."""
        return SpanContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __bool__(self) -> bool:  # real spans are truthy, the null span
        return True              # is falsy — ``if sp:`` gates attr work


class _SpanCm:
    """Context manager that opens a :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_ctx", "_lane", "_span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        ctx: SpanContext | None = None,
        lane: str | None = None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._ctx = ctx
        self._lane = lane
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(
            self._name, self._attrs, ctx=self._ctx, lane=self._lane
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", repr(exc))
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects nested spans; export with :meth:`to_jsonl`/:meth:`to_chrome`."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._next_trace = 0
        self._trace_prefix = f"{os.getpid():08x}"
        self._tids: dict[int, int] = {}
        self._lanes: dict[str, int] = {}
        self._by_id: dict[int, Span] = {}
        self._close_hooks: list = []
        self.spans: list[Span] = []  # finished spans, completion order
        self.roots: list[Span] = []

    # ------------------------------------------------------------------ #
    def span(
        self,
        name: str,
        ctx: SpanContext | None = None,
        lane: str | None = None,
        **attrs,
    ) -> _SpanCm:
        """Open a nested span: ``with tracer.span("stage", k=v) as sp:``.

        ``ctx`` makes the new span a child of that (possibly remote)
        parent instead of the thread-local stack top; ``lane`` places it
        in a named process lane (see :meth:`register_lane`).
        """
        return _SpanCm(self, name, attrs, ctx=ctx, lane=lane)

    def register_lane(self, name: str) -> int:
        """Get-or-create the ``pid`` of a named process lane.

        Lane 0 is implicit (the unnamed main process); explicitly
        registered lanes get pids 1, 2, ... and ``process_name``
        metadata events in the Chrome export.
        """
        with self._lock:
            pid = self._lanes.get(name)
            if pid is None:
                pid = len(self._lanes) + 1
                self._lanes[name] = pid
            return pid

    def lane_name(self, pid: int) -> str:
        """Human name of a pid lane (``main`` for 0 / unregistered)."""
        with self._lock:
            for name, p in self._lanes.items():
                if p == pid:
                    return name
        return "main" if pid == 0 else f"lane-{pid}"

    def now(self) -> float:
        """Current time on this tracer's clock (epoch-relative seconds)."""
        return time.perf_counter() - self._epoch

    def rel(self, raw: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to tracer time.

        Forked children share CLOCK_MONOTONIC with the parent on Linux,
        so worker-measured raw timestamps convert exactly.
        """
        return raw - self._epoch

    def add_close_hook(self, hook) -> None:
        """Register ``hook(span)`` to run whenever a span finishes."""
        with self._lock:
            self._close_hooks.append(hook)

    def new_trace_id(self) -> str:
        """Allocate a fresh trace id (used when a root span opens)."""
        with self._lock:
            n = self._next_trace
            self._next_trace += 1
        return f"{self._trace_prefix}-{n:04x}"

    def _stack(self) -> list[Span]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _open(
        self,
        name: str,
        attrs: dict,
        ctx: SpanContext | None = None,
        lane: str | None = None,
    ) -> Span:
        stack = self._stack()
        local_parent = None if ctx is not None else (
            stack[-1] if stack else None
        )
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tid = self._tids.setdefault(
                threading.get_ident(), len(self._tids)
            )
        if ctx is not None:
            trace_id, parent_id = ctx.trace_id, ctx.span_id
        elif local_parent is not None:
            trace_id, parent_id = local_parent.trace_id, local_parent.span_id
        else:
            trace_id, parent_id = self.new_trace_id(), None
        if lane is not None:
            pid = self.register_lane(lane)
        elif local_parent is not None:
            pid = local_parent.pid
        else:
            pid = 0
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            tid=tid,
            start=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
            trace_id=trace_id,
            pid=pid,
        )
        with self._lock:
            self._by_id[span_id] = span
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._stack()
        if not stack or stack[-1] is not span:  # pragma: no cover
            raise ObsError(
                f"span {span.name!r} closed out of order"
            )
        stack.pop()
        with self._lock:
            self.spans.append(span)
            parent = (
                self._by_id.get(span.parent_id)
                if span.parent_id is not None else None
            )
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            hooks = list(self._close_hooks)
        for hook in hooks:
            hook(span)

    def record_remote(
        self,
        name: str,
        ctx: SpanContext,
        start: float,
        duration: float,
        lane: str | None = None,
        **attrs,
    ) -> Span:
        """Record an already-finished span measured in another process.

        ``start`` is tracer-relative seconds (convert raw perf_counter
        readings with :meth:`rel`); the span becomes a child of ``ctx``.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        pid = self.register_lane(lane) if lane is not None else 0
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=ctx.span_id,
            tid=0,
            start=start,
            duration=duration,
            attrs=dict(attrs),
            trace_id=ctx.trace_id,
            pid=pid,
        )
        with self._lock:
            self._by_id[span_id] = span
            self.spans.append(span)
            parent = self._by_id.get(ctx.span_id)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            hooks = list(self._close_hooks)
        for hook in hooks:
            hook(span)
        return span

    # ------------------------------------------------------------------ #
    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name, completion order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every finished span with this name."""
        return sum(s.duration for s in self.find(name))

    def trace_ids(self) -> list[str]:
        """Distinct trace ids among finished spans, first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for s in self.spans:
                seen.setdefault(s.trace_id)
        return list(seen)

    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | Path) -> Path:
        """One JSON object per finished span, start-time order."""
        path = Path(path)
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
        with path.open("w") as fh:
            for s in spans:
                fh.write(json.dumps({
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "trace_id": s.trace_id,
                    "name": s.name,
                    "tid": s.tid,
                    "pid": s.pid,
                    "start": s.start,
                    "dur": s.duration,
                    "attrs": s.attrs,
                }) + "\n")
        return path

    def to_chrome(self, path: str | Path) -> Path:
        """Chrome trace-event JSON (complete ``"X"`` events, microseconds).

        Loadable in ``chrome://tracing`` or Perfetto; ``span_id``,
        ``parent_id``, and ``trace_id`` ride along in ``args`` so
        :func:`load_chrome` can rebuild exact nesting without
        containment heuristics.  Registered lanes additionally emit
        ``process_name``/``thread_name`` metadata events so each lane
        renders as its own process row.
        """
        path = Path(path)
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
            lanes = dict(self._lanes)
        events: list[dict] = []
        if lanes:
            lane_names = {0: "main", **{p: n for n, p in lanes.items()}}
            pid_tids = sorted({(s.pid, s.tid) for s in spans})
            for pid in sorted(lane_names):
                events.append({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": lane_names[pid]},
                })
            for pid, tid in pid_tids:
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid,
                    "args": {"name": "main" if tid == 0 else f"thread-{tid}"},
                })
        events.extend(
            {
                "name": s.name,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": {
                    **s.attrs,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "trace_id": s.trace_id,
                },
            }
            for s in spans
        )
        path.write_text(json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=1,
        ) + "\n")
        return path


class _NullSpan:
    """Inert span: accepts the full :class:`Span` surface, does nothing."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: tuple = ()
    duration = 0.0
    trace_id = ""
    pid = 0
    ctx = None

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: ``span()`` returns one shared inert object."""

    enabled = False
    spans: tuple = ()
    roots: tuple = ()

    def span(self, name: str, ctx=None, lane=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def register_lane(self, name: str) -> int:
        return 0

    def lane_name(self, pid: int) -> str:
        return "main"

    def now(self) -> float:
        return 0.0

    def rel(self, raw: float) -> float:
        return 0.0

    def add_close_hook(self, hook) -> None:
        pass

    def record_remote(self, name, ctx, start, duration, lane=None, **attrs):
        return _NULL_SPAN

    def find(self, name: str) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0

    def trace_ids(self) -> list:
        return []


#: Shared no-op tracer; the default for every ``tracer=`` parameter.
NULL_TRACER = NullTracer()


# --------------------------------------------------------------------- #
# Loading exported traces (the CLI's side of the contract).
# --------------------------------------------------------------------- #
def _link(records: list[dict]) -> list[Span]:
    """Rebuild the span forest from exported flat records."""
    spans: dict[int, Span] = {}
    for r in records:
        spans[int(r["span_id"])] = Span(
            name=str(r["name"]),
            span_id=int(r["span_id"]),
            parent_id=(
                None if r.get("parent_id") is None else int(r["parent_id"])
            ),
            tid=int(r.get("tid", 0)),
            start=float(r["start"]),
            duration=float(r["dur"]),
            attrs=dict(r.get("attrs", {})),
            trace_id=str(r.get("trace_id", "")),
            pid=int(r.get("pid", 0)),
        )
    roots: list[Span] = []
    for s in sorted(spans.values(), key=lambda s: s.start):
        if s.parent_id is not None and s.parent_id in spans:
            spans[s.parent_id].children.append(s)
        else:
            roots.append(s)
    return roots


def load_jsonl(path: str | Path) -> list[Span]:
    """Load a :meth:`Tracer.to_jsonl` export; returns the root spans."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return _link(records)


def load_chrome(path: str | Path) -> list[Span]:
    """Load a :meth:`Tracer.to_chrome` export; returns the root spans."""
    doc = json.loads(Path(path).read_text())
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    records = []
    for e in events:
        if e.get("ph") != "X":  # skip metadata ("M") and other phases
            continue
        args = dict(e.get("args", {}))
        records.append({
            "span_id": args.pop("span_id", len(records)),
            "parent_id": args.pop("parent_id", None),
            "trace_id": args.pop("trace_id", ""),
            "name": e["name"],
            "tid": e.get("tid", 0),
            "pid": e.get("pid", 0),
            "start": float(e["ts"]) / 1e6,
            "dur": float(e.get("dur", 0.0)) / 1e6,
            "attrs": args,
        })
    return _link(records)


def load_trace(path: str | Path) -> list[Span]:
    """Auto-detect the export format (JSONL vs Chrome JSON) and load."""
    p = Path(path)
    if not p.exists():
        raise ObsError(f"no trace file at {p}")
    text = p.read_text()
    first = text.lstrip()[:1]
    if first == "{" and "traceEvents" in text[:2048]:
        return load_chrome(p)
    return load_jsonl(p)


def render_tree(roots: list[Span], max_attrs: int = 4) -> str:
    """Human-readable span tree: one line per span, indented by depth."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = {
            k: v for k, v in span.attrs.items()
            if not isinstance(v, (list, dict))
        }
        shown = list(attrs.items())[:max_attrs]
        suffix = "".join(
            f"  {k}={v:.4g}" if isinstance(v, float) else f"  {k}={v}"
            for k, v in shown
        )
        lines.append(
            f"{'  ' * depth}{span.name:<{max(1, 30 - 2 * depth)}} "
            f"{span.duration * 1e3:9.2f} ms{suffix}"
        )
        for child in sorted(span.children, key=lambda s: s.start):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.start):
        walk(root, 0)
    return "\n".join(lines)
