"""Exact log-bucketed (HDR-style) streaming histograms.

:class:`LogHistogram` records values into geometric buckets whose edges
are a pure function of the constructor parameters — ``edge(k) = lo *
growth**k`` — so two histograms built with the same parameters in
different processes have *identical* bucket boundaries and can be merged
by summing counts.  Counts are exact integers; ``sum``/``min``/``max``
are tracked alongside; and quantiles are derived from the bucket ranks
(the upper edge of the bucket containing the rank), never from
sampling, so p99/p999 are deterministic and merge-stable.

The default parameters (``lo=1e-6``, ``hi=1e3``, ``growth=2**0.25``)
cover 1 microsecond .. 1000 seconds in ~4% relative-error buckets with
at most ~750 distinct bucket indices — but storage is a sparse dict, so
a histogram holding a few distinct latencies costs a few dict entries.

Merge is associative and commutative over bucket counts and the integer
``count`` by construction; the float ``sum`` is associative only up to
IEEE rounding (exact when the observed values are dyadic rationals, as
the property tests exercise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ObsError

__all__ = ["LogHistogram"]

#: Quantiles reported by :meth:`LogHistogram.quantiles`.
STANDARD_QUANTILES = (0.5, 0.9, 0.99, 0.999)


@dataclass
class LogHistogram:
    """Mergeable geometric-bucket histogram with exact counts.

    Bucket ``k`` (k >= 0) covers ``(edge(k-1), edge(k)]`` with
    ``edge(k) = lo * growth**k``; bucket ``-1`` is the underflow bucket
    for values ``<= lo / growth`` (including zero and negatives, which
    a latency recorder should never produce but must not crash on), and
    values above ``hi`` clamp into the top bucket.
    """

    lo: float = 1e-6
    hi: float = 1e3
    growth: float = 2 ** 0.25
    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not (0.0 < self.lo < self.hi):
            raise ObsError(
                f"LogHistogram needs 0 < lo < hi, got lo={self.lo} hi={self.hi}"
            )
        if self.growth <= 1.0:
            raise ObsError(f"LogHistogram growth must be > 1, got {self.growth}")
        self._log_g = math.log(self.growth)
        self._top = self.bucket_index_raw(self.hi)

    # ------------------------------------------------------------------ #
    # Bucket geometry (deterministic, shared by every instance with the
    # same parameters — the merge contract).
    # ------------------------------------------------------------------ #
    def edge(self, k: int) -> float:
        """Upper edge of bucket ``k``."""
        return self.lo * self.growth ** k

    def bucket_index_raw(self, value: float) -> int:
        """Smallest ``k`` with ``value <= edge(k)`` (no clamping).

        Computed via ``log`` then corrected against :meth:`edge` so the
        result is consistent with the exact float edges even when the
        logarithm rounds the wrong way.
        """
        if value <= 0.0:
            return -1
        k = math.ceil(math.log(value / self.lo) / self._log_g)
        while k > 0 and value <= self.edge(k - 1):
            k -= 1
        while value > self.edge(k):
            k += 1
        return k

    def bucket_index(self, value: float) -> int:
        """Bucket for an observation: raw index clamped to [-1, top]."""
        k = self.bucket_index_raw(value)
        if k < 0:
            return -1
        return min(k, self._top)

    # ------------------------------------------------------------------ #
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        k = self.bucket_index(value)
        self.buckets[k] = self.buckets.get(k, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Record an iterable of observations."""
        for v in values:
            self.observe(v)

    # ------------------------------------------------------------------ #
    def compatible(self, other: "LogHistogram") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.growth == other.growth
        )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram in place (exact counts)."""
        if not self.compatible(other):
            raise ObsError(
                "cannot merge histograms with different bucket geometry: "
                f"(lo={self.lo}, hi={self.hi}, growth={self.growth}) vs "
                f"(lo={other.lo}, hi={other.hi}, growth={other.growth})"
            )
        for k, n in other.buckets.items():
            self.buckets[k] = self.buckets.get(k, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "LogHistogram":
        out = LogHistogram(lo=self.lo, hi=self.hi, growth=self.growth)
        out.buckets = dict(self.buckets)
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    # ------------------------------------------------------------------ #
    def quantile(self, q: float) -> float:
        """Upper bucket edge at rank ``ceil(q * count)`` (deterministic).

        Returns ``0.0`` on an empty histogram.  The answer over-reports
        by at most one bucket width (a ``growth - 1`` relative error),
        never under-reports, and is invariant under any merge order.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for k in sorted(self.buckets):
            seen += self.buckets[k]
            if seen >= rank:
                if k < 0:
                    return self.edge(-1)  # underflow: everything <= lo/g
                return self.edge(k)
        return self.edge(max(self.buckets))  # pragma: no cover

    def quantiles(self) -> dict[str, float]:
        """The standard p50/p90/p99/p999 set from bucket ranks."""
        return {
            "p" + str(q)[2:].ljust(2, "0"): self.quantile(q)
            for q in STANDARD_QUANTILES
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Plain-data dump: geometry, sparse buckets, moments, quantiles."""
        return {
            "type": "log_histogram",
            "lo": self.lo,
            "hi": self.hi,
            "growth": self.growth,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): n for k, n in sorted(self.buckets.items())},
            **self.quantiles(),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "LogHistogram":
        """Rebuild a histogram from :meth:`snapshot` output (mergeable)."""
        out = cls(
            lo=float(snap["lo"]),
            hi=float(snap["hi"]),
            growth=float(snap["growth"]),
        )
        out.buckets = {int(k): int(n) for k, n in snap["buckets"].items()}
        out.count = int(snap["count"])
        out.sum = float(snap["sum"])
        out.min = math.inf if snap.get("min") is None else float(snap["min"])
        out.max = -math.inf if snap.get("max") is None else float(snap["max"])
        return out
