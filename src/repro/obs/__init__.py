"""Unified observability for the APOLLO pipeline (``repro.obs``).

The pipeline's own claim — per-cycle power visibility at negligible
overhead — deserves the same treatment applied to itself.  This package
is a dependency-free (stdlib + the repo's error types) observability
layer shared by every subsystem:

* :mod:`repro.obs.trace` — :class:`Tracer` with nested spans (monotonic
  start/duration, attributes, thread-safe collection), a zero-overhead
  :data:`NULL_TRACER` default, serializable :class:`SpanContext` for
  cross-process propagation (with :meth:`Tracer.record_remote` to
  stitch worker-measured timings back in), named process lanes, and
  exporters to JSONL and Chrome ``chrome://tracing`` trace-event JSON;
* :mod:`repro.obs.hist` — :class:`LogHistogram`, exact log-bucketed
  mergeable latency histograms whose quantiles come from bucket ranks,
  never sampling;
* :mod:`repro.obs.metrics` — the Counter/Gauge/Histogram registry
  promoted from ``repro.stream.metrics`` (which remains as a re-export
  shim) so any layer can publish operational metrics;
* :mod:`repro.obs.expo` — OpenMetrics text exposition and its parser,
  backing the gateway's ``GET /metrics`` side port and ``apollo-repro
  obs top``;
* :mod:`repro.obs.flightrec` — :class:`FlightRecorder`, bounded
  per-lane ring buffers dumped atomically to post-mortem JSON on shard
  death, health demotion, or SIGTERM;
* :mod:`repro.obs.provenance` — :class:`RunManifest`, a JSON sidecar
  capturing config hashes, seeds, engine choice, proxy count Q, model
  artifact version, and per-stage wall/CPU time.

Hot paths accept an optional ``tracer=`` (default: no-op): the GA
(:class:`~repro.genbench.ga.BenchmarkEvolver`), the MCP solver
(:func:`~repro.core.solvers.coordinate_descent`), proxy selection and
relaxation (:class:`~repro.core.selection.ProxySelector`,
:func:`~repro.core.model.train_apollo`), the gate-level simulator, the
design-time flow, and the streaming service.  ``apollo-repro trace`` and
``apollo-repro manifest`` render the exported artifacts.
"""

from __future__ import annotations

from repro.obs.expo import parse_openmetrics, render_openmetrics
from repro.obs.flightrec import FlightRecorder, load_postmortem
from repro.obs.hist import LogHistogram
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.provenance import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    load_trace,
    render_tree,
)

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "render_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "default_registry",
    "FlightRecorder",
    "load_postmortem",
    "render_openmetrics",
    "parse_openmetrics",
    "RunManifest",
    "config_hash",
    "MANIFEST_SCHEMA_VERSION",
]
