"""Unified observability for the APOLLO pipeline (``repro.obs``).

The pipeline's own claim — per-cycle power visibility at negligible
overhead — deserves the same treatment applied to itself.  This package
is a dependency-free (stdlib + the repo's error types) observability
layer shared by every subsystem:

* :mod:`repro.obs.trace` — :class:`Tracer` with nested spans (monotonic
  start/duration, attributes, thread-safe collection), a zero-overhead
  :data:`NULL_TRACER` default, and exporters to JSONL and Chrome
  ``chrome://tracing`` trace-event JSON;
* :mod:`repro.obs.metrics` — the Counter/Gauge/Histogram registry
  promoted from ``repro.stream.metrics`` (which remains as a re-export
  shim) so any layer can publish operational metrics;
* :mod:`repro.obs.provenance` — :class:`RunManifest`, a JSON sidecar
  capturing config hashes, seeds, engine choice, proxy count Q, model
  artifact version, and per-stage wall/CPU time.

Hot paths accept an optional ``tracer=`` (default: no-op): the GA
(:class:`~repro.genbench.ga.BenchmarkEvolver`), the MCP solver
(:func:`~repro.core.solvers.coordinate_descent`), proxy selection and
relaxation (:class:`~repro.core.selection.ProxySelector`,
:func:`~repro.core.model.train_apollo`), the gate-level simulator, the
design-time flow, and the streaming service.  ``apollo-repro trace`` and
``apollo-repro manifest`` render the exported artifacts.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.provenance import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    render_tree,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "load_trace",
    "render_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "RunManifest",
    "config_hash",
    "MANIFEST_SCHEMA_VERSION",
]
