"""First-order RC thermal model.

§9 of the paper points at "smarter power and thermal management in future
SoCs" as the capability APOLLO unlocks; this lumped junction-to-ambient RC
model turns per-window power readings into a temperature trace so the
DVFS governor (:mod:`repro.flow.dvfs`) can enforce a thermal cap.

``dT/dt = (P * R_th - (T - T_amb)) / (R_th * C_th)`` discretized exactly
(first-order systems have a closed-form step response).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError

__all__ = ["ThermalModel"]


@dataclass
class ThermalModel:
    """Lumped thermal RC: junction temperature from power.

    Attributes
    ----------
    r_th:
        Junction-to-ambient thermal resistance in K/W.
    c_th:
        Thermal capacitance in J/K.
    t_ambient:
        Ambient temperature in C.
    window_seconds:
        Wall time represented by one power sample.
    """

    r_th: float = 2.0
    c_th: float = 5e-3
    t_ambient: float = 45.0
    window_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if min(self.r_th, self.c_th, self.window_seconds) <= 0:
            raise PowerModelError("thermal constants must be positive")
        tau = self.r_th * self.c_th
        self._decay = float(np.exp(-self.window_seconds / tau))

    @property
    def time_constant(self) -> float:
        return self.r_th * self.c_th

    def simulate(
        self, power_w: np.ndarray, t_start: float | None = None
    ) -> np.ndarray:
        """Temperature trace (C) for per-window power samples (watts)."""
        p = np.asarray(power_w, dtype=np.float64)
        if p.ndim != 1:
            raise PowerModelError("power trace must be 1-D")
        t = self.t_ambient if t_start is None else t_start
        a = self._decay
        out = np.empty(p.size)
        for k in range(p.size):
            steady = self.t_ambient + p[k] * self.r_th
            t = steady + (t - steady) * a
            out[k] = t
        return out

    def steady_state(self, power_w: float) -> float:
        return self.t_ambient + power_w * self.r_th
