"""Power analysis substrate: the reproduction's "PowerPro".

Ground-truth per-cycle power labels are computed as
``0.5 * V^2 * sum(C of toggling nets)`` (Eq. 2 of the paper) with
back-annotated synthetic capacitances, plus clock-tree, short-circuit,
glitch, and leakage components.  A lumped RLC power-delivery-network model
supports the Ldi/dt voltage-droop experiments (Fig. 17).
"""

from repro.power.liberty import TechParams, DEFAULT_TECH
from repro.power.analyzer import (
    PowerAnalyzer,
    PowerReport,
    annotate_capacitance,
)
from repro.power.pdn import PdnModel, PdnState, delta_current, droop_events

__all__ = [
    "TechParams",
    "DEFAULT_TECH",
    "PowerAnalyzer",
    "PowerReport",
    "annotate_capacitance",
    "PdnModel",
    "PdnState",
    "delta_current",
    "droop_events",
]
