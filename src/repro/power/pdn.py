"""Lumped power-delivery-network (PDN) model and Ldi/dt droop analysis.

Supports the paper's §8.2: per-cycle current transients (``delta I``) are
the precursors of voltage droops, and an accurate per-cycle OPM can predict
them.  The PDN is the classic series R-L + on-die decap C second-order
system; simulated with a per-cycle forward-Euler discretization (stable for
the default constants, asserted at construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError

__all__ = ["PdnModel", "PdnState", "delta_current", "droop_events"]


def delta_current(power: np.ndarray, vdd: float = 0.75) -> np.ndarray:
    """Per-cycle current change ``delta I[i] = I[i] - I[i-1]``.

    ``power`` is a per-cycle power series (mW); current is ``P / Vdd`` in
    mA.  The first element is 0 by convention (no predecessor).
    """
    current = np.asarray(power, dtype=np.float64) / vdd
    out = np.zeros_like(current)
    out[1:] = np.diff(current)
    return out


@dataclass
class PdnState:
    """Continuation state of an incremental PDN simulation.

    Holds the two state variables of the RLC system — regulator-side
    inductor current and on-die decap voltage — so long simulations can
    be advanced chunk by chunk with results bit-identical to one
    whole-trace :meth:`PdnModel.simulate` call.
    """

    i_l: float
    v_c: float


@dataclass
class PdnModel:
    """Series R-L from the regulator plus on-die decap C.

    State equations (per cycle ``dt = 1 / f``)::

        dI_L/dt = (V_reg - V - R * I_L) / L
        dV/dt   = (I_L - I_load) / C

    Attributes use deliberately round numbers; what matters for the
    experiments is a resonant response in the ~10-cycle range, matching the
    paper's claim that Ldi/dt droops develop in <10 cycles.
    """

    vdd: float = 0.75
    r_ohm: float = 2.0e-3
    l_henry: float = 1.2e-11
    c_farad: float = 6.0e-8
    freq_ghz: float = 3.0

    def __post_init__(self) -> None:
        if min(self.r_ohm, self.l_henry, self.c_farad) <= 0:
            raise PowerModelError("PDN R, L, C must be positive")
        if self.freq_ghz <= 0:
            raise PowerModelError("frequency must be positive")
        # Exact (matrix-exponential) discretization of the linear system
        # d/dt [i_L, v_C] = A [i_L, v_C] + B [V_reg, i_load]; stable for
        # any dt, unlike forward Euler on this lightly-damped tank.
        from scipy.linalg import expm

        a = np.array(
            [
                [-self.r_ohm / self.l_henry, -1.0 / self.l_henry],
                [1.0 / self.c_farad, 0.0],
            ]
        )
        b = np.array(
            [[1.0 / self.l_henry, 0.0], [0.0, -1.0 / self.c_farad]]
        )
        ad = expm(a * self.dt)
        # Bd = A^-1 (Ad - I) B (A is invertible: det = 1/(L C) > 0).
        bd = np.linalg.solve(a, (ad - np.eye(2)) @ b)
        self._ad = ad
        self._bd = bd

    @property
    def dt(self) -> float:
        return 1e-9 / self.freq_ghz

    @property
    def resonant_cycles(self) -> float:
        """Resonant period of the LC tank, in clock cycles."""
        period = 2 * np.pi * np.sqrt(self.l_henry * self.c_farad)
        return period / self.dt

    def equilibrium_state(self, power_mw: float = 0.0) -> PdnState:
        """DC operating point for a constant load (start of a stream)."""
        il = float(power_mw) * 1e-3 / self.vdd
        return PdnState(i_l=il, v_c=self.vdd - self.r_ohm * il)

    def step_chunk(
        self, power_mw: np.ndarray, state: PdnState
    ) -> tuple[np.ndarray, PdnState]:
        """Advance the PDN over one power chunk from ``state``.

        Returns the voltage waveform for the chunk and the continuation
        state; splitting a trace into chunks and chaining states is
        bit-identical to :meth:`simulate` on the whole trace.
        """
        power = np.asarray(power_mw, dtype=np.float64)
        if power.ndim != 1:
            raise PowerModelError("power trace must be 1-D")
        i_load = power * 1e-3 / self.vdd  # amps
        n = i_load.size
        v = np.empty(n, dtype=np.float64)
        ad, bd = self._ad, self._bd
        x0, x1 = state.i_l, state.v_c
        a00, a01, a10, a11 = ad[0, 0], ad[0, 1], ad[1, 0], ad[1, 1]
        b00, b01, b10, b11 = bd[0, 0], bd[0, 1], bd[1, 0], bd[1, 1]
        vreg = self.vdd
        for k in range(n):
            u1 = i_load[k]
            nx0 = a00 * x0 + a01 * x1 + b00 * vreg + b01 * u1
            nx1 = a10 * x0 + a11 * x1 + b10 * vreg + b11 * u1
            x0, x1 = nx0, nx1
            v[k] = x1
        return v, PdnState(i_l=float(x0), v_c=float(x1))

    def simulate(self, power_mw: np.ndarray) -> np.ndarray:
        """Supply-voltage waveform (volts) for a per-cycle power trace."""
        power = np.asarray(power_mw, dtype=np.float64)
        if power.ndim != 1:
            raise PowerModelError("power trace must be 1-D")
        # Start at equilibrium for the first cycle's load.
        state = self.equilibrium_state(float(power[0]) if power.size else 0.0)
        v, _state = self.step_chunk(power, state)
        return v

    def droop_magnitude(self, power_mw: np.ndarray) -> float:
        """Worst-case droop below nominal, in mV."""
        v = self.simulate(power_mw)
        return float((self.vdd - v.min()) * 1e3)


def droop_events(
    voltage: np.ndarray, vdd: float = 0.75, threshold_mv: float = 30.0
) -> np.ndarray:
    """Indices of cycles where the supply dips more than ``threshold_mv``."""
    v = np.asarray(voltage, dtype=np.float64)
    return np.nonzero((vdd - v) * 1e3 > threshold_mv)[0]
