"""Synthetic technology parameters ("liberty" data) for power analysis.

Stands in for the paper's commercial 7nm library + extracted parasitics.
Values are chosen so component shares look like a modern CPU: the clock
network is the single largest dynamic consumer, sequential cells outweigh
combinational per instance, and leakage is a small constant background.
Only relative magnitudes matter for every reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechParams", "DEFAULT_TECH"]


@dataclass(frozen=True)
class TechParams:
    """Technology/corner parameters used for power annotation.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    freq_ghz:
        Nominal clock frequency in GHz (converts per-cycle energy to power).
    wire_cap_per_fanout:
        Wire capacitance added to a net per sink, in fF.
    wire_cap_base:
        Fixed wire capacitance per net, in fF.
    clk_pin_cap:
        Clock-pin capacitance of one flip-flop, in fF.
    clk_tree_factor:
        Multiplier on total clock-pin cap to account for the clock tree's
        own buffers and wiring.
    glitch_alpha:
        Maximum extra effective-toggle fraction for the deepest
        combinational nets (glitches grow with logic depth).
    short_circuit_frac:
        Short-circuit power as a fraction of dynamic power.
    leakage_scale:
        Multiplier on library leakage (models temperature corner).
    """

    vdd: float = 0.75
    freq_ghz: float = 3.0
    wire_cap_per_fanout: float = 0.35
    wire_cap_base: float = 0.25
    clk_pin_cap: float = 1.1
    clk_tree_factor: float = 1.6
    glitch_alpha: float = 0.25
    short_circuit_frac: float = 0.08
    leakage_scale: float = 1.0

    @property
    def edge_energy_scale(self) -> float:
        """0.5 * Vdd^2 in volts^2 — energy per fF per toggle, in fJ."""
        return 0.5 * self.vdd * self.vdd

    def energy_to_power(self, energy_fj_per_cycle: float) -> float:
        """Convert per-cycle energy (fJ) to average power in mW."""
        # fJ/cycle * cycles/s = fJ/s = 1e-15 W; at GHz: fJ * 1e9 / 1e-15 ...
        # 1 fJ/cycle at 1 GHz = 1e-15 J * 1e9 /s = 1e-6 W = 1e-3 mW.
        return energy_fj_per_cycle * self.freq_ghz * 1e-3


DEFAULT_TECH = TechParams()
