"""Ground-truth power analysis (the reproduction's signoff flow).

Implements Eq. (2) of the paper: per-cycle dynamic power is the sum of
``0.5 * V^2 * C`` over toggling nets, with capacitances back-annotated from
the synthetic library plus a fanout-based wire-load model.  On top of the
pure switching term the analyzer adds the components a commercial flow
reports and a linear proxy model cannot represent exactly:

* **clock-tree power** — each domain's CLK net carries the aggregate
  clock-pin capacitance of its registers (times a tree factor) and toggles
  twice per enabled cycle;
* **glitch power** — deep combinational nets toggle more than once per
  functional transition; modeled as a depth-proportional multiplier;
* **short-circuit power** — a fixed fraction of dynamic power;
* **leakage** — a constant background term (reported separately, and by
  default *excluded* from training labels, matching §4 of the paper).

The per-net energy weights are exposed as vectors so the simulator can
compute per-cycle power as a running dot product without materializing a
full toggle trace (essential for multi-hundred-thousand-cycle runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.rtl.cells import CELL_LIBRARY, EVAL_OPS, Op
from repro.rtl.levelize import levelize
from repro.rtl.netlist import Netlist
from repro.rtl.trace import ToggleTrace
from repro.power.liberty import DEFAULT_TECH, TechParams

__all__ = ["annotate_capacitance", "PowerAnalyzer", "PowerReport"]


def annotate_capacitance(
    netlist: Netlist, tech: TechParams = DEFAULT_TECH
) -> np.ndarray:
    """Back-annotate per-net switched capacitance in fF.

    ``cap[i] = cell_out_cap + wire_base + per_fanout_wire * fanout
    + sum(sink input-pin caps)``; CLK nets additionally carry the clock-pin
    capacitance of every register in their domain times the tree factor.
    """
    n = netlist.n_nets
    ops = netlist.ops_array()
    cap = np.zeros(n, dtype=np.float64)
    for i in range(n):
        cap[i] = CELL_LIBRARY[Op(ops[i])].out_cap
    cap += tech.wire_cap_base

    fanin = netlist.fanin_array() if n else np.zeros((0, 3), np.int32)
    # Sink pin caps: each cell's in_cap loads each of its fanin nets.
    in_caps = np.array(
        [CELL_LIBRARY[Op(op)].in_cap for op in ops], dtype=np.float64
    )
    for col in range(3):
        src = fanin[:, col]
        valid = src >= 0
        if valid.any():
            np.add.at(cap, src[valid], in_caps[valid])
    cap += tech.wire_cap_per_fanout * netlist.fanout_counts()

    # Clock nets: aggregate clock-pin load of the domain's registers.
    domains = netlist.reg_domain_array()
    for dom in netlist.domains:
        n_regs = int(np.count_nonzero((domains >= 0) & (domains == dom.index)))
        cap[dom.clk_net] += tech.clk_pin_cap * n_regs * tech.clk_tree_factor
    return cap


@dataclass
class PowerReport:
    """Per-cycle power decomposition, all series in mW.

    ``total`` excludes leakage (switching power, the paper's modeling
    target); ``total_with_leakage`` adds the constant leakage term.
    """

    combinational: np.ndarray
    sequential: np.ndarray
    clock: np.ndarray
    glitch: np.ndarray
    short_circuit: np.ndarray
    leakage_mw: float
    by_unit: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total(self) -> np.ndarray:
        return (
            self.combinational
            + self.sequential
            + self.clock
            + self.glitch
            + self.short_circuit
        )

    @property
    def total_with_leakage(self) -> np.ndarray:
        return self.total + self.leakage_mw

    def component_means(self) -> dict[str, float]:
        return {
            "combinational": float(self.combinational.mean()),
            "sequential": float(self.sequential.mean()),
            "clock": float(self.clock.mean()),
            "glitch": float(self.glitch.mean()),
            "short_circuit": float(self.short_circuit.mean()),
            "leakage": self.leakage_mw,
        }


class PowerAnalyzer:
    """Precomputed per-net energy weights for one netlist.

    The central artifact is :meth:`label_weights`: a float32 vector ``w``
    such that ``w . toggles[i]`` is the ground-truth switching power of
    cycle ``i`` in mW — directly usable as a simulator accumulator.
    """

    def __init__(
        self, netlist: Netlist, tech: TechParams = DEFAULT_TECH
    ) -> None:
        self.netlist = netlist
        self.tech = tech
        self.cap = annotate_capacitance(netlist, tech)
        sched = levelize(netlist)
        self._levels = sched.levels
        self._max_level = max(sched.max_level, 1)
        ops = netlist.ops_array()
        self._is_comb = np.isin(ops, [int(o) for o in EVAL_OPS])
        self._is_reg = ops == int(Op.REG)
        self._is_clk = ops == int(Op.CLK)
        self._is_input = ops == int(Op.INPUT)
        self._build_weights()

    # ------------------------------------------------------------------ #
    def _build_weights(self) -> None:
        tech = self.tech
        scale = tech.edge_energy_scale  # fJ per fF per toggle
        power_per_fj = tech.freq_ghz * 1e-3  # fJ/cycle -> mW
        base = self.cap * scale * power_per_fj

        self.w_comb = np.where(self._is_comb | self._is_input, base, 0.0)
        self.w_seq = np.where(self._is_reg, base, 0.0)
        # Clock nets toggle on both edges -> factor 2.
        self.w_clock = np.where(self._is_clk, 2.0 * base, 0.0)
        # Glitch: depth-proportional extra switching on combinational nets.
        depth_frac = self._levels / self._max_level
        self.w_glitch = np.where(
            self._is_comb, base * tech.glitch_alpha * depth_frac, 0.0
        )
        self.w_short = tech.short_circuit_frac * (
            self.w_comb + self.w_seq + self.w_clock
        )
        self.w_total = (
            self.w_comb + self.w_seq + self.w_clock
            + self.w_glitch + self.w_short
        )
        # Accumulator-ready form, shared by every caller: the simulator
        # feeds this straight into per-cycle GEMVs, so keep one contiguous
        # float32 copy instead of re-converting per call (read-only, since
        # all callers now alias it).
        self._label_w32 = np.ascontiguousarray(
            self.w_total, dtype=np.float32
        )
        self._label_w32.setflags(write=False)

    def label_weights(self) -> np.ndarray:
        """float32 weights: ``w . toggles`` = switching power in mW."""
        return self._label_w32

    def component_weights(self) -> dict[str, np.ndarray]:
        """Per-component weight vectors (float32), same convention."""
        return {
            "combinational": self.w_comb.astype(np.float32),
            "sequential": self.w_seq.astype(np.float32),
            "clock": self.w_clock.astype(np.float32),
            "glitch": self.w_glitch.astype(np.float32),
            "short_circuit": self.w_short.astype(np.float32),
        }

    def unit_weights(self) -> dict[str, np.ndarray]:
        """Total-weight vectors masked per functional unit."""
        units = self.netlist.units_array()
        out: dict[str, np.ndarray] = {}
        for unit in self.netlist.unit_names():
            mask = units == unit
            out[unit] = np.where(mask, self.w_total, 0.0).astype(np.float32)
        return out

    def leakage_mw(self) -> float:
        """Constant leakage power in mW."""
        ops = self.netlist.ops_array()
        leak_nw = sum(CELL_LIBRARY[Op(op)].leakage for op in ops)
        return float(leak_nw * self.tech.leakage_scale * 1e-6)

    # ------------------------------------------------------------------ #
    def power_from_trace(
        self, trace: ToggleTrace, batch: int = 0
    ) -> np.ndarray:
        """Per-cycle switching power (mW) from a recorded trace."""
        dense = trace.dense()[batch].astype(np.float64)
        return dense @ self.w_total

    def report(
        self,
        trace: ToggleTrace,
        batch: int = 0,
        with_units: bool = False,
    ) -> PowerReport:
        """Full power decomposition of a recorded trace."""
        if batch >= trace.batch:
            raise PowerModelError(
                f"batch {batch} out of range (trace batch {trace.batch})"
            )
        dense = trace.dense()[batch].astype(np.float64)
        by_unit: dict[str, np.ndarray] = {}
        if with_units:
            for unit, w in self.unit_weights().items():
                by_unit[unit] = dense @ w.astype(np.float64)
        return PowerReport(
            combinational=dense @ self.w_comb,
            sequential=dense @ self.w_seq,
            clock=dense @ self.w_clock,
            glitch=dense @ self.w_glitch,
            short_circuit=dense @ self.w_short,
            leakage_mw=self.leakage_mw(),
            by_unit=by_unit,
        )
