"""Deterministic admission control and load shedding for the gateway.

Under sustained overload the gateway must *choose* what to drop, not
let queues grow until the drop-oldest rings pick for it.  This module
makes that choice explicit, deterministic, and observable:

* **Token buckets per client** — every ``(client, priority)`` pair gets
  a bucket refilled in *gateway ticks*, the serving layer's logical
  clock.  No wall time enters the math, so a seeded overload run sheds
  exactly the same requests every time — which is what lets the chaos
  gate and the overload bench assert shedding determinism.
* **Watermarks** — fleet-wide live-session caps, per-session pending
  (queue-depth) caps, and an optional p99 pump-latency watermark shed
  work *before* it is queued, keeping latency for admitted sessions
  bounded.
* **Priority classes** — ``"critical"`` sessions (the gateway assigns
  this to sessions with droop alerts or budget watchers attached, i.e.
  the ones whose whole purpose is catching power emergencies) get
  ``critical_headroom``× the best-effort thresholds and are exempt
  from the latency watermark, so they are shed last.

Every shed raises :class:`~repro.errors.AdmissionError` carrying a
machine-readable reason, increments ``serve.admission.shed`` plus a
per-reason counter, and lands the observed queue depth in the
``serve.admission.queue_depth`` histogram — all on the gateway's
existing metrics registry, hence the existing metrics port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError, ServeError
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "PRIORITY_CRITICAL",
    "PRIORITY_BEST_EFFORT",
]

PRIORITY_CRITICAL = "critical"
PRIORITY_BEST_EFFORT = "besteffort"

_PRIORITIES = (PRIORITY_CRITICAL, PRIORITY_BEST_EFFORT)


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission thresholds (all logical — ticks and blocks, not seconds).

    Parameters
    ----------
    open_rate, open_burst:
        Token bucket for session opens per client: ``open_rate`` tokens
        refill per gateway tick up to ``open_burst``.  Each open costs
        one token.
    push_rate, push_burst:
        Same shape for data pushes per client.
    max_live_sessions:
        Fleet-wide cap on concurrently live sessions; opens beyond it
        are shed with reason ``"live_sessions"``.  ``None`` disables.
    max_pending_blocks:
        Per-session pending-block watermark: a push that would leave
        more than this many blocks queued (push buffer + stream queue)
        is shed with reason ``"queue_depth"``.  ``None`` disables.
    latency_watermark_s:
        When the gateway's p99 pump latency exceeds this, best-effort
        pushes are shed with reason ``"latency"`` until it recovers.
        Critical sessions are exempt.  ``None`` disables.
    critical_headroom:
        Multiplier applied to every threshold for critical sessions
        (rates, bursts, watermarks), so critical work is shed last.
    """

    open_rate: float = 4.0
    open_burst: int = 8
    push_rate: float = 64.0
    push_burst: int = 128
    max_live_sessions: int | None = None
    max_pending_blocks: int | None = None
    latency_watermark_s: float | None = None
    critical_headroom: float = 2.0

    def __post_init__(self) -> None:
        if self.open_rate <= 0 or self.push_rate <= 0:
            raise ServeError("admission rates must be > 0")
        if self.open_burst < 1 or self.push_burst < 1:
            raise ServeError("admission bursts must be >= 1")
        if self.critical_headroom < 1.0:
            raise ServeError("critical_headroom must be >= 1.0")
        for cap in (self.max_live_sessions, self.max_pending_blocks):
            if cap is not None and cap < 1:
                raise ServeError("admission watermarks must be >= 1")


class AdmissionController:
    """Stateful shedding decisions on top of an :class:`AdmissionConfig`.

    The controller is advanced by the gateway's tick counter — pass the
    current tick into every ``admit_*`` call.  All state is per-client
    token buckets plus counters; there is no wall-clock anywhere.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics if metrics is not None else default_registry()
        # (kind, client, priority) -> [tokens, last_refill_tick]; the
        # priority is part of the key so a client's best-effort burst
        # can never drain the headroom its critical sessions rely on.
        self._buckets: dict[tuple[str, str, str], list[float]] = {}

    # -------------------------------------------------------------- #
    def _headroom(self, priority: str) -> float:
        if priority not in _PRIORITIES:
            raise ServeError(
                f"unknown admission priority {priority!r} "
                f"(expected one of {_PRIORITIES})"
            )
        return (
            self.config.critical_headroom
            if priority == PRIORITY_CRITICAL
            else 1.0
        )

    def _take_token(
        self, kind: str, client: str, priority: str, tick: int,
        rate: float, burst: float,
    ) -> bool:
        head = self._headroom(priority)
        rate, burst = rate * head, burst * head
        bucket = self._buckets.setdefault(
            (kind, client, priority), [float(burst), int(tick)]
        )
        elapsed = max(0, int(tick) - int(bucket[1]))
        bucket[0] = min(burst, bucket[0] + rate * elapsed)
        bucket[1] = int(tick)
        if bucket[0] >= 1.0:
            bucket[0] -= 1.0
            return True
        return False

    def _shed(
        self, reason: str, priority: str, detail: str,
    ) -> AdmissionError:
        self.metrics.counter("serve.admission.shed").inc()
        self.metrics.counter(f"serve.admission.shed.{reason}").inc()
        self.metrics.counter(f"serve.admission.shed.{priority}").inc()
        return AdmissionError(f"admission shed ({reason}): {detail}",
                              reason=reason)

    # -------------------------------------------------------------- #
    def admit_open(
        self,
        client: str,
        priority: str,
        tick: int,
        live_sessions: int,
    ) -> None:
        """Admit or shed a session open (raises :class:`AdmissionError`)."""
        cfg = self.config
        head = self._headroom(priority)
        if (
            cfg.max_live_sessions is not None
            and live_sessions >= cfg.max_live_sessions * head
        ):
            raise self._shed(
                "live_sessions", priority,
                f"{live_sessions} live sessions >= cap "
                f"{cfg.max_live_sessions * head:.0f} for {priority}",
            )
        if not self._take_token(
            "open", client, priority, tick, cfg.open_rate, cfg.open_burst,
        ):
            raise self._shed(
                "open_rate", priority,
                f"client {client!r} exceeded open rate "
                f"{cfg.open_rate * head:g}/tick",
            )
        self.metrics.counter("serve.admission.admitted.open").inc()

    def admit_push(
        self,
        client: str,
        priority: str,
        tick: int,
        pending_blocks: int,
        latency_p99_s: float | None = None,
    ) -> None:
        """Admit or shed one data push (raises :class:`AdmissionError`)."""
        cfg = self.config
        head = self._headroom(priority)
        self.metrics.hist(
            "serve.admission.queue_depth", lo=1.0, hi=2.0 ** 20,
        ).observe(max(1, pending_blocks))
        if (
            cfg.max_pending_blocks is not None
            and pending_blocks >= cfg.max_pending_blocks * head
        ):
            raise self._shed(
                "queue_depth", priority,
                f"{pending_blocks} pending blocks >= watermark "
                f"{cfg.max_pending_blocks * head:.0f} for {priority}",
            )
        if (
            cfg.latency_watermark_s is not None
            and priority != PRIORITY_CRITICAL
            and latency_p99_s is not None
            and latency_p99_s > cfg.latency_watermark_s
        ):
            raise self._shed(
                "latency", priority,
                f"p99 pump latency {latency_p99_s:.6f}s over watermark "
                f"{cfg.latency_watermark_s:.6f}s",
            )
        if not self._take_token(
            "push", client, priority, tick, cfg.push_rate, cfg.push_burst,
        ):
            raise self._shed(
                "push_rate", priority,
                f"client {client!r} exceeded push rate "
                f"{cfg.push_rate * head:g}/tick",
            )
        self.metrics.counter("serve.admission.admitted.push").inc()

    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """JSON-ready view of bucket state (for gateway snapshots)."""
        return {
            "config": {
                "open_rate": self.config.open_rate,
                "open_burst": self.config.open_burst,
                "push_rate": self.config.push_rate,
                "push_burst": self.config.push_burst,
                "max_live_sessions": self.config.max_live_sessions,
                "max_pending_blocks": self.config.max_pending_blocks,
                "latency_watermark_s": self.config.latency_watermark_s,
                "critical_headroom": self.config.critical_headroom,
            },
            "buckets": {
                f"{kind}:{client}:{priority}": round(tokens, 6)
                for (kind, client, priority), (tokens, _) in sorted(
                    self._buckets.items()
                )
            },
        }
