"""Deterministic seeded load generator for the serve gateway.

Drives a :class:`~repro.serve.gateway.Gateway` through its
:class:`~repro.serve.gateway.InprocClient` with a *fully seeded* plan:
the same :class:`LoadGenConfig` always produces the same session mix,
the same toggle chunks, and therefore (bit-identical inference) the
same readings — which is what makes gateway benchmarks comparable
across runs and lets tests assert seed-stability.

Two driving disciplines:

* **closed-loop** (default): each step pushes one chunk per live
  session *then* ticks the gateway once — producer and consumer in
  lockstep, no backpressure, the latency-measurement regime;
* **open-loop**: every chunk is pushed up front, then the gateway
  drains — the burst regime, where push-buffer backpressure (drop
  oldest, accounted) is allowed to engage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeError
from repro.serve.gateway import Gateway, InprocClient

__all__ = ["LoadGenConfig", "SessionPlan", "LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadGenConfig:
    """Seeded description of one load run (the whole plan derives
    from these fields — no hidden randomness)."""

    n_sessions: int = 8
    cycles: int = 256
    chunk_cycles: int = 32
    seed: int = 0
    mode: str = "closed"  # "closed" | "open"
    density: float = 0.3  # P(toggle bit set)
    n_cores: int = 4  # session i runs on core f"c{i % n_cores}"

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ServeError("loadgen needs at least one session")
        if self.cycles < 1 or self.chunk_cycles < 1:
            raise ServeError("cycles and chunk_cycles must be >= 1")
        if self.mode not in ("closed", "open"):
            raise ServeError(
                f"loadgen mode must be 'closed' or 'open', got "
                f"{self.mode!r}"
            )
        if not 0.0 <= self.density <= 1.0:
            raise ServeError("density must be in [0, 1]")
        if self.n_cores < 1:
            raise ServeError("n_cores must be >= 1")


@dataclass(frozen=True)
class SessionPlan:
    """One session's deterministic workload."""

    core_id: str
    version: str | None
    chunks: tuple  # tuple of (chunk_cycles, q) uint8 arrays

    @property
    def stimulus(self) -> np.ndarray:
        """The whole-trace view (for offline cross-checks)."""
        return np.concatenate(self.chunks, axis=0)


def plan(config: LoadGenConfig, q: int,
         versions: list[str | None] | None = None) -> list[SessionPlan]:
    """Expand a config into per-session toggle chunks (seeded).

    ``versions[i]`` pins session ``i`` to a model version (``None`` =
    the gateway's active version at open time); the list wraps if
    shorter than ``n_sessions``.
    """
    rng = np.random.default_rng(config.seed)
    plans = []
    for i in range(config.n_sessions):
        chunks = []
        remaining = config.cycles
        while remaining > 0:
            n = min(config.chunk_cycles, remaining)
            chunks.append(
                (rng.random((n, q)) < config.density).astype(np.uint8)
            )
            remaining -= n
        version = None
        if versions:
            version = versions[i % len(versions)]
        plans.append(SessionPlan(
            core_id=f"c{i % config.n_cores}",
            version=version,
            chunks=tuple(chunks),
        ))
    return plans


@dataclass
class LoadReport:
    """What one load run produced and how fast."""

    config: LoadGenConfig
    n_sessions: int
    cycles_total: int
    windows_total: int
    elapsed_s: float
    tick_p50_s: float
    tick_p99_s: float
    dropped_blocks: int
    readings: dict = field(repr=False, default_factory=dict)

    @property
    def sessions_per_sec(self) -> float:
        return self.n_sessions / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles_total / self.elapsed_s if self.elapsed_s else 0.0

    def to_dict(self) -> dict:
        return {
            "n_sessions": self.n_sessions,
            "cycles_total": self.cycles_total,
            "windows_total": self.windows_total,
            "elapsed_s": self.elapsed_s,
            "sessions_per_sec": self.sessions_per_sec,
            "cycles_per_sec": self.cycles_per_sec,
            "tick_p50_s": self.tick_p50_s,
            "tick_p99_s": self.tick_p99_s,
            "dropped_blocks": self.dropped_blocks,
            "mode": self.config.mode,
            "seed": self.config.seed,
        }


def _percentile(values: list[float], p: float) -> float:
    if not values:
        return 0.0
    arr = np.sort(np.asarray(values, dtype=np.float64))
    return float(arr[min(len(arr) - 1, int(p * len(arr)))])


def run_load(
    gateway: Gateway,
    config: LoadGenConfig,
    versions: list[str | None] | None = None,
    max_ticks: int = 1_000_000,
) -> LoadReport:
    """Run one seeded load against ``gateway``; returns the report.

    Readings for every session are collected through the in-process
    client (so the framed protocol is on the path), keyed by session
    name in ``report.readings`` — seed-stable end to end.
    """
    q = gateway.registry.get(gateway.registry.resolve(None)).q
    plans = plan(config, q, versions=versions)
    client = InprocClient(gateway)
    t0 = time.perf_counter()
    names = [
        client.open(p.core_id, version=p.version) for p in plans
    ]
    readings: dict[str, list[np.ndarray]] = {n: [] for n in names}
    tick_latencies: list[float] = []

    def tick_once() -> bool:
        t = time.perf_counter()
        # The client drives the tick under its own lane; the gateway's
        # whole span tree (shards, pooled GEMV) parents under this via
        # the propagated SpanContext — one tick, one connected trace.
        with gateway.tracer.span("client.tick", lane="client") as sp:
            alive = client.tick(ctx=sp.ctx)
        tick_latencies.append(time.perf_counter() - t)
        for n in names:
            w = client.windows(n)
            if w.size:
                readings[n].append(w)
        return alive

    if config.mode == "open":
        for name, p in zip(names, plans):
            for k, chunk in enumerate(p.chunks):
                client.push(name, chunk, last=k == len(p.chunks) - 1)
    else:
        cursors = [0] * len(plans)
        while any(c < len(p.chunks) for c, p in zip(cursors, plans)):
            for i, (name, p) in enumerate(zip(names, plans)):
                if cursors[i] < len(p.chunks):
                    client.push(
                        name,
                        p.chunks[cursors[i]],
                        last=cursors[i] == len(p.chunks) - 1,
                    )
                    cursors[i] += 1
            tick_once()

    for _ in range(max_ticks):
        if not tick_once():
            break
    else:
        raise ServeError(
            f"load run did not drain within {max_ticks} ticks"
        )
    elapsed = time.perf_counter() - t0

    merged = {
        n: (
            np.concatenate(chunks)
            if chunks else np.empty(0, dtype=np.float64)
        )
        for n, chunks in readings.items()
    }
    records = [gateway.handles[n].record() for n in names]
    return LoadReport(
        config=config,
        n_sessions=len(names),
        cycles_total=sum(r["cycles"] for r in records),
        windows_total=sum(r["windows"] for r in records),
        elapsed_s=elapsed,
        tick_p50_s=_percentile(tick_latencies, 0.50),
        tick_p99_s=_percentile(tick_latencies, 0.99),
        dropped_blocks=sum(r["dropped_blocks"] for r in records),
        readings=merged,
    )
