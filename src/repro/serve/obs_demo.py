"""Self-checking fleet observability demo (the ``make obs-demo`` target).

Drives a small traced gateway load and then proves the observability
contract on the artifacts it produced:

1. **Connected traces** — every client tick's trace id names exactly one
   tree: each span with that id walks its parent chain to the single
   ``client.tick`` root, so cross-process propagation never orphans a
   span;
2. **Non-empty exact histograms** — the tick/pump latency
   :class:`~repro.obs.hist.LogHistogram` s saw every observation
   (count == ticks driven) and their quantiles are monotone
   (p50 <= p90 <= p99 <= p999);
3. **Exposition round-trip** — the OpenMetrics text rendered from the
   live registry parses back, and the parsed ``_count`` samples equal
   the histograms' exact counts.

Runs in well under a second; ``make test`` includes it so the
observability layer cannot silently regress.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.expo import parse_openmetrics, render_openmetrics
from repro.obs.hist import STANDARD_QUANTILES
from repro.obs.trace import Tracer
from repro.serve.demo import _make_model
from repro.serve.gateway import Gateway
from repro.serve.loadgen import LoadGenConfig, run_load
from repro.serve.registry import ModelRegistry

__all__ = ["run_demo", "main"]


def run_demo(out_dir: str | Path | None = None, seed: int = 11) -> dict:
    """Run the traced load and self-check; returns a summary dict."""
    registry = ModelRegistry()
    registry.publish("v1", _make_model(seed), activate=True)

    tracer = Tracer()
    gateway = Gateway(registry, n_shards=2, t=8, tracer=tracer)
    config = LoadGenConfig(
        n_sessions=4, cycles=96, chunk_cycles=16, seed=seed,
    )
    run_load(gateway, config)

    n_trees = _check_connected_traces(tracer)
    _check_histograms(gateway)
    exposition = _check_exposition_roundtrip(gateway)

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        tracer.to_chrome(out / "trace.json")
        (out / "metrics.txt").write_text(exposition)

    return {
        "ticks": gateway.ticks,
        "trace_trees": n_trees,
        "spans": len(tracer.spans),
        "tick_p99_s": gateway.pump_latency_p99(),
        "exposition_lines": len(exposition.splitlines()),
    }


def _check_connected_traces(tracer: Tracer) -> int:
    """Every client tick's trace id must form one connected tree."""
    by_id = {s.span_id: s for s in tracer.spans}
    tick_ids = {s.trace_id for s in tracer.spans if s.name == "client.tick"}
    if not tick_ids:
        raise AssertionError("no client.tick spans were traced")
    for trace_id in tick_ids:
        members = [s for s in tracer.spans if s.trace_id == trace_id]
        roots = set()
        for s in members:
            walk = s
            while walk.parent_id is not None and walk.parent_id in by_id:
                walk = by_id[walk.parent_id]
            roots.add(walk.span_id)
            if walk.trace_id != trace_id:
                raise AssertionError(
                    f"span {s.name!r} walks out of trace {trace_id} "
                    f"into {walk.trace_id}"
                )
        if len(roots) != 1:
            raise AssertionError(
                f"trace {trace_id} has {len(roots)} roots "
                f"(disconnected tree): "
                f"{sorted(by_id[r].name for r in roots)}"
            )
        root = by_id[next(iter(roots))]
        if root.name != "client.tick":
            raise AssertionError(
                f"trace {trace_id} roots at {root.name!r}, "
                "not client.tick"
            )
    print(
        f"# trace check passed: {len(tick_ids)} tick traces, each one "
        f"connected tree rooted at client.tick",
        file=sys.stderr,
    )
    return len(tick_ids)


def _check_histograms(gateway: Gateway) -> None:
    """The exact latency histograms must have seen every observation."""
    tick_hist = gateway.metrics.hists.get("serve.tick.latency")
    if tick_hist is None or tick_hist.count == 0:
        raise AssertionError("serve.tick.latency histogram is empty")
    if tick_hist.count != gateway.ticks:
        raise AssertionError(
            f"tick histogram count {tick_hist.count} != "
            f"{gateway.ticks} ticks driven"
        )
    pump_counts = 0
    for shard in gateway.shards:
        h = gateway.metrics.hists.get(
            f"serve.shard.{shard.index}.pump.latency"
        )
        if h is None or h.count == 0:
            raise AssertionError(
                f"shard {shard.index} pump latency histogram is empty"
            )
        pump_counts += h.count
    qs = [tick_hist.quantile(q) for q in STANDARD_QUANTILES]
    if qs != sorted(qs):
        raise AssertionError(f"tick quantiles not monotone: {qs}")
    print(
        f"# histogram check passed: {tick_hist.count} tick + "
        f"{pump_counts} pump observations, quantiles monotone",
        file=sys.stderr,
    )


def _check_exposition_roundtrip(gateway: Gateway) -> str:
    """OpenMetrics text must parse back to the histograms' exact counts."""
    text = render_openmetrics(gateway.metrics)
    samples = parse_openmetrics(text)
    for name, hist in gateway.metrics.hists.items():
        key = "".join(
            c if c.isalnum() or c == "_" else "_" for c in name
        ) + "_count"
        if key not in samples:
            raise AssertionError(f"exposition lost histogram {name!r}")
        if int(samples[key]) != hist.count:
            raise AssertionError(
                f"{key}: exposition says {samples[key]}, histogram "
                f"says {hist.count}"
            )
    print(
        f"# exposition check passed: {len(samples)} samples round-trip, "
        f"histogram counts exact",
        file=sys.stderr,
    )
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="self-checking fleet observability demo "
        "(traced gateway load -> connected traces, exact histograms, "
        "OpenMetrics round-trip)"
    )
    parser.add_argument(
        "--out", default=None,
        help="optional output directory for trace.json / metrics.txt",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    summary = run_demo(args.out, seed=args.seed)
    print(
        f"ticks={summary['ticks']} traces={summary['trace_trees']} "
        f"spans={summary['spans']} "
        f"tick_p99={summary['tick_p99_s'] * 1e3:.3f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
