"""Fleet report: aggregate serving telemetry into a ranked summary.

Consumes the per-session records a :class:`~repro.serve.gateway.Gateway`
produces (:meth:`SessionHandle.record`) and rolls the fleet up into the
shape the green-microbench reports use: totals up top, a ranked table
of the interesting rows, JSON round-trip via ``to_dict``/``from_dict``.

Power accounting is *exact*: every record's ``mean_mw`` comes from the
session's integer toggle counts (``weights . counts + intercept * n``),
so ``total_energy_mwc`` (milliwatt-cycles) equals the sum of the
per-cycle OPM integers times the model step — bit-for-bit what an
offline :class:`~repro.opm.meter.OpmMeter` run over the same traces
attributes, which ``make serve-demo`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeError

__all__ = ["FleetReport", "build_report"]


@dataclass
class FleetReport:
    """Aggregated view of one served fleet."""

    sessions: list[dict] = field(default_factory=list)
    ticks: int = 0
    shard_respawns: int = 0
    model_swaps: int = 0

    # ---------------------------------------------------------- #
    # Totals
    # ---------------------------------------------------------- #
    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    @property
    def total_cycles(self) -> int:
        return sum(r["cycles"] for r in self.sessions)

    @property
    def total_windows(self) -> int:
        return sum(r["windows"] for r in self.sessions)

    @property
    def total_droop_alerts(self) -> int:
        return sum(r.get("droop_alerts", 0) for r in self.sessions)

    @property
    def total_budget_violations(self) -> int:
        return sum(r.get("budget_violations", 0) for r in self.sessions)

    @property
    def total_dropped_blocks(self) -> int:
        return sum(r.get("dropped_blocks", 0) for r in self.sessions)

    @property
    def total_energy_mwc(self) -> float:
        """Fleet energy in mW-cycles (exact integer accounting x step).

        When records carry ``attributed_sum_int`` (gateway records do)
        each term is ``int * step`` — the same expression an offline
        recompute uses, so the demo's equality check is bit-exact.
        """
        return sum(self._energy_mwc(r) for r in self.sessions)

    @staticmethod
    def _energy_mwc(r: dict) -> float:
        if "attributed_sum_int" in r:
            return r["attributed_sum_int"] * r["step"]
        return r["mean_mw"] * r["cycles"]

    @property
    def fleet_mean_mw(self) -> float:
        cycles = self.total_cycles
        return self.total_energy_mwc / cycles if cycles else 0.0

    # ---------------------------------------------------------- #
    # Rankings and rollups
    # ---------------------------------------------------------- #
    def ranked(self, by: str = "energy") -> list[dict]:
        """Sessions ranked hottest-first.

        ``by`` is ``"energy"`` (mW-cycles), ``"mean"`` (mean mW),
        ``"peak"`` (peak window mW), or ``"alerts"`` (droop alerts +
        budget violations).
        """
        keys = {
            "energy": self._energy_mwc,
            "mean": lambda r: r["mean_mw"],
            "peak": lambda r: r["peak_window_mw"],
            "alerts": lambda r: (
                r.get("droop_alerts", 0) + r.get("budget_violations", 0)
            ),
        }
        if by not in keys:
            raise ServeError(
                f"unknown ranking {by!r} (use one of {sorted(keys)})"
            )
        return sorted(self.sessions, key=keys[by], reverse=True)

    def by_version(self) -> dict[str, dict]:
        """Per-model-version rollup (the hot-swap audit view)."""
        out: dict[str, dict] = {}
        for r in self.sessions:
            v = out.setdefault(
                r["model_version"],
                {"sessions": 0, "cycles": 0, "energy_mwc": 0.0},
            )
            v["sessions"] += 1
            v["cycles"] += r["cycles"]
            v["energy_mwc"] += self._energy_mwc(r)
        return dict(sorted(out.items()))

    def by_unit(
        self, unit_names: dict[str, list[str]] | None = None
    ) -> dict[str, float]:
        """Per-unit attributed energy (mW-cycles), hottest first.

        ``unit_names`` maps a model version to its per-proxy unit
        labels (e.g. from ``core.unit_of_net`` over the model's
        proxies); unmapped proxies land in ``proxy<j>`` buckets.  The
        intercept is reported as its own ``(intercept)`` bucket so the
        rollup still sums to :attr:`total_energy_mwc` exactly.
        """
        out: dict[str, float] = {}
        for r in self.sessions:
            labels = (unit_names or {}).get(r["model_version"])
            for j, mw in enumerate(r.get("proxy_mw", [])):
                if labels is not None and j < len(labels):
                    unit = labels[j]
                else:
                    unit = f"proxy{j}"
                out[unit] = out.get(unit, 0.0) + mw * r["cycles"]
            out["(intercept)"] = (
                out.get("(intercept)", 0.0)
                + r.get("intercept_mw", 0.0) * r["cycles"]
            )
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    # ---------------------------------------------------------- #
    # Serialization
    # ---------------------------------------------------------- #
    def to_dict(self, unit_names=None) -> dict:
        return {
            "schema": "fleet-report/v1",
            "totals": {
                "sessions": self.n_sessions,
                "cycles": self.total_cycles,
                "windows": self.total_windows,
                "energy_mwc": self.total_energy_mwc,
                "fleet_mean_mw": self.fleet_mean_mw,
                "droop_alerts": self.total_droop_alerts,
                "budget_violations": self.total_budget_violations,
                "dropped_blocks": self.total_dropped_blocks,
                "ticks": self.ticks,
                "shard_respawns": self.shard_respawns,
                "model_swaps": self.model_swaps,
            },
            "by_version": self.by_version(),
            "by_unit": self.by_unit(unit_names),
            "ranked": self.ranked("energy"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetReport":
        if data.get("schema") != "fleet-report/v1":
            raise ServeError(
                f"not a fleet report: schema={data.get('schema')!r}"
            )
        totals = data.get("totals", {})
        return cls(
            sessions=list(data.get("ranked", [])),
            ticks=int(totals.get("ticks", 0)),
            shard_respawns=int(totals.get("shard_respawns", 0)),
            model_swaps=int(totals.get("model_swaps", 0)),
        )

    def render_markdown(
        self, k: int = 10, unit_names=None
    ) -> str:
        """Human-readable fleet summary (markdown tables)."""
        lines = [
            "# Fleet power report",
            "",
            f"- sessions: **{self.n_sessions}**"
            f" | cycles: **{self.total_cycles}**"
            f" | windows: **{self.total_windows}**",
            f"- fleet mean power: **{self.fleet_mean_mw:.4f} mW**"
            f" (energy {self.total_energy_mwc:.2f} mW-cycles)",
            f"- droop alerts: **{self.total_droop_alerts}**"
            f" | budget violations: **{self.total_budget_violations}**"
            f" | dropped blocks: **{self.total_dropped_blocks}**",
            f"- ticks: {self.ticks} | shard respawns: "
            f"{self.shard_respawns} | model swaps: {self.model_swaps}",
            "",
            f"## Top {k} sessions by energy",
            "",
            "| session | core | version | shard | cycles | mean mW "
            "| peak mW | alerts |",
            "|---|---|---|---:|---:|---:|---:|---:|",
        ]
        for r in self.ranked("energy")[:k]:
            alerts = (
                r.get("droop_alerts", 0) + r.get("budget_violations", 0)
            )
            lines.append(
                f"| {r['name']} | {r['core_id']} | {r['model_version']} "
                f"| {r['shard']} | {r['cycles']} | {r['mean_mw']:.4f} "
                f"| {r['peak_window_mw']:.4f} | {alerts} |"
            )
        lines += ["", "## Energy by model version", ""]
        lines += ["| version | sessions | cycles | energy mW-cycles |",
                  "|---|---:|---:|---:|"]
        for v, agg in self.by_version().items():
            lines.append(
                f"| {v} | {agg['sessions']} | {agg['cycles']} "
                f"| {agg['energy_mwc']:.2f} |"
            )
        units = self.by_unit(unit_names)
        lines += ["", "## Attributed energy by unit", ""]
        lines += ["| unit | energy mW-cycles | share |", "|---|---:|---:|"]
        total = self.total_energy_mwc or 1.0
        for unit, mwc in list(units.items())[:k]:
            lines.append(
                f"| {unit} | {mwc:.2f} | {100.0 * mwc / total:.1f}% |"
            )
        return "\n".join(lines)


def build_report(gateway) -> FleetReport:
    """Snapshot a gateway's fleet into a :class:`FleetReport`."""
    snap = gateway.metrics.snapshot()
    counters = snap.get("counters", {})

    def _counter(name: str) -> int:
        entry = counters.get(name, 0)
        if isinstance(entry, dict):
            entry = entry.get("value", 0)
        return int(entry)

    return FleetReport(
        sessions=gateway.session_records(),
        ticks=gateway.ticks,
        shard_respawns=_counter("serve.shard.respawns"),
        model_swaps=_counter("serve.model.swaps"),
    )
