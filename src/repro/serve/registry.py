"""Versioned model registry with atomic hot swap.

The npz+sidecar artifacts (:meth:`~repro.opm.quantize.QuantizedModel.save`)
are already versioned on disk by schema; this registry adds the *fleet*
notion of version: named model generations (``"v1"``, ``"2026-08-08"``,
...) published into one store, exactly one of which is *active* at a
time.  The contract the gateway builds on:

* ``get(version)`` returns the pinned model for that version — unknown
  versions raise :class:`~repro.errors.ServeError` naming the available
  versions (never a raw ``KeyError``);
* ``activate(version)`` is atomic: a single reference assignment in
  memory (plus an atomically-written ``ACTIVE`` pointer file when the
  registry is disk-backed).  Sessions resolve the active version once,
  at open — so in-flight sessions finish on the model they pinned and
  only *new* sessions observe the swap;
* meters are cached per ``(version, t)``, so every session of a version
  shares one :class:`~repro.opm.meter.OpmMeter` (and the service groups
  their inference into one GEMV).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ServeError
from repro.opm.meter import OpmMeter
from repro.opm.quantize import QuantizedModel

__all__ = ["ModelRegistry"]

#: Name of the active-version pointer file in a disk-backed registry.
ACTIVE_POINTER = "ACTIVE"


def _check_version(version: str) -> str:
    if (
        not version
        or not isinstance(version, str)
        or any(c in version for c in "/\\\0\n")
        or version == ACTIVE_POINTER
    ):
        raise ServeError(f"invalid model version name {version!r}")
    return version


class ModelRegistry:
    """Named model versions with one active pointer.

    Purely in-memory by default; pass ``root`` to mirror every publish
    to ``root/<version>.npz`` (+ JSON sidecar) and persist the active
    pointer, so a restarted gateway reopens the same fleet state via
    :meth:`open`.
    """

    def __init__(
        self, root: str | Path | None = None, breaker=None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        #: guarding every disk touch (artifact loads/saves, the ACTIVE
        #: pointer).  While open, disk I/O fast-fails with
        #: :class:`~repro.errors.BreakerOpenError` instead of hanging
        #: the gateway on a sick filesystem; the in-memory fleet state
        #: keeps serving.
        self.breaker = breaker
        self._models: dict[str, QuantizedModel] = {}
        self._active: str | None = None
        self._meters: dict[tuple[str, int], OpmMeter] = {}

    def _disk(self, fn, *args):
        """Run one disk operation, through the breaker when attached."""
        if self.breaker is not None:
            return self.breaker.call(fn, *args)
        return fn(*args)

    # -------------------------------------------------------------- #
    @classmethod
    def open(cls, root: str | Path, breaker=None) -> "ModelRegistry":
        """Reopen a disk-backed registry from its artifacts.

        Loads every ``<version>.npz`` with a ``QuantizedModel`` sidecar
        and restores the ``ACTIVE`` pointer if present and valid.
        """
        root = Path(root)
        if not root.is_dir():
            raise ServeError(f"registry directory {root} does not exist")
        reg = cls(root, breaker=breaker)
        for npz in sorted(root.glob("*.npz")):
            version = npz.name[: -len(".npz")]
            try:
                _check_version(version)
                model = reg._disk(QuantizedModel.load, npz)
            except Exception as exc:
                raise ServeError(
                    f"registry artifact {npz} failed to load: {exc}"
                ) from exc
            reg._models[version] = model
        pointer = root / ACTIVE_POINTER
        if pointer.exists():
            active = pointer.read_text().strip()
            if active not in reg._models:
                raise ServeError(
                    f"registry ACTIVE pointer names unknown version "
                    f"{active!r} (have {sorted(reg._models)})"
                )
            reg._active = active
        return reg

    # -------------------------------------------------------------- #
    def publish(
        self,
        version: str,
        model: QuantizedModel,
        activate: bool = False,
    ) -> None:
        """Add a model generation (optionally activating it).

        Re-publishing an existing version is rejected: versions are
        immutable, which is what makes pinning meaningful.
        """
        _check_version(version)
        if version in self._models:
            raise ServeError(
                f"model version {version!r} already published "
                "(versions are immutable; publish a new name)"
            )
        if self.root is not None:
            self._disk(model.save, self.root / f"{version}.npz")
        self._models[version] = model
        if activate or self._active is None:
            self.activate(version)

    def get(self, version: str) -> QuantizedModel:
        """The model pinned by ``version`` (clear error when unknown)."""
        try:
            return self._models[version]
        except KeyError:
            raise ServeError(
                f"unknown model version {version!r}; registry has "
                f"{sorted(self._models) or 'no versions'}"
            ) from None

    def resolve(self, version: str | None) -> str:
        """Pin a concrete version: ``None`` means the active one."""
        if version is None:
            if self._active is None:
                raise ServeError(
                    "registry has no active model version to pin"
                )
            return self._active
        self.get(version)  # validate
        return version

    def activate(self, version: str) -> None:
        """Atomic hot swap of the active version.

        One reference assignment — concurrent ``resolve(None)`` calls
        see either the old or the new version, never a torn state.
        In-flight sessions are untouched: they hold their own meter.
        """
        self.get(version)  # validate before any state changes
        if self.root is not None:
            from repro.resilience.atomic import atomic_write_bytes

            self._disk(
                atomic_write_bytes,
                self.root / ACTIVE_POINTER,
                (version + "\n").encode(),
            )
        self._active = version

    # -------------------------------------------------------------- #
    @property
    def active_version(self) -> str | None:
        return self._active

    def versions(self) -> list[str]:
        return sorted(self._models)

    def meter(self, version: str, t: int) -> OpmMeter:
        """The shared per-``(version, T)`` meter (cached)."""
        version = self.resolve(version)
        key = (version, int(t))
        if key not in self._meters:
            self._meters[key] = OpmMeter(self.get(version), t=int(t))
        return self._meters[key]

    def describe(self) -> dict:
        """JSON-ready summary (for snapshots and the CLI)."""
        return {
            "active": self._active,
            "versions": {
                v: {"q": m.q, "bits": m.bits, "step": m.step}
                for v, m in sorted(self._models.items())
            },
            "root": str(self.root) if self.root is not None else None,
        }

    def __len__(self) -> int:
        return len(self._models)
