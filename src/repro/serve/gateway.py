"""The fleet telemetry gateway: many sessions, sharded, hot-swappable.

The :class:`Gateway` is the serving front door.  It owns a
:class:`~repro.serve.registry.ModelRegistry` (which model version new
sessions pin), a ring of :class:`~repro.serve.shard.Shard` s (where
sessions live), and an optional :class:`~repro.parallel.pool.WorkerPool`
(where each shard's batched GEMV may run).  Sessions come in two
flavours:

* **push** sessions — a client streams toggle chunks in over the framed
  protocol (:mod:`repro.serve.protocol`), via the asyncio transport
  (:class:`GatewayServer` / :class:`AsyncTelemetryClient`) or the
  in-process :class:`InprocClient`;
* **source** sessions — the gateway pulls from any
  :mod:`repro.stream.source` iterable (the bit-identity tests attach
  :class:`~repro.stream.source.SimulatorSource` s this way).

Time advances in deterministic **ticks**: one tick pumps every live
shard, runs every pending inference group (inline or on the pool), and
scatters results — the fleet-scale analogue of
:meth:`StreamService.step`, and bit-identical to it session by session
because the per-session math is untouched by sharding, batching, model
mixing, or pool placement.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import AdmissionError, BreakerOpenError, ServeError
from repro.obs.expo import render_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanContext
from repro.parallel.pool import payload_nbytes
from repro.parallel.shm import qmodel_digest
from repro.resilience.breaker import CircuitBreaker
from repro.serve.admission import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.protocol import decode_array, decode_frame, encode_array, encode_frame
from repro.serve.registry import ModelRegistry
from repro.serve.shard import Shard, ShardRouter, ShmGemvTask, serve_gemv_task
from repro.stream.session import (
    SessionHooks,
    StreamConfig,
    StreamSession,
)
from repro.stream.source import ProxyBlock

__all__ = [
    "PushSource",
    "SessionHandle",
    "Gateway",
    "InprocClient",
    "GatewayServer",
    "AsyncTelemetryClient",
]


class PushSource:
    """Client-pushed proxy blocks behind a bounded drop-oldest buffer.

    The serving twin of the pull sources in :mod:`repro.stream.source`:
    ``push`` appends a chunk (dropping the *oldest* buffered chunk when
    ``max_pending`` is exceeded — freshest-data-wins, accounted), and
    iteration yields buffered chunks until the client ``close`` s the
    stream and the buffer empties.
    """

    def __init__(self, q: int, max_pending: int = 4096) -> None:
        if q < 1:
            raise ServeError("push source needs q >= 1 proxy columns")
        if max_pending < 1:
            raise ServeError("max_pending must be >= 1")
        self.q = int(q)
        self.max_pending = int(max_pending)
        self._buf: deque[ProxyBlock] = deque()
        self.closed = False
        self.cycles_pushed = 0
        self.blocks_pushed = 0
        self.dropped_blocks = 0
        self.dropped_cycles = 0

    @property
    def pending(self) -> int:
        return len(self._buf)

    def push(self, toggles: np.ndarray, last: bool = False) -> bool:
        """Buffer one chunk; returns False if an old chunk was dropped."""
        if self.closed:
            raise ServeError("push on a closed session")
        arr = np.asarray(toggles, dtype=np.uint8)
        if arr.ndim != 2 or arr.shape[1] != self.q:
            raise ServeError(
                f"expected (cycles, {self.q}) toggles, got {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise ServeError("pushed chunk must cover at least one cycle")
        block = ProxyBlock(
            start_cycle=self.cycles_pushed, toggles=arr, last=last
        )
        self.cycles_pushed += block.n_cycles
        self.blocks_pushed += 1
        kept = True
        if len(self._buf) >= self.max_pending:
            lost = self._buf.popleft()
            self.dropped_blocks += 1
            self.dropped_cycles += lost.n_cycles
            kept = False
        self._buf.append(block)
        if last:
            self.closed = True
        return kept

    def close(self) -> None:
        """No more pushes; buffered chunks still drain."""
        self.closed = True

    def __iter__(self):
        return self

    def __next__(self) -> ProxyBlock:
        if self._buf:
            return self._buf.popleft()
        if self.closed:
            raise StopIteration
        # Deliberately NOT a ServeError/StreamError: those are treated
        # as transient source stalls by StreamSession.pump, and this is
        # a gateway bug (pumps must be bounded by PushSource.pending).
        raise RuntimeError(
            "pump on an empty open push source (gateway bug)"
        )


class _PushSession(StreamSession):
    """A session whose pump never outruns its push buffer."""

    def __init__(self, name, push: PushSource, meter, **kw) -> None:
        super().__init__(name, push, meter, **kw)
        self._push = push

    def pump(self, max_blocks: int | None = None) -> int:
        n = self.config.pump_blocks if max_blocks is None else max_blocks
        # One extra pull is allowed on a closed empty buffer: that pull
        # is the StopIteration that marks the session exhausted.
        avail = self._push.pending + (1 if self._push.closed else 0)
        n = min(n, avail)
        if n <= 0:
            return 0
        return super().pump(n)


@dataclass
class SessionHandle:
    """Gateway-side record of one telemetry session.

    Accumulates what the fleet report needs (per-proxy toggle counts for
    attribution, peak window, emitted-window outbox for clients) via the
    session's :class:`~repro.stream.session.SessionHooks` — the session
    itself never learns it is being served.
    """

    name: str
    core_id: str
    version: str
    session: StreamSession
    push: PushSource | None
    shard_index: int
    opened_tick: int
    toggle_counts: np.ndarray = field(repr=False, default=None)
    peak_window_mw: float = 0.0
    windows_seen: int = 0
    priority: str = PRIORITY_BEST_EFFORT
    deadline_ticks: int | None = None
    last_activity_tick: int = 0  # last open/push/ping, for idle reaping
    last_progress_tick: int = 0  # last acknowledged drain, for deadlines
    deadline_downgrades: int = 0
    client_seq: int = 0  # next expected client data-frame sequence
    out_seq: int = 0  # next server windows-frame sequence
    _outbox: deque = field(default_factory=deque, repr=False)
    _done: bool = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def qmodel(self):
        return self.session.opm_stream.meter.qmodel

    def pop_windows(self) -> np.ndarray:
        """Drain the emitted-window outbox (mW, oldest first)."""
        if not self._outbox:
            return np.empty(0, dtype=np.float64)
        out = np.concatenate(list(self._outbox))
        self._outbox.clear()
        return out

    # ------------------------------------------------------------ #
    # Exact integer accounting: sum over processed cycles of the
    # per-cycle OPM integers equals weights . toggle_counts +
    # intercept * cycles — no float accumulation drift, so fleet
    # totals can be checked bit-exactly against offline readings.
    # ------------------------------------------------------------ #
    @property
    def attributed_sum_int(self) -> int:
        qm = self.qmodel
        return int(
            self.toggle_counts @ qm.int_weights
            + qm.int_intercept * self.session.cycles_processed
        )

    @property
    def mean_mw(self) -> float:
        n = self.session.cycles_processed
        if n == 0:
            return 0.0
        return self.attributed_sum_int * self.qmodel.step / n

    def proxy_contributions_mw(self) -> np.ndarray:
        """Per-proxy mean attributed power (mW), intercept excluded."""
        n = self.session.cycles_processed
        qm = self.qmodel
        if n == 0:
            return np.zeros(qm.q, dtype=np.float64)
        return (
            self.toggle_counts.astype(np.float64)
            * qm.int_weights
            * qm.step
            / n
        )

    def record(self) -> dict:
        """JSON-ready session record for snapshots and fleet reports."""
        sess = self.session
        stats = sess.stats()
        rec = {
            "name": self.name,
            "core_id": self.core_id,
            "model_version": self.version,
            "shard": self.shard_index,
            "done": self.done,
            "cycles": sess.cycles_processed,
            "attributed_sum_int": self.attributed_sum_int,
            "step": self.qmodel.step,
            "mean_mw": self.mean_mw,
            "peak_window_mw": self.peak_window_mw,
            "windows": self.windows_seen,
            "dropped_blocks": sess.dropped_blocks
            + (self.push.dropped_blocks if self.push is not None else 0),
            "droop_alerts": stats.get("droop_alerts", 0),
            "budget_violations": stats.get("budget_violations", 0),
            "priority": self.priority,
            "health": sess.health.state.value,
            "proxy_mw": [float(v) for v in self.proxy_contributions_mw()],
            "intercept_mw": float(
                self.qmodel.int_intercept * self.qmodel.step
            ),
        }
        return rec


class Gateway:
    """Sharded, hot-swappable multiplexer of telemetry sessions."""

    #: Bucket edges (seconds) for the per-tick latency histogram.
    TICK_EDGES = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)

    def __init__(
        self,
        registry: ModelRegistry,
        n_shards: int = 2,
        t: int = 8,
        config: StreamConfig | None = None,
        pool=None,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        push_buffer_blocks: int = 4096,
        flight_recorder=None,
        postmortem_dir: str | Path | None = None,
        coalesce: bool | str = "auto",
        admission: AdmissionConfig | AdmissionController | None = None,
        idle_timeout_ticks: int | None = None,
        tick_deadline_s: float | None = None,
        dispatch_breaker: CircuitBreaker | None = None,
        faults=None,
    ) -> None:
        if n_shards < 1:
            raise ServeError("gateway needs at least one shard")
        if coalesce not in (True, False, "auto"):
            raise ServeError(
                f"coalesce must be True, False, or 'auto', got {coalesce!r}"
            )
        self.registry = registry
        self.t = int(t)
        self.config = config or StreamConfig()
        self.pool = pool
        #: Cross-group GEMV coalescing: groups (possibly on different
        #: shards) whose models share a weights digest fuse into one
        #: stacked GEMV, scattered back by row ranges — bit-identical
        #: because each output row is an independent integer dot
        #: product.  "auto" enables it exactly when the pool ships
        #: descriptors (shm transport), where fewer/larger tasks are a
        #: pure win; the pickle transport keeps its historical
        #: one-task-per-group shape.
        self.coalesce = coalesce
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self.push_buffer_blocks = int(push_buffer_blocks)
        self.shards = [
            Shard(i, tracer=self.tracer) for i in range(n_shards)
        ]
        self.router = ShardRouter(self.shards)
        self.handles: dict[str, SessionHandle] = {}
        self._seq = 0
        self.ticks = 0
        #: Exact per-tick wall-latency histogram (log-bucketed,
        #: mergeable); quantiles come from bucket ranks, not samples.
        self.tick_hist = self.metrics.hist("serve.tick.latency")
        self.flightrec = flight_recorder
        self.postmortem_dir = (
            Path(postmortem_dir) if postmortem_dir is not None else None
        )
        #: Admission control: None admits everything (the historical
        #: behaviour); an AdmissionConfig builds a controller on this
        #: gateway's metrics; a ready controller is used as-is.
        if isinstance(admission, AdmissionConfig):
            admission = AdmissionController(admission, metrics=self.metrics)
        self.admission = admission
        #: Idle reaping: push sessions with no buffered or queued data
        #: and no client activity for this many ticks are closed (their
        #: processed readings survive; they just stop pinning a model
        #: version and a queue slot).  None disables.
        self.idle_timeout_ticks = (
            int(idle_timeout_ticks) if idle_timeout_ticks is not None
            else None
        )
        #: Per-tick inference latency budget, threaded into the worker
        #: pool's task envelopes (observational — late work still
        #: lands, but is counted and flagged in the trace).
        self.tick_deadline_s = tick_deadline_s
        #: Deterministic fault injector; the tick fires the
        #: ``serve.tick`` site once per tick (kinds: ``kill_shard``,
        #: ``slab_overflow``) so chaos plans can kill shards mid-tick
        #: and overflow the shm slabs on schedule.
        self.faults = faults
        self._force_pickle_ticks = 0
        #: Breaker around pool dispatch: while open, inference runs
        #: inline (slower, still bit-identical) instead of hammering a
        #: failing pool; closes again via a half-open probe.
        self.dispatch_breaker = dispatch_breaker or CircuitBreaker(
            name="serve.dispatch",
            metrics=self.metrics,
            flightrec=self.flightrec,
        )
        # Lifecycle: close() during an in-flight tick (a dispatch
        # callback or another thread) defers teardown until the tick
        # completes, so results staged in the shm plane are copied out
        # before the plane is unlinked.
        self._lock = threading.RLock()
        self._closed = False
        self._close_requested = False
        self._close_pool = True
        self._in_tick = False
        if self.flightrec is not None:
            self.flightrec.attach_tracer(
                self.tracer,
                lane_of=lambda sp: self.tracer.lane_name(sp.pid),
            )
            for shard in self.shards:
                self.flightrec.watch_health(
                    shard.lane, shard.health,
                    on_demote=self._on_shard_demote,
                )

    def _on_shard_demote(self, lane, old, new, reason) -> None:
        """A shard left OK: capture the post-mortem before state moves on."""
        self.metrics.counter("serve.health.demotions").inc()
        if self.postmortem_dir is None or self.flightrec is None:
            return
        path = self.flightrec.dump(
            self.postmortem_dir / f"postmortem-{lane}-{new}.json",
            reason=f"{lane} {old}->{new}: {reason}",
        )
        if path is not None:
            self.metrics.counter("serve.postmortems").inc()

    # -------------------------------------------------------------- #
    # Session lifecycle
    # -------------------------------------------------------------- #
    def open_session(
        self,
        core_id: str,
        version: str | None = None,
        t: int | None = None,
        source=None,
        config: StreamConfig | None = None,
        droop=None,
        budget=None,
        priority: str | None = None,
        deadline_ticks: int | None = None,
    ) -> SessionHandle:
        """Open one telemetry session, pinned to a model version.

        ``version=None`` pins the registry's *active* version at this
        moment — a later :meth:`swap_model` never retroactively moves
        this session.  With ``source=None`` the session is push-mode
        (feed it via :meth:`push`); otherwise the gateway pulls from
        ``source`` like any :mod:`repro.stream` source.

        ``priority`` defaults to ``"critical"`` when a droop or budget
        watcher is attached (those sessions exist to catch power
        emergencies, so admission sheds them last) and ``"besteffort"``
        otherwise.  ``deadline_ticks`` is the session's tick budget:
        pending work older than that is downgraded to the degraded
        T-cycle fallback instead of computed late.  Admission-shed
        opens raise :class:`~repro.errors.AdmissionError` *before* any
        gateway state changes — a shed open consumes nothing.
        """
        if self._closed:
            raise ServeError("open_session on a closed gateway")
        if priority is None:
            priority = (
                PRIORITY_CRITICAL
                if droop is not None or budget is not None
                else PRIORITY_BEST_EFFORT
            )
        if self.admission is not None:
            self.admission.admit_open(
                core_id,
                priority,
                self.ticks,
                sum(1 for h in self.handles.values() if not h.done),
            )
        version = self.registry.resolve(version)
        meter = self.registry.meter(version, self.t if t is None else t)
        name = f"{core_id}#{self._seq}"
        self._seq += 1

        handle_ref: list[SessionHandle] = []

        def on_drain(_sess, blocks):
            # Fires at ack time (results scattered back), so a block
            # replayed after a shard death is attributed exactly once.
            h = handle_ref[0]
            h.last_progress_tick = self.ticks
            for b in blocks:
                h.toggle_counts += b.toggles.sum(axis=0, dtype=np.int64)

        def on_ingest(_sess, _per_cycle_mw, windows_mw):
            if windows_mw.size:
                h = handle_ref[0]
                h._outbox.append(np.array(windows_mw, dtype=np.float64))
                h.windows_seen += int(windows_mw.size)
                peak = float(windows_mw.max())
                if peak > h.peak_window_mw:
                    h.peak_window_mw = peak
                if self.flightrec is not None:
                    self.flightrec.record(
                        f"shard-{h.shard_index}",
                        "windows",
                        session=h.name,
                        version=h.version,
                        windows=[float(v) for v in windows_mw],
                    )

        def on_done(_sess):
            handle_ref[0]._done = True
            self.metrics.counter("serve.sessions.closed").inc()

        hooks = SessionHooks(
            on_drain=on_drain, on_ingest=on_ingest, on_done=on_done
        )
        cfg = config or self.config
        if source is None:
            push = PushSource(
                meter.qmodel.q, max_pending=self.push_buffer_blocks
            )
            sess: StreamSession = _PushSession(
                name, push, meter, config=cfg, hooks=hooks,
                droop=droop, budget=budget,
            )
        else:
            push = None
            sess = StreamSession(
                name, source, meter, config=cfg, hooks=hooks,
                droop=droop, budget=budget,
            )
        shard = self.router.shard_for(core_id, version)
        handle = SessionHandle(
            name=name,
            core_id=core_id,
            version=version,
            session=sess,
            push=push,
            shard_index=shard.index,
            opened_tick=self.ticks,
            toggle_counts=np.zeros(meter.qmodel.q, dtype=np.int64),
            priority=priority,
            deadline_ticks=(
                int(deadline_ticks) if deadline_ticks is not None else None
            ),
            last_activity_tick=self.ticks,
            last_progress_tick=self.ticks,
        )
        handle_ref.append(handle)
        shard.add_session(sess)
        self.handles[name] = handle
        self.metrics.counter("serve.sessions.opened").inc()
        with self.tracer.span(
            "serve.session.open",
            session=name, version=version, shard=shard.index,
        ):
            pass
        return handle

    def _resolve(self, handle_or_name) -> SessionHandle:
        if isinstance(handle_or_name, SessionHandle):
            return handle_or_name
        try:
            return self.handles[handle_or_name]
        except KeyError:
            raise ServeError(
                f"unknown session {handle_or_name!r}"
            ) from None

    def push(
        self, handle_or_name, toggles, last: bool = False,
        seq: int | None = None,
    ) -> None:
        """Feed one toggle chunk into a push-mode session.

        ``seq`` (when clients stamp one) must be the session's next
        data-frame sequence number; a mismatch is counted and rejected,
        so a dropped or re-ordered frame can never silently corrupt
        the stream.  Shed pushes raise
        :class:`~repro.errors.AdmissionError` before any data is
        buffered.
        """
        handle = self._resolve(handle_or_name)
        if handle.push is None:
            raise ServeError(
                f"session {handle.name!r} is source-backed; it cannot "
                "accept pushed data"
            )
        if self.admission is not None:
            self.admission.admit_push(
                handle.core_id,
                handle.priority,
                self.ticks,
                handle.push.pending + handle.session.pending_blocks,
                latency_p99_s=self.pump_latency_p99(),
            )
        if seq is not None:
            if int(seq) != handle.client_seq:
                self.metrics.counter("serve.protocol.seq_gaps").inc()
                raise ServeError(
                    f"session {handle.name!r}: data frame seq {seq} "
                    f"(expected {handle.client_seq}) — frame lost or "
                    "re-ordered"
                )
            handle.client_seq += 1
        handle.last_activity_tick = self.ticks
        kept = handle.push.push(toggles, last=last)
        self.metrics.counter("serve.push.blocks").inc()
        if not kept:
            self.metrics.counter("serve.push.dropped").inc()

    def ping(self, handle_or_name=None) -> dict:
        """Keepalive: refresh a session's idle clock (or just ask the
        gateway's tick).  Returns the pong payload."""
        out = {"tick": self.ticks}
        if handle_or_name is not None:
            handle = self._resolve(handle_or_name)
            handle.last_activity_tick = self.ticks
            out["session"] = handle.name
            out["done"] = handle.done
        self.metrics.counter("serve.pings").inc()
        return out

    def close_session(self, handle_or_name) -> None:
        """Client finished: no more data; buffered chunks still drain."""
        handle = self._resolve(handle_or_name)
        if handle.push is not None:
            handle.push.close()

    # -------------------------------------------------------------- #
    # Fleet control
    # -------------------------------------------------------------- #
    def swap_model(self, version: str) -> None:
        """Hot swap: new sessions pin ``version``; in-flight unaffected.

        On the shm transport, resident weights whose digest no live
        session references any more are retired from the vault —
        workers re-publish lazily if the digest ever comes back.
        """
        self.registry.activate(version)
        self.metrics.counter("serve.model.swaps").inc()
        self._retire_unused_weights()
        with self.tracer.span("serve.model.swap", version=version):
            pass

    def kill_shard(self, index: int, reason: str = "injected") -> None:
        """Fail one shard (fault injection / tests); respawns next tick."""
        self.shards[index].kill(reason)
        self._refresh_metrics()

    @property
    def has_live_sessions(self) -> bool:
        return any(not h.done for h in self.handles.values())

    # -------------------------------------------------------------- #
    # Inference: gathered groups -> (coalesced) units -> GEMV results
    # -------------------------------------------------------------- #
    @property
    def _shm_transport(self) -> bool:
        return (
            self.pool is not None
            and getattr(self.pool, "transport", "pickle") == "shm"
        )

    @property
    def _coalesce_on(self) -> bool:
        if self.coalesce == "auto":
            return self._shm_transport
        return bool(self.coalesce)

    def _infer(self, flat: list, sp) -> list:
        """Run every gathered group's GEMV; returns per-group results.

        ``flat`` is ``(group, version, gather_ctx)`` per drain group in
        shard order.  Groups sharing a weights digest optionally fuse
        into one inference unit (:attr:`coalesce`); units go to the
        worker pool — as ~100-byte shared-memory descriptors on the shm
        transport, as pickled arrays otherwise — or run inline when the
        pool cannot help.  Unit results are sliced back to group order
        by row ranges, which is bit-identical to per-group inference
        because every output row is an independent integer dot product.
        """
        if not flat:
            return []
        t_inf = time.perf_counter()
        if self._coalesce_on:
            by_digest: dict[str, list[int]] = {}
            for i, (group, _v, _c) in enumerate(flat):
                by_digest.setdefault(
                    qmodel_digest(group.meter.qmodel), []
                ).append(i)
            unit_indices = list(by_digest.values())
            # Coalescing must amortize, not serialize: a homogeneous
            # fleet would fuse to a single unit and starve the pool, so
            # fused units are split back up to the worker count (at
            # group granularity, balanced by rows).  Weight dedup is
            # kept — sibling units share the digest.
            if self.pool is not None and self.pool.parallel:
                unit_indices = self._split_units(
                    unit_indices, flat, self.pool.workers
                )
        else:
            unit_indices = [[i] for i in range(len(flat))]
        use_pool = (
            self.pool is not None
            and self.pool.parallel
            and len(unit_indices) > 1
        )
        if use_pool:
            # Dispatch runs under the breaker: repeated pool-path
            # failures trip it open and inference falls back inline
            # (slower, still bit-identical) until a half-open probe
            # finds the pool healthy again.
            try:
                unit_results = self.dispatch_breaker.call(
                    self._dispatch_units, unit_indices, flat, sp,
                )
            except (BreakerOpenError, *self.dispatch_breaker.trip_on):
                self.metrics.counter("serve.breaker.inline_fallbacks").inc()
                unit_results = self._inline_units(unit_indices, flat)
        else:
            unit_results = self._inline_units(unit_indices, flat)
        results: list = [None] * len(flat)
        for indices, arr in zip(unit_indices, unit_results):
            off = 0
            for i in indices:
                r = flat[i][0].rows
                results[i] = arr[off:off + r]
                off += r
        self.metrics.histogram(
            "serve.infer_seconds", self.TICK_EDGES
        ).observe(time.perf_counter() - t_inf)
        return results

    @staticmethod
    def _unit_mats(indices: list, flat: list) -> list:
        return [m for i in indices for m in flat[i][0].mats]

    @staticmethod
    def _split_units(unit_indices: list, flat: list, target: int) -> list:
        """Split fused units until there are ``target`` (or no splits
        remain).  Greedy largest-first, cutting each unit's group list
        at the row midpoint; deterministic, order-preserving within a
        unit, and bit-identical under the row-independence of the GEMV.
        """
        units = [list(u) for u in unit_indices]

        def rows_of(u: list) -> int:
            return sum(flat[i][0].rows for i in u)

        while len(units) < target:
            cand = max(
                (u for u in units if len(u) > 1),
                key=rows_of,
                default=None,
            )
            if cand is None:
                break
            units.remove(cand)
            half = rows_of(cand) // 2
            acc = 0
            cut = len(cand) - 1
            for j, i in enumerate(cand[:-1]):
                acc += flat[i][0].rows
                if acc >= half:
                    cut = j + 1
                    break
            units.append(cand[:cut])
            units.append(cand[cut:])
        return units

    def _inline_units(self, unit_indices: list, flat: list) -> list:
        """In-process inference (no pool, pool degraded, or one unit)."""
        out = []
        for indices in unit_indices:
            qm = flat[indices[0]][0].meter.qmodel
            mats = self._unit_mats(indices, flat)
            t_g = time.perf_counter()
            stacked = (
                mats[0] if len(mats) == 1
                else np.concatenate(mats, axis=0)
            )
            out.append(
                serve_gemv_task(
                    (qm.int_weights, qm.int_intercept, stacked)
                )
            )
            self.metrics.hist(
                f"serve.gemv.latency.{flat[indices[0]][1]}"
            ).observe(time.perf_counter() - t_g)
        return out

    def _stage_shm_task(self, plane, qm, mats, rows):
        """Stage one unit in the arenas; None when a slab is full.

        Weights go to (or are found in) the vault by digest; the
        stacked toggle matrix is written block-by-block straight into a
        request slab (the path's single memcpy); the result region is
        parent-preallocated so the worker writes output in place and a
        dead worker can never leak a segment it owns.
        """
        if self._force_pickle_ticks > 0:
            # Injected slab overflow (chaos ``slab_overflow`` kind):
            # behave exactly as if the arenas were full, exercising the
            # counted pickle-envelope fallback path.
            return None
        wref = plane.vault.ensure(
            qmodel_digest(qm), qm.int_weights, qm.int_intercept
        )
        got = plane.requests.alloc(
            (rows, int(mats[0].shape[1])), mats[0].dtype
        )
        if got is None:
            return None
        sref, view = got
        r = 0
        for m in mats:
            view[r:r + m.shape[0]] = m
            r += m.shape[0]
        out = plane.results.alloc((rows,), np.int64)
        if out is None:
            return None
        return ShmGemvTask(sref, wref, out[0])

    def _dispatch_units(self, unit_indices: list, flat: list, sp) -> list:
        """Pool dispatch of inference units, transport-aware.

        On the shm transport each unit ships as descriptors; a full
        arena falls back to a pickled-array envelope for that unit (and
        is counted — the plane degrades per payload, never fails).
        Every task's wire size, both directions, feeds the
        ``serve.ipc.bytes`` histogram.
        """
        plane = self.pool.plane if self._shm_transport else None
        if plane is not None:
            plane.begin_tick()
        tasks = []
        outs = []  # result-arena ref per task (None = pickle envelope)
        for indices in unit_indices:
            qm = flat[indices[0]][0].meter.qmodel
            mats = self._unit_mats(indices, flat)
            rows = sum(int(m.shape[0]) for m in mats)
            task = (
                self._stage_shm_task(plane, qm, mats, rows)
                if plane is not None else None
            )
            if task is not None:
                outs.append(task.out)
            else:
                if plane is not None:
                    plane.fallbacks += 1
                stacked = (
                    mats[0] if len(mats) == 1
                    else np.concatenate(mats, axis=0)
                )
                task = (qm.int_weights, qm.int_intercept, stacked)
                outs.append(None)
            tasks.append(task)
        ipc_hist = self.metrics.hist(
            "serve.ipc.bytes", lo=1.0, hi=float(2 << 40), growth=2.0
        )
        tick_bytes = 0
        for task, outref in zip(tasks, outs):
            nb = payload_nbytes(task)
            # ...plus the return leg: a tiny receipt for shm tasks, the
            # full pickled result vector for pickle envelopes.
            nb += 32 if outref is not None else int(task[2].shape[0]) * 8
            ipc_hist.observe(nb)
            tick_bytes += nb
        self.metrics.counter("serve.ipc.bytes.total").inc(tick_bytes)
        # Parent each unit's worker span under its first group's shard
        # gather (falling back to the tick span), so the trace tree
        # mirrors the data path: client -> tick -> gather -> gemv task.
        fallback = sp.ctx if sp else None
        ctxs = [flat[indices[0]][2] or fallback for indices in unit_indices]
        timings: list = []
        raw = self.pool.map(
            serve_gemv_task, tasks, label="serve.gemv",
            span_ctx=(
                ctxs if any(c is not None for c in ctxs) else None
            ),
            timings=timings,
            deadline_s=self.tick_deadline_s,
        )
        if len(timings) == len(unit_indices):
            for (_pid, _t0, dur), indices in zip(timings, unit_indices):
                self.metrics.hist(
                    f"serve.gemv.latency.{flat[indices[0]][1]}"
                ).observe(dur)
        unit_results = []
        hits = misses = 0
        for res, outref in zip(raw, outs):
            if outref is None:
                unit_results.append(res)
                continue
            _rows, hit = res
            if hit:
                hits += 1
            else:
                misses += 1
            # Copy out of the ring before the next tick reuses the slab
            # (sessions keep reading-window slices across ticks).
            unit_results.append(np.array(plane.results.view(outref)))
        if plane is not None:
            if hits:
                self.metrics.counter("serve.weights.cache_hits").inc(hits)
            if misses:
                self.metrics.counter(
                    "serve.weights.cache_misses"
                ).inc(misses)
            m = self.metrics
            m.gauge("serve.shm.request_occupancy").set(
                plane.requests.occupancy
            )
            m.gauge("serve.shm.result_occupancy").set(
                plane.results.occupancy
            )
            m.gauge("serve.weights.resident").set(
                len(plane.vault.digests())
            )
            m.gauge("serve.shm.fallbacks").set(plane.fallbacks)
        return unit_results

    def _retire_unused_weights(self) -> None:
        """Drop vault digests no live session references (post-swap)."""
        pool = self.pool
        plane = pool.active_plane if self._shm_transport else None
        if plane is None:
            return
        live = {
            qmodel_digest(h.qmodel)
            for h in self.handles.values()
            if not h.done
        }
        for digest in plane.vault.digests() - live:
            if plane.vault.retire(digest):
                self.metrics.counter("serve.weights.retired").inc()

    # -------------------------------------------------------------- #
    # The tick
    # -------------------------------------------------------------- #
    def tick(self, ctx=None) -> bool:
        """One fleet step; returns True while any session is live.

        ``ctx`` (a :class:`~repro.obs.trace.SpanContext`, typically
        decoded off a client frame header) parents this tick's whole
        span tree — gateway, shards, pooled GEMV workers — under the
        client's span, so one client tick renders as one connected
        cross-process trace.

        A :meth:`close` that lands while this tick is in flight (from
        a dispatch callback or another thread) is deferred: the tick
        finishes — including copying results out of the shm plane —
        and teardown runs on the way out.
        """
        with self._lock:
            if self._closed:
                raise ServeError("tick on a closed gateway")
            self._in_tick = True
            try:
                return self._tick_body(ctx)
            finally:
                self._in_tick = False
                if self._close_requested:
                    self._finish_close()

    def _tick_body(self, ctx=None) -> bool:
        t0 = time.perf_counter()
        with self.tracer.span("serve.tick", ctx=ctx, tick=self.ticks) as sp:
            respawned = self.router.respawn_dead()
            if respawned:
                self.metrics.counter("serve.shard.respawns").inc(respawned)
            self._check_deadlines(sp)
            shard_work = []
            flat = []  # (group, version, gather ctx), deterministic order
            for shard in self.shards:
                t_s = time.perf_counter()
                groups = shard.gather()
                self.metrics.hist(
                    f"serve.shard.{shard.index}.pump.latency"
                ).observe(time.perf_counter() - t_s)
                self.metrics.hist(
                    f"serve.shard.{shard.index}.queue.depth",
                    lo=0.5, hi=2 ** 20, growth=2.0,
                ).observe(sum(len(s.queue) for s in shard.sessions))
                shard_work.append((shard, t_s, groups))
                for group in groups:
                    flat.append((
                        group,
                        self.handles[group.picks[0][0].name].version,
                        shard.last_gather_ctx,
                    ))
            # Chaos site: fires *between* gather and apply, the exact
            # window where a shard death strands in-flight blocks — the
            # loss-free failover path this layer exists to cover.
            if self.faults is not None:
                for spec in self.faults.fire("serve.tick"):
                    self._apply_fault(spec)
            results = self._infer(flat, sp)
            alive = False
            cursor = 0
            for shard, t_s, groups in shard_work:
                res = results[cursor:cursor + len(groups)]
                cursor += len(groups)
                if shard.apply(groups, res, t_s):
                    alive = True
            if sp:
                sp.set(groups=len(flat))
        if self._force_pickle_ticks > 0:
            self._force_pickle_ticks -= 1
        self._reap_idle()
        self.ticks += 1
        latency = time.perf_counter() - t0
        self.tick_hist.observe(latency)
        self.metrics.histogram(
            "serve.tick_seconds", self.TICK_EDGES
        ).observe(latency)
        self._refresh_metrics()
        # Push sessions whose client has not closed stay live even with
        # an empty queue — the fleet is still serving them.
        return alive or self.has_live_sessions

    def _apply_fault(self, spec) -> None:
        """Apply one ``serve.tick`` fault spec (chaos injection)."""
        if spec.kind == "kill_shard":
            index = spec.at % len(self.shards)
            self.kill_shard(index, reason=f"chaos kill_shard@{spec.at}")
        elif spec.kind == "slab_overflow":
            self._force_pickle_ticks = max(
                self._force_pickle_ticks, int(spec.duration)
            )
            self.metrics.counter("serve.chaos.slab_overflows").inc()

    def _check_deadlines(self, sp) -> None:
        """Downgrade sessions whose pending work outlived its budget.

        Past-deadline work is never computed late at full fidelity:
        the session drops to the stream layer's degraded T-cycle
        fallback (per-cycle products pause, exact window readings keep
        flowing) until its queue drains.  Purely tick-arithmetic, so
        deterministic under a fixed drive.
        """
        for h in self.handles.values():
            if h.deadline_ticks is None or h.done:
                continue
            pending = h.session.pending_blocks + (
                h.push.pending if h.push is not None else 0
            )
            if not pending:
                continue
            overdue = self.ticks - h.last_progress_tick
            if overdue > h.deadline_ticks:
                h.session._degrade(
                    f"deadline exceeded: no progress for {overdue} ticks "
                    f"(budget {h.deadline_ticks})"
                )
                h.deadline_downgrades += 1
                h.last_progress_tick = self.ticks  # re-arm
                self.metrics.counter("serve.deadline.exceeded").inc()
                with self.tracer.span(
                    "serve.deadline.exceeded",
                    ctx=sp.ctx if sp else None,
                    session=h.name,
                    overdue_ticks=overdue,
                    budget_ticks=h.deadline_ticks,
                ):
                    pass

    def _reap_idle(self) -> None:
        """Close abandoned push sessions (no data, no pings, no client).

        A reaped session keeps everything it already processed — it
        just stops pinning its model version and queue slot, exactly
        as if the client had sent ``close``.
        """
        if self.idle_timeout_ticks is None:
            return
        for h in self.handles.values():
            if (
                h.done
                or h.push is None
                or h.push.closed
                or h.push.pending
                or h.session.pending_blocks
            ):
                continue
            idle = self.ticks - h.last_activity_tick
            if idle >= self.idle_timeout_ticks:
                h.push.close()
                self.metrics.counter("serve.sessions.reaped").inc()
                if self.flightrec is not None:
                    self.flightrec.record(
                        f"shard-{h.shard_index}",
                        "session_reaped",
                        session=h.name,
                        idle_ticks=idle,
                    )

    # -------------------------------------------------------------- #
    # Shutdown
    # -------------------------------------------------------------- #
    def close(self, close_pool: bool = True) -> None:
        """Tear the gateway down (idempotent).

        Safe to call mid-dispatch: if a tick is in flight — this
        thread's own tick (a callback) or another thread's — teardown
        is deferred until that tick completes, so results staged in
        the shm data plane are copied out before the plane is
        unlinked.  With ``close_pool`` the owned worker pool is closed
        too (its ``close`` is idempotent, so callers that also close
        the pool themselves are unaffected).
        """
        with self._lock:
            if self._closed:
                return
            self._close_pool = close_pool
            if self._in_tick:
                self._close_requested = True
                return
            self._finish_close()

    def _finish_close(self) -> None:
        self._closed = True
        self._close_requested = False
        if self._close_pool and self.pool is not None:
            self.pool.close()
        self.metrics.counter("serve.gateway.closed").inc()

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self, max_ticks: int = 100_000) -> dict:
        """Tick until every session completes; returns the snapshot."""
        with self.tracer.span("serve.drain", sessions=len(self.handles)):
            for _ in range(max_ticks):
                if not self.tick():
                    return self.snapshot()
        raise ServeError(
            f"gateway did not drain within {max_ticks} ticks (an open "
            "push session is never done until its client closes it)"
        )

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    def _refresh_metrics(self) -> None:
        m = self.metrics
        worst = 0
        for shard in self.shards:
            code = shard.health.code
            worst = max(worst, code)
            m.gauge(f"serve.shard.health.{shard.index}").set(code)
            m.gauge(f"serve.shard.sessions.{shard.index}").set(
                len(shard.sessions)
            )
        m.gauge("serve.shard.health").set(worst)
        m.gauge("serve.shards").set(len(self.shards))
        m.gauge("serve.sessions.live").set(
            sum(1 for h in self.handles.values() if not h.done)
        )
        m.counter("serve.ticks").value = self.ticks
        drops = sum(
            h.push.dropped_blocks
            for h in self.handles.values()
            if h.push is not None
        )
        m.counter("serve.push.buffer_dropped").value = drops
        # Drop accounting per shard and per model version (recomputed
        # totals — sessions move between respawned services, handles
        # are the ground truth).
        by_shard: dict[int, int] = {s.index: 0 for s in self.shards}
        by_version: dict[str, int] = {}
        for h in self.handles.values():
            d = h.session.dropped_blocks + (
                h.push.dropped_blocks if h.push is not None else 0
            )
            by_shard[h.shard_index] = by_shard.get(h.shard_index, 0) + d
            by_version[h.version] = by_version.get(h.version, 0) + d
        for idx, d in by_shard.items():
            m.counter(f"serve.shard.{idx}.dropped_blocks").value = d
        for version, d in by_version.items():
            m.counter(f"serve.dropped_blocks.{version}").value = d

    def pump_latency_p99(self) -> float:
        """p99 of tick latencies (seconds), exact from histogram ranks.

        Reads the ``serve.tick.latency`` :class:`LogHistogram` — the
        value is the upper edge of the bucket holding the p99 rank, so
        it never under-reports and is stable under shard merges."""
        return self.tick_hist.quantile(0.99)

    def session_records(self) -> list[dict]:
        return [h.record() for h in self.handles.values()]

    def snapshot(self) -> dict:
        """Fleet-wide JSON snapshot: gateway + shards + sessions."""
        snap = self.metrics.snapshot()
        snap["ticks"] = self.ticks
        snap["registry"] = self.registry.describe()
        snap["shards"] = [s.stats() for s in self.shards]
        snap["sessions"] = self.session_records()
        snap["pump_latency_p99_s"] = self.pump_latency_p99()
        snap["dispatch_breaker"] = self.dispatch_breaker.as_dict()
        if self.admission is not None:
            snap["admission"] = self.admission.snapshot()
        return snap


class InprocClient:
    """In-process client speaking real frames to a local gateway.

    Every call round-trips its frame through
    :func:`~repro.serve.protocol.encode_frame` /
    :func:`~repro.serve.protocol.decode_frame`, so tests and benchmarks
    that use it also exercise the wire encoding — without sockets or an
    event loop.
    """

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._seq: dict[str, int] = {}  # session -> next data-frame seq

    def open(
        self,
        core_id: str,
        version: str | None = None,
        t: int | None = None,
        priority: str | None = None,
        deadline_ticks: int | None = None,
    ) -> str:
        frame = encode_frame(
            {"op": "open", "core": core_id, "version": version, "t": t,
             "priority": priority, "deadline_ticks": deadline_ticks}
        )
        header, _payload, _n = decode_frame(frame)
        handle = self.gateway.open_session(
            header["core"],
            version=header.get("version"),
            t=header.get("t"),
            priority=header.get("priority"),
            deadline_ticks=header.get("deadline_ticks"),
        )
        self._seq[handle.name] = 0
        return handle.name

    def push(self, name: str, toggles, last: bool = False, ctx=None) -> None:
        fields, payload = encode_array(np.asarray(toggles, dtype=np.uint8))
        seq = self._seq.get(name, 0)
        head = {"op": "data", "session": name, "last": bool(last),
                "seq": seq, **fields}
        if ctx is not None:
            head["ctx"] = ctx.to_header()
        frame = encode_frame(head, payload)
        header, body, _n = decode_frame(frame)
        rctx = SpanContext.from_header(header.get("ctx"))
        if rctx is not None:
            with self.gateway.tracer.span(
                "serve.ingest", ctx=rctx, session=header["session"]
            ):
                self.gateway.push(
                    header["session"],
                    decode_array(header, body),
                    last=bool(header.get("last", False)),
                    seq=header.get("seq"),
                )
        else:
            self.gateway.push(
                header["session"],
                decode_array(header, body),
                last=bool(header.get("last", False)),
                seq=header.get("seq"),
            )
        self._seq[name] = seq + 1

    def ping(self, name: str | None = None) -> dict:
        """Keepalive round-trip; returns the pong header."""
        header, _p, _n = decode_frame(
            encode_frame({"op": "ping", "session": name})
        )
        pong = self.gateway.ping(header.get("session"))
        return {"op": "pong", **pong}

    def tick(self, ctx=None) -> bool:
        """Advance the gateway one tick under an optional client span."""
        return self.gateway.tick(ctx=ctx)

    def close(self, name: str) -> None:
        header, _p, _n = decode_frame(
            encode_frame({"op": "close", "session": name})
        )
        self.gateway.close_session(header["session"])

    def windows(self, name: str) -> np.ndarray:
        """Pop the session's emitted T-window readings (mW)."""
        return self.gateway._resolve(name).pop_windows()

    def stats(self, name: str) -> dict:
        return self.gateway._resolve(name).record()


# ------------------------------------------------------------------ #
# asyncio transport
# ------------------------------------------------------------------ #
class GatewayServer:
    """Asyncio front-end: framed protocol over TCP, one shared gateway.

    A single background pump task advances the gateway in ticks while
    any session is live and flushes each session's emitted windows back
    to the connection that opened it.  Designed for thousands of
    concurrent light connections: per-connection state is one dict
    entry, and all inference stays batched in the gateway.
    """

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 0, metrics_port: int | None = None) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        #: Side port for ``GET /metrics`` (OpenMetrics text); ``None``
        #: disables exposition, ``0`` binds an ephemeral port.
        self.metrics_port = metrics_port
        self._server = None
        self._metrics_server = None
        self._pump_task = None
        self._writers: dict[str, object] = {}  # session name -> writer
        self._done_sent: set[str] = set()

    async def start(self) -> None:
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        self._pump_task = asyncio.ensure_future(self._pump_loop())

    async def close(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except BaseException:
                pass
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None

    async def _handle_metrics(self, reader, writer) -> None:
        """One ``GET /metrics`` scrape: HTTP/1.0, render, close."""
        try:
            data = b""
            while b"\r\n\r\n" not in data and b"\n\n" not in data:
                chunk = await reader.read(1024)
                if not chunk:
                    break
                data += chunk
            parts = data.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path.split("?")[0] in ("/metrics", "/"):
                body = render_openmetrics(self.gateway.metrics).encode()
                status = "200 OK"
                ctype = (
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8"
                )
            else:
                body = b"not found\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode() + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _pump_loop(self) -> None:
        import asyncio

        while True:
            if self.gateway.has_live_sessions:
                self.gateway.tick()
                await self._flush()
                await asyncio.sleep(0)
            else:
                await asyncio.sleep(0.002)

    async def _flush(self) -> None:
        for name, writer in list(self._writers.items()):
            handle = self.gateway.handles.get(name)
            if handle is None:
                continue
            windows = handle.pop_windows()
            if windows.size:
                fields, payload = encode_array(windows)
                writer.write(encode_frame(
                    {"op": "windows", "session": name,
                     "seq": handle.out_seq, **fields}, payload
                ))
                handle.out_seq += 1
            if handle.done and name not in self._done_sent:
                self._done_sent.add(name)
                writer.write(encode_frame(
                    {"op": "done", "session": name,
                     "stats": handle.record()}
                ))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                self._writers.pop(name, None)

    async def _read_frame(self, reader):
        import struct as _struct

        head = await reader.readexactly(4)
        (hlen,) = _struct.unpack(">I", head)
        blob = await reader.readexactly(hlen)
        (plen,) = _struct.unpack(">I", await reader.readexactly(4))
        payload = await reader.readexactly(plen) if plen else b""
        header, body, _n = decode_frame(
            head + blob + _struct.pack(">I", plen) + payload
        )
        return header, body

    async def _handle(self, reader, writer) -> None:
        import asyncio

        owned: list[str] = []
        try:
            while True:
                try:
                    header, payload = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    reply = self._dispatch(header, payload, writer, owned)
                except AdmissionError as exc:
                    # Shed, not broken: tell the client to back off.
                    reply = {"op": "error", "message": str(exc),
                             "shed": True, "reason": exc.reason}
                except ServeError as exc:
                    reply = {"op": "error", "message": str(exc)}
                if reply is not None:
                    writer.write(encode_frame(reply))
                    await writer.drain()
        finally:
            for name in owned:
                self._writers.pop(name, None)
                handle = self.gateway.handles.get(name)
                if handle is not None and handle.push is not None:
                    handle.push.close()  # connection gone: drain & finish
            writer.close()

    def _dispatch(self, header, payload, writer, owned) -> dict | None:
        op = header.get("op")
        if op == "open":
            handle = self.gateway.open_session(
                str(header.get("core", "core")),
                version=header.get("version"),
                t=header.get("t"),
                priority=header.get("priority"),
                deadline_ticks=header.get("deadline_ticks"),
            )
            owned.append(handle.name)
            self._writers[handle.name] = writer
            return {
                "op": "opened",
                "session": handle.name,
                "version": handle.version,
                "shard": handle.shard_index,
            }
        if op == "data":
            rctx = SpanContext.from_header(header.get("ctx"))
            if rctx is not None:
                with self.gateway.tracer.span(
                    "serve.ingest", ctx=rctx,
                    session=header.get("session"),
                ):
                    self.gateway.push(
                        header.get("session"),
                        decode_array(header, payload),
                        last=bool(header.get("last", False)),
                        seq=header.get("seq"),
                    )
                return None
            self.gateway.push(
                header.get("session"),
                decode_array(header, payload),
                last=bool(header.get("last", False)),
                seq=header.get("seq"),
            )
            return None
        if op == "ping":
            return {"op": "pong",
                    **self.gateway.ping(header.get("session"))}
        if op == "close":
            self.gateway.close_session(header.get("session"))
            return None
        if op == "stats":
            handle = self.gateway._resolve(header.get("session"))
            return {"op": "stats", "session": handle.name,
                    "stats": handle.record()}
        raise ServeError(f"unknown op {op!r}")


class AsyncTelemetryClient:
    """Minimal asyncio client for :class:`GatewayServer`."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self._seq: dict[str, int] = {}  # session -> next data-frame seq

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncTelemetryClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _recv(self):
        import struct as _struct

        head = await self.reader.readexactly(4)
        (hlen,) = _struct.unpack(">I", head)
        blob = await self.reader.readexactly(hlen)
        (plen,) = _struct.unpack(">I", await self.reader.readexactly(4))
        payload = await self.reader.readexactly(plen) if plen else b""
        return decode_frame(
            head + blob + _struct.pack(">I", plen) + payload
        )[:2]

    async def open(self, core_id: str, version: str | None = None,
                   t: int | None = None, priority: str | None = None,
                   deadline_ticks: int | None = None) -> str:
        self.writer.write(encode_frame(
            {"op": "open", "core": core_id, "version": version, "t": t,
             "priority": priority, "deadline_ticks": deadline_ticks}
        ))
        await self.writer.drain()
        header, _payload = await self._recv()
        if header["op"] == "error":
            raise ServeError(header["message"])
        self._seq[header["session"]] = 0
        return header["session"]

    async def send(self, session: str, toggles, last: bool = False) -> None:
        fields, payload = encode_array(np.asarray(toggles, dtype=np.uint8))
        seq = self._seq.get(session, 0)
        self.writer.write(encode_frame(
            {"op": "data", "session": session, "last": bool(last),
             "seq": seq, **fields},
            payload,
        ))
        await self.writer.drain()
        self._seq[session] = seq + 1

    async def ping(self, session: str | None = None) -> dict:
        """Keepalive round-trip; returns the pong header."""
        self.writer.write(encode_frame({"op": "ping", "session": session}))
        await self.writer.drain()
        header, _payload = await self._recv()
        if header.get("op") == "error":
            raise ServeError(header["message"])
        return header

    async def close_session(self, session: str) -> None:
        self.writer.write(encode_frame({"op": "close", "session": session}))
        await self.writer.drain()

    async def collect(self, session: str) -> tuple[np.ndarray, dict]:
        """Read until ``done``; returns (all windows mW, final stats).

        Verifies the server's windows-frame sequence numbers are
        contiguous, so a lost or re-ordered frame surfaces as a
        :class:`~repro.errors.ServeError` instead of silently missing
        readings.
        """
        chunks: list[np.ndarray] = []
        expect_seq = 0
        while True:
            header, payload = await self._recv()
            op = header.get("op")
            if op == "windows" and header.get("session") == session:
                seq = header.get("seq")
                if seq is not None:
                    if int(seq) != expect_seq:
                        raise ServeError(
                            f"session {session!r}: windows frame seq "
                            f"{seq} (expected {expect_seq}) — frame "
                            "lost or re-ordered"
                        )
                    expect_seq += 1
                chunks.append(decode_array(header, payload))
            elif op == "done" and header.get("session") == session:
                windows = (
                    np.concatenate(chunks)
                    if chunks else np.empty(0, dtype=np.float64)
                )
                return windows, header.get("stats", {})
            elif op == "error":
                raise ServeError(header["message"])

    async def aclose(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
