"""Self-checking fleet serving demo (the ``make serve-demo`` target).

Runs the whole serving story at tiny scale, in-process, in seconds:

1. publish two model generations (``v1`` active, ``v2`` staged) into a
   :class:`~repro.serve.registry.ModelRegistry`;
2. drive a 2-shard :class:`~repro.serve.gateway.Gateway` with a seeded
   closed-loop load (:mod:`repro.serve.loadgen`) — every chunk crosses
   the framed protocol via the in-process client;
3. **hot swap** to ``v2`` and **kill shard 0** mid-run, then drive a
   second load wave — new sessions pin ``v2``, the dead shard respawns
   with zero session loss;
4. build the :class:`~repro.serve.report.FleetReport` and self-check,
   bit-exactly:

   * every session's streamed T-window readings equal an offline
     :class:`~repro.opm.meter.OpmMeter` run over the same (re-planned,
     seeded) stimulus — ``np.array_equal``, no tolerance;
   * every session's integer energy accounting equals the offline
     per-cycle integer sum;
   * the report's fleet energy total equals the sum of the per-session
     offline totals (same expression, same order — float-equal).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.opm.meter import OpmMeter
from repro.opm.quantize import QuantizedModel
from repro.serve.gateway import Gateway
from repro.serve.loadgen import LoadGenConfig, plan, run_load
from repro.serve.registry import ModelRegistry
from repro.serve.report import build_report

__all__ = ["run_demo", "main"]

_Q = 6
_T = 8


def _make_model(seed: int, bits: int = 8) -> QuantizedModel:
    """A tiny synthetic quantized model (no RTL needed to serve)."""
    rng = np.random.default_rng(seed)
    limit = (1 << (bits - 1)) - 1
    return QuantizedModel(
        proxies=np.arange(_Q, dtype=np.int64),
        int_weights=rng.integers(1, limit, size=_Q).astype(np.int64),
        int_intercept=5,
        step=0.01,
        bits=bits,
    )


def run_demo(out_dir: str | Path, seed: int = 7) -> dict:
    """Run the serving demo; returns the report dict after self-checks."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    registry = ModelRegistry()
    registry.publish("v1", _make_model(seed), activate=True)
    registry.publish("v2", _make_model(seed + 1))

    gateway = Gateway(registry, n_shards=2, t=_T)

    wave1 = LoadGenConfig(
        n_sessions=4, cycles=192, chunk_cycles=32, seed=seed,
    )
    report1 = run_load(gateway, wave1)

    # Mid-run fleet events: stage the new model, lose a shard.
    gateway.swap_model("v2")
    gateway.kill_shard(0, reason="demo-injected death")

    wave2 = LoadGenConfig(
        n_sessions=4, cycles=192, chunk_cycles=32, seed=seed + 100,
    )
    report2 = run_load(gateway, wave2)

    fleet = build_report(gateway)
    _self_check(gateway, registry, [(wave1, report1), (wave2, report2)])

    report_json = out / "fleet-report.json"
    report_md = out / "fleet-report.md"
    report_json.write_text(json.dumps(fleet.to_dict(), indent=2) + "\n")
    report_md.write_text(fleet.render_markdown() + "\n")
    print(fleet.render_markdown())
    print(f"\n# report: {report_json}", file=sys.stderr)
    print(f"# report: {report_md}", file=sys.stderr)
    return fleet.to_dict()


def _self_check(gateway, registry, waves) -> None:
    """Exact (bit-level) agreement between served and offline readings."""
    handles = list(gateway.handles.values())
    expected_versions = ["v1"] * 4 + ["v2"] * 4
    got_versions = [h.version for h in handles]
    if got_versions != expected_versions:
        raise AssertionError(
            f"hot swap pinning broke: {got_versions} != "
            f"{expected_versions}"
        )
    if not any(s.respawns >= 1 for s in gateway.shards):
        raise AssertionError("killed shard never respawned")

    cursor = 0
    offline_total = 0.0
    for cfg, load in waves:
        q = registry.get("v1").q
        plans = plan(cfg, q)
        for p in plans:
            handle = handles[cursor]
            cursor += 1
            meter = registry.meter(handle.version, _T)
            stim = p.stimulus
            # 1) streamed windows == offline meter, bit for bit
            offline_windows = meter.read(stim)
            streamed = load.readings[handle.name]
            if not np.array_equal(streamed, offline_windows):
                raise AssertionError(
                    f"{handle.name}: streamed windows diverge from "
                    f"offline OpmMeter"
                )
            # 2) integer energy accounting is exact
            per_cycle = meter.per_cycle(stim)
            offline_int = int(per_cycle.sum())
            if handle.attributed_sum_int != offline_int:
                raise AssertionError(
                    f"{handle.name}: attributed integer sum "
                    f"{handle.attributed_sum_int} != offline "
                    f"{offline_int}"
                )
            if handle.session.cycles_processed != stim.shape[0]:
                raise AssertionError(
                    f"{handle.name}: cycle loss "
                    f"({handle.session.cycles_processed} of "
                    f"{stim.shape[0]})"
                )
            offline_total += offline_int * meter.qmodel.step
    # 3) report totals equal the per-session offline sum exactly
    from repro.serve.report import build_report as _rebuild

    fleet = _rebuild(gateway)
    if fleet.total_energy_mwc != offline_total:
        raise AssertionError(
            f"fleet energy {fleet.total_energy_mwc!r} != offline "
            f"{offline_total!r}"
        )
    print(
        f"# self-check passed: {len(handles)} sessions bit-identical "
        f"to offline, fleet energy {fleet.total_energy_mwc:.4f} "
        f"mW-cycles exact",
        file=sys.stderr,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="self-checking fleet serving demo "
        "(loadgen -> sharded gateway -> fleet report)"
    )
    parser.add_argument(
        "--out", default="results/serve-demo",
        help="output directory for fleet-report.json / fleet-report.md",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    run_demo(args.out, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
