"""Self-checking fleet serving demo (the ``make serve-demo`` target).

Runs the whole serving story at tiny scale, in-process, in seconds:

1. publish two model generations (``v1`` active, ``v2`` staged) into a
   :class:`~repro.serve.registry.ModelRegistry`;
2. drive a 2-shard :class:`~repro.serve.gateway.Gateway` with a seeded
   closed-loop load (:mod:`repro.serve.loadgen`) — every chunk crosses
   the framed protocol via the in-process client;
3. **hot swap** to ``v2`` and **kill shard 0** mid-run, then drive a
   second load wave — new sessions pin ``v2``, the dead shard respawns
   with zero session loss;
4. build the :class:`~repro.serve.report.FleetReport` and self-check,
   bit-exactly:

   * every session's streamed T-window readings equal an offline
     :class:`~repro.opm.meter.OpmMeter` run over the same (re-planned,
     seeded) stimulus — ``np.array_equal``, no tolerance;
   * every session's integer energy accounting equals the offline
     per-cycle integer sum;
   * the report's fleet energy total equals the sum of the per-session
     offline totals (same expression, same order — float-equal).

The run is fully observed: a real :class:`~repro.obs.trace.Tracer`
(the Chrome export lands next to the reports), a two-process
:class:`~repro.parallel.pool.WorkerPool` for the batched GEMV, and a
:class:`~repro.obs.flightrec.FlightRecorder` whose post-mortem fires at
the injected shard death.  Two extra self-checks ride on that:

   * the post-mortem JSON exists, loads, and the power readings it
     recorded for the first wave equal the offline meter bit for bit —
     dead-shard evidence is trustworthy evidence;
   * the exported trace contains at least one tick whose span tree
     links ``client.tick -> serve.tick -> serve.shard.gather ->
     serve.gemv.task`` under a single trace id — one client tick, one
     connected cross-process trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.obs.flightrec import FlightRecorder, load_postmortem
from repro.obs.trace import Tracer, load_trace
from repro.opm.meter import OpmMeter
from repro.opm.quantize import QuantizedModel
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import HAVE_SHM, leaked_segments
from repro.serve.gateway import Gateway
from repro.serve.loadgen import LoadGenConfig, plan, run_load
from repro.serve.registry import ModelRegistry
from repro.serve.report import build_report

__all__ = ["run_demo", "main"]

_Q = 6
_T = 8


def _make_model(seed: int, bits: int = 8) -> QuantizedModel:
    """A tiny synthetic quantized model (no RTL needed to serve)."""
    rng = np.random.default_rng(seed)
    limit = (1 << (bits - 1)) - 1
    return QuantizedModel(
        proxies=np.arange(_Q, dtype=np.int64),
        int_weights=rng.integers(1, limit, size=_Q).astype(np.int64),
        int_intercept=5,
        step=0.01,
        bits=bits,
    )


def run_demo(
    out_dir: str | Path, seed: int = 7, transport: str = "pickle"
) -> dict:
    """Run the serving demo; returns the report dict after self-checks.

    ``transport`` selects the pool's data plane (``"pickle"`` or
    ``"shm"``); every self-check is transport-independent, so a caller
    running both and comparing the returned dicts proves the zero-copy
    path bit-identical to the portable one — hot swap and shard death
    included (:func:`main` does exactly that).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    registry = ModelRegistry()
    registry.publish("v1", _make_model(seed), activate=True)
    registry.publish("v2", _make_model(seed + 1))

    tracer = Tracer()
    recorder = FlightRecorder(capacity=512)
    pool = WorkerPool(workers=2, tracer=tracer, transport=transport)
    try:
        gateway = Gateway(
            registry,
            n_shards=2,
            t=_T,
            pool=pool,
            tracer=tracer,
            flight_recorder=recorder,
            postmortem_dir=out,
        )

        wave1 = LoadGenConfig(
            n_sessions=4, cycles=192, chunk_cycles=32, seed=seed,
        )
        report1 = run_load(gateway, wave1)

        # Mid-run fleet events: stage the new model, lose a shard.
        # The kill demotes shard 0's health, which triggers the flight
        # recorder's post-mortem dump into ``out``.
        gateway.swap_model("v2")
        gateway.kill_shard(0, reason="demo-injected death")

        wave2 = LoadGenConfig(
            n_sessions=4, cycles=192, chunk_cycles=32, seed=seed + 100,
        )
        report2 = run_load(gateway, wave2)
    finally:
        pool.close()
    if transport == "shm" and leaked_segments():
        raise AssertionError(
            f"leaked shared-memory segments after pool close: "
            f"{leaked_segments()}"
        )

    trace_path = tracer.to_chrome(out / "trace.json")

    fleet = build_report(gateway)
    _self_check(gateway, registry, [(wave1, report1), (wave2, report2)])
    _check_postmortem(out / "postmortem-shard-0-failed.json",
                      registry, wave1)
    _check_trace_chain(trace_path)

    report_json = out / "fleet-report.json"
    report_md = out / "fleet-report.md"
    report_json.write_text(json.dumps(fleet.to_dict(), indent=2) + "\n")
    report_md.write_text(fleet.render_markdown() + "\n")
    print(fleet.render_markdown())
    print(f"\n# report: {report_json}", file=sys.stderr)
    print(f"# report: {report_md}", file=sys.stderr)
    print(f"# trace:  {trace_path}", file=sys.stderr)
    return fleet.to_dict()


def _self_check(gateway, registry, waves) -> None:
    """Exact (bit-level) agreement between served and offline readings."""
    handles = list(gateway.handles.values())
    expected_versions = ["v1"] * 4 + ["v2"] * 4
    got_versions = [h.version for h in handles]
    if got_versions != expected_versions:
        raise AssertionError(
            f"hot swap pinning broke: {got_versions} != "
            f"{expected_versions}"
        )
    if not any(s.respawns >= 1 for s in gateway.shards):
        raise AssertionError("killed shard never respawned")

    cursor = 0
    offline_total = 0.0
    for cfg, load in waves:
        q = registry.get("v1").q
        plans = plan(cfg, q)
        for p in plans:
            handle = handles[cursor]
            cursor += 1
            meter = registry.meter(handle.version, _T)
            stim = p.stimulus
            # 1) streamed windows == offline meter, bit for bit
            offline_windows = meter.read(stim)
            streamed = load.readings[handle.name]
            if not np.array_equal(streamed, offline_windows):
                raise AssertionError(
                    f"{handle.name}: streamed windows diverge from "
                    f"offline OpmMeter"
                )
            # 2) integer energy accounting is exact
            per_cycle = meter.per_cycle(stim)
            offline_int = int(per_cycle.sum())
            if handle.attributed_sum_int != offline_int:
                raise AssertionError(
                    f"{handle.name}: attributed integer sum "
                    f"{handle.attributed_sum_int} != offline "
                    f"{offline_int}"
                )
            if handle.session.cycles_processed != stim.shape[0]:
                raise AssertionError(
                    f"{handle.name}: cycle loss "
                    f"({handle.session.cycles_processed} of "
                    f"{stim.shape[0]})"
                )
            offline_total += offline_int * meter.qmodel.step
    # 3) report totals equal the per-session offline sum exactly
    from repro.serve.report import build_report as _rebuild

    fleet = _rebuild(gateway)
    if fleet.total_energy_mwc != offline_total:
        raise AssertionError(
            f"fleet energy {fleet.total_energy_mwc!r} != offline "
            f"{offline_total!r}"
        )
    print(
        f"# self-check passed: {len(handles)} sessions bit-identical "
        f"to offline, fleet energy {fleet.total_energy_mwc:.4f} "
        f"mW-cycles exact",
        file=sys.stderr,
    )


def _check_postmortem(path: Path, registry, wave1: LoadGenConfig) -> None:
    """The injected shard death must leave trustworthy evidence.

    The dump fired at :meth:`Gateway.kill_shard`, so its rings hold the
    first wave only; every power reading recorded in the shard lanes
    must equal the offline meter bit for bit.
    """
    if not path.exists():
        raise AssertionError(f"no post-mortem at {path}")
    doc = load_postmortem(path)
    if "shard-0" not in doc["reason"]:
        raise AssertionError(
            f"post-mortem reason does not name the dead shard: "
            f"{doc['reason']!r}"
        )
    recorded: dict[str, list] = {}
    for lane, events in doc["lanes"].items():
        for ev in events:
            if ev.get("kind") == "windows":
                recorded.setdefault(ev["session"], []).extend(
                    ev["windows"]
                )
    if not recorded:
        raise AssertionError("post-mortem recorded no power readings")
    q = registry.get("v1").q
    plans = plan(wave1, q)
    meter = registry.meter("v1", _T)
    for i, p in enumerate(plans):
        name = f"{p.core_id}#{i}"
        offline = meter.read(p.stimulus)
        got = np.asarray(recorded.get(name, []), dtype=np.float64)
        if not np.array_equal(got, offline):
            raise AssertionError(
                f"post-mortem readings for {name} diverge from the "
                f"offline meter ({got.size} vs {offline.size} windows)"
            )
    print(
        f"# post-mortem check passed: {path.name} holds bit-exact "
        f"readings for {len(plans)} sessions",
        file=sys.stderr,
    )


def _check_trace_chain(trace_path: Path) -> None:
    """One client tick must render as one connected cross-process tree:
    ``client.tick -> serve.tick -> serve.shard.gather ->
    serve.gemv.task`` all under a single trace id."""
    roots = load_trace(trace_path)
    by_id = {}

    def index(span):
        by_id[span.span_id] = span
        for c in span.children:
            index(c)

    for r in roots:
        index(r)

    chain = ("client.tick", "serve.tick", "serve.shard.gather",
             "serve.gemv.task")
    for span in by_id.values():
        if span.name != chain[-1]:
            continue
        walk = span
        names = [walk.name]
        while walk.parent_id is not None and walk.parent_id in by_id:
            walk = by_id[walk.parent_id]
            names.append(walk.name)
        names.reverse()
        if (
            tuple(names[-len(chain):]) == chain
            and len({by_id[s].trace_id for s in _chain_ids(span, by_id)})
            == 1
        ):
            print(
                f"# trace check passed: {' -> '.join(chain)} connected "
                f"under trace {span.trace_id}",
                file=sys.stderr,
            )
            return
    raise AssertionError(
        f"no connected {' -> '.join(chain)} chain in {trace_path}"
    )


def _chain_ids(span, by_id) -> list[int]:
    ids = [span.span_id]
    while span.parent_id is not None and span.parent_id in by_id:
        span = by_id[span.parent_id]
        ids.append(span.span_id)
    return ids


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="self-checking fleet serving demo "
        "(loadgen -> sharded gateway -> fleet report)"
    )
    parser.add_argument(
        "--out", default="results/serve-demo",
        help="output directory for fleet-report.json / fleet-report.md",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--transport", choices=("pickle", "shm", "both"), default="both",
        help="pool data plane; 'both' runs the demo twice and asserts "
        "the fleet reports are identical across transports",
    )
    args = parser.parse_args(argv)
    if args.transport != "both":
        run_demo(args.out, seed=args.seed, transport=args.transport)
        return 0
    # The full contract: the same seeded run on both data planes —
    # through the hot swap and the injected shard death — must produce
    # the same fleet report, field for field.  (Each run has already
    # proven itself bit-identical to the offline meter; this comparison
    # pins the two transports to each other as well.)
    fleet_pickle = run_demo(args.out, seed=args.seed, transport="pickle")
    if not HAVE_SHM:
        print(
            "# shm transport unavailable on this platform; pickle-only "
            "demo passed",
            file=sys.stderr,
        )
        return 0
    fleet_shm = run_demo(args.out, seed=args.seed, transport="shm")
    if fleet_pickle != fleet_shm:
        raise AssertionError(
            "fleet reports diverge between pickle and shm transports"
        )
    print(
        "# transport check passed: pickle and shm fleet reports are "
        "identical (swap + shard death included)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
