"""Sharded session placement with health-driven drain and respawn.

A :class:`Shard` is one :class:`~repro.stream.session.StreamService`
plus a :class:`~repro.resilience.retry.HealthState`; the
:class:`ShardRouter` places sessions on shards by a *stable* hash of
``(core id, model version)`` — sha256, not Python's salted ``hash`` —
so the same fleet always routes the same way.

Failure model (deterministic, test-injectable via :meth:`Shard.kill`):

* a **failed** shard is skipped by the tick loop (it stops pumping and
  draining) and **drains** for routing — new sessions probe the next
  shards in ring order;
* at the start of the next tick the router **respawns** it: a fresh
  ``StreamService`` is built around the *same* session objects, whose
  state (queues, open OPM windows, rings) lives outside the service —
  so nothing is lost beyond what drop-oldest backpressure discards
  while the shard was down (zero for pull sources, bounded by the push
  buffer depth for push sessions).  Readings remain bit-identical to an
  uninterrupted run whenever nothing was dropped.

Inference reuse of :mod:`repro.parallel`: the per-shard batched GEMV is
a pure function of ``(int weights, intercept, stacked toggles)``, so a
:class:`~repro.parallel.pool.WorkerPool` can run each shard's groups in
a separate process with bit-identical results; :func:`infer_task` is the
module-level (picklable) worker.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.parallel.shm import ShmRef, WeightRef, attach_view, resident_weights
from repro.resilience.retry import HealthState
from repro.stream.session import StreamService, StreamSession

__all__ = [
    "Shard",
    "ShardRouter",
    "ShmGemvTask",
    "infer_task",
    "serve_gemv_task",
]


#: Rows per GEMV block: 256 rows of a few-thousand-column uint8 stack fit
#: comfortably in L2 once widened, where a whole-stack ``astype`` would
#: stream an 8x-size intermediate through RAM.
_GEMV_BLOCK = 256


def _gemv(stacked: np.ndarray, int_weights, int_intercept) -> np.ndarray:
    """The OPM integer GEMV, cache-blocked, bit-identical to int64 math.

    Widening a ``(rows, q)`` uint8 stack to int64 before the matmul
    materialises an 8x-size intermediate; blocking the widen+dot over
    row tiles keeps the wide copy resident in cache.  For uint8 stacks
    whose worst-case dot product fits in float64's exact-integer range
    (``q * 255 * max|w| + |intercept| < 2**53`` — every partial sum is
    then an exactly-representable integer, so BLAS reassociation cannot
    round), the tile runs as a float64 dgemv; otherwise it runs in
    int64.  Both paths equal :meth:`OpmMeter.per_cycle`'s arithmetic to
    the bit, so every dispatch flavor matches inline inference.
    """
    if stacked.ndim != 2:
        stacked = np.atleast_2d(stacked)
    rows, q = (int(n) for n in stacked.shape)
    w64 = np.asarray(int_weights).astype(np.int64, copy=False)
    out = np.empty(rows, dtype=np.int64)
    if stacked.dtype == np.uint8 and w64.size:
        bound = q * 255 * int(np.abs(w64).max()) + abs(int(int_intercept))
        if bound < (1 << 53):
            wf = w64.astype(np.float64)
            buf = np.empty((min(_GEMV_BLOCK, rows), q), dtype=np.float64)
            acc = np.empty(rows, dtype=np.float64)
            for j in range(0, rows, _GEMV_BLOCK):
                blk = stacked[j : j + _GEMV_BLOCK]
                n = len(blk)
                if n == len(buf):
                    np.copyto(buf, blk)
                    np.dot(buf, wf, out=acc[j : j + n])
                else:
                    np.dot(blk.astype(np.float64), wf, out=acc[j : j + n])
            np.add(acc, float(int_intercept), out=acc)
            return acc.astype(np.int64)
    for j in range(0, rows, _GEMV_BLOCK):
        blk = stacked[j : j + _GEMV_BLOCK]
        np.dot(
            blk.astype(np.int64, copy=False), w64, out=out[j : j + len(blk)]
        )
    out += np.int64(int_intercept)
    return out


def infer_task(payload) -> np.ndarray:
    """One shard group's integer GEMV, as a picklable pool task.

    ``payload`` is ``(int_weights, int_intercept, stacked_toggles)`` —
    the portable (pickle-transport) envelope, arrays and all.
    """
    int_weights, int_intercept, stacked = payload
    return _gemv(stacked, int_weights, int_intercept)


@dataclass(frozen=True)
class ShmGemvTask:
    """Descriptor-only GEMV envelope for the shm transport (~300 B).

    ``stacked`` names the request-arena region holding the fused toggle
    matrix, ``weights`` the digest-addressed resident weights, and
    ``out`` a parent-preallocated result-arena region the worker writes
    the per-cycle integers into — so the pipe carries descriptors both
    ways and the arrays never leave shared memory.
    """

    stacked: ShmRef
    weights: WeightRef
    out: ShmRef


def serve_gemv_task(payload):
    """Pool task for serve-tick inference on either transport.

    Tuples take the pickle path (:func:`infer_task`); a
    :class:`ShmGemvTask` maps its descriptors to shared-memory views,
    runs the same GEMV, and writes the result through the ``out`` view.
    Returns the result array for tuples, and a ``(rows, weight_hit)``
    receipt for shm tasks (the numbers come back through the arena).
    Runs identically in a worker or in the parent (serial fallback).
    """
    if isinstance(payload, ShmGemvTask):
        stacked = attach_view(payload.stacked)
        weights, intercept, hit = resident_weights(payload.weights)
        out = attach_view(payload.out)
        out[:] = _gemv(stacked, weights, intercept)
        return len(out), hit
    return infer_task(payload)


class Shard:
    """One slice of the fleet: a stream service with health."""

    def __init__(
        self,
        index: int,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.index = index
        self.metrics = registry or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self.lane = f"shard-{index}"
        self.tracer.register_lane(self.lane)
        self.health = HealthState()
        self.respawns = 0
        #: Context of the most recent gather span, so the gateway can
        #: parent pooled GEMV worker spans under this shard's gather.
        self.last_gather_ctx = None
        self.service = self._fresh_service([])

    def _fresh_service(self, sessions: list[StreamSession]) -> StreamService:
        return StreamService(
            None,
            sessions,
            registry=self.metrics,
            tracer=self.tracer,
            allow_empty=True,
        )

    # -------------------------------------------------------------- #
    @property
    def sessions(self) -> list[StreamSession]:
        return self.service.sessions

    @property
    def accepting(self) -> bool:
        """Whether the router may place new sessions here."""
        return not self.health.failed

    def add_session(self, session: StreamSession) -> None:
        if not self.accepting:
            raise ServeError(
                f"shard {self.index} is draining (failed: "
                f"{self.health.reason})"
            )
        self.service.add_session(session)

    def kill(self, reason: str = "injected shard death") -> None:
        """Mark the shard dead; the next tick skips it, then respawns."""
        self.health.fail(reason)

    def respawn(self) -> None:
        """Replace the failed service, reattaching every session.

        Session state lives in the session objects, so the rebuilt
        service resumes exactly where the dead one stopped.
        """
        if not self.health.failed:
            return
        self.service = self._fresh_service(list(self.sessions))
        self.health.reset(f"respawned after: {self.health.reason}")
        self.respawns += 1

    # -------------------------------------------------------------- #
    # Tick phases (driven by the gateway): gather returns this shard's
    # pending inference groups; apply scatters results and closes the
    # shard's step.  A failed shard gathers nothing.
    # -------------------------------------------------------------- #
    def gather(self) -> list:
        if self.health.failed:
            return []
        with self.tracer.span(
            "serve.shard.gather", lane=self.lane, shard=self.index
        ) as sp:
            self.last_gather_ctx = sp.ctx if sp else None
            self.service.pump_all()
            groups = self.service.gather_pending()
            if sp:
                sp.set(groups=len(groups))
        return groups

    def apply(self, groups: list, results: list[np.ndarray], t0: float) -> bool:
        if self.health.failed:
            # Killed between gather and apply: the inferred results are
            # discarded, but the gathered blocks must not be — requeue
            # every session's in-flight blocks so the respawned shard
            # re-infers them.  Inference is a pure function of the
            # blocks, so the replay re-emits bit-identical readings
            # with zero sequence gaps (loss-free failover).
            requeued = 0
            for _meter, picks, _mats in groups:
                for sess, _blocks in picks:
                    requeued += sess.requeue_inflight()
            if requeued:
                self.metrics.counter("serve.shard.requeued_blocks").inc(
                    requeued
                )
            return any(not s.done for s in self.sessions)
        with self.tracer.span(
            "serve.shard.apply", lane=self.lane, shard=self.index
        ):
            for (_meter, picks, _mats), per_cycle in zip(groups, results):
                self.service.scatter(picks, per_cycle)
            return self.service.finish_step(t0)

    def stats(self) -> dict:
        return {
            "index": self.index,
            "health": self.health.as_dict(),
            "respawns": self.respawns,
            "n_sessions": len(self.sessions),
            "n_live": sum(1 for s in self.sessions if not s.done),
        }


class ShardRouter:
    """Stable (core id, model version) -> shard placement."""

    def __init__(self, shards: list[Shard]) -> None:
        if not shards:
            raise ServeError("router needs at least one shard")
        self.shards = shards

    @staticmethod
    def slot(core_id: str, version: str, n: int) -> int:
        """Deterministic hash slot — stable across processes/runs."""
        digest = hashlib.sha256(
            f"{core_id}|{version}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % n

    def shard_for(self, core_id: str, version: str) -> Shard:
        """The session's shard; failed shards drain to the next in ring
        order.  All shards failed is a hard error (nothing can accept)."""
        n = len(self.shards)
        start = self.slot(core_id, version, n)
        for k in range(n):
            shard = self.shards[(start + k) % n]
            if shard.accepting:
                return shard
        raise ServeError("every shard is failed; fleet cannot accept")

    def respawn_dead(self) -> int:
        """Respawn every failed shard; returns how many came back."""
        n = 0
        for shard in self.shards:
            if shard.health.failed:
                shard.respawn()
                n += 1
        return n
