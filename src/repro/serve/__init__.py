"""Fleet-scale OPM telemetry serving (gateway, shards, registry).

The offline and streaming layers answer "what does this core draw";
this package answers it for a *fleet*: many concurrent telemetry
sessions, multiplexed over a small framed protocol into sharded
:class:`~repro.stream.session.StreamService` workers, metering with
versioned models that can be hot-swapped without touching in-flight
sessions — the high-volume deployment story of the APOLLO paper
(millions of shipped cores reporting through one introspection plane).

* :mod:`repro.serve.registry` — versioned model store, atomic
  activation, per-``(version, T)`` meter cache;
* :mod:`repro.serve.shard` — health-driven shard lifecycle
  (drain -> respawn) and stable sha256 session routing;
* :mod:`repro.serve.protocol` — the length-prefixed JSON+binary frame
  encoding shared by the TCP transport and the in-process client;
* :mod:`repro.serve.gateway` — the front door: sessions, ticks,
  hot swap, fault injection, fleet snapshots;
* :mod:`repro.serve.loadgen` — seeded open/closed-loop load driver;
* :mod:`repro.serve.report` — ranked fleet rollups (JSON + markdown)
  with exact integer power accounting.

Everything stays bit-identical to a single-process
:class:`~repro.stream.session.StreamService` run: sharding, batching,
worker pools and hot swap never touch the per-session integer math.
"""

from __future__ import annotations

from repro.serve.admission import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_CRITICAL,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.gateway import (
    AsyncTelemetryClient,
    Gateway,
    GatewayServer,
    InprocClient,
    PushSource,
    SessionHandle,
)
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadReport,
    SessionPlan,
    plan,
    run_load,
)
from repro.serve.protocol import (
    FrameBuffer,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
)
from repro.serve.registry import ModelRegistry
from repro.serve.report import FleetReport, build_report
from repro.serve.shard import Shard, ShardRouter, infer_task

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "PRIORITY_CRITICAL",
    "PRIORITY_BEST_EFFORT",
    "AsyncTelemetryClient",
    "Gateway",
    "GatewayServer",
    "InprocClient",
    "PushSource",
    "SessionHandle",
    "LoadGenConfig",
    "LoadReport",
    "SessionPlan",
    "plan",
    "run_load",
    "FrameBuffer",
    "encode_frame",
    "decode_frame",
    "encode_array",
    "decode_array",
    "ModelRegistry",
    "FleetReport",
    "build_report",
    "Shard",
    "ShardRouter",
    "infer_task",
]
