"""Small framed telemetry protocol for the serve gateway.

One frame is::

    u32 header_len | header JSON (utf-8) | u32 payload_len | payload

Headers are flat JSON objects with an ``op`` field; binary payloads
carry numpy arrays described by ``dtype``/``shape`` header fields, so a
toggle chunk crosses the wire as raw bytes, not JSON numbers.  The same
encoding is used by the asyncio transport and by the in-process client
(which round-trips frames through ``bytes`` to keep the two paths
honest with each other).

Client -> gateway ops: ``open``, ``data``, ``close``, ``stats``,
``ping`` (keepalive — refreshes the session's idle-reaping clock).
Gateway -> client ops: ``opened``, ``windows``, ``done``, ``stats``,
``pong``, ``error``.

Resilience header fields (all optional — old clients interoperate):

* ``open`` may carry ``priority`` (``"critical"``/``"besteffort"``,
  the admission shed class) and ``deadline_ticks`` (the session's
  tick budget before pending work downgrades to the degraded T-cycle
  fallback);
* ``data`` may carry ``seq``, a per-session 0-based data-frame
  counter the gateway verifies for contiguity — a lost or re-ordered
  frame is rejected, never silently folded in;
* ``windows`` carries ``seq``, the matching server-side counter
  clients verify in ``collect``;
* ``error`` carries ``shed: true`` plus a machine-readable ``reason``
  when the admission layer dropped the request (back off and retry),
  as opposed to a malformed-request error.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ServeError

__all__ = [
    "encode_frame",
    "decode_frame",
    "encode_array",
    "decode_array",
    "FrameBuffer",
    "MAX_FRAME_BYTES",
]

_U32 = struct.Struct(">I")

#: Upper bound on a single frame (header + payload) — a malformed or
#: hostile length prefix fails fast instead of allocating gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: dtypes a DATA payload may carry (toggles in, readings out).
_ALLOWED_DTYPES = {"uint8", "int64", "float64"}


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame to bytes."""
    if "op" not in header:
        raise ServeError(f"frame header needs an 'op' field: {header}")
    blob = json.dumps(header, separators=(",", ":")).encode()
    if len(blob) + len(payload) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(blob) + len(payload)} bytes exceeds "
            f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _U32.pack(len(blob)) + blob + _U32.pack(len(payload)) + payload


def decode_frame(data: bytes) -> tuple[dict, bytes, int]:
    """Decode one frame from ``data``.

    Returns ``(header, payload, consumed)``; raises
    :class:`~repro.errors.ServeError` on a malformed frame and
    ``IndexError``-free ``(None, b"", 0)`` is *not* used — callers
    wanting incremental parsing should use :class:`FrameBuffer`.
    """
    if len(data) < 4:
        raise ServeError("truncated frame: missing header length")
    (hlen,) = _U32.unpack_from(data, 0)
    if hlen > MAX_FRAME_BYTES:
        raise ServeError(f"frame header length {hlen} exceeds bound")
    if len(data) < 4 + hlen + 4:
        raise ServeError("truncated frame: incomplete header")
    try:
        header = json.loads(data[4 : 4 + hlen].decode())
    except ValueError as exc:
        raise ServeError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or "op" not in header:
        raise ServeError(f"frame header must be an object with 'op'")
    (plen,) = _U32.unpack_from(data, 4 + hlen)
    if plen > MAX_FRAME_BYTES:
        raise ServeError(f"frame payload length {plen} exceeds bound")
    end = 4 + hlen + 4 + plen
    if len(data) < end:
        raise ServeError("truncated frame: incomplete payload")
    return header, bytes(data[4 + hlen + 4 : end]), end


def encode_array(arr: np.ndarray) -> tuple[dict, bytes]:
    """Array -> (header fields, payload bytes)."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.name not in _ALLOWED_DTYPES:
        raise ServeError(
            f"dtype {arr.dtype.name!r} not allowed on the wire "
            f"(use one of {sorted(_ALLOWED_DTYPES)})"
        )
    return (
        {"dtype": arr.dtype.name, "shape": list(arr.shape)},
        arr.tobytes(),
    )


def decode_array(header: dict, payload: bytes) -> np.ndarray:
    """(header fields, payload bytes) -> array, validated."""
    dtype = header.get("dtype")
    shape = header.get("shape")
    if dtype not in _ALLOWED_DTYPES:
        raise ServeError(f"frame dtype {dtype!r} not allowed")
    if not isinstance(shape, list) or not all(
        isinstance(d, int) and d >= 0 for d in shape
    ):
        raise ServeError(f"frame shape {shape!r} is not a valid shape")
    arr = np.frombuffer(payload, dtype=np.dtype(dtype))
    expect = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if arr.size != expect:
        raise ServeError(
            f"frame payload holds {arr.size} elements, shape {shape} "
            f"needs {expect}"
        )
    return arr.reshape(shape)


class FrameBuffer:
    """Incremental frame parser for a byte stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[dict, bytes]]:
        """Append bytes; return every complete frame now available."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < 4:
                break
            (hlen,) = _U32.unpack_from(self._buf, 0)
            if hlen > MAX_FRAME_BYTES:
                raise ServeError(
                    f"frame header length {hlen} exceeds bound"
                )
            if len(self._buf) < 4 + hlen + 4:
                break
            (plen,) = _U32.unpack_from(self._buf, 4 + hlen)
            if len(self._buf) < 4 + hlen + 4 + plen:
                break
            header, payload, consumed = decode_frame(bytes(self._buf))
            del self._buf[:consumed]
            frames.append((header, payload))
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
