"""Exception hierarchy for the APOLLO reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses group errors by the
subsystem that raised them.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistError",
    "SimulationError",
    "StimulusError",
    "PowerModelError",
    "SelectionError",
    "DatasetError",
    "IsaError",
    "OpmError",
    "ObsError",
    "StreamError",
    "ServeError",
    "AdmissionError",
    "ExperimentError",
    "ParallelError",
    "ResilienceError",
    "CheckpointError",
    "CacheCorruptionError",
    "TransientFault",
    "BreakerOpenError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class NetlistError(ReproError):
    """Raised for malformed netlists (bad fanin, combinational loops, ...)."""


class SimulationError(ReproError):
    """Raised when RTL simulation cannot proceed."""


class StimulusError(SimulationError):
    """Raised when stimulus does not match a design's input ports."""


class IsaError(ReproError):
    """Raised for malformed instructions or assembly text."""


class DatasetError(ReproError):
    """Raised when feature/label collection produces inconsistent data."""


class PowerModelError(ReproError):
    """Raised by power-model training or inference."""


class SelectionError(PowerModelError):
    """Raised when proxy selection cannot satisfy the request."""


class OpmError(ReproError):
    """Raised by OPM construction, quantization, or simulation."""


class ObsError(ReproError):
    """Raised by the observability layer (tracing, provenance)."""


class StreamError(ReproError):
    """Raised by the streaming introspection pipeline."""


class ServeError(StreamError):
    """Raised by the fleet serving layer (gateway, shards, registry).

    Derives from :class:`StreamError` so existing stream-level error
    handling (the CLI, the service tests) catches serving failures
    without new except clauses."""


class AdmissionError(ServeError):
    """Raised when the serving admission layer sheds a request.

    Carries a machine-readable ``reason`` (``"open_rate"``,
    ``"live_sessions"``, ``"push_rate"``, ``"queue_depth"``,
    ``"latency"``) so clients and the wire protocol can distinguish
    *shed* (retry later, the service is protecting itself) from
    *rejected* (the request itself is malformed)."""

    def __init__(self, message: str, reason: str = "shed") -> None:
        super().__init__(message)
        self.reason = reason


class ExperimentError(ReproError):
    """Raised by experiment drivers (bad ids, missing artifacts, ...)."""


class ParallelError(ReproError):
    """Raised by the parallel execution layer (pool/cache misuse)."""


class ResilienceError(ReproError):
    """Raised by the resilience layer (checkpointing, retries, faults)."""


class CheckpointError(ResilienceError):
    """Raised for missing, corrupt, or incompatible checkpoints."""


class CacheCorruptionError(ResilienceError):
    """Raised (in strict mode) when a disk cache entry fails to decode."""


class TransientFault(ResilienceError):
    """A recoverable injected or transient fault; retry policies treat
    it as retryable by default."""


class BreakerOpenError(ResilienceError):
    """Raised when a :class:`~repro.resilience.breaker.CircuitBreaker`
    fast-fails a call because the protected dependency is tripped.

    Deliberately *not* a :class:`TransientFault` subclass: retry
    policies must not spin on an open breaker — the breaker itself
    decides when a probe is allowed again."""
