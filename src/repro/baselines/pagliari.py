"""The Lasso baseline of Pagliari et al. [53].

Identical pipeline to APOLLO except the sparsity-inducing penalty is Lasso
— the paper's head-to-head for Figs. 10, 12, 13, 14.  Selection *and* the
final model come from the Lasso fit (no MCP, same ridge relaxation for a
fair comparison of the selected sets).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ApolloModel, train_apollo
from repro.core.selection import ProxySelector

__all__ = ["train_lasso_baseline"]


def train_lasso_baseline(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    candidate_ids: np.ndarray | None = None,
    screen_width: int | None = 2400,
    ridge_lam: float = 1e-3,
) -> ApolloModel:
    """Train the [53]-style model: Lasso selection + linear refit."""
    selector = ProxySelector(penalty="lasso", screen_width=screen_width)
    return train_apollo(
        X,
        y,
        q,
        candidate_ids=candidate_ids,
        selector=selector,
        ridge_lam=ridge_lam,
    )
