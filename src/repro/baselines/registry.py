"""Method metadata for the comparison tables (Tables 1, 3, 5).

Each entry captures how the paper characterizes a method: proxy-selection
style, preprocessing, model class, temporal resolution, hardware cost
scaling (counters/multipliers as functions of Q — Table 3), and overhead
notes.  The APOLLO rows' overhead numbers are *measured* by the experiment
drivers rather than hard-coded here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MethodInfo", "METHODS"]


@dataclass(frozen=True)
class MethodInfo:
    """Static description of one power-modeling method."""

    key: str
    display: str
    citation: str
    category: str  # design-time | runtime | both
    proxy_selection: str
    preprocessing: str
    ml_model: str
    temporal_resolution: str
    # Hardware cost scaling with Q proxies (Table 3); None = not a
    # hardware monitor.
    counters: str | None = None
    multipliers: str | None = None
    overhead_note: str = ""

    def counter_count(self, q: int, m: int | None = None) -> int | None:
        return _eval_scaling(self.counters, q, m)

    def multiplier_count(self, q: int, m: int | None = None) -> int | None:
        return _eval_scaling(self.multipliers, q, m)


def _eval_scaling(expr: str | None, q: int, m: int | None) -> int | None:
    if expr is None:
        return None
    if expr == "0":
        return 0
    if expr == "1":
        return 1
    if expr == "Q":
        return q
    if expr == "Q^2":
        return q * q
    if expr == "M":
        return m if m is not None else -1
    raise ValueError(f"unknown scaling {expr!r}")


METHODS: dict[str, MethodInfo] = {
    "apollo": MethodInfo(
        key="apollo",
        display="APOLLO (per-cycle)",
        citation="this work",
        category="both",
        proxy_selection="MCP",
        preprocessing="-",
        ml_model="Ridge (relaxed linear)",
        temporal_resolution="per-cycle",
        counters="1",
        multipliers="0",
        overhead_note="measured by opm.cost (target < 1%)",
    ),
    "apollo_tau": MethodInfo(
        key="apollo_tau",
        display="APOLLO (multi-cycle)",
        citation="this work",
        category="both",
        proxy_selection="MCP",
        preprocessing="tau-cycle interval averaging (training only)",
        ml_model="Ridge (relaxed linear, Eq. 9 inference)",
        temporal_resolution="T-cycle",
        counters="1",
        multipliers="0",
        overhead_note="same OPM structure as per-cycle",
    ),
    "lasso": MethodInfo(
        key="lasso",
        display="Lasso (Pagliari et al.)",
        citation="[53]",
        category="runtime",
        proxy_selection="Lasso",
        preprocessing="-",
        ml_model="Linear",
        temporal_resolution=">1K cycles (original); per-cycle here",
        counters="Q",
        multipliers="1",
        overhead_note="5.7% power overhead reported in [53]",
    ),
    "simmani": MethodInfo(
        key="simmani",
        display="Simmani",
        citation="[40]",
        category="design-time (FPGA emulation)",
        proxy_selection="K-means clustering (unsupervised)",
        preprocessing="2nd-order polynomial expansion",
        ml_model="Elastic net",
        temporal_resolution="~100s cycles (original)",
        counters="Q",
        multipliers="Q^2",
        overhead_note="128-cycle resolution in the original",
    ),
    "primal_cnn": MethodInfo(
        key="primal_cnn",
        display="PRIMAL (CNN)",
        citation="[79]",
        category="design-time",
        proxy_selection="none (all signals)",
        preprocessing="signal-to-image mapping",
        ml_model="CNN",
        temporal_resolution="per-cycle",
        counters=None,
        multipliers=None,
        overhead_note="software model; impractical for runtime OPM",
    ),
    "pca": MethodInfo(
        key="pca",
        display="PRIMAL (PCA)",
        citation="[79]",
        category="design-time",
        proxy_selection="none (all signals at inference)",
        preprocessing="PCA",
        ml_model="Linear",
        temporal_resolution="per-cycle",
        counters=None,
        multipliers=None,
        overhead_note="dimension reduction still reads every signal",
    ),
    "yang_svd": MethodInfo(
        key="yang_svd",
        display="Yang et al.",
        citation="[75]",
        category="design-time (FPGA emulation)",
        proxy_selection="SVD-based",
        preprocessing="SVD",
        ml_model="Linear",
        temporal_resolution="per-cycle",
        counters="0",
        multipliers="M",
        overhead_note="16% area overhead reported",
    ),
    "counters": MethodInfo(
        key="counters",
        display="Event-counter models",
        citation="[10,16,34,36,...]",
        category="runtime",
        proxy_selection="manual (architect-defined events)",
        preprocessing="event accumulation",
        ml_model="Linear / regression",
        temporal_resolution=">1K cycles",
        counters="Q",
        multipliers="1",
        overhead_note="free counters, coarse resolution only",
    ),
}
