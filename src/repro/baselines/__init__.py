"""Baseline power-modeling methods the paper compares against (§7.2).

* :mod:`repro.baselines.pagliari` — Lasso-based proxy selection + linear
  model (Pagliari et al. [53]);
* :mod:`repro.baselines.simmani` — K-means signal clustering, 2nd-order
  polynomial features, elastic-net model (Simmani [40]);
* :mod:`repro.baselines.primal` — PRIMAL [79]: a CNN over all candidate
  signals (from-scratch NumPy implementation) and the PCA + linear
  variant;
* :mod:`repro.baselines.registry` — method metadata for regenerating the
  comparison tables (Tables 1, 3, 5).
"""

from repro.baselines.pagliari import train_lasso_baseline
from repro.baselines.simmani import SimmaniModel, train_simmani
from repro.baselines.primal import (
    PcaLinearModel,
    PrimalCnn,
    train_pca_baseline,
    train_primal_cnn,
)
from repro.baselines.registry import METHODS, MethodInfo
from repro.baselines.counters import (
    CounterPowerModel,
    counter_events,
    train_counter_model,
)

__all__ = [
    "train_lasso_baseline",
    "SimmaniModel",
    "train_simmani",
    "PrimalCnn",
    "train_primal_cnn",
    "PcaLinearModel",
    "train_pca_baseline",
    "CounterPowerModel",
    "counter_events",
    "train_counter_model",
    "METHODS",
    "MethodInfo",
]
