"""Event-counter power models (the runtime family of Table 1).

The classic approach [10, 16, 24, 33, 34, 36, 58, 62, 65, 68]: linear
regression on hardware performance-counter readings accumulated over a
measurement window (instructions retired, cache misses, issue slots...).
The paper's §1 critique, which this baseline exists to reproduce: counter
events "manifest several cycles after the causal trigger event", are
"poorly correlated with recent pipeline activity", and averaging over
long windows makes them "significantly inaccurate when fine-grained
power tracing is required".

Counters are derived from the pipeline model's activity channels —
exactly the events real PMUs count — with a configurable *event-reporting
delay* modeling the pipeline-depth lag between cause and counter update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError
from repro.core.solvers import ridge_fit
from repro.uarch.events import ActivityTrace

__all__ = ["counter_events", "CounterPowerModel", "train_counter_model"]

#: The architected event set: (event name, channel, reduction).
#: "sum" events count occurrences; "value" events sample a level.
_EVENT_DEFS: list[tuple[str, str, str]] = [
    ("inst_retired", "rob/retire", "sum"),
    ("fetch_active", "fetch/valid", "sum"),
    ("issue_occupancy", "issue/occ", "value"),
    ("rob_occupancy", "rob/occ", "value"),
    ("l2_requests", "l2ctl/req", "sum"),
    ("l2_misses", "l2ctl/hit", "inv_sum"),  # requests that missed
]


def _per_cycle_events(trace: ActivityTrace, delay: int) -> tuple[
    np.ndarray, list[str]
]:
    names: list[str] = []
    cols: list[np.ndarray] = []
    channels = dict(trace.channels)
    for name, channel, kind in _EVENT_DEFS:
        if channel not in channels:
            continue
        vals = channels[channel].astype(np.float64)
        if kind == "inv_sum":
            req = channels["l2ctl/req"].astype(np.float64)
            vals = req * (1.0 - np.minimum(vals, 1.0))
        names.append(name)
        cols.append(vals)
    # Per-unit activity events (the "unit busy" counters PMUs expose).
    for ch_name, _w in trace.schema:
        if ch_name.endswith("/valid") and not ch_name.startswith("fetch"):
            names.append(f"busy_{ch_name.split('/')[0]}")
            cols.append(channels[ch_name].astype(np.float64))
    events = np.column_stack(cols)
    if delay > 0:
        delayed = np.zeros_like(events)
        delayed[delay:] = events[:-delay]
        events = delayed
    return events, names


def counter_events(
    trace: ActivityTrace, t: int, delay: int = 4
) -> tuple[np.ndarray, list[str]]:
    """Windowed counter readings: (n_windows, n_events) sums over T.

    ``delay`` models the cycles between a microarchitectural event and
    its counter increment (pipeline-depth lag).
    """
    if t < 1:
        raise PowerModelError(f"window T must be >= 1, got {t}")
    events, names = _per_cycle_events(trace, delay)
    n = (events.shape[0] // t) * t
    if n == 0:
        raise PowerModelError("trace shorter than one window")
    windowed = events[:n].reshape(-1, t, events.shape[1]).sum(axis=1)
    return windowed, names


@dataclass
class CounterPowerModel:
    """Linear power model over windowed event counters."""

    event_names: list[str]
    weights: np.ndarray
    intercept: float
    t: int
    delay: int

    def predict(self, trace: ActivityTrace) -> np.ndarray:
        """Per-window power estimates for an activity trace."""
        counters, names = counter_events(trace, self.t, self.delay)
        if names != self.event_names:
            raise PowerModelError("event schema mismatch")
        return counters @ self.weights + self.intercept

    def predict_from_counters(self, counters: np.ndarray) -> np.ndarray:
        C = np.asarray(counters, dtype=np.float64)
        if C.ndim != 2 or C.shape[1] != len(self.event_names):
            raise PowerModelError(
                f"expected (N, {len(self.event_names)}) counters"
            )
        return C @ self.weights + self.intercept


def train_counter_model(
    trace: ActivityTrace,
    labels: np.ndarray,
    t: int,
    delay: int = 4,
    ridge_lam: float = 1e-2,
) -> CounterPowerModel:
    """Fit the counter model for window size T.

    Labels are per-cycle power; they are window-averaged to match the
    counter readings.
    """
    counters, names = counter_events(trace, t, delay)
    y = np.asarray(labels, dtype=np.float64)
    n = counters.shape[0] * t
    if y.shape[0] < n:
        raise PowerModelError("labels shorter than the counter windows")
    yw = y[:n].reshape(-1, t).mean(axis=1)
    w, b = ridge_fit(counters, yw, lam=ridge_lam)
    return CounterPowerModel(
        event_names=names, weights=w, intercept=b, t=t, delay=delay
    )
