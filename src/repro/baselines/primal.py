"""PRIMAL [79]: per-cycle power inference from *all* signals.

Two variants, as in the paper's comparison (Table 5, Figs. 10/12):

* **CNN** — register/signal toggles mapped to a 2-D grid and fed to a
  convolutional network.  Implemented from scratch in NumPy (conv via
  im2col, ReLU, average pooling, dense head, Adam) because the evaluation
  environment has no deep-learning framework; at reproduction scale this
  is architecture-faithful.
* **PCA + linear** — principal components of the full toggle matrix,
  ridge regression on the top components.

Both consume *every* candidate signal at inference (no proxy selection),
which is exactly why §8.1 finds them orders of magnitude more expensive
than APOLLO for long traces — reproduced in the sec8_1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError

__all__ = [
    "PrimalCnn",
    "train_primal_cnn",
    "PcaLinearModel",
    "train_pca_baseline",
]


# ----------------------------------------------------------------------- #
# minimal NumPy CNN
# ----------------------------------------------------------------------- #
def _im2col(x: np.ndarray, k: int = 3) -> np.ndarray:
    """(B, H, W) -> (B, H*W, k*k) patches with zero 'same' padding."""
    b, h, w = x.shape
    pad = k // 2
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((b, h * w, k * k), dtype=x.dtype)
    idx = 0
    for di in range(k):
        for dj in range(k):
            cols[:, :, idx] = xp[:, di : di + h, dj : dj + w].reshape(
                b, h * w
            )
            idx += 1
    return cols


@dataclass
class PrimalCnn:
    """Tiny CNN: conv3x3(C) + ReLU + 2x2 avg-pool + dense -> scalar."""

    n_features: int
    channels: int = 8
    seed: int = 0
    # trained parameters (set by fit)
    kernel: np.ndarray | None = None  # (C, 9)
    bias: np.ndarray | None = None  # (C,)
    dense_w: np.ndarray | None = None  # (C * Hp * Wp,)
    dense_b: float = 0.0
    y_scale: float = 1.0
    y_shift: float = 0.0
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_features < 4:
            raise PowerModelError("PRIMAL CNN needs >= 4 features")
        self.side = int(math.ceil(math.sqrt(self.n_features)))
        self.hp = self.side // 2  # pooled height (floor)
        if self.hp < 1:
            raise PowerModelError("feature grid too small to pool")

    # ------------------------------------------------------------------ #
    def _to_grid(self, X: np.ndarray) -> np.ndarray:
        b = X.shape[0]
        grid = np.zeros((b, self.side * self.side), dtype=np.float32)
        grid[:, : self.n_features] = X
        return grid.reshape(b, self.side, self.side)

    def _forward(self, X: np.ndarray):
        """Returns (prediction, cache for backward)."""
        g = self._to_grid(X)
        cols = _im2col(g)  # (B, HW, 9)
        conv = cols @ self.kernel.T + self.bias  # (B, HW, C)
        relu = np.maximum(conv, 0.0)
        b = X.shape[0]
        s, hp = self.side, self.hp
        fm = relu.reshape(b, s, s, self.channels)
        fm = fm[:, : 2 * hp, : 2 * hp, :]
        pooled = fm.reshape(b, hp, 2, hp, 2, self.channels).mean(
            axis=(2, 4)
        )  # (B, hp, hp, C)
        flat = pooled.reshape(b, -1)
        out = flat @ self.dense_w + self.dense_b
        return out, (cols, conv, flat)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Per-cycle power from the full (N x M) toggle matrix."""
        X = np.asarray(X, dtype=np.float32)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise PowerModelError(
                f"expected (N, {self.n_features}) matrix, got {X.shape}"
            )
        if self.kernel is None:
            raise PowerModelError("model is not trained")
        preds = []
        for start in range(0, X.shape[0], 4096):
            out, _ = self._forward(X[start : start + 4096])
            preds.append(out)
        return np.concatenate(preds) * self.y_scale + self.y_shift

    # ------------------------------------------------------------------ #
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch: int = 64,
        lr: float = 3e-3,
    ) -> "PrimalCnn":
        X = np.asarray(X, dtype=np.float32)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise PowerModelError("X / y sample mismatch")
        rng = np.random.default_rng(self.seed)
        c = self.channels
        self.kernel = (rng.standard_normal((c, 9)) * 0.2).astype(np.float64)
        self.bias = np.zeros(c)
        n_flat = c * self.hp * self.hp
        self.dense_w = rng.standard_normal(n_flat) * (1.0 / math.sqrt(n_flat))
        self.dense_b = 0.0
        self.y_shift = float(y.mean())
        self.y_scale = float(y.std()) or 1.0
        yn = (y - self.y_shift) / self.y_scale

        # Adam state.
        params = ["kernel", "bias", "dense_w", "dense_b"]
        m_st = {p: 0.0 for p in params}
        v_st = {p: 0.0 for p in params}
        b1, b2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = X.shape[0]
        s, hp = self.side, self.hp
        for _epoch in range(epochs):
            order = rng.permutation(n)
            ep_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = X[idx], yn[idx]
                out, (cols, conv, flat) = self._forward(xb)
                err = out - yb
                ep_loss += float((err**2).sum())
                bsz = len(idx)
                # dense grads
                g_dense_w = flat.T @ err / bsz
                g_dense_b = float(err.mean())
                # back through dense -> pooled
                g_flat = np.outer(err, self.dense_w) / bsz  # (B, n_flat)
                g_pool = g_flat.reshape(bsz, hp, hp, c)
                # unpool (average): spread gradient / 4
                g_fm = np.repeat(
                    np.repeat(g_pool, 2, axis=1), 2, axis=2
                ) / 4.0  # (B, 2hp, 2hp, C)
                g_relu_full = np.zeros((bsz, s, s, c))
                g_relu_full[:, : 2 * hp, : 2 * hp, :] = g_fm
                g_conv = g_relu_full.reshape(bsz, s * s, c)
                g_conv = g_conv * (conv > 0)
                # conv grads
                g_kernel = np.einsum("bpc,bpk->ck", g_conv, cols)
                g_bias = g_conv.sum(axis=(0, 1))
                grads = {
                    "kernel": g_kernel,
                    "bias": g_bias,
                    "dense_w": g_dense_w,
                    "dense_b": g_dense_b,
                }
                step += 1
                for p in params:
                    g = grads[p]
                    m_st[p] = b1 * m_st[p] + (1 - b1) * g
                    v_st[p] = b2 * v_st[p] + (1 - b2) * np.square(g)
                    mh = m_st[p] / (1 - b1**step)
                    vh = v_st[p] / (1 - b2**step)
                    upd = lr * mh / (np.sqrt(vh) + eps)
                    setattr(self, p, getattr(self, p) - upd)
            self.history.append(ep_loss / n)
        return self


def train_primal_cnn(
    X: np.ndarray,
    y: np.ndarray,
    channels: int = 8,
    epochs: int = 30,
    seed: int = 0,
) -> PrimalCnn:
    """Train the PRIMAL CNN on the full toggle matrix."""
    model = PrimalCnn(
        n_features=int(np.asarray(X).shape[1]),
        channels=channels,
        seed=seed,
    )
    return model.fit(X, y, epochs=epochs)


# ----------------------------------------------------------------------- #
# PCA + linear
# ----------------------------------------------------------------------- #
@dataclass
class PcaLinearModel:
    """PCA projection of all signals + ridge head."""

    mean: np.ndarray
    components: np.ndarray  # (k, M)
    weights: np.ndarray  # (k,)
    intercept: float

    @property
    def n_components(self) -> int:
        return int(self.components.shape[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.mean.size:
            raise PowerModelError(
                f"expected (N, {self.mean.size}) matrix, got {X.shape}"
            )
        Z = (X - self.mean) @ self.components.T
        return Z @ self.weights + self.intercept


def train_pca_baseline(
    X: np.ndarray,
    y: np.ndarray,
    n_components: int = 64,
    ridge_lam: float = 1e-6,
) -> PcaLinearModel:
    """PCA (top components by SVD) + ridge regression."""
    from repro.core.solvers import ridge_fit

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.shape[0] != y.shape[0]:
        raise PowerModelError("X / y sample mismatch")
    k = min(n_components, min(X.shape) - 1)
    if k < 1:
        raise PowerModelError("not enough data for PCA")
    mean = X.mean(axis=0)
    Xc = X - mean
    # Economy SVD; X is dense but modest after screening.
    _u, _s, vt = np.linalg.svd(Xc, full_matrices=False)
    components = vt[:k]
    Z = Xc @ components.T
    w, b = ridge_fit(Z, y, lam=ridge_lam)
    return PcaLinearModel(
        mean=mean, components=components, weights=w, intercept=b
    )
