"""Simmani [40]: unsupervised signal clustering + polynomial elastic net.

Per the paper's description (§7.2):

1. signals are described by their toggle-density patterns over time and
   clustered with K-means; one representative per cluster becomes a proxy
   (*unsupervised* selection — the clustering never sees the power label,
   the property Fig. 14's discussion contrasts with APOLLO);
2. model features are the Q proxy toggle densities plus 2nd-order
   polynomial terms; an elastic net (Lasso + ridge) fits the label.

Scale note: full Q^2 interaction expansion is quadratic in Q; following
the spirit of the original (the elastic net zeroes most terms anyway), the
expansion is capped to interactions among the ``poly_cap`` strongest
proxies.  The hardware-cost model in :mod:`repro.opm.cost` still charges
Simmani the full Q^2 multipliers of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.errors import PowerModelError
from repro.core.multicycle import window_average
from repro.core.solvers import coordinate_descent

__all__ = ["SimmaniModel", "train_simmani", "cluster_signals"]


def cluster_signals(
    X: np.ndarray,
    q: int,
    signature_window: int = 16,
    seed: int = 0,
) -> np.ndarray:
    """K-means signal clustering; returns one representative column/cluster.

    Each signal's *signature* is its toggle density over consecutive
    ``signature_window``-cycle windows of the training trace.  Signals in
    the same cluster toggle together; the member closest to its centroid
    represents the cluster.
    """
    X = np.asarray(X, dtype=np.float32)
    n, m = X.shape
    if not (0 < q <= m):
        raise PowerModelError(f"q={q} out of range for {m} signals")
    n_win = max(1, n // signature_window)
    sig = (
        X[: n_win * signature_window]
        .reshape(n_win, signature_window, m)
        .mean(axis=1)
        .T.astype(np.float64)
    )  # (m, n_win)
    # Normalize signatures so clustering sees *shape*, not magnitude.
    norms = np.linalg.norm(sig, axis=1, keepdims=True)
    sig_n = sig / np.where(norms == 0, 1.0, norms)
    rng = np.random.default_rng(seed)
    centroids, assignment = kmeans2(
        sig_n, q, minit="++", seed=rng, iter=20
    )
    reps = []
    for c in range(q):
        members = np.nonzero(assignment == c)[0]
        if members.size == 0:
            continue
        d = np.linalg.norm(sig_n[members] - centroids[c], axis=1)
        reps.append(int(members[np.argmin(d)]))
    reps = sorted(set(reps))
    # Empty clusters can leave us short; pad with highest-variance signals.
    if len(reps) < q:
        var = sig.var(axis=1)
        var[reps] = -np.inf
        extra = np.argsort(-var)[: q - len(reps)]
        reps = sorted(set(reps) | set(int(e) for e in extra))
    return np.asarray(reps[:q], dtype=np.int64)


def _poly_features(
    Xq: np.ndarray, pair_idx: tuple[np.ndarray, np.ndarray]
) -> np.ndarray:
    """[linear terms | selected 2nd-order products]."""
    ii, jj = pair_idx
    if ii.size == 0:
        return Xq
    return np.concatenate([Xq, Xq[:, ii] * Xq[:, jj]], axis=1)


@dataclass
class SimmaniModel:
    """Trained Simmani model.

    ``proxies`` index the caller's candidate space; ``pair_idx`` holds the
    interaction pairs (indices into the proxy list); trained for a fixed
    measurement window ``t`` (a hyper-parameter in the original).
    """

    proxies: np.ndarray
    weights: np.ndarray
    intercept: float
    pair_idx: tuple[np.ndarray, np.ndarray]
    t: int = 1

    @property
    def q(self) -> int:
        return int(self.proxies.size)

    @property
    def n_terms(self) -> int:
        return int(self.weights.size)

    def predict_window(
        self, x_proxies: np.ndarray, t: int | None = None
    ) -> np.ndarray:
        """Windowed prediction from per-cycle proxy toggles.

        Simmani's features are window toggle densities, so inputs are
        window-averaged *before* the polynomial expansion.
        """
        t = self.t if t is None else t
        X = np.asarray(x_proxies, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.q:
            raise PowerModelError(
                f"expected (N, {self.q}) proxy matrix, got {X.shape}"
            )
        if t > 1:
            Xw, _ = window_average(X, np.zeros(X.shape[0]), t)
        else:
            Xw = X
        F = _poly_features(Xw, self.pair_idx)
        return F @ self.weights + self.intercept

    def predict(self, x_proxies: np.ndarray) -> np.ndarray:
        """Per-cycle prediction (t = 1 evaluation, used in Fig. 10)."""
        return self.predict_window(x_proxies, t=1)


def train_simmani(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    t: int = 1,
    candidate_ids: np.ndarray | None = None,
    poly_cap: int = 32,
    lam: float = 2e-3,
    alpha: float = 0.5,
    signature_window: int = 16,
    seed: int = 0,
) -> SimmaniModel:
    """Cluster, expand, elastic-net fit.

    Parameters
    ----------
    t:
        Measurement window the model is trained for (1 = per-cycle).
    poly_cap:
        Interactions are generated among the ``poly_cap`` proxies most
        correlated with the label (documented deviation from the full Q^2
        expansion; see module docstring).
    """
    X = np.asarray(X)
    y = np.asarray(y, dtype=np.float64)
    m = X.shape[1]
    if candidate_ids is None:
        candidate_ids = np.arange(m, dtype=np.int64)
    # Drop constant columns before clustering (they form a degenerate
    # all-zero-signature cluster).
    Xf = X.astype(np.float32)
    live = Xf.std(axis=0) > 1e-9
    live_idx = np.nonzero(live)[0]
    if live_idx.size < q:
        raise PowerModelError(
            f"only {live_idx.size} non-constant signals for q={q}"
        )
    reps_local = cluster_signals(
        Xf[:, live_idx], q, signature_window=signature_window, seed=seed
    )
    cols = live_idx[reps_local]

    Xq = X[:, cols].astype(np.float64)
    if t > 1:
        Xq, y = window_average(Xq, y, t)

    # Interaction pairs among the strongest-correlated proxies.
    k = min(poly_cap, q)
    corr = np.abs(
        np.corrcoef(np.column_stack([Xq, y]), rowvar=False)[-1, :-1]
    )
    corr = np.nan_to_num(corr)
    strong = np.argsort(-corr)[:k]
    ii, jj = np.triu_indices(k, k=1)
    pair_idx = (strong[ii], strong[jj])

    F = _poly_features(Xq, pair_idx)
    fit = coordinate_descent(
        F, y, lam=lam, penalty="elasticnet", alpha=alpha, max_iter=300
    )
    return SimmaniModel(
        proxies=candidate_ids[cols],
        weights=fit.weights,
        intercept=fit.intercept,
        pair_idx=pair_idx,
        t=t,
    )
