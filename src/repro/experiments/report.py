"""Plain-text rendering for experiment results (tables and series).

Everything the paper shows as a figure is reproduced as data series; these
helpers render them as aligned ASCII tables so benchmark logs and
EXPERIMENTS.md carry the numbers directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (empty)"
    columns = list(columns) if columns else list(rows[0])
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Iterable, ys: Mapping[str, Iterable], x_name: str = "x",
    title: str | None = None,
) -> str:
    """Render one x-axis with several named series as a table."""
    x = list(x)
    rows = []
    for i, xv in enumerate(x):
        row = {x_name: xv}
        for name, vals in ys.items():
            vals = list(vals)
            row[name] = vals[i] if i < len(vals) else ""
        rows.append(row)
    return format_table(rows, [x_name, *ys], title=title)


def format_kv(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Render key/value summary lines."""
    lines = [title] if title else []
    width = max(len(k) for k in pairs) if pairs else 0
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)
