"""Ablations of APOLLO's design choices (§4.4, §4.3, §7.1).

* **relaxation on/off** — the paper: the temporary MCP model "can already
  provide rather accurate predictions"; ridge refit boosts accuracy;
* **MCP gamma sweep** — gamma sets the unpenalized-weight threshold
  (paper uses gamma = 10);
* **screening width** — the sure-screening stage must be wide enough not
  to cost accuracy;
* **training-set power diversity** — uniform-power selection vs taking
  only high-power individuals (the paper's argument for GA diversity).
"""

from __future__ import annotations

import numpy as np

from repro.core import ProxySelector, nrmse, r2_score, train_apollo
from repro.core.solvers import ridge_fit
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or max(8, ctx.scale.max_quickstart_q // 2)
    X, ids = ctx.screened
    y = ctx.train.labels
    y_test = ctx.test.labels
    rows = []

    def evaluate(model, tag):
        p = model.predict(ctx.test_features(model.proxies))
        rows.append(
            {
                "ablation": tag,
                "test_nrmse": nrmse(y_test, p),
                "test_r2": r2_score(y_test, p),
            }
        )

    # 1. relaxation on/off
    sel = ctx.selections([q], "mcp")[q]
    evaluate(ctx.model_from_selection(sel), "baseline (MCP + ridge)")
    from repro.core import ApolloModel

    evaluate(
        ApolloModel(
            proxies=sel.proxies,
            weights=sel.temp_weights,
            intercept=sel.temp_intercept,
        ),
        "no relaxation (temporary MCP model)",
    )

    # 2. gamma sweep
    for gamma in (1.5, 3.0, 10.0, 50.0):
        model = train_apollo(
            X,
            y,
            q=q,
            candidate_ids=ids,
            selector=ProxySelector(
                penalty="mcp", gamma=gamma, screen_width=None
            ),
        )
        evaluate(model, f"gamma={gamma}")

    # 3. screening width (tight screens risk dropping useful signals)
    for frac, tag in ((0.1, "screen=10%"), (0.5, "screen=50%")):
        width = max(2 * q, int(X.shape[1] * frac))
        model = train_apollo(
            X,
            y,
            q=q,
            candidate_ids=ids,
            selector=ProxySelector(penalty="mcp", screen_width=width),
        )
        evaluate(model, tag)

    # 4. training diversity: top-power-only training subset
    hi = np.argsort(y)[-max(200, len(y) // 4):]
    model = train_apollo(
        X[hi],
        y[hi],
        q=q,
        candidate_ids=ids,
        selector=ProxySelector(penalty="mcp", screen_width=None),
    )
    evaluate(model, "train on high-power cycles only")

    text = format_table(rows, title=f"Ablations (Q={q})")
    base = rows[0]["test_nrmse"]
    norelax = rows[1]["test_nrmse"]
    biased = rows[-1]["test_nrmse"]
    return ExperimentResult(
        id="ablations",
        title="Design-choice ablations",
        paper_claim=(
            "relaxation fine-tunes the penalized fit; gamma=10 is the "
            "paper's setting; diverse (uniform-power) training data "
            "gives unbiased predictions"
        ),
        text=text,
        rows=rows,
        summary={
            "q": q,
            "relaxation_gain_nrmse": round(norelax - base, 4),
            "diversity_gain_nrmse": round(biased - base, 4),
        },
    )
