"""Fig. 16 / §8.1: emulator-assisted long-trace power introspection.

A long mixed-phase workload ("hmmer-like": the paper shows 40k cycles of
a 17M-cycle SPEC hmmer trace with distinct power phases) runs through the
proxy-only flow.  Reported: the per-cycle power trace statistics, phase
structure, storage accounting at both scales, and measured tracing /
inference rates.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv, format_table
from repro.experiments.runner import ExperimentResult
from repro.flow import EmulatorFlow
from repro.isa import Program, assemble

__all__ = ["run", "hmmer_like"]


def hmmer_like() -> Program:
    """A long benchmark with distinct compute phases (hmmer's Viterbi
    inner loops alternate match/insert/delete score updates with table
    loads — modeled as alternating MAC-heavy, vector, and memory phases
    plus a low-power bookkeeping phase)."""
    lines = ["movi x13, 0", "movi x14, 512", "movi x1, 1"]
    # phase A: scalar MAC scoring (~hundreds of cycles per visit)
    for i in range(70):
        lines.append(f"ld x{2 + (i % 6)}, {i % 32}(x13)")
        lines.append(f"mac x8, x{2 + (i % 6)}, x1")
        lines.append(f"add x9, x8, x{2 + (i % 6)}")
    # phase B: vector update sweep (high power)
    for i in range(70):
        lines.append(f"vld v{1 + (i % 4)}, {(i * 4) % 256}(x14)")
        lines.append(f"vmac v5, v{1 + (i % 4)}, v{1 + ((i + 1) % 4)}")
        lines.append(f"vmul v7, v5, v{1 + (i % 4)}")
        lines.append(f"vadd v6, v5, v{1 + (i % 4)}")
    # phase C: strided table walk (cache-missing, stall-heavy)
    for i in range(60):
        lines.append(f"ld x{2 + (i % 6)}, {(i * 144) % 2000}(x13)")
        lines.append(f"mul x11, x{2 + (i % 6)}, x11")
    # phase D: low-power bookkeeping (serialized dependent chain)
    lines += ["movi x10, 3"]
    for _ in range(60):
        lines.append("mul x10, x10, x10")
    return Program("hmmer_like", tuple(assemble("\n".join(lines))))


def run(
    ctx: ExperimentContext | None = None, cycles: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    if cycles is None:
        cycles = max(20000, ctx.scale.train_cycles * 4)
    model = ctx.apollo(ctx.default_q())
    flow = EmulatorFlow(ctx.core, model)
    run_ = flow.trace(hmmer_like(), cycles=cycles)

    power = run_.power
    # Phase structure: windowed means should spread widely.
    win = max(64, cycles // 256)
    n = (power.size // win) * win
    phases = power[:n].reshape(-1, win).mean(axis=1)
    storage = run_.storage
    paper = storage.at_paper_scale()

    kv = {
        "cycles": cycles,
        "q": model.q,
        "mean_power_mw": float(power.mean()),
        "p5_phase_power": float(np.quantile(phases, 0.05)),
        "p95_phase_power": float(np.quantile(phases, 0.95)),
        "phase_dynamic_range": float(
            np.quantile(phases, 0.95) / max(1e-9, np.quantile(phases, 0.05))
        ),
        "proxy_dump_bytes": storage.proxy_dump_bytes,
        "full_dump_bytes": storage.full_dump_bytes,
        "reduction_factor": storage.reduction_factor,
        "paper_scale_full_dump_GB": paper.full_dump_bytes / 1e9,
        "paper_scale_proxy_dump_GB": paper.proxy_dump_bytes / 1e9,
        "sim_seconds": run_.sim_seconds,
        "inference_seconds": run_.inference_seconds,
        "inference_cycles_per_sec": cycles
        / max(1e-9, run_.inference_seconds),
        "emulated_wall_seconds": run_.emulated_wall_seconds,
    }
    text = format_kv(kv, title="Fig. 16: emulator-assisted long trace")
    return ExperimentResult(
        id="fig16",
        title="Emulator-assisted per-cycle power tracing",
        paper_claim=(
            "17M-cycle trace reduced from >200 GB to 1.1 GB with Q=150; "
            "generated in ~3 minutes; inference of 1e9 cycles in ~1 min"
        ),
        text=text,
        rows=[{"phase": i, "mean_power": float(p)} for i, p in
              enumerate(phases)],
        summary={
            "reduction_factor": round(storage.reduction_factor, 1),
            "paper_scale_proxy_GB": round(
                paper.proxy_dump_bytes / 1e9, 3
            ),
            "paper_scale_full_GB": round(paper.full_dump_bytes / 1e9, 1),
            "phase_dynamic_range": round(kv["phase_dynamic_range"], 2),
        },
    )
