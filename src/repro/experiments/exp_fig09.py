"""Fig. 9: detailed evaluation of the headline APOLLO model.

(a) prediction-vs-label power traces over the 12-benchmark testing set and
the average-power bias (paper: 0.6% difference); (b) per-benchmark NRMSE
and NMAE (paper: NMAE < 10% for every benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.core import nmae, nrmse, r2_score
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv, format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    test = ctx.test
    y = test.labels
    p = model.predict(ctx.test_features(model.proxies))

    per_bench = []
    for name, start, end in test.segments:
        per_bench.append(
            {
                "benchmark": name,
                "cycles": end - start,
                "nrmse": nrmse(y[start:end], p[start:end]),
                "nmae": nmae(y[start:end], p[start:end]),
                "mean_label": float(y[start:end].mean()),
                "mean_pred": float(p[start:end].mean()),
            }
        )
    overall = {
        "q": q,
        "r2": r2_score(y, p),
        "nrmse": nrmse(y, p),
        "nmae": nmae(y, p),
        "avg_label": float(y.mean()),
        "avg_pred": float(p.mean()),
        "avg_bias_pct": 100.0 * abs(p.mean() - y.mean()) / y.mean(),
    }
    text = (
        format_kv(overall, title="Fig. 9(a): overall accuracy")
        + "\n\n"
        + format_table(per_bench, title="Fig. 9(b): per-benchmark accuracy")
    )
    worst_nmae = max(r["nmae"] for r in per_bench)
    return ExperimentResult(
        id="fig09",
        title=f"APOLLO model evaluation at Q={q}",
        paper_claim=(
            "Q=159: NRMSE=9.4%, R^2=0.95; NMAE<10% on every benchmark; "
            "average power bias 0.6%"
        ),
        text=text,
        rows=per_bench,
        summary={
            "r2": round(overall["r2"], 4),
            "nrmse": round(overall["nrmse"], 4),
            "worst_benchmark_nmae": round(worst_nmae, 4),
            "avg_bias_pct": round(overall["avg_bias_pct"], 3),
        },
    )
