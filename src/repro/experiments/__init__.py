"""Experiment drivers: one module per table/figure of the paper.

Everything runs through an :class:`~repro.experiments.context.ExperimentContext`
that caches the expensive shared pipeline (design build, GA training-data
generation, gate-level feature/label collection, trained models) on disk
under ``.artifacts/`` and in memory, so regenerating all tables and
figures costs one pipeline run per design.

Use :func:`repro.experiments.runner.run_experiment` (or the
``apollo-repro`` CLI) to execute by id: ``table1``, ``table3``,
``table4``, ``table5``, ``fig03``, ``fig09``, ``fig10``, ``fig11``,
``fig12``, ``fig13``, ``fig14``, ``fig15a``, ``fig15b``, ``fig16``,
``fig17``, ``sec7_5``, ``sec8_1``, ``ablations``.
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_experiments,
)

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
]
