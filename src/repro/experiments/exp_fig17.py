"""Fig. 17 / §8.2: per-cycle delta-I introspection with the OPM.

The quantized, B-bit OPM (behavioural meter, bit-exact with the gate-level
netlist) reads per-cycle power on the testing set; its cycle-to-cycle
current difference is compared against ground truth: Pearson correlation
(paper: 0.946), quadrant structure, deep-event agreement, plus the
proactive-mitigation demo the paper sketches as future work.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv
from repro.experiments.runner import ExperimentResult
from repro.flow import RuntimeIntrospection
from repro.opm import OpmMeter, quantize_model

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None,
    q: int | None = None,
    bits: int = 10,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    qm = quantize_model(model, bits=bits)
    meter = OpmMeter(qm, t=1)

    toggles = ctx.test.features(model.proxies)
    p_opm = meter.read(toggles)
    y = ctx.test.labels

    intro = RuntimeIntrospection()
    ana = intro.droop_analysis(y, p_opm)
    deep_agree = intro.deep_event_agreement(ana)
    # Effective mitigation must hold the clock stretched for about one
    # PDN resonance period — shorter interventions let the tank ring
    # right back down.
    horizon = max(4, int(round(intro.pdn.resonant_cycles)))
    mit = intro.mitigation_demo(
        y, p_opm, threshold_quantile=0.85, stretch=0.3, horizon=horizon
    )

    kv = {
        "q": q,
        "bits": bits,
        "pearson_delta_i": ana.pearson,
        "both_rising": ana.quadrants["both_rising"],
        "both_falling": ana.quadrants["both_falling"],
        "opm_only_rising": ana.quadrants["opm_only_rising"],
        "opm_only_falling": ana.quadrants["opm_only_falling"],
        "deep_event_sign_agreement": deep_agree,
        "droop_baseline_mv": mit.droop_baseline_mv,
        "droop_mitigated_mv": mit.droop_mitigated_mv,
        "droop_reduction_pct": mit.reduction_pct,
        "mitigation_interventions": mit.n_interventions,
    }
    text = format_kv(kv, title="Fig. 17: OPM delta-I vs ground truth")

    # Disagreement magnitudes should be small (paper: off-diagonal
    # quadrant samples sit near the origin).
    disagree = (np.sign(ana.delta_i_true) != np.sign(ana.delta_i_opm)) & (
        ana.delta_i_true != 0
    )
    if disagree.any():
        mag_disagree = float(np.abs(ana.delta_i_true[disagree]).mean())
        mag_all = float(np.abs(ana.delta_i_true).mean())
        kv["disagreement_magnitude_ratio"] = mag_disagree / mag_all
    return ExperimentResult(
        id="fig17",
        title="Voltage-droop introspection: delta-I correlation",
        paper_claim=(
            "Pearson 0.946 between OPM and ground-truth delta-I; "
            "disagreements cluster near the origin; deep droop/overshoot "
            "events track well"
        ),
        text=text,
        rows=[],
        summary={
            "pearson": round(ana.pearson, 4),
            "deep_agreement": round(deep_agree, 4),
            "droop_reduction_pct": round(mit.reduction_pct, 1),
            "disagreement_magnitude_ratio": round(
                kv.get("disagreement_magnitude_ratio", 0.0), 4
            ),
        },
    )
