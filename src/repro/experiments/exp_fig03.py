"""Fig. 3(b): GA training-data generation — power spread per generation."""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ga = ctx.ga
    rows = [
        {
            "generation": g,
            "min_power": lo,
            "mean_power": mean,
            "max_power": hi,
        }
        for g, lo, mean, hi in ga.generation_stats()
    ]
    text = format_table(
        rows, title="Fig. 3(b): micro-benchmark power per GA generation"
    )
    lo, hi = ga.power_range
    best = ga.best
    # The envelope should trend upward: late-generation best beats the
    # initial random population's best.
    gen0_max = rows[0]["max_power"]
    final_max = max(r["max_power"] for r in rows)
    return ExperimentResult(
        id="fig03",
        title="GA-based training benchmark generation",
        paper_claim=(
            ">5x ratio between max and min individuals; envelope "
            "converges toward a power virus"
        ),
        text=text,
        rows=rows,
        summary={
            "individuals": len(ga.individuals),
            "max_min_ratio": round(ga.max_min_ratio, 2),
            "virus_power": round(best.power, 3),
            "virus_generation": best.generation,
            "envelope_gain": round(final_max / gen0_max, 3),
        },
    )
