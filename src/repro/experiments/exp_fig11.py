"""Fig. 11: multi-cycle accuracy vs measurement window T.

Three estimators at matched budgets, as in the paper:

* Simmani trained per T (Q = larger budget — the paper gives Simmani
  Q=200 vs APOLLO's 70);
* per-cycle APOLLO averaged over T (tau = 1);
* APOLLO_tau with a fixed tau (the paper picks tau = 8 by validation),
  evaluated for every T via Eq. (9);

plus the tau sweep showing an interior tau wins (the §4.5 argument that
both tau = 1 and tau = T are inferior).
"""

from __future__ import annotations

import numpy as np

from repro.core import nrmse, window_average
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run"]

T_VALUES = [4, 8, 16, 32, 64]


def run(
    ctx: ExperimentContext | None = None,
    t_values: list[int] | None = None,
    tau: int = 8,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    ts = t_values or T_VALUES
    # Budgets mirror the paper's ratio: Simmani gets ~3x the proxies.
    q_apollo = max(8, ctx.scale.max_quickstart_q // 2)
    q_simmani = min(3 * q_apollo, ctx.screened[0].shape[1] // 4)

    y_test = ctx.test.labels
    percycle = ctx.apollo(q_apollo)
    tau_model = ctx.apollo_tau(q_apollo, tau)
    Xp = ctx.test_features(percycle.proxies)
    Xt = ctx.test_features(tau_model.proxies)

    rows = []
    for t in ts:
        _xw, yw = window_average(
            np.zeros((y_test.size, 1)), y_test, t
        )
        row = {"t": t}
        row["apollo_avg_nrmse"] = nrmse(
            yw, percycle.predict_window(Xp, t)
        )
        row["apollo_tau_nrmse"] = nrmse(
            yw, tau_model.predict_window(Xt, t)
        )
        simmani = ctx.simmani(q_simmani, t=t)
        Xs = ctx.test_features(simmani.proxies)
        row["simmani_nrmse"] = nrmse(yw, simmani.predict_window(Xs, t))
        rows.append(row)

    # tau sweep at a representative window (T = max): shows an interior
    # tau beats both extremes (tau=1 is the per-cycle average; tau=T is
    # input averaging).
    t_big = ts[-1]
    _xw, yw_big = window_average(
        np.zeros((y_test.size, 1)), y_test, t_big
    )
    tau_rows = []
    for tau_i in [1, *ts]:
        if tau_i == 1:
            p = percycle.predict_window(Xp, t_big)
        else:
            m = ctx.apollo_tau(q_apollo, tau_i)
            p = m.predict_window(
                ctx.test_features(m.proxies), t_big
            )
        tau_rows.append(
            {"tau": tau_i, "nrmse_at_T=%d" % t_big: nrmse(yw_big, p)}
        )

    text = (
        format_table(
            rows,
            title=(
                f"Fig. 11: T-cycle NRMSE (APOLLO Q={q_apollo}, "
                f"Simmani Q={q_simmani}, tau={tau})"
            ),
        )
        + "\n\n"
        + format_table(tau_rows, title=f"tau sweep at T={t_big}")
    )

    apollo_wins = sum(
        1 for r in rows if r["apollo_avg_nrmse"] < r["simmani_nrmse"]
    )
    tau_wins = sum(
        1 for r in rows if r["apollo_tau_nrmse"] < r["simmani_nrmse"]
    )
    tau_helps = sum(
        1
        for r in rows
        if r["apollo_tau_nrmse"] <= r["apollo_avg_nrmse"] * 1.02
    )
    return ExperimentResult(
        id="fig11",
        title="Multi-cycle accuracy vs window size T",
        paper_claim=(
            "per-cycle APOLLO averaged over T beats Simmani at 1/3 the "
            "proxies; APOLLO_tau (tau=8) improves NRMSE by a further ~5%"
        ),
        text=text,
        rows=rows,
        summary={
            "apollo_beats_simmani_windows": f"{apollo_wins}/{len(rows)}",
            "tau_beats_simmani_windows": f"{tau_wins}/{len(rows)}",
            "tau_model_competitive_windows": f"{tau_helps}/{len(rows)}",
            "simmani_degrades_with_t": bool(
                rows[-1]["simmani_nrmse"] > rows[0]["simmani_nrmse"]
            ),
            "q_apollo": q_apollo,
            "q_simmani": q_simmani,
        },
    )
