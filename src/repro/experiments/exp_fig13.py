"""Figs. 13 / 14: why MCP selections are better.

Fig. 13 — sum of absolute model weights at matched Q: MCP leaves large
weights unpenalized, Lasso over-shrinks (compare the *temporary* models,
before relaxation, where the penalty acts).

Fig. 14 — mean variance inflation factor of the selected proxy columns:
MCP's differential shrinking avoids selecting correlated signals together;
Lasso does not; Simmani's clustering also de-correlates but is
unsupervised.
"""

from __future__ import annotations

import numpy as np

from repro.core import vif_mean
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run_fig13", "run_fig14"]


def _q_points(ctx: ExperimentContext) -> list[int]:
    base = ctx.scale.max_quickstart_q
    return sorted({max(4, base // 4), max(6, base // 2), base})


def run_fig13(
    ctx: ExperimentContext | None = None,
    q_values: list[int] | None = None,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    qs = q_values or _q_points(ctx)
    mcp_sel = ctx.selections(qs, "mcp")
    lasso_sel = ctx.selections(qs, "lasso")
    rows = []
    for q in qs:
        rows.append(
            {
                "q": q,
                "mcp_abs_weight_sum": float(
                    np.abs(mcp_sel[q].temp_weights).sum()
                ),
                "lasso_abs_weight_sum": float(
                    np.abs(lasso_sel[q].temp_weights).sum()
                ),
            }
        )
    text = format_table(
        rows, title="Fig. 13: sum of |weights| of the temporary models"
    )
    wins = sum(
        1
        for r in rows
        if r["mcp_abs_weight_sum"] > r["lasso_abs_weight_sum"]
    )
    return ExperimentResult(
        id="fig13",
        title="Sum of absolute weights: MCP vs Lasso",
        paper_claim="MCP allows large weights; Lasso over-shrinks them",
        text=text,
        rows=rows,
        summary={"mcp_larger": f"{wins}/{len(rows)}"},
    )


def run_fig14(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or max(6, ctx.scale.max_quickstart_q // 2)
    X_train, ids = ctx.screened
    lookup = {int(c): i for i, c in enumerate(ids)}

    def cols_of(proxies):
        return X_train[:, [lookup[int(p)] for p in proxies]].astype(
            np.float64
        )

    apollo = ctx.selections([q], "mcp")[q]
    lasso = ctx.selections([q], "lasso")[q]
    simmani = ctx.simmani(q, t=1)
    rows = [
        {"method": "APOLLO (MCP)", "mean_vif": vif_mean(cols_of(apollo.proxies))},
        {"method": "Lasso [53]", "mean_vif": vif_mean(cols_of(lasso.proxies))},
        {"method": "Simmani [40]", "mean_vif": vif_mean(cols_of(simmani.proxies))},
    ]
    text = format_table(
        rows, title=f"Fig. 14: mean VIF of selected proxies (Q={q})"
    )
    vifs = {r["method"]: r["mean_vif"] for r in rows}
    return ExperimentResult(
        id="fig14",
        title="Variance inflation factors of selected proxies",
        paper_claim=(
            "APOLLO shows much lower VIF than Lasso; Simmani is also low "
            "(clustering de-correlates) but unsupervised"
        ),
        text=text,
        rows=rows,
        summary={
            "q": q,
            "apollo_below_lasso": bool(
                vifs["APOLLO (MCP)"] < vifs["Lasso [53]"]
            ),
            **{k: round(v, 2) for k, v in vifs.items()},
        },
    )
