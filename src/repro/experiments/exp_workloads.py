"""Extension: design-time introspection across a SPEC-like suite.

§8.1 shows one long benchmark (hmmer); adoption means running a *suite*.
Each SPEC-inspired workload goes through the emulator-assisted proxy flow;
reported per workload: mean power, phase dynamic range, pipeline
signature (IPC, miss rate, mispredicts), and APOLLO-vs-signoff accuracy
on a reference slice.
"""

from __future__ import annotations

import numpy as np

from repro.core import nrmse, r2_score
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult
from repro.flow import DesignTimeFlow, EmulatorFlow
from repro.genbench.workloads import workload_suite
from repro.uarch import Pipeline

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None, cycles: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    cycles = cycles or max(4000, ctx.scale.train_cycles // 2)
    model = ctx.apollo(ctx.default_q())
    emu = EmulatorFlow(ctx.core, model)
    dt = DesignTimeFlow(ctx.core, model)
    ref_cycles = min(2000, cycles)

    rows = []
    for name, prog in workload_suite().items():
        _activity, stats = Pipeline(ctx.params).run(prog, cycles)
        run_ = emu.trace(prog, cycles=cycles)
        win = max(64, cycles // 64)
        n = (run_.power.size // win) * win
        phases = run_.power[:n].reshape(-1, win).mean(axis=1)
        est = dt.estimate(prog, ref_cycles, with_reference=True)
        rows.append(
            {
                "workload": name,
                "mean_power_mw": float(run_.power.mean()),
                "phase_range": float(
                    phases.max() / max(1e-9, phases.min())
                ),
                "ipc": stats.ipc,
                "l1d_miss": stats.l1d.miss_rate,
                "mispredicts": stats.mispredicts,
                "r2_vs_signoff": r2_score(est.label, est.power),
                "nrmse_vs_signoff": nrmse(est.label, est.power),
            }
        )
    text = format_table(
        rows,
        title=f"Extension: SPEC-like suite introspection ({cycles} cycles)",
    )
    powers = [r["mean_power_mw"] for r in rows]
    worst_r2 = min(r["r2_vs_signoff"] for r in rows)
    return ExperimentResult(
        id="ext_workloads",
        title="Long-trace power introspection across a workload suite",
        paper_claim=(
            "§8.1: the emulator-assisted flow makes whole-workload "
            "power introspection routine, not a one-off"
        ),
        text=text,
        rows=rows,
        summary={
            "n_workloads": len(rows),
            "power_span": round(max(powers) / min(powers), 2),
            "worst_r2_vs_signoff": round(worst_r2, 4),
        },
    )
