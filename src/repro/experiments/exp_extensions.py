"""Extensions beyond the paper's evaluation (its §9 future work).

* ``ext_highlevel`` — the C/C++-abstraction direction: a power model on
  microarchitectural activity (no RTL simulation at inference), compared
  against RTL-proxy APOLLO for accuracy and speed;
* ``ext_dvfs`` — the §1 coarse-grained use case: a DVFS governor driven
  by windowed OPM readings with a power budget and thermal cap.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import nrmse, r2_score
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv, format_table
from repro.experiments.runner import ExperimentResult
from repro.flow.dvfs import DvfsGovernor, DvfsPolicy
from repro.flow.highlevel import (
    dataset_activities,
    train_activity_model,
)
from repro.genbench.handcrafted import testing_suite
from repro.opm import OpmMeter, quantize_model

__all__ = [
    "run_highlevel",
    "run_dvfs",
    "run_counters",
    "run_didt",
    "run_multicore",
]


def _programs_by_name(ctx: ExperimentContext) -> dict:
    progs = {
        ind.program.name: (ind.program, None) for ind in ctx.ga.individuals
    }
    for bench in testing_suite(ctx.scale.test_cycle_scale):
        progs[bench.name] = (bench.program, bench.throttle)
    return progs


def run_highlevel(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    progs = _programs_by_name(ctx)

    act_train = dataset_activities(ctx.core, ctx.train, progs)
    model = train_activity_model(act_train, ctx.train.labels)
    act_test = dataset_activities(ctx.core, ctx.test, progs)
    y = ctx.test.labels
    p_hl = model.predict(act_test)

    apollo = ctx.apollo(q)
    p_rtl = apollo.predict(ctx.test_features(apollo.proxies))

    # Speed: performance-sim-only tracing vs proxy-capture RTL tracing.
    from repro.experiments.exp_fig16 import hmmer_like
    from repro.flow import EmulatorFlow

    cycles = 4000
    _power, hl_seconds = model.trace_program(
        ctx.params, hmmer_like(), cycles
    )
    rtl_run = EmulatorFlow(ctx.core, apollo).trace(
        hmmer_like(), cycles=cycles
    )
    rtl_seconds = rtl_run.sim_seconds + rtl_run.inference_seconds

    kv = {
        "activity_features": model.n_features,
        "highlevel_r2": r2_score(y, p_hl),
        "highlevel_nrmse": nrmse(y, p_hl),
        "apollo_r2": r2_score(y, p_rtl),
        "apollo_nrmse": nrmse(y, p_rtl),
        "nrmse_gap": nrmse(y, p_hl) - nrmse(y, p_rtl),
        "highlevel_trace_seconds": hl_seconds,
        "rtl_trace_seconds": rtl_seconds,
        "speedup_vs_rtl_flow": rtl_seconds / max(1e-9, hl_seconds),
    }
    top = model.top_contributors(8)
    text = (
        format_kv(kv, title="Extension: high-abstraction power model")
        + "\n\ntop activity contributors:\n"
        + "\n".join(f"  {name:<28} {w:+.4f}" for name, w in top)
    )
    return ExperimentResult(
        id="ext_highlevel",
        title="Performance-simulation-level power tracing (§9 direction)",
        paper_claim=(
            "future work: translate the design-time model to higher "
            "abstraction (C/C++), integrating performance simulation "
            "with power tracing"
        ),
        text=text,
        rows=[{"feature": n, "weight": w} for n, w in top],
        summary={
            "highlevel_r2": round(kv["highlevel_r2"], 4),
            "apollo_r2": round(kv["apollo_r2"], 4),
            "nrmse_gap": round(kv["nrmse_gap"], 4),
            "speedup_vs_rtl_flow": round(kv["speedup_vs_rtl_flow"], 1),
        },
    )


def run_counters(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    """§1's claim, quantified: event counters vs APOLLO across window T.

    Counter models are trained and evaluated per T; APOLLO's per-cycle
    model is window-averaged for the same T.  The counter curve should be
    poor at fine granularity and approach (but not beat) APOLLO as T
    grows — the reason the paper's runtime OPM exists.
    """
    from repro.baselines import train_counter_model
    from repro.flow.highlevel import dataset_activities

    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    apollo = ctx.apollo(q)
    progs = _programs_by_name(ctx)
    act_train = dataset_activities(ctx.core, ctx.train, progs)
    act_test = dataset_activities(ctx.core, ctx.test, progs)
    y_train = ctx.train.labels
    y_test = ctx.test.labels
    Xp = ctx.test_features(apollo.proxies)

    rows = []
    for t in (1, 4, 16, 64, 256):
        counter = train_counter_model(act_train, y_train, t=t)
        p_ctr = counter.predict(act_test)
        n = (y_test.size // t) * t
        yw = y_test[:n].reshape(-1, t).mean(axis=1)
        rows.append(
            {
                "t": t,
                "counter_nrmse": nrmse(yw, p_ctr),
                "apollo_nrmse": nrmse(
                    yw, apollo.predict_window(Xp, t)
                ),
            }
        )
    text = format_table(
        rows, title="Extension: event-counter models vs APOLLO across T"
    )
    fine = rows[0]
    coarse = rows[-1]
    return ExperimentResult(
        id="ext_counters",
        title="Event-counter baselines degrade at fine granularity",
        paper_claim=(
            "§1/§2: counter events correlate poorly with per-cycle "
            "activity; counter methods are restricted to coarse windows"
        ),
        text=text,
        rows=rows,
        summary={
            "counter_fine_nrmse": round(fine["counter_nrmse"], 4),
            "counter_coarse_nrmse": round(coarse["counter_nrmse"], 4),
            "apollo_fine_nrmse": round(fine["apollo_nrmse"], 4),
            "fine_grain_gap": round(
                fine["counter_nrmse"] / fine["apollo_nrmse"], 2
            ),
        },
    )


def run_didt(
    ctx: ExperimentContext | None = None
) -> ExperimentResult:
    """dI/dt stressmark evolution (§8.2's stress scenario, GeST-style)."""
    from repro.genbench import BenchmarkEvolver, GaConfig
    from repro.power import PdnModel

    ctx = ctx or ExperimentContext()
    cfg = GaConfig(
        population=ctx.scale.ga_population,
        generations=max(4, ctx.scale.ga_generations // 2),
        eval_cycles=ctx.scale.ga_benchmark_cycles,
        seed=ctx.seed + 1,
        fitness="didt",
    )
    evolver = BenchmarkEvolver(ctx.core, cfg)
    result = evolver.run()
    virus = result.best_by_fitness

    # Droop caused by the evolved stressmark vs the *power* virus.
    pdn = PdnModel()
    didt_trace = evolver._power_traces([virus.program])[0]
    power_virus = ctx.ga.best
    power_trace = evolver._power_traces([power_virus.program])[0]
    droop_didt = pdn.droop_magnitude(didt_trace)
    droop_power = pdn.droop_magnitude(power_trace)

    kv = {
        "didt_virus_fitness_mA": virus.fitness,
        "didt_virus_avg_power": virus.power,
        "power_virus_avg_power": power_virus.power,
        "droop_from_didt_virus_mv": droop_didt,
        "droop_from_power_virus_mv": droop_power,
    }
    text = format_kv(
        kv, title="Extension: dI/dt stressmark evolution"
    )
    return ExperimentResult(
        id="ext_didt",
        title="GA-evolved Ldi/dt stressmark",
        paper_claim=(
            "§8.2: current ramps, not absolute power, excite droops; a "
            "ramp-fitness GA finds them (GeST's second stressmark family)"
        ),
        text=text,
        rows=[kv],
        summary={
            "didt_fitness": round(virus.fitness, 3),
            "droop_didt_mv": round(droop_didt, 2),
            "droop_power_mv": round(droop_power, 2),
        },
    )


def run_multicore(
    ctx: ExperimentContext | None = None,
    n_cores: int = 4,
    cycles: int = 2000,
) -> ExperimentResult:
    """Multi-core socket simulation (§1's "multiple CPU cores" scenario).

    Four copies of the core run the evolved power virus over a shared
    PDN, aligned vs staggered.  Staggering flattens the socket power
    envelope and shrinks the worst droop — the management action that
    per-core OPM visibility enables.
    """
    from repro.flow.multicore import MulticoreSimulator

    ctx = ctx or ExperimentContext()
    virus = ctx.ga.best.program
    socket = MulticoreSimulator(ctx.core, n_cores=n_cores)

    aligned = socket.run([virus], cycles=cycles)
    stagger = [k * (cycles // (4 * n_cores)) for k in range(n_cores)]
    staggered = socket.run([virus], cycles=cycles, offsets=stagger)

    kv = {
        "n_cores": n_cores,
        "cycles": cycles,
        "aligned_peak_power_mw": float(aligned.total_power.max()),
        "staggered_peak_power_mw": float(staggered.total_power.max()),
        "aligned_droop_mv": aligned.droop_mv,
        "staggered_droop_mv": staggered.droop_mv,
        "aligned_alignment_factor": aligned.alignment_factor(),
        "staggered_alignment_factor": staggered.alignment_factor(),
        "peak_reduction_pct": 100.0
        * (1 - staggered.total_power.max() / aligned.total_power.max()),
    }
    text = format_kv(
        kv, title=f"Extension: {n_cores}-core socket, virus alignment"
    )
    return ExperimentResult(
        id="ext_multicore",
        title="Multi-core power/droop with burst de-phasing",
        paper_claim=(
            "§1: signoff flows cannot simulate multiple cores; APOLLO-"
            "style modeling makes socket-level power/droop tractable"
        ),
        text=text,
        rows=[kv],
        summary={
            "peak_reduction_pct": round(kv["peak_reduction_pct"], 1),
            "aligned_droop_mv": round(aligned.droop_mv, 3),
            "staggered_droop_mv": round(staggered.droop_mv, 3),
        },
    )


def run_dvfs(
    ctx: ExperimentContext | None = None,
    q: int | None = None,
    t: int = 256,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    meter = OpmMeter(quantize_model(model, bits=10), t=t)
    readings = meter.read(ctx.test.features(model.proxies))

    budget = float(np.quantile(readings, 0.7))
    governor = DvfsGovernor(policy=DvfsPolicy(power_budget_mw=budget))
    governed = governor.run(readings)
    fixed_hi = governor.run_fixed(readings, len(governor.points) - 1)
    fixed_lo = governor.run_fixed(readings, 0)

    rows = [
        {
            "config": "governed (OPM-driven)",
            "perf": governed.performance,
            "energy_mj": governed.energy_mj,
            "avg_power_mw": governed.avg_power_mw,
            "budget_violations": governed.budget_violations,
            "max_temp_c": float(governed.temperature_c.max()),
        },
        {
            "config": "fixed boost",
            "perf": fixed_hi.performance,
            "energy_mj": fixed_hi.energy_mj,
            "avg_power_mw": fixed_hi.avg_power_mw,
            "budget_violations": fixed_hi.budget_violations,
            "max_temp_c": float(fixed_hi.temperature_c.max()),
        },
        {
            "config": "fixed eco",
            "perf": fixed_lo.performance,
            "energy_mj": fixed_lo.energy_mj,
            "avg_power_mw": fixed_lo.avg_power_mw,
            "budget_violations": fixed_lo.budget_violations,
            "max_temp_c": float(fixed_lo.temperature_c.max()),
        },
    ]
    text = format_table(
        rows,
        title=(
            f"Extension: OPM-driven DVFS (T={t} windows, budget "
            f"{budget:.2f} mW)"
        ),
    )
    return ExperimentResult(
        id="ext_dvfs",
        title="Coarse-grained runtime management: DVFS on OPM readings",
        paper_claim=(
            "§1: DVFS needs coarse-grained power tracing; the same OPM "
            "serves it with a large averaging window"
        ),
        text=text,
        rows=rows,
        summary={
            "governed_perf": round(governed.performance, 3),
            "governed_violations": governed.budget_violations,
            "boost_violations": fixed_hi.budget_violations,
            "eco_perf": round(fixed_lo.performance, 3),
            "violation_reduction": fixed_hi.budget_violations
            - governed.budget_violations,
        },
    )
