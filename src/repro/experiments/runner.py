"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure: data + rendering + paper reference."""

    id: str
    title: str
    paper_claim: str
    text: str
    summary: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"== {self.id}: {self.title} ==",
            f"paper: {self.paper_claim}",
            "",
            self.text,
        ]
        if self.summary:
            lines.append("")
            lines.append(
                "summary: "
                + ", ".join(f"{k}={v}" for k, v in self.summary.items())
            )
        return "\n".join(lines)


def _lazy(module: str, func: str = "run") -> Callable:
    def call(ctx: ExperimentContext | None = None, **kw):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        return getattr(mod, func)(ctx, **kw)

    return call


#: id -> (callable(ctx, **kw) -> ExperimentResult, default design)
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table1": (_lazy("exp_tables", "run_table1"), "n1"),
    "table3": (_lazy("exp_tables", "run_table3"), "n1"),
    "table4": (_lazy("exp_tables", "run_table4"), "n1"),
    "table5": (_lazy("exp_tables", "run_table5"), "n1"),
    "fig03": (_lazy("exp_fig03"), "n1"),
    "fig09": (_lazy("exp_fig09"), "n1"),
    "fig10": (_lazy("exp_fig10"), "n1"),
    "fig11": (_lazy("exp_fig11"), "n1"),
    "fig12": (_lazy("exp_fig10"), "a77"),
    "fig13": (_lazy("exp_fig13", "run_fig13"), "n1"),
    "fig14": (_lazy("exp_fig13", "run_fig14"), "n1"),
    "fig15a": (_lazy("exp_fig15", "run_fig15a"), "n1"),
    "fig15b": (_lazy("exp_fig15", "run_fig15b"), "n1"),
    "fig16": (_lazy("exp_fig16"), "n1"),
    "fig17": (_lazy("exp_fig17"), "n1"),
    "sec7_5": (_lazy("exp_sections", "run_sec75"), "n1"),
    "sec8_1": (_lazy("exp_sections", "run_sec81"), "n1"),
    "ablations": (_lazy("ablations"), "n1"),
    # Extensions beyond the paper's evaluation (its §9 future work and
    # the §1 DVFS use case).
    "ext_highlevel": (_lazy("exp_extensions", "run_highlevel"), "n1"),
    "ext_dvfs": (_lazy("exp_extensions", "run_dvfs"), "n1"),
    "ext_counters": (_lazy("exp_extensions", "run_counters"), "n1"),
    "ext_didt": (_lazy("exp_extensions", "run_didt"), "n1"),
    "ext_multicore": (_lazy("exp_extensions", "run_multicore"), "n1"),
    "ext_workloads": (_lazy("exp_workloads"), "n1"),
    "ext_littlecore": (_lazy("exp_littlecore"), "m0"),
}


def run_experiment(
    exp_id: str,
    ctx: ExperimentContext | None = None,
    scale: str | None = None,
    **kw,
) -> ExperimentResult:
    """Run one experiment by id, building a default context if needed."""
    if exp_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    fn, design = EXPERIMENTS[exp_id]
    if ctx is None:
        ctx = ExperimentContext(design=design, scale=scale)
    result = fn(ctx, **kw)
    if exp_id == "fig12" and result.id == "fig10":
        result.id = "fig12"
        result.title = result.title.replace("(n1", "(a77")
    return result
