"""Experiment registry and result container."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
]


@dataclass
class ExperimentResult:
    """One regenerated table/figure: data + rendering + paper reference."""

    id: str
    title: str
    paper_claim: str
    text: str
    summary: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"== {self.id}: {self.title} ==",
            f"paper: {self.paper_claim}",
            "",
            self.text,
        ]
        if self.summary:
            lines.append("")
            lines.append(
                "summary: "
                + ", ".join(f"{k}={v}" for k, v in self.summary.items())
            )
        return "\n".join(lines)


def _lazy(module: str, func: str = "run") -> Callable:
    def call(ctx: ExperimentContext | None = None, **kw):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        return getattr(mod, func)(ctx, **kw)

    return call


#: id -> (callable(ctx, **kw) -> ExperimentResult, default design)
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table1": (_lazy("exp_tables", "run_table1"), "n1"),
    "table3": (_lazy("exp_tables", "run_table3"), "n1"),
    "table4": (_lazy("exp_tables", "run_table4"), "n1"),
    "table5": (_lazy("exp_tables", "run_table5"), "n1"),
    "fig03": (_lazy("exp_fig03"), "n1"),
    "fig09": (_lazy("exp_fig09"), "n1"),
    "fig10": (_lazy("exp_fig10"), "n1"),
    "fig11": (_lazy("exp_fig11"), "n1"),
    "fig12": (_lazy("exp_fig10"), "a77"),
    "fig13": (_lazy("exp_fig13", "run_fig13"), "n1"),
    "fig14": (_lazy("exp_fig13", "run_fig14"), "n1"),
    "fig15a": (_lazy("exp_fig15", "run_fig15a"), "n1"),
    "fig15b": (_lazy("exp_fig15", "run_fig15b"), "n1"),
    "fig16": (_lazy("exp_fig16"), "n1"),
    "fig17": (_lazy("exp_fig17"), "n1"),
    "sec7_5": (_lazy("exp_sections", "run_sec75"), "n1"),
    "sec8_1": (_lazy("exp_sections", "run_sec81"), "n1"),
    "ablations": (_lazy("ablations"), "n1"),
    # Extensions beyond the paper's evaluation (its §9 future work and
    # the §1 DVFS use case).
    "ext_highlevel": (_lazy("exp_extensions", "run_highlevel"), "n1"),
    "ext_dvfs": (_lazy("exp_extensions", "run_dvfs"), "n1"),
    "ext_counters": (_lazy("exp_extensions", "run_counters"), "n1"),
    "ext_didt": (_lazy("exp_extensions", "run_didt"), "n1"),
    "ext_multicore": (_lazy("exp_extensions", "run_multicore"), "n1"),
    "ext_workloads": (_lazy("exp_workloads"), "n1"),
    "ext_littlecore": (_lazy("exp_littlecore"), "m0"),
}


def run_experiment(
    exp_id: str,
    ctx: ExperimentContext | None = None,
    scale: str | None = None,
    **kw,
) -> ExperimentResult:
    """Run one experiment by id, building a default context if needed."""
    if exp_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    fn, design = EXPERIMENTS[exp_id]
    if ctx is None:
        ctx = ExperimentContext(design=design, scale=scale)
    result = fn(ctx, **kw)
    if exp_id == "fig12" and result.id == "fig10":
        result.id = "fig12"
        result.title = result.title.replace("(n1", "(a77")
    return result


#: Per-process context cache for the fan-out task: experiments sharing a
#: (design, scale) in one worker reuse its datasets and models.
_TASK_CONTEXTS: dict[tuple, ExperimentContext] = {}


def _experiment_task(args):
    """Run one experiment in a worker; never raises (errors are data).

    ``args = (exp_id, design, scale)``; returns
    ``(exp_id, ExperimentResult | None, error_str | None)``.
    """
    exp_id, design, scale = args
    try:
        key = (design, scale)
        ctx = _TASK_CONTEXTS.get(key)
        if ctx is None:
            ctx = _TASK_CONTEXTS[key] = ExperimentContext(
                design=design, scale=scale
            )
        return exp_id, run_experiment(exp_id, ctx=ctx), None
    except Exception as exc:  # noqa: BLE001 - reported to the caller
        return exp_id, None, f"{type(exc).__name__}: {exc}"


def _json_default(value):
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"experiment result not JSON-serializable: {type(value).__name__}"
    )


def _entry_to_json(entry: tuple) -> bytes:
    exp_id, result, error = entry
    payload = {"exp_id": exp_id, "error": error, "result": None}
    if result is not None:
        payload["result"] = {
            "id": result.id,
            "title": result.title,
            "paper_claim": result.paper_claim,
            "text": result.text,
            "summary": result.summary,
            "rows": result.rows,
        }
    return json.dumps(payload, default=_json_default).encode()


def _entry_from_json(raw: bytes) -> tuple:
    payload = json.loads(raw.decode())
    result = None
    if payload["result"] is not None:
        result = ExperimentResult(**payload["result"])
    return payload["exp_id"], result, payload["error"]


def run_experiments(
    exp_ids: list[str],
    design: str | None = None,
    scale: str | None = None,
    workers: int = 1,
    tracer=None,
    checkpoints=None,
    faults=None,
    resume: bool = False,
) -> list[tuple]:
    """Run several experiments, optionally fanned out across processes.

    Returns one ``(exp_id, result_or_None, error_or_None)`` tuple per
    id, in input order.  Each worker builds (and then reuses) one
    :class:`ExperimentContext` per (design, scale) it encounters; a
    failed experiment yields an error string instead of aborting the
    batch — mirroring the CLI's keep-going behavior.

    With a :class:`~repro.resilience.CheckpointStore`, finished
    experiments persist (JSON-encoded) under stage ``"experiments"``
    after every wave of ``workers``, and ``resume=True`` reruns only
    the unfinished ones.  JSON round-tripping turns tuples inside
    ``summary``/``rows`` into lists; experiments treat both alike.
    """
    from repro.parallel.pool import WorkerPool

    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    items = [
        (exp_id, design or EXPERIMENTS[exp_id][1], scale)
        for exp_id in exp_ids
    ]
    n = len(items)
    results: list[tuple | None] = [None] * n
    identity = [list(it) for it in items]
    if checkpoints is not None and resume:
        ck = checkpoints.latest("experiments")
        if ck is not None and ck.meta.get("identity") == identity:
            for i in ck.arrays["done"]:
                i = int(i)
                results[i] = _entry_from_json(
                    ck.arrays[f"exp{i}_json"].tobytes()
                )
    with WorkerPool(workers=workers, tracer=tracer, faults=faults) as pool:
        todo = [i for i in range(n) if results[i] is None]
        wave = max(
            1, len(todo) if checkpoints is None else pool.workers
        )
        for w0 in range(0, len(todo), wave):
            idxs = todo[w0:w0 + wave]
            outs = pool.map(
                _experiment_task,
                [items[i] for i in idxs],
                label="experiments",
            )
            for i, out in zip(idxs, outs):
                results[i] = out
            if checkpoints is not None:
                done = [i for i in range(n) if results[i] is not None]
                arrays = {"done": np.asarray(done, dtype=np.int64)}
                for i in done:
                    arrays[f"exp{i}_json"] = np.frombuffer(
                        _entry_to_json(results[i]), dtype=np.uint8
                    )
                checkpoints.save(
                    "experiments",
                    len(done),
                    arrays,
                    meta={"identity": identity},
                )
            if faults is not None:
                faults.raise_if("experiments.wave")
    return results
