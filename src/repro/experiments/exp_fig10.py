"""Figs. 10 / 12: per-cycle accuracy vs number of proxies Q.

APOLLO (MCP) vs the Lasso baseline [53] vs Simmani [40] across a Q sweep,
with PRIMAL-CNN and PCA as horizontal lines (they consume all signals, so
Q does not apply).  Fig. 12 is the same sweep on the a77 design; the
runner points it at an a77 context.
"""

from __future__ import annotations

import numpy as np

from repro.core import nrmse, r2_score
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult

__all__ = ["run", "q_sweep_for"]


def q_sweep_for(ctx: ExperimentContext) -> list[int]:
    """Q values scaled to the context (paper sweeps ~25..500).

    Larger designs sweep proportionally larger Q — the paper's A77
    curves extend to higher proxy counts than N1's.
    """
    base = ctx.scale.max_quickstart_q * ctx.design_scale_factor
    qs = [base // 8, base // 4, base // 2, base, base * 3 // 2, base * 2]
    return sorted({max(4, q) for q in qs})


def run(
    ctx: ExperimentContext | None = None,
    q_values: list[int] | None = None,
    with_cnn: bool = True,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    qs = q_values or q_sweep_for(ctx)
    y = ctx.test.labels

    def scores(p):
        return nrmse(y, p), r2_score(y, p)

    rows = []
    mcp_sel = ctx.selections(qs, "mcp")
    lasso_sel = ctx.selections(qs, "lasso")
    for q in qs:
        row = {"q": q}
        apollo = ctx.model_from_selection(mcp_sel[q])
        row["apollo_nrmse"], row["apollo_r2"] = scores(
            apollo.predict(ctx.test_features(apollo.proxies))
        )
        lasso = ctx.model_from_selection(lasso_sel[q])
        row["lasso_nrmse"], row["lasso_r2"] = scores(
            lasso.predict(ctx.test_features(lasso.proxies))
        )
        simmani = ctx.simmani(q, t=1)
        row["simmani_nrmse"], row["simmani_r2"] = scores(
            simmani.predict(ctx.test_features(simmani.proxies))
        )
        rows.append(row)

    # Horizontal lines: all-signal methods.
    X_ids = ctx.screened[1]
    X_test_all = ctx.test_features(X_ids)
    lines = {}
    pca = ctx.pca()
    lines["pca_nrmse"], lines["pca_r2"] = scores(pca.predict(X_test_all))
    if with_cnn:
        cnn = ctx.primal_cnn()
        lines["cnn_nrmse"], lines["cnn_r2"] = scores(
            cnn.predict(X_test_all)
        )

    text = format_table(
        rows,
        title=f"Fig. 10: accuracy vs Q ({ctx.design} design)",
    )
    text += "\n\nall-signal baselines (horizontal lines): " + ", ".join(
        f"{k}={v:.4f}" for k, v in lines.items()
    )

    # The paper's shape: APOLLO dominates Lasso/Simmani at matched Q.
    # MCP-vs-Lasso gaps are small at reproduction scale, so robustness
    # is measured across the whole sweep: at how many Q points is
    # APOLLO at or under the Lasso curve (2% tolerance)?
    largest = rows[-1]
    apollo_leq_lasso = sum(
        1
        for r in rows
        if r["apollo_nrmse"] <= 1.02 * r["lasso_nrmse"]
    )
    apollo_leq_simmani = sum(
        1
        for r in rows
        if r["apollo_nrmse"] <= r["simmani_nrmse"]
    )
    # The paper's plotted range starts near its headline Q; compare the
    # curves over the upper half of the sweep (small-Q points are
    # dominated by which few signals happen to survive the penalty).
    upper = rows[len(rows) // 2 :]
    apollo_mean_upper = float(
        np.mean([r["apollo_nrmse"] for r in upper])
    )
    lasso_mean_upper = float(
        np.mean([r["lasso_nrmse"] for r in upper])
    )
    headline = min(
        rows, key=lambda r: abs(r["q"] - ctx.default_q())
    )
    return ExperimentResult(
        id="fig10",
        title=f"Per-cycle accuracy vs number of proxies ({ctx.design})",
        paper_claim=(
            "APOLLO reaches NRMSE<10%, R^2>0.95 with ~150 proxies; "
            "Lasso and Simmani stay >12% NRMSE even at Q=500"
        ),
        text=text,
        rows=rows,
        summary={
            "best_apollo_nrmse": round(
                min(r["apollo_nrmse"] for r in rows), 4
            ),
            "best_apollo_r2": round(
                max(r["apollo_r2"] for r in rows), 4
            ),
            "apollo_leq_lasso_points": f"{apollo_leq_lasso}/{len(rows)}",
            "apollo_leq_simmani_points":
                f"{apollo_leq_simmani}/{len(rows)}",
            "apollo_beats_simmani_at_max_q": bool(
                largest["apollo_nrmse"] < largest["simmani_nrmse"]
            ),
            "apollo_mean_upper_nrmse": round(apollo_mean_upper, 4),
            "lasso_mean_upper_nrmse": round(lasso_mean_upper, 4),
            "apollo_wins_headline_q": bool(
                headline["apollo_nrmse"] <= headline["lasso_nrmse"]
            ),
            **{k: round(v, 4) for k, v in lines.items()},
        },
    )
