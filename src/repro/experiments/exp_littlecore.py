"""Extension: zero-touch retargeting to a third design (automation claim).

The paper's "Automation" contribution: "the overall framework
automatically generates training data, develops the model, and constructs
the OPM for an arbitrary novel CPU core with minimum designer
interference."  This experiment reruns the *entire* pipeline — GA
training data, MCP selection, relaxation, quantization, OPM synthesis —
on a little in-order-ish embedded core ("m0-like", ~1/2 the nets of
n1-like, 1-wide) with zero code changes, and reports the same headline
metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core import nrmse, r2_score
from repro.experiments.context import ExperimentContext
from repro.experiments.exp_fig15 import clock_mask_for
from repro.experiments.report import format_kv
from repro.experiments.runner import ExperimentResult
from repro.opm import OpmMeter, build_opm_netlist, quantize_model

__all__ = ["run"]


def run(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    if ctx is None or ctx.design != "m0":
        ctx = ExperimentContext(design="m0", scale=ctx.scale if ctx else None)
    q = q or max(8, ctx.default_q() // 2)
    model = ctx.apollo(q)
    y = ctx.test.labels
    p = model.predict(ctx.test_features(model.proxies))

    qm = quantize_model(model, bits=10)
    meter = OpmMeter(qm, t=1)
    p_opm = meter.read(ctx.test.features(model.proxies))
    hw = build_opm_netlist(
        qm, t=1, clock_mask=clock_mask_for(ctx, model.proxies)
    )
    area_pct = 100.0 * hw.area / ctx.core.netlist.total_area()

    kv = {
        "design": ctx.core.params.name,
        "nets": ctx.core.n_nets,
        "q": q,
        "q_share_pct": 100.0 * q / ctx.core.n_nets,
        "r2": r2_score(y, p),
        "nrmse": nrmse(y, p),
        "opm_nrmse": nrmse(y, p_opm),
        "opm_area_pct_self": area_pct,
        "ga_power_ratio": ctx.ga.max_min_ratio,
    }
    text = format_kv(
        kv, title="Extension: automated retargeting to the m0-like core"
    )
    return ExperimentResult(
        id="ext_littlecore",
        title="Zero-touch pipeline on a third design",
        paper_claim=(
            "automation: training data, model, and OPM are generated for "
            "an arbitrary novel core with minimum designer interference"
        ),
        text=text,
        rows=[kv],
        summary={
            "r2": round(kv["r2"], 4),
            "nrmse": round(kv["nrmse"], 4),
            "opm_nrmse": round(kv["opm_nrmse"], 4),
            "ga_power_ratio": round(kv["ga_power_ratio"], 2),
        },
    )
