"""Fig. 15: (a) proxy distribution over functional units; (b) OPM
area-vs-accuracy trade-off over (Q, B).

(a) mirrors the paper's categorization: gated-clock proxies vs the
functional unit each non-clock proxy belongs to (the paper finds 39/159
gated clocks and heavy representation of vector-execution / issue /
load-store).

(b) sweeps proxy count Q and weight bit-width B; accuracy comes from the
bit-exact behavioural meter, area from synthesizing the OPM netlist
against the cell library.  Overheads are reported both versus the
synthetic core and at the paper's N1 scale (see repro.opm.cost).
"""

from __future__ import annotations

import numpy as np

from repro.core import nrmse
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult
from repro.opm import OpmMeter, build_opm_netlist, quantize_model
from repro.rtl.cells import Op

__all__ = ["run_fig15a", "run_fig15b", "clock_mask_for"]


def clock_mask_for(ctx: ExperimentContext, proxies: np.ndarray) -> np.ndarray:
    ops = ctx.core.netlist.ops_array()
    return np.asarray(
        [ops[int(p)] == int(Op.CLK) for p in proxies], dtype=bool
    )


def run_fig15a(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    ops = ctx.core.netlist.ops_array()

    by_unit: dict[str, int] = {}
    n_clock = 0
    for p in model.proxies:
        p = int(p)
        if ops[p] == int(Op.CLK):
            n_clock += 1
            by_unit["gated clocks"] = by_unit.get("gated clocks", 0) + 1
        else:
            unit = ctx.core.unit_of_net(p)
            by_unit[unit] = by_unit.get(unit, 0) + 1
    rows = [
        {"category": k, "proxies": v, "share_pct": 100.0 * v / q}
        for k, v in sorted(by_unit.items(), key=lambda kv: -kv[1])
    ]
    text = format_table(
        rows, title=f"Fig. 15(a): proxy distribution (Q={q})"
    )
    # §7.4's interpretability claim: per-proxy power attribution on the
    # testing workloads, including the clock-gating insight list.
    from repro.core.interpret import attribute_proxies

    report = attribute_proxies(
        ctx.core, model, ctx.test.features(model.proxies)
    )
    text += "\n\n" + report.render(k=10)
    clocks = report.clock_gating_insight()
    if clocks:
        text += "\n\npower-hungry clock gates (descending):\n" + "\n".join(
            f"  {p.name:<30} {p.contribution_mw:.4f} mW"
            for p in clocks[:6]
        )
    exec_units = sum(
        v
        for k, v in by_unit.items()
        if k.startswith(("vec", "alu", "mul", "lsu"))
    )
    return ExperimentResult(
        id="fig15a",
        title="Distribution of extracted power proxies",
        paper_claim=(
            "39/159 proxies are gated clocks; vector execution, issue, "
            "and load-store units dominate the rest"
        ),
        text=text,
        rows=rows,
        summary={
            "q": q,
            "gated_clock_proxies": n_clock,
            "units_covered": len(by_unit),
            "execution_unit_proxies": exec_units,
        },
    )


def run_fig15b(
    ctx: ExperimentContext | None = None,
    q_values: list[int] | None = None,
    b_values: list[int] | None = None,
    t: int = 1,
) -> ExperimentResult:
    ctx = ctx or ExperimentContext()
    base = ctx.scale.max_quickstart_q
    qs = q_values or sorted({max(4, base // 4), max(6, base // 2), base})
    bs = b_values or [6, 8, 10, 12]
    y = ctx.test.labels

    rows = []
    for q in qs:
        model = ctx.apollo(q)
        Xq = ctx.test.features(model.proxies)
        exact_nrmse = nrmse(y, model.predict(Xq.astype(np.float64)))
        for b in bs:
            qm = quantize_model(model, bits=b)
            meter = OpmMeter(qm, t=t)
            p = meter.read(Xq)
            hw = build_opm_netlist(
                qm, t=t, clock_mask=clock_mask_for(ctx, model.proxies)
            )
            area_pct = 100.0 * hw.area / ctx.core.netlist.total_area()
            scale = 5e5 / ctx.core.netlist.n_nets
            rows.append(
                {
                    "q": q,
                    "bits": b,
                    "nrmse": nrmse(y, p),
                    "nrmse_loss_vs_float": nrmse(y, p) - exact_nrmse,
                    "area_pct_self": area_pct,
                    "area_pct_paper_scale": area_pct / scale,
                }
            )
    text = format_table(
        rows, title="Fig. 15(b): OPM area vs accuracy over (Q, B)"
    )
    # B >= 10 should be near-lossless (paper: <0.1% NRMSE increase);
    # compare perturbation magnitudes (coarse quantization can move
    # NRMSE either way).
    losses_10 = [
        abs(r["nrmse_loss_vs_float"]) for r in rows if r["bits"] >= 10
    ]
    losses_6 = [
        abs(r["nrmse_loss_vs_float"]) for r in rows if r["bits"] == 6
    ]
    return ExperimentResult(
        id="fig15b",
        title="OPM area/accuracy trade-off",
        paper_claim=(
            "accuracy loss high for B<9, negligible for B>10; "
            "Q=159/B=10 OPM is 0.2% of N1 gate area"
        ),
        text=text,
        rows=rows,
        summary={
            "max_loss_at_b10plus": round(max(losses_10), 5),
            "max_loss_at_b6": round(max(losses_6), 5),
            "headline_area_pct_paper_scale": round(
                [r for r in rows if r["bits"] == 10][-1][
                    "area_pct_paper_scale"
                ],
                4,
            ),
        },
    )
