"""Shared, cached experiment pipeline.

An :class:`ExperimentContext` owns everything the experiments need for one
design preset ("n1" or "a77") at one scale:

* the built core;
* the GA micro-benchmark pool (Fig. 3);
* training/testing datasets (disk-cached ``.npz`` under ``.artifacts``);
* a *screened* candidate feature matrix shared by every method, so Q
  sweeps and method comparisons pay the unpack/screen cost once;
* trained models per (method, Q, tau), cached in memory.

Cache keys embed design, scale, and the root seed; changing any knob
regenerates cleanly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import GLOBAL_SEED, Scale, artifacts_dir, get_scale
from repro.core import (
    ApolloModel,
    ApolloTauModel,
    ProxySelector,
    train_apollo,
    train_apollo_tau,
)
from repro.core.selection import SelectionResult
from repro.core.solvers import ridge_fit
from repro.design import CoreDesign, build_core
from repro.errors import ExperimentError
from repro.genbench import (
    BenchmarkEvolver,
    GaConfig,
    GaResult,
    PowerDataset,
    build_testing_dataset,
    build_training_dataset,
)
from repro.uarch import A77_LIKE, M0_LIKE, N1_LIKE, CoreParams

__all__ = ["ExperimentContext"]

_DESIGNS: dict[str, CoreParams] = {
    "n1": N1_LIKE,
    "a77": A77_LIKE,
    "m0": M0_LIKE,
}


class ExperimentContext:
    """Lazy, cached pipeline for one (design, scale) pair."""

    def __init__(
        self,
        design: str = "n1",
        scale: Scale | str | None = None,
        seed: int = GLOBAL_SEED,
        cache_dir: Path | None = None,
        workers: int = 1,
        eval_cache=None,
    ) -> None:
        if design not in _DESIGNS:
            raise ExperimentError(
                f"unknown design {design!r} (choose from {sorted(_DESIGNS)})"
            )
        self.design = design
        self.scale = (
            scale if isinstance(scale, Scale) else get_scale(
                scale if isinstance(scale, str) else None
            )
        )
        self.seed = seed
        self.cache_dir = cache_dir or artifacts_dir()
        # Simulation fan-out width and content-addressed evaluation cache
        # (repro.parallel.EvalCache); both deterministic no-ops at the
        # defaults.  Results are bit-identical for any workers/cache
        # combination, so these are pure throughput knobs.
        self.workers = workers
        self.eval_cache = eval_cache
        self._core: CoreDesign | None = None
        self._ga: GaResult | None = None
        self._train: PowerDataset | None = None
        self._test: PowerDataset | None = None
        self._screened: tuple[np.ndarray, np.ndarray] | None = None
        self._models: dict[tuple, object] = {}
        self._selections: dict[tuple, dict[int, SelectionResult]] = {}
        self._gamma: float | None = None

    # ------------------------------------------------------------------ #
    def _key(self, kind: str) -> Path:
        # The design fingerprint (net/reg/domain counts) and the dataset
        # generator version are part of the key, so structural changes to
        # either invalidate caches.
        from repro.genbench.dataset import DATASET_VERSION

        s = self.core.netlist.summary()
        fp = f"n{s['nets']}r{s['regs']}c{s['clk']}v{DATASET_VERSION}"
        tag = f"{self.design}-{self.scale.name}-{self.seed}-{fp}-{kind}"
        digest = hashlib.sha1(tag.encode()).hexdigest()[:10]
        return self.cache_dir / f"{tag}-{digest}.npz"

    @property
    def params(self) -> CoreParams:
        return _DESIGNS[self.design]

    @property
    def core(self) -> CoreDesign:
        if self._core is None:
            self._core = build_core(self.params)
        return self._core

    @property
    def design_scale_factor(self) -> int:
        """Proxy/screening budget multiplier for larger designs.

        The paper needs Q ~ 300 on Cortex-A77 versus ~150 on Neoverse N1
        — bigger designs need proportionally more proxies and a wider
        screen.  Normalized to the n1-like preset's size.
        """
        return max(1, round(self.core.n_nets / 12_000))

    @property
    def ga(self) -> GaResult:
        """GA micro-benchmark pool (memory-cached; fast to regenerate
        relative to dataset collection, and programs don't serialize
        cheaply)."""
        if self._ga is None:
            cfg = GaConfig(
                population=self.scale.ga_population,
                generations=self.scale.ga_generations,
                eval_cycles=self.scale.ga_benchmark_cycles,
                seed=self.seed,
            )
            evolver = BenchmarkEvolver(
                self.core,
                cfg,
                workers=self.workers,
                cache=self.eval_cache,
            )
            try:
                self._ga = evolver.run()
            finally:
                evolver.close()
        return self._ga

    @property
    def train(self) -> PowerDataset:
        if self._train is None:
            path = self._key("train")
            if path.exists():
                self._train = PowerDataset.load(path)
            else:
                self._train = build_training_dataset(
                    self.core,
                    self.ga,
                    target_cycles=self.scale.train_cycles,
                    replay_cycles=self.scale.ga_benchmark_cycles,
                    seed=self.seed,
                    workers=self.workers,
                    cache=self.eval_cache,
                )
                self._train.save(path)
        return self._train

    @property
    def test(self) -> PowerDataset:
        if self._test is None:
            path = self._key("test")
            if path.exists():
                self._test = PowerDataset.load(path)
            else:
                self._test = build_testing_dataset(
                    self.core,
                    cycle_scale=self.scale.test_cycle_scale,
                    workers=self.workers,
                    cache=self.eval_cache,
                )
                self._test.save(path)
        return self._test

    # ------------------------------------------------------------------ #
    @property
    def screened(self) -> tuple[np.ndarray, np.ndarray]:
        """(X, ids): the shared screened training features.

        One correlation screen over all candidates, reused by every
        method so comparisons share the same search space (and the dense
        matrix is unpacked once).
        """
        if self._screened is None:
            from repro.core.selection import _abs_corr

            ids = self.train.candidate_ids
            X = self.train.features(ids)
            width = self.scale.screen_width * self.design_scale_factor
            if X.shape[1] > width:
                corr = _abs_corr(
                    X.astype(np.float32), self.train.labels
                )
                keep = np.sort(
                    np.argsort(-corr, kind="stable")[:width]
                )
                X = X[:, keep]
                ids = ids[keep]
            self._screened = (
                np.ascontiguousarray(X), np.asarray(ids)
            )
        return self._screened

    def test_features(self, proxies: np.ndarray) -> np.ndarray:
        """Dense float toggle columns of the testing set."""
        return self.test.features(proxies).astype(np.float64)

    def train_features(self, proxies: np.ndarray) -> np.ndarray:
        return self.train.features(proxies).astype(np.float64)

    # ------------------------------------------------------------------ #
    @property
    def gamma(self) -> float:
        """MCP concavity, tuned on a 20% validation split (§7.1).

        The paper fixes gamma = 10 for its designs; on this substrate the
        best gamma shifts with dataset statistics, so it is selected the
        way the paper selects its hyper-parameters: by held-out NRMSE.
        """
        if self._gamma is None:
            self._gamma = self._tune_gamma()
        return self._gamma

    def _tune_gamma(self, grid=(2.0, 3.0, 10.0)) -> float:
        X, ids = self.screened
        y = self.train.labels
        train_idx, val_idx = self.train.split(0.2, seed=self.seed)
        # Score each gamma at two proxy budgets so the choice is stable
        # against the exact Q an experiment later requests.
        q_points = sorted(
            {max(4, self.default_q() // 2), self.default_q()}
        )
        lookup = {int(c): i for i, c in enumerate(ids)}
        best_gamma, best_score = grid[0], np.inf
        for gamma in grid:
            sels = ProxySelector(
                penalty="mcp", gamma=gamma, screen_width=None
            ).select_many(
                X[train_idx], y[train_idx], q_points, candidate_ids=ids
            )
            total = 0.0
            for q in q_points:
                cols = np.asarray(
                    [lookup[int(p)] for p in sels[q].proxies]
                )
                w, b = ridge_fit(
                    X[train_idx][:, cols].astype(np.float64),
                    y[train_idx],
                )
                pred = X[val_idx][:, cols].astype(np.float64) @ w + b
                total += float(
                    np.sqrt(((y[val_idx] - pred) ** 2).mean())
                )
            if total < best_score:
                best_gamma, best_score = gamma, total
        return best_gamma

    def _selector(self, penalty: str) -> ProxySelector:
        # Screening already happened at context level; MCP concavity is
        # validation-tuned once per context.
        if penalty == "mcp":
            return ProxySelector(
                penalty="mcp", gamma=self.gamma, screen_width=None
            )
        return ProxySelector(penalty=penalty, screen_width=None)

    def selections(
        self, q_list: list[int], penalty: str = "mcp"
    ) -> dict[int, SelectionResult]:
        """Shared-path selections for a Q sweep."""
        key = (penalty, tuple(sorted(set(q_list))))
        if key not in self._selections:
            X, ids = self.screened
            self._selections[key] = self._selector(penalty).select_many(
                X, self.train.labels, list(key[1]), candidate_ids=ids
            )
        return self._selections[key]

    def model_from_selection(
        self, sel: SelectionResult, ridge_lam: float = 1e-3
    ) -> ApolloModel:
        """Ridge relaxation of a selection (the §4.4 final model)."""
        X, ids = self.screened
        lookup = {int(c): i for i, c in enumerate(ids)}
        cols = np.asarray([lookup[int(p)] for p in sel.proxies])
        w, b = ridge_fit(
            X[:, cols].astype(np.float64),
            self.train.labels,
            lam=ridge_lam,
        )
        return ApolloModel(
            proxies=sel.proxies, weights=w, intercept=b, selection=sel
        )

    def apollo(self, q: int, penalty: str = "mcp") -> ApolloModel:
        """The relaxed APOLLO (or Lasso-baseline) model at proxy count Q."""
        key = ("apollo", penalty, q)
        if key not in self._models:
            sel = self.selections([q], penalty)[q]
            self._models[key] = self.model_from_selection(sel)
        return self._models[key]  # type: ignore[return-value]

    def apollo_tau(self, q: int, tau: int) -> ApolloTauModel:
        key = ("tau", q, tau)
        if key not in self._models:
            X, ids = self.screened
            self._models[key] = train_apollo_tau(
                X,
                self.train.labels,
                q=q,
                tau=tau,
                candidate_ids=ids,
                selector=self._selector("mcp"),
            )
        return self._models[key]  # type: ignore[return-value]

    def simmani(self, q: int, t: int = 1):
        from repro.baselines import train_simmani

        key = ("simmani", q, t)
        if key not in self._models:
            X, ids = self.screened
            self._models[key] = train_simmani(
                X,
                self.train.labels,
                q=q,
                t=t,
                candidate_ids=ids,
                seed=self.seed,
            )
        return self._models[key]

    def primal_cnn(self, epochs: int = 25):
        from repro.baselines import train_primal_cnn

        key = ("primal_cnn", epochs)
        if key not in self._models:
            X, _ids = self.screened
            self._models[key] = train_primal_cnn(
                X, self.train.labels, epochs=epochs, seed=self.seed
            )
        return self._models[key]

    def pca(self, n_components: int = 64):
        from repro.baselines import train_pca_baseline

        key = ("pca", n_components)
        if key not in self._models:
            X, _ids = self.screened
            self._models[key] = train_pca_baseline(
                X.astype(np.float64),
                self.train.labels,
                n_components=n_components,
            )
        return self._models[key]

    # ------------------------------------------------------------------ #
    def default_q(self) -> int:
        """The context's headline proxy count.

        The paper picks Q at the accuracy/cost knee of its design
        (Q = 159 on N1, ~300 on the larger A77); on this substrate the
        knee sits at the active scale's quickstart Q times the design
        scale factor (validated by the Fig. 10/12 sweeps).
        """
        return min(
            self.scale.max_quickstart_q * self.design_scale_factor,
            self.screened[0].shape[1] // 4,
        )
