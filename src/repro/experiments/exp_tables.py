"""Tables 1, 3, 4, 5: comparisons and the testing-benchmark inventory."""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import METHODS
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult
from repro.genbench.handcrafted import PAPER_TEST_CYCLES
from repro.opm.cost import table3_rows

__all__ = ["run_table1", "run_table3", "run_table4", "run_table5"]


def run_table1(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Table 1: the power-modeling landscape, with APOLLO's row measured."""
    rows = []
    for key in ("counters", "simmani", "primal_cnn", "yang_svd", "lasso",
                "apollo"):
        info = METHODS[key]
        rows.append(
            {
                "method": info.display,
                "category": info.category,
                "selection": info.proxy_selection,
                "resolution": info.temporal_resolution,
                "overhead": info.overhead_note,
            }
        )
    text = format_table(rows, title="Table 1 (condensed landscape)")
    return ExperimentResult(
        id="table1",
        title="Comparison among power modeling approaches",
        paper_claim=(
            "APOLLO is the only method with per-cycle resolution, "
            "automatic selection, and low overhead (0.2% area)"
        ),
        text=text,
        rows=rows,
        summary={"n_methods": len(rows)},
    )


def run_table3(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    """Table 3: counters/multipliers per method at proxy count Q."""
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    rows = table3_rows(q, m=ctx.core.n_nets)
    text = format_table(
        rows, title=f"Table 3 (hardware primitives at Q={q})"
    )
    apollo = [r for r in rows if r["method"] == "APOLLO (per-cycle)"][0]
    return ExperimentResult(
        id="table3",
        title="Hardware implementations of runtime monitors",
        paper_claim=(
            "APOLLO needs 1 counter and 0 multipliers; prior proxies "
            "need Q counters and up to Q^2 multipliers"
        ),
        text=text,
        rows=rows,
        summary={
            "q": q,
            "apollo_counters": apollo["counters"],
            "apollo_multipliers": apollo["multipliers"],
        },
    )


def run_table4(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Table 4: the 12 handcrafted testing benchmarks, verified by runs."""
    ctx = ctx or ExperimentContext()
    test = ctx.test
    rows = []
    for name, paper_cycles in PAPER_TEST_CYCLES.items():
        start, end = test.segment(name)
        seg_power = float(test.labels[start:end].mean())
        rows.append(
            {
                "benchmark": name,
                "paper_cycles": paper_cycles,
                "simulated_cycles": end - start,
                "mean_power_mw": seg_power,
            }
        )
    text = format_table(rows, title="Table 4 (testing benchmarks)")
    powers = [r["mean_power_mw"] for r in rows]
    return ExperimentResult(
        id="table4",
        title="Designer-handcrafted testing benchmarks",
        paper_claim="12 benchmarks covering low- and high-power use cases",
        text=text,
        rows=rows,
        summary={
            "n_benchmarks": len(rows),
            "power_ratio": max(powers) / min(powers),
        },
    )


def run_table5(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Table 5: baseline methodology comparison."""
    rows = []
    for key in ("simmani", "primal_cnn", "pca", "lasso", "apollo"):
        info = METHODS[key]
        rows.append(
            {
                "method": info.display,
                "selection": info.proxy_selection,
                "preprocessing": info.preprocessing,
                "model": info.ml_model,
            }
        )
    text = format_table(rows, title="Table 5 (baseline methodologies)")
    return ExperimentResult(
        id="table5",
        title="Comparisons with baseline methods",
        paper_claim=(
            "Simmani: K-means + polynomial elastic net; PRIMAL: CNN/PCA "
            "over all signals; [53]: Lasso; APOLLO: MCP + ridge"
        ),
        text=text,
        rows=rows,
        summary={"n_methods": len(rows)},
    )
