"""§7.5 and §8.1: OPM overhead accounting and inference-cost comparison."""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.exp_fig15 import clock_mask_for
from repro.experiments.report import format_kv, format_table
from repro.experiments.runner import ExperimentResult
from repro.flow.design_time import inference_seconds_per_1e9
from repro.opm import build_opm_netlist, estimate_opm_cost, quantize_model

__all__ = ["run_sec75", "run_sec81"]


def run_sec75(
    ctx: ExperimentContext | None = None,
    q: int | None = None,
    bits: int = 10,
    t: int = 1,
) -> ExperimentResult:
    """§7.5: headline OPM overheads (area, power, routing buffers)."""
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    qm = quantize_model(model, bits=bits)
    hw = build_opm_netlist(
        qm, t=t, clock_mask=clock_mask_for(ctx, model.proxies)
    )
    toggles = ctx.test.features(model.proxies)
    core_power = float(ctx.test.labels.mean())
    report = estimate_opm_cost(
        ctx.core, hw, toggles, core_power_mw=core_power
    )
    kv = {
        "q": q,
        "bits": bits,
        "t": t,
        "opm_gate_area_GE": report.opm_area,
        "routing_buffer_area_GE": report.buffer_area,
        "core_area_GE": report.core_area,
        "area_overhead_pct_self": report.area_overhead_pct,
        "area_overhead_pct_paper_scale":
            report.area_overhead_pct_paper_scale,
        "opm_power_mw": report.opm_power_mw,
        "buffer_power_mw": report.buffer_power_mw,
        "core_power_mw": report.core_power_mw,
        "power_overhead_pct_self": report.power_overhead_pct,
        "power_overhead_pct_paper_scale":
            report.power_overhead_pct_paper_scale,
        "latency_cycles": report.latency_cycles,
    }
    text = format_kv(kv, title="Sec 7.5: OPM hardware prototype overheads")
    return ExperimentResult(
        id="sec7_5",
        title="OPM overhead accounting",
        paper_claim=(
            "Q=159/B=10 OPM: 0.2% gate area, 2-cycle latency; power "
            "overhead 0.9% (0.4% routing buffers + 0.5% OPM) vs prior "
            "proxy monitors at 1.9-14%"
        ),
        text=text,
        rows=[kv],
        summary={
            "area_pct_paper_scale": round(
                report.area_overhead_pct_paper_scale, 4
            ),
            "power_pct_paper_scale": round(
                report.power_overhead_pct_paper_scale, 4
            ),
            "latency_cycles": report.latency_cycles,
        },
    )


def run_sec81(
    ctx: ExperimentContext | None = None, q: int | None = None
) -> ExperimentResult:
    """§8.1: inference time per 10^9 cycles across model families."""
    ctx = ctx or ExperimentContext()
    q = q or ctx.default_q()
    model = ctx.apollo(q)
    m_all = ctx.screened[0].shape[1]

    rows = []
    t_lin = inference_seconds_per_1e9(
        lambda X: X @ model.weights + model.intercept, q
    )
    rows.append(
        {"method": f"APOLLO (Q={q})", "sec_per_1e9_cycles": t_lin,
         "minutes_per_1e9": t_lin / 60}
    )
    pca = ctx.pca()
    t_pca = inference_seconds_per_1e9(
        pca.predict, m_all, sample_cycles=8000
    )
    rows.append(
        {"method": f"PCA (all {m_all} signals)",
         "sec_per_1e9_cycles": t_pca, "minutes_per_1e9": t_pca / 60}
    )
    cnn = ctx.primal_cnn()
    t_cnn = inference_seconds_per_1e9(
        cnn.predict, m_all, sample_cycles=2000
    )
    rows.append(
        {"method": f"PRIMAL CNN (all {m_all} signals)",
         "sec_per_1e9_cycles": t_cnn, "minutes_per_1e9": t_cnn / 60}
    )
    simmani = ctx.simmani(max(8, q // 2), t=1)

    def simmani_pred(X):
        return simmani.predict(X[:, : simmani.q])

    t_sim = inference_seconds_per_1e9(
        lambda X: simmani_pred(X), simmani.q, sample_cycles=8000
    )
    rows.append(
        {"method": f"Simmani (Q={simmani.q}, poly terms)",
         "sec_per_1e9_cycles": t_sim, "minutes_per_1e9": t_sim / 60}
    )
    text = format_table(
        rows, title="Sec 8.1: inference cost per billion cycles"
    )
    return ExperimentResult(
        id="sec8_1",
        title="Design-time inference throughput",
        paper_claim=(
            "APOLLO infers 1e9 cycles in ~1 minute; PCA takes ~a week "
            "and the CNN months (both read every signal); Simmani grows "
            "quadratically with Q"
        ),
        text=text,
        rows=rows,
        summary={
            "apollo_minutes_per_1e9": round(t_lin / 60, 2),
            "cnn_over_apollo": round(t_cnn / t_lin, 1),
            "pca_over_apollo": round(t_pca / t_lin, 1),
        },
    )
