"""Global configuration: scales, seeds, artifact locations.

Experiments run at one of a few *scales* so the same code serves unit tests
(seconds), benchmarks (minutes), and larger exploratory runs.  A scale maps
to sizes for the synthetic designs, the training trace length, and the GA
budget.  All randomness is seeded; the seed is part of every cache key.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "Scale",
    "SCALES",
    "default_scale_name",
    "get_scale",
    "artifacts_dir",
    "GLOBAL_SEED",
]

GLOBAL_SEED = 20211018  # MICRO'21 opening day; used as the root seed.

_ARTIFACTS_ENV = "REPRO_ARTIFACTS_DIR"
_SCALE_ENV = "REPRO_SCALE"


@dataclass(frozen=True)
class Scale:
    """Sizing knobs shared by dataset generation and experiments.

    Attributes
    ----------
    name:
        Registry key ("tiny", "small", "default").
    train_cycles:
        Target number of training cycles collected from GA micro-benchmarks.
    test_cycle_scale:
        Multiplier applied to the paper's per-benchmark cycle counts
        (Table 4) when building the handcrafted test set.  1.0 reproduces
        the paper's lengths.
    ga_generations / ga_population / ga_benchmark_cycles:
        Genetic-algorithm budget for training-data generation.
    screen_width:
        Number of candidate signals kept after correlation screening,
        before MCP / baseline selection runs.
    max_quickstart_q:
        Default proxy count used by examples and smoke tests.
    """

    name: str
    train_cycles: int
    test_cycle_scale: float
    ga_generations: int
    ga_population: int
    ga_benchmark_cycles: int
    screen_width: int
    max_quickstart_q: int = 50

    def scaled(self, **overrides: object) -> "Scale":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


SCALES: dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        train_cycles=1200,
        test_cycle_scale=0.15,
        ga_generations=4,
        ga_population=8,
        ga_benchmark_cycles=120,
        screen_width=400,
        max_quickstart_q=20,
    ),
    "small": Scale(
        name="small",
        train_cycles=4000,
        test_cycle_scale=0.35,
        ga_generations=8,
        ga_population=12,
        ga_benchmark_cycles=200,
        screen_width=1200,
        max_quickstart_q=40,
    ),
    "default": Scale(
        name="default",
        train_cycles=12000,
        test_cycle_scale=1.0,
        ga_generations=14,
        ga_population=16,
        ga_benchmark_cycles=300,
        screen_width=2400,
        max_quickstart_q=80,
    ),
}


def default_scale_name() -> str:
    """Scale selected via ``REPRO_SCALE`` env var, defaulting to "default"."""
    name = os.environ.get(_SCALE_ENV, "default")
    if name not in SCALES:
        raise KeyError(
            f"unknown scale {name!r} (choose from {sorted(SCALES)})"
        )
    return name


def get_scale(name: str | None = None) -> Scale:
    """Look up a :class:`Scale` by name (or the environment default)."""
    return SCALES[name if name is not None else default_scale_name()]


def artifacts_dir() -> Path:
    """Directory for cached datasets and trained models.

    Defaults to ``.artifacts`` beside the repository root; override with the
    ``REPRO_ARTIFACTS_DIR`` environment variable.  The directory is created
    on first use.
    """
    root = os.environ.get(_ARTIFACTS_ENV)
    if root is None:
        path = Path(__file__).resolve().parents[2] / ".artifacts"
    else:
        path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path
