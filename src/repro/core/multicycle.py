"""Multi-cycle power modeling: the ``APOLLO_tau`` model (§4.5).

Three estimators of T-cycle average power are compared in Fig. 11:

* **per-cycle average** (``tau = 1``): average T per-cycle predictions of
  the ordinary :class:`~repro.core.model.ApolloModel`;
* **input averaging** (``tau = T``): train on T-cycle-averaged toggle
  *rates* — loses cycle detail and couples the model to T;
* **APOLLO_tau**: train on tau-cycle intervals (tau a hyper-parameter,
  tau = 8 best in the paper), then evaluate with the rearranged Eq. (9):
  a T-cycle prediction is the mean of *per-cycle* weighted toggle sums —
  binary inputs, so the hardware needs no multipliers and tau disappears
  at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import PowerModelError
from repro.core.selection import ProxySelector, SelectionResult
from repro.core.solvers import ridge_fit

__all__ = ["window_average", "ApolloTauModel", "train_apollo_tau"]


def window_average(
    X: np.ndarray, y: np.ndarray, tau: int, stride: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Average features and labels over tau-cycle intervals.

    ``stride`` defaults to ``tau`` (non-overlapping intervals, the
    evaluation semantics).  A smaller stride yields *overlapping* training
    windows — more samples from the same trace, which is how
    :func:`train_apollo_tau` avoids losing statistical power when tau
    grows.  Trailing cycles not filling an interval are dropped.  Features
    become real-valued toggle rates in [0, 1].
    """
    if tau < 1:
        raise PowerModelError(f"tau must be >= 1, got {tau}")
    stride = tau if stride is None else stride
    if stride < 1:
        raise PowerModelError(f"stride must be >= 1, got {stride}")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.shape[0] != y.shape[0]:
        raise PowerModelError("X and y disagree on cycle count")
    if X.shape[0] < tau:
        raise PowerModelError(
            f"trace of {X.shape[0]} cycles shorter than tau={tau}"
        )
    starts = np.arange(0, X.shape[0] - tau + 1, stride)
    # Prefix sums make arbitrary-stride windows O(n).
    cs_x = np.vstack([np.zeros((1, X.shape[1])), np.cumsum(X, axis=0)])
    cs_y = np.concatenate([[0.0], np.cumsum(y)])
    Xw = (cs_x[starts + tau] - cs_x[starts]) / tau
    yw = (cs_y[starts + tau] - cs_y[starts]) / tau
    return Xw, yw


@dataclass
class ApolloTauModel:
    """Interval-trained linear model evaluated per Eq. (9).

    ``tau`` is recorded for provenance only — inference never uses it.
    """

    proxies: np.ndarray
    weights: np.ndarray
    intercept: float = 0.0
    tau: int = 8
    selection: SelectionResult | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.proxies = np.asarray(self.proxies, dtype=np.int64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.proxies.shape != self.weights.shape:
            raise PowerModelError("proxies/weights shape mismatch")
        if self.tau < 1:
            raise PowerModelError(f"tau must be >= 1, got {self.tau}")

    @property
    def q(self) -> int:
        return int(self.proxies.size)

    def predict_window(self, x_proxies: np.ndarray, t: int) -> np.ndarray:
        """T-cycle average power from *per-cycle* proxy toggles (Eq. 9).

        ``p_T = (1/T) * sum_{i<T} sum_j w_j x_j[i] + intercept`` — the
        weights multiply binary per-cycle toggles; the interval structure
        used in training does not appear.
        """
        X = np.asarray(x_proxies, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.q:
            raise PowerModelError(
                f"expected (N, {self.q}) proxy matrix, got {X.shape}"
            )
        if t < 1:
            raise PowerModelError(f"window T must be >= 1, got {t}")
        per_cycle = X @ self.weights
        n = (per_cycle.size // t) * t
        if n == 0:
            raise PowerModelError(
                f"trace of {per_cycle.size} cycles shorter than T={t}"
            )
        return per_cycle[:n].reshape(-1, t).mean(axis=1) + self.intercept

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            proxies=self.proxies,
            weights=self.weights,
            intercept=np.float64(self.intercept),
            tau=np.int64(self.tau),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ApolloTauModel":
        with np.load(path) as data:
            return cls(
                proxies=data["proxies"],
                weights=data["weights"],
                intercept=float(data["intercept"]),
                tau=int(data["tau"]),
            )


def train_apollo_tau(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    tau: int = 8,
    candidate_ids: np.ndarray | None = None,
    selector: ProxySelector | None = None,
    ridge_lam: float = 1e-3,
    stride: int | None = None,
) -> ApolloTauModel:
    """Train APOLLO_tau: interval-average, select, relax.

    The same selection + relaxation procedure as the per-cycle model runs
    on tau-cycle averaged data (real-valued toggle rates).  Training uses
    *overlapping* intervals by default (``stride = max(1, tau // 4)``) so
    a tau-cycle model sees as many samples as the per-cycle one —
    without this, interval averaging divides the training set by tau and
    the multi-cycle model loses to the simple per-cycle average.
    """
    if stride is None:
        stride = max(1, tau // 4)
    Xw, yw = window_average(X, y, tau, stride=stride)
    selector = selector or ProxySelector()
    sel = selector.select(Xw, yw, q, candidate_ids=candidate_ids)
    if candidate_ids is None:
        cols = sel.proxies
    else:
        lookup = {int(cid): i for i, cid in enumerate(candidate_ids)}
        cols = np.asarray([lookup[int(p)] for p in sel.proxies])
    w, b = ridge_fit(Xw[:, cols], yw, lam=ridge_lam)
    return ApolloTauModel(
        proxies=sel.proxies,
        weights=w,
        intercept=b,
        tau=tau,
        selection=sel,
    )
