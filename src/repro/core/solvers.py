"""Penalized least-squares solvers: coordinate descent and ridge.

One engine covers MCP, Lasso, and elastic net — exactly the solver family
the paper's comparisons need (APOLLO vs Pagliari-Lasso vs Simmani's elastic
net).  Features are standardized internally (zero mean, unit variance), the
standard setting for sparsity-inducing penalties; fitted weights are mapped
back to the original feature scale and an intercept absorbs the centering.

For speed the solver uses *covariance updates*: after one pass computing
``G = X'X / N`` and ``c = X'y / N``, each coordinate step is O(M), making
warm-started lambda paths over thousands of candidates cheap.  An active-set
strategy (full sweeps only when the active set stabilizes) gives the usual
further speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerModelError
from repro.obs.trace import NULL_TRACER
from repro.core.mcp import mcp_prox, soft_threshold

__all__ = [
    "CdResult",
    "coordinate_descent",
    "lambda_max",
    "lambda_path",
    "ridge_fit",
    "Standardizer",
]


class Standardizer:
    """Column standardization that tolerates constant columns.

    Constant columns get scale 1 and end up with weight 0 (their centered
    values are identically zero), so they can never be selected — matching
    the intuition that a never/always-toggling signal carries no per-cycle
    information (the intercept absorbs it).
    """

    def __init__(self, X: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        self.mean = X.mean(axis=0)
        sd = X.std(axis=0)
        self.constant = sd <= 1e-12
        self.scale = np.where(self.constant, 1.0, sd)

    def transform(self, X: np.ndarray) -> np.ndarray:
        return (np.asarray(X, dtype=np.float64) - self.mean) / self.scale

    def unstandardize_weights(
        self, w_std: np.ndarray, y_mean: float
    ) -> tuple[np.ndarray, float]:
        """Map standardized-space weights to raw-space (weights, intercept)."""
        w = np.where(self.constant, 0.0, w_std / self.scale)
        intercept = float(y_mean - w @ self.mean)
        return w, intercept


@dataclass
class CdResult:
    """Result of one coordinate-descent fit (raw feature space)."""

    weights: np.ndarray
    intercept: float
    weights_std: np.ndarray
    lam: float
    n_iter: int
    converged: bool

    @property
    def nonzero(self) -> np.ndarray:
        return np.nonzero(self.weights_std != 0.0)[0]

    @property
    def n_nonzero(self) -> int:
        return int(np.count_nonzero(self.weights_std))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=np.float64) @ self.weights + self.intercept


def _prox_update(
    z: np.ndarray, penalty: str, lam: float, gamma: float, alpha: float
) -> np.ndarray:
    if penalty == "mcp":
        return mcp_prox(z, lam, gamma)
    if penalty == "lasso":
        return soft_threshold(z, lam)
    if penalty == "elasticnet":
        return soft_threshold(z, lam * alpha) / (1.0 + lam * (1.0 - alpha))
    raise PowerModelError(f"unknown penalty {penalty!r}")


def lambda_max(Xs: np.ndarray, y_centered: np.ndarray) -> float:
    """Smallest lambda with an all-zero Lasso/MCP solution."""
    n = Xs.shape[0]
    return float(np.abs(Xs.T @ y_centered).max() / n)


def lambda_path(
    lam_hi: float, lam_lo_frac: float = 1e-3, n: int = 60
) -> np.ndarray:
    """Log-spaced decreasing lambda path."""
    if lam_hi <= 0:
        raise PowerModelError("lambda_max must be positive")
    return np.geomspace(lam_hi, lam_hi * lam_lo_frac, n)


def coordinate_descent(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    penalty: str = "mcp",
    gamma: float = 10.0,
    alpha: float = 0.5,
    max_iter: int = 200,
    tol: float = 1e-6,
    warm_start: np.ndarray | None = None,
    _precomputed: tuple | None = None,
    tracer=None,
) -> CdResult:
    """Solve ``min_w 1/(2N) ||y - Xw - b||^2 + sum P(w_j)``.

    Parameters mirror the paper: ``gamma=10`` is the unpenalized-weight
    threshold used in §7.1; the regressor "converges within 200 iterations"
    — ``max_iter`` defaults accordingly.

    ``_precomputed`` lets the path driver share the standardizer and Gram
    matrix across lambda values.  With an enabled ``tracer`` each fit
    becomes a ``solver.cd`` span carrying the per-iteration residual
    (max coordinate delta) history alongside the convergence outcome.
    """
    tracer = tracer or NULL_TRACER
    if _precomputed is None:
        _precomputed = precompute(X, y)
    std, G, c, y_mean = _precomputed
    m = G.shape[0]

    w = (
        warm_start.astype(np.float64).copy()
        if warm_start is not None
        else np.zeros(m)
    )
    if w.shape != (m,):
        raise PowerModelError("warm_start has wrong shape")
    Gw = G @ w if w.any() else np.zeros(m)

    converged = False
    it = 0
    active: np.ndarray | None = None
    # Residual history is only materialized when tracing is on, so the
    # disabled-by-default path stays allocation-free.
    history: list[float] | None = [] if tracer.enabled else None
    with tracer.span(
        "solver.cd", penalty=penalty, lam=float(lam)
    ) as sp:
        for it in range(1, max_iter + 1):
            # An active-set sweep below tolerance only *tentatively*
            # converges (pending the confirming full sweep), so the flag
            # must not survive into an iteration whose sweep still moves
            # weights.
            converged = False
            # Alternate full sweeps with active-set sweeps.
            full_sweep = active is None or (it % 10 == 1)
            idx = np.arange(m) if full_sweep else active
            max_delta = 0.0
            for j in idx:
                zj = c[j] - Gw[j] + w[j]
                wj_new = float(
                    _prox_update(np.asarray(zj), penalty, lam, gamma, alpha)
                )
                delta = wj_new - w[j]
                if delta != 0.0:
                    Gw += G[:, j] * delta
                    w[j] = wj_new
                    max_delta = max(max_delta, abs(delta))
            if history is not None:
                history.append(max_delta)
            if full_sweep:
                active = np.nonzero(w != 0.0)[0]
            if max_delta < tol:
                converged = True
                if full_sweep:
                    break
                active = None  # confirm with one final full sweep

        if sp:
            sp.set(
                n_iter=it,
                converged=converged,
                n_nonzero=int(np.count_nonzero(w)),
                residual_history=history,
            )

    weights, intercept = std.unstandardize_weights(w, y_mean)
    return CdResult(
        weights=weights,
        intercept=intercept,
        weights_std=w,
        lam=lam,
        n_iter=it,
        converged=converged,
    )


def precompute(
    X: np.ndarray, y: np.ndarray
) -> tuple[Standardizer, np.ndarray, np.ndarray, float]:
    """Standardize and form the Gram matrix / correlation vector.

    Returns ``(std, G, c, y_mean)`` — exactly what the coordinate-
    descent hot path consumes.  The centered target is cheap to rebuild
    (``y - y_mean``) where a caller needs it (e.g. ``lambda_max``), so
    it is not carried in the tuple.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise PowerModelError(
            f"bad shapes X{X.shape} y{y.shape} for regression"
        )
    n = X.shape[0]
    if n < 2:
        raise PowerModelError("need at least 2 samples")
    std = Standardizer(X)
    Xs = std.transform(X)
    y_mean = float(y.mean())
    G = (Xs.T @ Xs) / n
    c = (Xs.T @ (y - y_mean)) / n
    return std, G, c, y_mean


def ridge_fit(
    X: np.ndarray,
    y: np.ndarray,
    lam: float = 1e-3,
    fit_intercept: bool = True,
) -> tuple[np.ndarray, float]:
    """Closed-form ridge regression (the relaxation step of §4.4).

    Returns raw-space ``(weights, intercept)``.  ``lam`` is relative to the
    standardized scale, "much weaker" than the selection penalty.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.shape[0] != y.shape[0]:
        raise PowerModelError("X and y disagree on sample count")
    n, m = X.shape
    if fit_intercept:
        xm = X.mean(axis=0)
        ym = float(y.mean())
        Xc = X - xm
        yc = y - ym
    else:
        xm = np.zeros(m)
        ym = 0.0
        Xc, yc = X, y
    A = (Xc.T @ Xc) / n + lam * np.eye(m)
    b = (Xc.T @ yc) / n
    w = np.linalg.solve(A, b)
    intercept = ym - float(w @ xm) if fit_intercept else 0.0
    return w, intercept
