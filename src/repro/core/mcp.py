"""The minimax concave penalty (MCP) of Zhang (2010), Eqs. (6)-(7).

For a weight ``w`` with penalty strength ``lam`` and concavity ``gamma``::

    P(w) = lam * |w| - w^2 / (2 * gamma)   if |w| <= gamma * lam
         = gamma * lam^2 / 2               otherwise

Its defining property versus Lasso: the shrinking rate |dP/dw| falls
linearly from ``lam`` to zero as |w| grows, so large weights are *not*
penalized — the reason APOLLO's selected proxies keep accurate weights
(Fig. 13) while Lasso's are over-shrunk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PowerModelError

__all__ = ["mcp_penalty", "mcp_shrink_rate", "mcp_prox", "soft_threshold"]


def _check(lam: float, gamma: float) -> None:
    if lam < 0:
        raise PowerModelError(f"penalty strength lam={lam} must be >= 0")
    if gamma <= 1:
        raise PowerModelError(f"MCP needs gamma > 1, got {gamma}")


def mcp_penalty(
    w: np.ndarray | float, lam: float, gamma: float
) -> np.ndarray:
    """Penalty value P_MCP(w) (Eq. 6), elementwise."""
    _check(lam, gamma)
    w = np.abs(np.asarray(w, dtype=np.float64))
    inner = lam * w - w * w / (2.0 * gamma)
    outer = 0.5 * gamma * lam * lam
    return np.where(w <= gamma * lam, inner, outer)


def mcp_shrink_rate(
    w: np.ndarray | float, lam: float, gamma: float
) -> np.ndarray:
    """|dP/dw| (Eq. 7): the per-step shrinking rate during training."""
    _check(lam, gamma)
    w = np.abs(np.asarray(w, dtype=np.float64))
    rate = lam - w / gamma
    return np.where(w <= gamma * lam, np.maximum(rate, 0.0), 0.0)


def soft_threshold(z: np.ndarray | float, t: float) -> np.ndarray:
    """Soft-thresholding operator S(z, t) = sign(z) * max(|z| - t, 0)."""
    z = np.asarray(z, dtype=np.float64)
    return np.sign(z) * np.maximum(np.abs(z) - t, 0.0)


def mcp_prox(
    z: np.ndarray | float, lam: float, gamma: float
) -> np.ndarray:
    """Proximal operator of MCP for a unit-curvature quadratic.

    Solves ``argmin_w 0.5 * (w - z)^2 + P_MCP(w)`` — the coordinate-descent
    update for standardized features::

        w = S(z, lam) / (1 - 1/gamma)   if |z| <= gamma * lam
          = z                            otherwise

    The firm-thresholding shape: small inputs are zeroed, mid-range inputs
    are shrunk (but less than Lasso), large inputs pass through unbiased.
    """
    _check(lam, gamma)
    z = np.asarray(z, dtype=np.float64)
    shrunk = soft_threshold(z, lam) / (1.0 - 1.0 / gamma)
    return np.where(np.abs(z) <= gamma * lam, shrunk, z)
