"""Accuracy and collinearity metrics used throughout the evaluation.

Definitions follow §7.1 of the paper::

    NRMSE = sqrt(mean((y - p)^2)) / mean(y)
    NMAE  = sum(|y - p|) / sum(y)

plus the coefficient of determination R^2, Pearson correlation (Fig. 17),
and variance inflation factors (Fig. 14).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PowerModelError

__all__ = [
    "r2_score",
    "nrmse",
    "nmae",
    "pearson",
    "vif_values",
    "vif_mean",
]


def _check_pair(y: np.ndarray, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y, dtype=np.float64).ravel()
    p = np.asarray(p, dtype=np.float64).ravel()
    if y.shape != p.shape:
        raise PowerModelError(
            f"label/prediction shape mismatch: {y.shape} vs {p.shape}"
        )
    if y.size == 0:
        raise PowerModelError("empty series")
    return y, p


def r2_score(y: np.ndarray, p: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, can be negative."""
    y, p = _check_pair(y, p)
    ss_res = float(((y - p) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def nrmse(y: np.ndarray, p: np.ndarray) -> float:
    """Root-mean-squared error normalized by the mean label."""
    y, p = _check_pair(y, p)
    ybar = float(y.mean())
    if ybar == 0.0:
        raise PowerModelError("NRMSE undefined for zero-mean labels")
    return float(np.sqrt(((y - p) ** 2).mean())) / ybar


def nmae(y: np.ndarray, p: np.ndarray) -> float:
    """Mean absolute error normalized by the mean label."""
    y, p = _check_pair(y, p)
    denom = float(y.sum())
    if denom == 0.0:
        raise PowerModelError("NMAE undefined for zero-sum labels")
    return float(np.abs(y - p).sum()) / denom


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient."""
    a, b = _check_pair(a, b)
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        raise PowerModelError("Pearson undefined for constant series")
    return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))


def vif_values(X: np.ndarray) -> np.ndarray:
    """Variance inflation factor of each column of ``X``.

    ``VIF_j = 1 / (1 - R_j^2)`` where ``R_j^2`` is from regressing column
    ``j`` on the others — equivalently the diagonal of the inverse
    correlation matrix.  A pseudo-inverse handles (near-)collinear sets;
    constant columns are assigned VIF 1 (they correlate with nothing).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] < 2:
        raise PowerModelError("VIF needs a 2-D matrix with >= 2 columns")
    sd = X.std(axis=0)
    live = sd > 1e-12
    vif = np.ones(X.shape[1], dtype=np.float64)
    if live.sum() >= 2:
        Z = (X[:, live] - X[:, live].mean(axis=0)) / sd[live]
        corr = (Z.T @ Z) / X.shape[0]
        inv = np.linalg.pinv(corr, hermitian=True)
        vif[live] = np.maximum(np.diag(inv), 1.0)
    return vif


def vif_mean(X: np.ndarray) -> float:
    """Average VIF over columns (the quantity plotted in Fig. 14)."""
    return float(vif_values(X).mean())
