"""Validation-based hyper-parameter tuning (§7.1 of the paper).

"20% of the training data are selected to form a validation set for
parameter tuning."  The paper tunes the interval size tau this way
(Fig. 11: "results show that tau = 8 provides the best accuracy") and
adjusts the penalty strength lambda to control Q.  This module implements
those procedures for Q, tau, and the relaxation ridge strength.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.core.metrics import nrmse
from repro.core.model import train_apollo
from repro.core.multicycle import train_apollo_tau, window_average
from repro.core.selection import ProxySelector
from repro.parallel.cache import array_fingerprint, make_key
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    drop_state,
    get_state,
    init_state,
    seed_state,
)
from repro.resilience.checkpoint import CheckpointStore

__all__ = ["TuningResult", "tune_tau", "tune_q", "tune_ridge"]

#: Distinguishes concurrent grid payloads in the parent's state registry.
_TUNE_TOKEN = itertools.count()


def _fingerprint_part(value) -> str:
    if isinstance(value, np.ndarray):
        return array_fingerprint(value)
    return repr(value)


def _grid_map(
    kind: str,
    payload: dict,
    task,
    values: list,
    workers: int,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
):
    """Score every grid value via a WorkerPool (serial when workers<=1).

    The shared payload (split arrays, selections) ships to each worker
    once through the pool initializer; the parent seeds the same state
    so the serial path and any degraded fallback reuse its arrays.
    Scores come back in grid order — identical to the sequential loop.

    With ``checkpoints``, completed cell scores persist under stage
    ``"tune.<kind>"`` after every wave of ``workers`` cells, and
    ``resume=True`` re-scores only the remaining cells (scores are
    per-cell deterministic, so the result is identical either way).
    """
    key = ("tune", kind, next(_TUNE_TOKEN))
    seed_state(key, payload)
    n = len(values)
    results: list[float | None] = [None] * n
    stage = f"tune.{kind}"
    identity = None
    if checkpoints is not None:
        identity = make_key(
            "tune-grid",
            kind,
            *(f"{k}={_fingerprint_part(payload[k])}" for k in sorted(payload)),
            *(_fingerprint_part(v) for v in values),
        )
        if resume:
            ck = checkpoints.latest(stage)
            if ck is not None and ck.meta.get("identity") == identity:
                for i in ck.arrays["done"]:
                    results[int(i)] = float(ck.arrays["scores"][int(i)])
    try:
        with WorkerPool(
            workers,
            initializer=init_state,
            initargs=(key, payload),
            faults=faults,
        ) as pool:
            todo = [i for i in range(n) if results[i] is None]
            wave = len(todo) if checkpoints is None else max(1, pool.workers)
            for w0 in range(0, len(todo), wave):
                idxs = todo[w0:w0 + wave]
                vals = pool.map(
                    task,
                    [(key, values[i]) for i in idxs],
                    label=f"tune.{kind}",
                )
                for i, v in zip(idxs, vals):
                    results[i] = float(v)
                if checkpoints is not None:
                    done = [i for i in range(n) if results[i] is not None]
                    scores = np.full(n, np.nan, dtype=np.float64)
                    for i in done:
                        scores[i] = results[i]
                    checkpoints.save(
                        stage,
                        len(done),
                        {
                            "done": np.asarray(done, dtype=np.int64),
                            "scores": scores,
                        },
                        meta={"identity": identity},
                    )
                if faults is not None:
                    faults.raise_if("tune.wave")
    finally:
        drop_state(key)
    return results


@dataclass
class TuningResult:
    """Outcome of one hyper-parameter sweep."""

    parameter: str
    best: object
    scores: list[tuple[object, float]] = field(default_factory=list)

    def score_of(self, value) -> float:
        for v, s in self.scores:
            if v == value:
                return s
        raise PowerModelError(f"value {value!r} not in sweep")


def _split(
    n: int, val_frac: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    if not (0 < val_frac < 1):
        raise PowerModelError("val_frac must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(n)
    n_val = max(1, int(n * val_frac))
    return np.sort(idx[n_val:]), np.sort(idx[:n_val])


def _block_split(
    n: int, val_frac: float, block: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Contiguous-block split: windowed models need unbroken cycles."""
    if not (0 < val_frac < 1):
        raise PowerModelError("val_frac must be in (0, 1)")
    n_blocks = max(2, n // block)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_blocks)
    n_val = max(1, int(n_blocks * val_frac))
    val_blocks = set(order[:n_val].tolist())
    val_idx, train_idx = [], []
    for b in range(n_blocks):
        lo = b * block
        hi = min(n, (b + 1) * block)
        (val_idx if b in val_blocks else train_idx).extend(range(lo, hi))
    return np.asarray(train_idx), np.asarray(val_idx)


def _tau_score(payload: dict, tau: int) -> float:
    """Validation NRMSE of one tau (runs in parent or worker)."""
    Xtr, ytr = payload["Xtr"], payload["ytr"]
    candidate_ids = payload["candidate_ids"]
    if tau == 1:
        model = train_apollo(
            Xtr, ytr, q=payload["q"], candidate_ids=candidate_ids,
            selector=ProxySelector(screen_width=None),
        )
    else:
        model = train_apollo_tau(
            Xtr, ytr, q=payload["q"], tau=tau,
            candidate_ids=candidate_ids,
            selector=ProxySelector(screen_width=None),
        )
    if candidate_ids is None:
        cols = model.proxies
    else:
        lookup = {int(c): i for i, c in enumerate(candidate_ids)}
        cols = np.asarray([lookup[int(p)] for p in model.proxies])
    p = model.predict_window(
        payload["Xva"][:, cols].astype(np.float64), payload["t_eval"]
    )
    return nrmse(payload["yw"], p)


def _tau_task(args) -> float:
    key, tau = args
    return _tau_score(get_state(key), tau)


def tune_tau(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    t_eval: int,
    tau_grid: list[int] | None = None,
    candidate_ids: np.ndarray | None = None,
    val_frac: float = 0.2,
    seed: int = 0,
    workers: int = 1,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
) -> TuningResult:
    """Pick the interval size tau by validation NRMSE at window ``t_eval``.

    Mirrors the paper's procedure behind Fig. 11: train APOLLO_tau for
    each tau, evaluate T-cycle accuracy on held-out cycles, keep the best.
    The split is block-contiguous (windows must not straddle the split).
    Grid points are independent fits, so ``workers > 1`` scores them in
    parallel with identical results.
    """
    tau_grid = tau_grid or [1, 4, 8, 16, min(32, t_eval)]
    tau_grid = sorted({t for t in tau_grid if t <= t_eval})
    X = np.asarray(X)
    y = np.asarray(y, dtype=np.float64)
    train_idx, val_idx = _block_split(
        X.shape[0], val_frac, block=8 * t_eval, seed=seed
    )
    Xva, yva = X[val_idx], y[val_idx]
    _xw, yw = window_average(
        np.zeros((yva.size, 1)), yva, t_eval
    )
    payload = {
        "Xtr": X[train_idx], "ytr": y[train_idx], "Xva": Xva, "yw": yw,
        "q": q, "t_eval": t_eval, "candidate_ids": candidate_ids,
    }
    vals = _grid_map(
        "tau", payload, _tau_task, tau_grid, workers,
        checkpoints=checkpoints, faults=faults, resume=resume,
    )
    scores = list(zip(tau_grid, vals))
    best = min(scores, key=lambda t: t[1])[0]
    return TuningResult(parameter="tau", best=best, scores=scores)


def _ridge_cols_score(payload: dict, cols: np.ndarray) -> float:
    """Validation NRMSE of one ridge fit on the given columns."""
    from repro.core.solvers import ridge_fit

    w, b = ridge_fit(
        np.asarray(payload["Xtr"], dtype=np.float64)[:, cols],
        payload["ytr"],
        lam=payload.get("lam", 1e-3),
    )
    p = (
        np.asarray(payload["Xva"], dtype=np.float64)[:, cols] @ w + b
    )
    return nrmse(payload["yva"], p)


def _q_task(args) -> float:
    key, cols = args
    return _ridge_cols_score(get_state(key), cols)


def tune_q(
    X: np.ndarray,
    y: np.ndarray,
    q_grid: list[int],
    candidate_ids: np.ndarray | None = None,
    val_frac: float = 0.2,
    seed: int = 0,
    knee_tolerance: float = 0.02,
    workers: int = 1,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
) -> TuningResult:
    """Pick the smallest Q whose validation NRMSE is within
    ``knee_tolerance`` (absolute) of the best — the accuracy/cost knee
    that §3 describes Q as controlling.  The shared selection path runs
    once; the per-Q ridge scores fan out across ``workers``."""
    if not q_grid:
        raise PowerModelError("q_grid must be non-empty")
    X = np.asarray(X)
    y = np.asarray(y, dtype=np.float64)
    train_idx, val_idx = _split(X.shape[0], val_frac, seed)
    Xtr, ytr = X[train_idx], y[train_idx]
    Xva, yva = X[val_idx], y[val_idx]

    selector = ProxySelector(screen_width=None)
    sels = selector.select_many(
        Xtr, ytr, sorted(set(q_grid)), candidate_ids=candidate_ids
    )
    q_vals = sorted(set(q_grid))
    cols_per_q = []
    for q_val in q_vals:
        sel = sels[q_val]
        if candidate_ids is None:
            cols = sel.proxies
        else:
            lookup = {int(c): i for i, c in enumerate(candidate_ids)}
            cols = np.asarray([lookup[int(p)] for p in sel.proxies])
        cols_per_q.append(cols)
    payload = {"Xtr": Xtr, "ytr": ytr, "Xva": Xva, "yva": yva}
    vals = _grid_map(
        "q", payload, _q_task, cols_per_q, workers,
        checkpoints=checkpoints, faults=faults, resume=resume,
    )
    scores = list(zip(q_vals, vals))
    best_score = min(s for _q, s in scores)
    best = next(
        q_val for q_val, s in scores if s <= best_score + knee_tolerance
    )
    return TuningResult(parameter="q", best=best, scores=scores)


def _ridge_task(args) -> float:
    key, lam = args
    payload = get_state(key)
    return _ridge_cols_score(
        dict(payload, lam=lam), payload["cols"]
    )


def tune_ridge(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    lam_grid: list[float] | None = None,
    candidate_ids: np.ndarray | None = None,
    val_frac: float = 0.2,
    seed: int = 0,
    workers: int = 1,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
) -> TuningResult:
    """Pick the relaxation ridge strength by validation NRMSE.

    One shared selection, then independent per-lambda ridge fits scored
    across ``workers``.
    """
    lam_grid = lam_grid or [1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
    X = np.asarray(X)
    y = np.asarray(y, dtype=np.float64)
    train_idx, val_idx = _split(X.shape[0], val_frac, seed)
    Xtr, ytr = X[train_idx], y[train_idx]
    Xva, yva = X[val_idx], y[val_idx]
    sel = ProxySelector(screen_width=None).select(
        Xtr, ytr, q, candidate_ids=candidate_ids
    )
    if candidate_ids is None:
        cols = sel.proxies
    else:
        lookup = {int(c): i for i, c in enumerate(candidate_ids)}
        cols = np.asarray([lookup[int(p)] for p in sel.proxies])
    payload = {
        "Xtr": Xtr, "ytr": ytr, "Xva": Xva, "yva": yva, "cols": cols,
    }
    vals = _grid_map(
        "ridge", payload, _ridge_task, lam_grid, workers,
        checkpoints=checkpoints, faults=faults, resume=resume,
    )
    scores = list(zip(lam_grid, vals))
    best = min(scores, key=lambda t: t[1])[0]
    return TuningResult(parameter="ridge_lam", best=best, scores=scores)
