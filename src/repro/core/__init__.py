"""APOLLO's core: MCP-based proxy selection and linear power models.

This package implements the paper's contribution proper (§4):

1. :mod:`repro.core.mcp` — the minimax concave penalty, its proximal
   operator, and shrinking-rate derivative (Eqs. 6-7);
2. :mod:`repro.core.solvers` — a shared coordinate-descent engine for
   MCP / Lasso / elastic-net penalized least squares (with Gram-matrix
   covariance updates and warm-started lambda paths);
3. :mod:`repro.core.selection` — the automatic proxy-selection pipeline:
   constant/duplicate pruning, correlation screening, an MCP path tuned to
   hit a target proxy count Q;
4. :mod:`repro.core.model` — the relaxed (ridge-refit) per-cycle
   :class:`ApolloModel` (Eq. 1, §4.4);
5. :mod:`repro.core.multicycle` — the multi-cycle ``APOLLO_tau`` model and
   its multiplier-free inference rearrangement (Eq. 9, §4.5);
6. :mod:`repro.core.metrics` — R^2, NRMSE, NMAE, Pearson, VIF (§7.1/7.4).
"""

from repro.core.mcp import mcp_penalty, mcp_prox, mcp_shrink_rate
from repro.core.solvers import (
    CdResult,
    coordinate_descent,
    lambda_max,
    lambda_path,
    ridge_fit,
)
from repro.core.selection import ProxySelector, SelectionResult
from repro.core.model import ApolloModel, train_apollo
from repro.core.multicycle import (
    ApolloTauModel,
    train_apollo_tau,
    window_average,
)
from repro.core.metrics import (
    nmae,
    nrmse,
    pearson,
    r2_score,
    vif_mean,
    vif_values,
)
from repro.core.interpret import (
    ProxyAttribution,
    ProxyReport,
    attribute_proxies,
)
from repro.core.tuning import TuningResult, tune_q, tune_ridge, tune_tau

__all__ = [
    "mcp_penalty",
    "mcp_prox",
    "mcp_shrink_rate",
    "CdResult",
    "coordinate_descent",
    "lambda_max",
    "lambda_path",
    "ridge_fit",
    "ProxySelector",
    "SelectionResult",
    "ApolloModel",
    "train_apollo",
    "ApolloTauModel",
    "train_apollo_tau",
    "window_average",
    "r2_score",
    "nrmse",
    "nmae",
    "pearson",
    "vif_mean",
    "vif_values",
    "ProxyAttribution",
    "ProxyReport",
    "attribute_proxies",
    "TuningResult",
    "tune_q",
    "tune_ridge",
    "tune_tau",
]
