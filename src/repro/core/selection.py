"""Automatic power-proxy selection (§4.3 of the paper).

Pipeline, given per-cycle toggle features of all candidate RTL signals and
ground-truth power labels:

1. **constant pruning** — drop never/always-toggling signals;
2. **duplicate collapsing** — RTL is full of identical toggle columns
   (buffers, fanout copies); one representative survives per group;
3. **correlation screening** (optional, on by default) — keep the top-K
   candidates by absolute label correlation.  This is the standard
   sure-screening step that makes the dense solve tractable at netlist
   scale; K is generous relative to Q (documented in DESIGN.md);
4. **MCP path** — warm-started coordinate descent along a decreasing
   lambda path until at least Q weights are nonzero; the Q candidates with
   the largest standardized |weight| at the best path point become the
   power proxies.

The returned :class:`SelectionResult` records the surviving ids in the
*original* net-id space plus everything needed for diagnostics (path
history, duplicate groups, the temporary model's weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SelectionError
from repro.obs.trace import NULL_TRACER
from repro.core.solvers import (
    CdResult,
    coordinate_descent,
    lambda_max,
    lambda_path,
    precompute,
)

__all__ = ["ProxySelector", "SelectionResult"]


@dataclass
class SelectionResult:
    """Outcome of proxy selection.

    ``proxies`` are indices into the caller's candidate id space (net ids
    when called through the dataset layer).  ``temp_weights`` are the
    MCP-model weights of the selected proxies (the "temporary model" of
    §4.4, before relaxation), in raw feature scale.
    """

    proxies: np.ndarray
    temp_weights: np.ndarray
    temp_intercept: float
    lam: float
    penalty: str
    n_candidates_in: int
    n_after_constant: int
    n_after_dedup: int
    n_after_screen: int
    path_nnz: list[tuple[float, int]] = field(default_factory=list)

    @property
    def q(self) -> int:
        return int(self.proxies.size)


class ProxySelector:
    """Configurable selector; ``penalty`` switches MCP vs Lasso baselines."""

    def __init__(
        self,
        penalty: str = "mcp",
        gamma: float = 10.0,
        screen_width: int | None = 2400,
        path_len: int = 60,
        max_iter: int = 200,
        seed: int = 0,
        tracer=None,
    ) -> None:
        if penalty not in ("mcp", "lasso"):
            raise SelectionError(
                f"selector supports 'mcp' or 'lasso', got {penalty!r}"
            )
        self.penalty = penalty
        self.gamma = gamma
        self.screen_width = screen_width
        self.path_len = path_len
        self.max_iter = max_iter
        self.seed = seed
        self.tracer = tracer or NULL_TRACER

    # ------------------------------------------------------------------ #
    def select_many(
        self,
        X: np.ndarray,
        y: np.ndarray,
        q_list: list[int],
        candidate_ids: np.ndarray | None = None,
    ) -> dict[int, SelectionResult]:
        """Select proxies for several Q values sharing one lambda path.

        The warm-started path runs once until the largest Q is reached;
        each requested Q takes the first path point with enough nonzeros.
        Far cheaper than repeated :meth:`select` calls in Q sweeps
        (Figs. 10/12/13/15).
        """
        if not q_list:
            raise SelectionError("q_list must be non-empty")
        return self._select_impl(X, y, sorted(set(q_list)), candidate_ids)

    def select(
        self,
        X: np.ndarray,
        y: np.ndarray,
        q: int,
        candidate_ids: np.ndarray | None = None,
    ) -> SelectionResult:
        """Select ``q`` proxies from feature matrix ``X`` (N x M).

        ``candidate_ids`` maps columns of ``X`` to external ids (net ids);
        defaults to ``arange(M)``.
        """
        return self._select_impl(X, y, [q], candidate_ids)[q]

    def _select_impl(
        self,
        X: np.ndarray,
        y: np.ndarray,
        q_list: list[int],
        candidate_ids: np.ndarray | None,
    ) -> dict[int, SelectionResult]:
        X = np.asarray(X)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise SelectionError(
                f"bad shapes X{X.shape} y{y.shape}"
            )
        m_in = X.shape[1]
        if candidate_ids is None:
            candidate_ids = np.arange(m_in, dtype=np.int64)
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if candidate_ids.shape != (m_in,):
            raise SelectionError("candidate_ids length mismatch")
        q_max = max(q_list)
        if min(q_list) <= 0 or q_max > m_in:
            raise SelectionError(
                f"q values {q_list} out of range for {m_in} candidates"
            )

        tracer = self.tracer

        # 1. constant pruning
        with tracer.span("select.constant", n_in=m_in) as sp:
            Xf = X.astype(np.float32, copy=False)
            col_min = Xf.min(axis=0)
            col_max = Xf.max(axis=0)
            live = col_max > col_min
            n_const = int(live.sum())
            if sp:
                sp.set(n_out=n_const)
        if n_const < q_max:
            raise SelectionError(
                f"only {n_const} non-constant candidates for q={q_max}"
            )
        keep = np.nonzero(live)[0]

        # 2. duplicate collapsing (hash whole columns)
        with tracer.span("select.dedup", n_in=n_const) as sp:
            keep = keep[_dedup_columns(Xf[:, keep])]
            n_dedup = keep.size
            if sp:
                sp.set(n_out=int(n_dedup))
        if n_dedup < q_max:
            raise SelectionError(
                f"only {n_dedup} distinct candidates for q={q_max}"
            )

        # 3. correlation screening
        with tracer.span("select.screen", n_in=int(n_dedup)) as sp:
            if (
                self.screen_width is not None
                and n_dedup > self.screen_width
            ):
                width = max(self.screen_width, 4 * q_max)
                corr = _abs_corr(Xf[:, keep], y)
                order = np.argsort(-corr, kind="stable")
                keep = keep[np.sort(order[:width])]
            n_screen = keep.size
            if sp:
                sp.set(n_out=int(n_screen))
        if n_screen < q_max:
            raise SelectionError(
                f"screening left {n_screen} candidates for q={q_max}"
            )

        # 4. MCP / Lasso path, shared by every requested Q.
        with tracer.span(
            "select.path",
            penalty=self.penalty,
            q_max=q_max,
            n_candidates=int(n_screen),
        ) as sp:
            Xd = Xf[:, keep].astype(np.float64)
            pre = precompute(Xd, y)
            std, _G, _c, y_mean = pre
            lam_hi = lambda_max(
                std.transform(Xd),
                np.asarray(y, dtype=np.float64) - y_mean,
            )
            path = lambda_path(lam_hi, n=self.path_len)

            warm = None
            path_nnz: list[tuple[float, int]] = []
            fits_for_q: dict[int, CdResult] = {}
            pending = sorted(q_list)
            last_fit: CdResult | None = None
            for lam in path:
                fit = coordinate_descent(
                    Xd,
                    y,
                    lam=float(lam),
                    penalty=self.penalty,
                    gamma=self.gamma,
                    max_iter=self.max_iter,
                    warm_start=warm,
                    _precomputed=pre,
                    tracer=tracer,
                )
                warm = fit.weights_std
                path_nnz.append((float(lam), fit.n_nonzero))
                last_fit = fit
                while pending and fit.n_nonzero >= pending[0]:
                    fits_for_q[pending.pop(0)] = fit
                if not pending:
                    break
            if sp:
                sp.set(
                    n_path_points=len(path_nnz),
                    final_nnz=(
                        last_fit.n_nonzero if last_fit is not None else 0
                    ),
                )
        if last_fit is None:
            raise SelectionError("empty lambda path")
        # Any q the path never reached uses the final (densest) fit with
        # residual-correlation padding.
        for q in pending:
            fits_for_q[q] = last_fit

        out: dict[int, SelectionResult] = {}
        for q in q_list:
            fit = fits_for_q[q]
            if fit.n_nonzero < q:
                # The path bottomed out below q (the label is genuinely
                # sparser than requested).  Pad with the candidates most
                # correlated with the current residual — the natural
                # greedy completion, keeping the exact-Q contract.
                resid = y - Xd @ fit.weights - fit.intercept
                resid_corr = _abs_corr(Xd, resid)
                resid_corr[fit.nonzero] = -np.inf
                need = q - fit.n_nonzero
                pad = np.argsort(-resid_corr, kind="stable")[:need]
                score = np.abs(fit.weights_std).astype(np.float64)
                # Padded columns rank below every selected one (tiny
                # positive scores) but above the remaining zeros,
                # preserving their residual-correlation order.
                score[pad] = (
                    need - np.arange(need, dtype=np.float64)
                ) * 1e-12
                order = np.argsort(-score, kind="stable")[:q]
            else:
                # Rank by standardized |weight| and keep exactly q.
                order = np.argsort(
                    -np.abs(fit.weights_std), kind="stable"
                )[:q]
            order = np.sort(order)
            out[q] = SelectionResult(
                proxies=candidate_ids[keep[order]],
                temp_weights=fit.weights[order],
                temp_intercept=fit.intercept,
                lam=fit.lam,
                penalty=self.penalty,
                n_candidates_in=m_in,
                n_after_constant=n_const,
                n_after_dedup=int(n_dedup),
                n_after_screen=int(n_screen),
                path_nnz=path_nnz,
            )
        return out


def _dedup_columns(X: np.ndarray) -> np.ndarray:
    """Indices of one representative column per distinct column.

    Binary toggle matrices take a bit-packed fast path; real-valued
    matrices (the multi-cycle averaged features) hash raw column bytes.
    """
    is_binary = X.dtype == np.uint8 or (
        X.min() >= 0 and X.max() <= 1 and np.all(X == X.astype(np.uint8))
    )
    if is_binary:
        hashable = np.packbits(X.astype(np.uint8), axis=0)
    else:
        # Byte-hashing floats must first canonicalize values that compare
        # equal but differ in representation: -0.0 vs +0.0 and NaNs with
        # different payloads.
        hashable = X.astype(np.float32, copy=True)
        hashable[hashable == 0.0] = 0.0  # -0.0 -> +0.0
        hashable[np.isnan(hashable)] = np.float32("nan")
    seen: dict[bytes, int] = {}
    reps = []
    for j in range(hashable.shape[1]):
        key = np.ascontiguousarray(hashable[:, j]).tobytes()
        if key not in seen:
            seen[key] = j
            reps.append(j)
    return np.asarray(reps, dtype=np.int64)


def _abs_corr(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """|corr(x_j, y)| per column, 0 for constant columns."""
    Xc = X.astype(np.float64) - X.mean(axis=0, dtype=np.float64)
    yc = y - y.mean()
    sx = np.sqrt((Xc * Xc).sum(axis=0))
    sy = np.sqrt((yc * yc).sum())
    denom = sx * sy
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.abs(Xc.T @ yc) / np.where(denom == 0, np.inf, denom)
    return corr
