"""Proxy interpretability: what the selected signals say about a design.

§7.4 of the paper: "the weights of the gated clock signals provide useful
insights into the power-hungry clock gating structure, which sets
guidelines for designers to further optimize clock power" and the proxy
distribution flags the dominant consumers (vector execution, issue,
load-store).  This module turns a trained model plus its host design into
that report: per-proxy attribution (name, unit, signal kind, weight,
measured contribution share on a workload) and per-unit rollups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.rtl.cells import Op

__all__ = ["ProxyAttribution", "ProxyReport", "attribute_proxies"]


@dataclass
class ProxyAttribution:
    """One proxy's role in the model."""

    net: int
    name: str
    unit: str
    kind: str  # "gated-clock" | "register" | "combinational"
    weight: float
    toggle_rate: float
    contribution_mw: float  # weight * toggle rate
    share_pct: float  # of total modeled dynamic power


@dataclass
class ProxyReport:
    """Full attribution for a model on a workload."""

    proxies: list[ProxyAttribution]
    intercept_mw: float
    modeled_mean_mw: float

    def by_unit(self) -> dict[str, float]:
        """Per-unit contribution rollup (mW)."""
        out: dict[str, float] = {}
        for p in self.proxies:
            out[p.unit] = out.get(p.unit, 0.0) + p.contribution_mw
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def clock_gating_insight(self) -> list[ProxyAttribution]:
        """Gated-clock proxies ordered by contribution — §7.4's
        'power-hungry clock gating structure' list."""
        clocks = [p for p in self.proxies if p.kind == "gated-clock"]
        return sorted(clocks, key=lambda p: -p.contribution_mw)

    def top(self, k: int = 10) -> list[ProxyAttribution]:
        return sorted(
            self.proxies, key=lambda p: -abs(p.contribution_mw)
        )[:k]

    def render(self, k: int = 12) -> str:
        lines = [
            f"modeled mean power {self.modeled_mean_mw:.3f} mW "
            f"(intercept {self.intercept_mw:.3f} mW)",
            f"{'proxy':<34} {'unit':<10} {'kind':<12} "
            f"{'weight':>8} {'rate':>6} {'mW':>8} {'share':>6}",
        ]
        for p in self.top(k):
            lines.append(
                f"{p.name[:34]:<34} {p.unit:<10} {p.kind:<12} "
                f"{p.weight:>8.4f} {p.toggle_rate:>6.3f} "
                f"{p.contribution_mw:>8.4f} {p.share_pct:>5.1f}%"
            )
        return "\n".join(lines)


def attribute_proxies(core, model, toggles: np.ndarray) -> ProxyReport:
    """Attribute a model's prediction over a workload to its proxies.

    Parameters
    ----------
    core:
        The :class:`~repro.design.generator.CoreDesign` the model was
        trained on (provides names/units/kinds).
    model:
        A trained linear model (``proxies``, ``weights``, ``intercept``).
    toggles:
        (N, Q) per-cycle proxy toggles of the workload to attribute.
    """
    toggles = np.asarray(toggles, dtype=np.float64)
    q = int(np.asarray(model.proxies).size)
    if toggles.ndim != 2 or toggles.shape[1] != q:
        raise PowerModelError(
            f"expected (N, {q}) toggles, got {toggles.shape}"
        )
    rates = toggles.mean(axis=0)
    weights = np.asarray(model.weights, dtype=np.float64)
    contributions = weights * rates
    intercept = float(getattr(model, "intercept", 0.0))
    total = float(contributions.sum() + intercept)
    if total == 0:
        raise PowerModelError("model predicts zero power on this trace")

    nl = core.netlist
    ops = nl.ops_array()
    out = []
    for j, net in enumerate(np.asarray(model.proxies, dtype=np.int64)):
        op = Op(ops[int(net)])
        if op == Op.CLK:
            kind = "gated-clock"
        elif op == Op.REG:
            kind = "register"
        else:
            kind = "combinational"
        out.append(
            ProxyAttribution(
                net=int(net),
                name=nl.name_of(int(net)),
                unit=core.unit_of_net(int(net)),
                kind=kind,
                weight=float(weights[j]),
                toggle_rate=float(rates[j]),
                contribution_mw=float(contributions[j]),
                share_pct=100.0 * float(contributions[j]) / total,
            )
        )
    return ProxyReport(
        proxies=out,
        intercept_mw=intercept,
        modeled_mean_mw=total,
    )
