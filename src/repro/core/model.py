"""The per-cycle APOLLO power model (Eqs. 1 and §4.4).

``ApolloModel`` is the *relaxed* final model: after MCP selects Q proxies,
a fresh ridge regression (much weaker penalty) is fit on only those
columns.  The model is deliberately tiny — net ids, weights, an intercept —
because the same object configures the design-time estimator, the
emulator-assisted flow, and the hardware OPM generator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import PowerModelError
from repro.obs.trace import NULL_TRACER
from repro.core.selection import ProxySelector, SelectionResult
from repro.core.solvers import ridge_fit

__all__ = ["ApolloModel", "train_apollo", "MODEL_SCHEMA_VERSION"]

#: On-disk artifact schema.  v1 was a bare npz (proxies/weights/
#: intercept); v2 adds an embedded version plus a JSON sidecar, so a
#: stream service can validate an artifact without loading arrays.
MODEL_SCHEMA_VERSION = 2


def resolve_npz_path(path: str | Path) -> Path:
    """The actual file ``np.savez`` writes (it appends ``.npz``)."""
    p = Path(path)
    return p if p.name.endswith(".npz") else p.with_name(p.name + ".npz")


def sidecar_path(path: str | Path) -> Path:
    """The JSON sidecar next to a saved model artifact."""
    p = resolve_npz_path(path)
    return p.with_name(p.name + ".json")


def write_sidecar(path: str | Path, kind: str, extra: dict) -> None:
    from repro.resilience.atomic import atomic_write_bytes

    meta = {
        "format": "apollo-repro-model",
        "schema_version": MODEL_SCHEMA_VERSION,
        "kind": kind,
        **extra,
    }
    atomic_write_bytes(
        sidecar_path(path), (json.dumps(meta, indent=2) + "\n").encode()
    )


def check_artifact(path: str | Path, kind: str) -> dict | None:
    """Validate a sidecar (if present) against the expected kind.

    Returns the sidecar metadata, or ``None`` for v1 artifacts saved
    without one (accepted for backward compatibility).
    """
    sc = sidecar_path(path)
    if not sc.exists():
        return None
    meta = json.loads(sc.read_text())
    if meta.get("kind") != kind:
        raise PowerModelError(
            f"{sc} holds a {meta.get('kind')!r} artifact, expected {kind!r}"
        )
    version = int(meta.get("schema_version", 0))
    if version > MODEL_SCHEMA_VERSION:
        raise PowerModelError(
            f"{sc} uses schema v{version}, newer than supported "
            f"v{MODEL_SCHEMA_VERSION}"
        )
    return meta


@dataclass
class ApolloModel:
    """A linear per-cycle power model over Q proxy signals.

    ``predict`` consumes the Q proxy *columns only* (N x Q toggle matrix);
    the caller extracts those columns from a trace — exactly the data an
    emulator dumps in the proxy-only flow.

    The intercept captures the design's baseline (always-on clock)
    switching power; on-chip it is realized by adding the constant to the
    accumulator each cycle, costing one adder input, no multiplier.
    """

    proxies: np.ndarray
    weights: np.ndarray
    intercept: float = 0.0
    selection: SelectionResult | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.proxies = np.asarray(self.proxies, dtype=np.int64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.proxies.shape != self.weights.shape:
            raise PowerModelError(
                f"proxies {self.proxies.shape} vs weights "
                f"{self.weights.shape} mismatch"
            )
        if self.proxies.ndim != 1 or self.proxies.size == 0:
            raise PowerModelError("model needs at least one proxy")

    @property
    def q(self) -> int:
        return int(self.proxies.size)

    def predict(self, x_proxies: np.ndarray) -> np.ndarray:
        """Per-cycle power from an (N x Q) proxy toggle matrix."""
        X = np.asarray(x_proxies, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.q:
            raise PowerModelError(
                f"expected (N, {self.q}) proxy matrix, got {X.shape}"
            )
        return X @ self.weights + self.intercept

    def predict_window(self, x_proxies: np.ndarray, t: int) -> np.ndarray:
        """Average per-cycle predictions over T-cycle windows.

        Trailing cycles that do not fill a window are dropped.
        """
        p = self.predict(x_proxies)
        n = (p.size // t) * t
        if n == 0:
            raise PowerModelError(
                f"trace of {p.size} cycles shorter than window T={t}"
            )
        return p[:n].reshape(-1, t).mean(axis=1)

    def abs_weight_sum(self) -> float:
        """Sum of |weights| (the Fig. 13 quantity)."""
        return float(np.abs(self.weights).sum())

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Persist as versioned npz + JSON sidecar (schema v2).

        Both files publish atomically (tmp + rename), so a crashed save
        can never leave a torn artifact behind.
        """
        from repro.resilience.atomic import atomic_save_npz

        atomic_save_npz(
            resolve_npz_path(path),
            {
                "proxies": self.proxies,
                "weights": self.weights,
                "intercept": np.float64(self.intercept),
                "schema_version": np.int64(MODEL_SCHEMA_VERSION),
            },
        )
        write_sidecar(
            path,
            "ApolloModel",
            {
                "q": self.q,
                "intercept": float(self.intercept),
                "abs_weight_sum": self.abs_weight_sum(),
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "ApolloModel":
        """Load a saved model; v1 artifacts (no sidecar) still load."""
        check_artifact(path, "ApolloModel")
        with np.load(resolve_npz_path(path)) as data:
            return cls(
                proxies=data["proxies"],
                weights=data["weights"],
                intercept=float(data["intercept"]),
            )


def train_apollo(
    X: np.ndarray,
    y: np.ndarray,
    q: int,
    candidate_ids: np.ndarray | None = None,
    selector: ProxySelector | None = None,
    ridge_lam: float = 1e-3,
    relax: bool = True,
    tracer=None,
) -> ApolloModel:
    """Full APOLLO training: MCP selection + ridge relaxation.

    Parameters
    ----------
    X, y:
        Per-cycle toggle features (N x M) and power labels (N,).
    q:
        Number of proxies to select.
    candidate_ids:
        External ids for the columns of ``X`` (net ids).
    selector:
        Preconfigured :class:`ProxySelector`; defaults to MCP with the
        paper's gamma = 10.
    ridge_lam:
        Relaxation ridge strength (standardized scale).
    relax:
        Disable to keep the raw MCP temporary-model weights — the ablation
        of §4.4 ("this temporary model can already provide rather accurate
        predictions").
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`: wraps the run in a
        ``train.apollo`` span with ``select.*``/``solver.cd`` children
        (via a default-constructed selector) and a ``train.relax`` span
        around the ridge relaxation.
    """
    tracer = tracer or NULL_TRACER
    selector = selector or ProxySelector(tracer=tracer)
    with tracer.span("train.apollo", q=q, relax=relax) as root:
        sel = selector.select(X, y, q, candidate_ids=candidate_ids)
        if candidate_ids is None:
            cols = sel.proxies
        else:
            lookup = {int(cid): i for i, cid in enumerate(candidate_ids)}
            cols = np.asarray([lookup[int(p)] for p in sel.proxies])
        if not relax:
            return ApolloModel(
                proxies=sel.proxies,
                weights=sel.temp_weights,
                intercept=sel.temp_intercept,
                selection=sel,
            )
        with tracer.span(
            "train.relax", q=sel.q, ridge_lam=float(ridge_lam)
        ):
            Xq = np.asarray(X, dtype=np.float64)[:, cols]
            w, b = ridge_fit(
                Xq, np.asarray(y, dtype=np.float64), lam=ridge_lam
            )
        model = ApolloModel(
            proxies=sel.proxies, weights=w, intercept=b, selection=sel
        )
        if root:
            root.set(
                lam=float(sel.lam),
                abs_weight_sum=model.abs_weight_sum(),
            )
    return model
