"""SPEC-inspired synthetic workloads for long-trace experiments.

§8.1 of the paper demonstrates design-time introspection on SPEC2006
("hmmer"); real adoption needs more than one long benchmark.  Each
generator here mimics the micro-architectural signature its namesake is
known for — the signatures that shape per-cycle power:

* ``hmmer_like``   — phased: MAC scoring / vector sweeps / table walks
  (defined in :mod:`repro.experiments.exp_fig16`, re-exported here);
* ``mcf_like``     — pointer-chasing over a large footprint: dependent
  loads, frequent L1/L2 misses, low IPC;
* ``bzip2_like``   — byte-twiddling: shifts/masks/table lookups with a
  cache-resident working set, moderate branchiness;
* ``gcc_like``     — control-heavy: short basic blocks, data-dependent
  branches, scattered loads (mispredict-prone);
* ``libquantum_like`` — streaming vector kernel: long unit-stride SIMD
  loops (high, flat power);
* ``povray_like``  — multiply/accumulate-dense scalar FP stand-in:
  MAC chains with reuse (high ALU/MUL occupancy).
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.program import Program

__all__ = [
    "mcf_like",
    "bzip2_like",
    "gcc_like",
    "libquantum_like",
    "povray_like",
    "workload_suite",
]


def _prog(name: str, lines: list[str]) -> Program:
    return Program(name, tuple(assemble("\n".join(lines))))


def mcf_like() -> Program:
    """Pointer chasing: each load's result addresses the next."""
    lines = ["movi x1, 0"]
    for k in range(40):
        # the chased pointer mutates so the footprint keeps moving
        lines.append(f"ld x1, {97 + 13 * k}(x1)")
        if k % 4 == 3:
            lines.append("add x2, x2, x1")  # light bookkeeping
    return _prog("mcf_like", lines)


def bzip2_like() -> Program:
    """Byte twiddling over a cache-resident table."""
    lines = ["movi x13, 0", "movi x1, 3", "movi x2, 5"]
    for k in range(50):
        lines.append(f"ld x4, {k % 48}(x13)")
        lines.append("shr x5, x4, x1")
        lines.append("and x6, x5, x2")
        lines.append("xor x7, x6, x4")
        lines.append(f"st x7, {(k + 7) % 48}(x13)")
        if k % 5 == 4:
            lines.append("bne x7, x0, 2")
            lines.append("shl x2, x2, x1")
    return _prog("bzip2_like", lines)


def gcc_like() -> Program:
    """Control-heavy code: short blocks, data-dependent branches."""
    lines = ["movi x13, 0", "movi x1, 1"]
    for k in range(60):
        lines.append(f"ld x3, {(k * 29) % 512}(x13)")
        lines.append("and x4, x3, x1")
        lines.append("bne x4, x0, 3")
        lines.append(f"add x5, x5, x3")
        lines.append("beq x5, x3, 2")
        lines.append("xor x6, x5, x3")
    return _prog("gcc_like", lines)


def libquantum_like() -> Program:
    """Streaming unit-stride SIMD: long, regular, high power."""
    lines = ["movi x13, 0", "movi x14, 512", "movi x1, 4"]
    for _ in range(24):
        lines.append("vld v1, 0(x13)")
        lines.append("vld v2, 0(x14)")
        lines.append("vmul v3, v1, v2")
        lines.append("vadd v4, v3, v2")
        lines.append("vst v4, 0(x14)")
        lines.append("add x13, x13, x1")
        lines.append("add x14, x14, x1")
    return _prog("libquantum_like", lines)


def povray_like() -> Program:
    """MAC-dense scalar math with operand reuse."""
    lines = ["movi x13, 0"] + [
        f"ld x{2 + k}, {k * 2}(x13)" for k in range(6)
    ]
    for k in range(40):
        a = 2 + (k % 6)
        b = 2 + ((k + 1) % 6)
        lines.append(f"mac x8, x{a}, x{b}")
        lines.append(f"mac x9, x8, x{a}")
        lines.append(f"add x10, x9, x{b}")
    return _prog("povray_like", lines)


def workload_suite() -> dict[str, Program]:
    """All long workloads by name (including the Fig. 16 benchmark)."""
    from repro.experiments.exp_fig16 import hmmer_like

    suite = {
        "hmmer_like": hmmer_like(),
        "mcf_like": mcf_like(),
        "bzip2_like": bzip2_like(),
        "gcc_like": gcc_like(),
        "libquantum_like": libquantum_like(),
        "povray_like": povray_like(),
    }
    return suite
