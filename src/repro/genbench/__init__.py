"""Training-data generation (§4.1) and the Table-4 testing suite.

A genetic algorithm evolves instruction sequences toward a power virus
(the GeST approach [28]); the individuals accumulated across generations —
spanning low to high power — form the training set.  Testing uses 12
handcrafted designer benchmarks mirroring Table 4, kept strictly separate
from training, exactly as in §7.1.
"""

from repro.genbench.ga import (
    BenchmarkEvolver,
    GaConfig,
    GaIndividual,
    GaResult,
)
from repro.genbench.handcrafted import (
    Benchmark,
    PAPER_TEST_CYCLES,
    testing_suite,
)
from repro.genbench.dataset import (
    DATASET_VERSION,
    PowerDataset,
    build_training_dataset,
    build_testing_dataset,
    select_uniform_power,
)
from repro.genbench import workloads

__all__ = [
    "BenchmarkEvolver",
    "GaConfig",
    "GaIndividual",
    "GaResult",
    "Benchmark",
    "PAPER_TEST_CYCLES",
    "testing_suite",
    "PowerDataset",
    "build_training_dataset",
    "build_testing_dataset",
    "select_uniform_power",
    "DATASET_VERSION",
    "workloads",
]
