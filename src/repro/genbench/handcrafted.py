"""The 12 designer-handcrafted testing benchmarks of Table 4.

Names and per-benchmark cycle counts follow the paper; each benchmark is
written to exercise the behaviour its name implies on the synthetic core
(power virus, cache-missing loops, SIMD kernels, L2 streaming, issue
throttling).  Scaled-down runs (for tests) multiply the cycle counts by a
factor while preserving the set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.uarch.params import ThrottleScheme

__all__ = ["Benchmark", "PAPER_TEST_CYCLES", "testing_suite"]

#: Table 4 of the paper: benchmark name -> trace length in cycles.
PAPER_TEST_CYCLES: dict[str, int] = {
    "dhrystone": 1222,
    "maxpwr_cpu": 600,
    "dcache_miss": 654,
    "saxpy_simd": 1986,
    "maxpwr_l2": 1568,
    "icache_miss": 800,
    "cache_miss": 600,
    "daxpy": 1600,
    "memcpy_l2": 3000,
    "throttling_1": 1100,
    "throttling_2": 1100,
    "throttling_3": 1100,
}


@dataclass(frozen=True)
class Benchmark:
    """A testing benchmark: program + cycle budget + optional throttling."""

    name: str
    program: Program
    cycles: int
    throttle: ThrottleScheme | None = None


def _prog(name: str, src: str) -> Program:
    return Program(name, tuple(assemble(src)))


# High-ILP power virus: independent vector-MAC chains interleaved with a
# saturating scalar stream, so every unit *and* the full frontend width
# stay busy simultaneously (serial accumulator chains would make activity
# bursty, letting clock gating recover power between bursts).
_MAXPWR_SRC = """
movi x13, 0
vld  v1, 0(x13)
vmac v3, v1, v1
add  x1, x2, x3
xor  x4, x1, x2
vld  v2, 4(x13)
vmac v4, v2, v2
add  x5, x4, x1
shl  x6, x5, x2
vmul v5, v1, v2
mac  x7, x8, x9
add  x10, x6, x5
xor  x11, x10, x4
vmac v6, v1, v2
mac  x12, x2, x3
add  x14, x11, x10
ld   x9, 8(x13)
st   x9, 12(x13)
"""


def _dhrystone() -> Program:
    """Mixed integer control/ALU/memory code, Dhrystone-flavoured."""
    return _prog(
        "dhrystone",
        """
        movi x13, 16
        movi x1, 3
        movi x2, 10
        add  x3, x1, x2
        ld   x4, 0(x13)
        and  x5, x4, x3
        bne  x5, x0, 2
        or   x5, x4, x1
        st   x5, 2(x13)
        sub  x2, x2, x1
        shl  x6, x5, x1
        beq  x2, x0, -9
        xor  x7, x6, x4
        ld   x8, 4(x13)
        add  x9, x8, x7
        bne  x9, x9, 3
        st   x9, 6(x13)
        """,
    )


def _saxpy_simd() -> Program:
    """Vector a*x + y with streaming loads/stores."""
    return _prog(
        "saxpy_simd",
        """
        movi x13, 0
        movi x14, 256
        movi x1, 4
        vld  v1, 0(x13)
        vld  v2, 0(x14)
        vmul v3, v1, v2
        vadd v4, v3, v2
        vst  v4, 0(x14)
        add  x13, x13, x1
        add  x14, x14, x1
        """,
    )


def _daxpy() -> Program:
    """Scalar multiply-accumulate stream (the 'double' flavour)."""
    return _prog(
        "daxpy",
        """
        movi x13, 0
        movi x14, 512
        movi x1, 2
        ld   x2, 0(x13)
        ld   x3, 0(x14)
        mac  x3, x2, x1
        st   x3, 0(x14)
        add  x13, x13, x1
        add  x14, x14, x1
        """,
    )


def _dcache_miss() -> Program:
    """Loads strided beyond the L1D: every access misses."""
    lines = ["movi x13, 0", "movi x1, 1"]
    for i in range(12):
        lines.append(f"ld x{2 + (i % 9)}, {i * 160}(x13)")
    lines.append("add x13, x13, x1")
    return _prog("dcache_miss", "\n".join(lines))


def _icache_miss() -> Program:
    """Straight-line code footprint larger than the L1I capacity."""
    lines = ["movi x1, 5"]
    for i in range(400):
        lines.append(f"add x{2 + (i % 9)}, x1, x{2 + ((i + 1) % 9)}")
    return _prog("icache_miss", "\n".join(lines))


def _cache_miss() -> Program:
    """Combined I- and D-side misses."""
    lines = ["movi x13, 0"]
    for i in range(150):
        if i % 3 == 0:
            lines.append(f"ld x{1 + (i % 9)}, {(i * 96) % 2000}(x13)")
        else:
            lines.append(f"xor x{1 + (i % 9)}, x{1 + ((i + 1) % 9)}, x13")
    return _prog("cache_miss", "\n".join(lines))


def _maxpwr_l2() -> Program:
    """The power virus plus an L2-resident streaming component."""
    lines = _MAXPWR_SRC.strip().splitlines()
    for i in range(6):
        lines.append(f"ld x{9 + (i % 3)}, {i * 24}(x13)")
        lines.append(f"vld v7, {i * 24 + 8}(x13)")
    return _prog("maxpwr_l2", "\n".join(lines))


def _memcpy_l2() -> Program:
    """Word-wise copy whose footprint lives in the L2."""
    return _prog(
        "memcpy_l2",
        """
        movi x13, 0
        movi x14, 1024
        movi x1, 1
        ld   x2, 0(x13)
        st   x2, 0(x14)
        ld   x3, 16(x13)
        st   x3, 16(x14)
        vld  v1, 32(x13)
        vst  v1, 32(x14)
        add  x13, x13, x1
        add  x14, x14, x1
        """,
    )


def testing_suite(cycle_scale: float = 1.0) -> list[Benchmark]:
    """Build the 12-benchmark testing set (Table 4).

    ``cycle_scale`` scales trace lengths (1.0 reproduces the paper's
    counts); lengths are clamped to at least 60 cycles.
    """
    if cycle_scale <= 0:
        raise DatasetError("cycle_scale must be positive")

    maxpwr = _prog("maxpwr_cpu", _MAXPWR_SRC)
    programs: dict[str, tuple[Program, ThrottleScheme | None]] = {
        "dhrystone": (_dhrystone(), None),
        "maxpwr_cpu": (maxpwr, None),
        "dcache_miss": (_dcache_miss(), None),
        "saxpy_simd": (_saxpy_simd(), None),
        "maxpwr_l2": (_maxpwr_l2(), None),
        "icache_miss": (_icache_miss(), None),
        "cache_miss": (_cache_miss(), None),
        "daxpy": (_daxpy(), None),
        "memcpy_l2": (_memcpy_l2(), None),
        # Three throttling schemes over the same power virus (§7.1: they
        # "reflect applying different throttling schemes").
        "throttling_1": (maxpwr, ThrottleScheme(max_issue=2)),
        "throttling_2": (
            maxpwr,
            ThrottleScheme(max_issue=1, period=64, duty=0.5),
        ),
        # Duty-cycled vector blocking: a permanent block would wedge the
        # in-order retire behind the first vector op (near-zero power,
        # not a throttling scheme).
        "throttling_3": (
            maxpwr,
            ThrottleScheme(block_vector=True, period=64, duty=0.5),
        ),
    }
    suite = []
    for name, cycles in PAPER_TEST_CYCLES.items():
        prog, throttle = programs[name]
        suite.append(
            Benchmark(
                name=name,
                program=prog,
                cycles=max(60, int(round(cycles * cycle_scale))),
                throttle=throttle,
            )
        )
    return suite
