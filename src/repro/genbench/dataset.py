"""Dataset assembly: features (toggle traces) + labels (power) per §4.2.

``build_training_dataset`` replays a power-diverse subset of GA-generated
micro-benchmarks through the gate-level simulator, recording full packed
toggle traces and ground-truth per-cycle power; ``build_testing_dataset``
does the same for the handcrafted Table-4 suite, recording per-benchmark
segment boundaries so Fig. 9(b)'s per-benchmark metrics can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.resilience.atomic import atomic_save_npz
from repro.resilience.checkpoint import CheckpointStore
from repro.genbench.ga import GaIndividual, GaResult
from repro.genbench.handcrafted import testing_suite
from repro.parallel.cache import (
    EvalCache,
    array_fingerprint,
    make_key,
    program_fingerprint,
    throttle_fingerprint,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    CoreState,
    init_core_state,
    seed_state,
    simulate_group,
    state_key_for,
)
from repro.power.analyzer import PowerAnalyzer
from repro.rtl.trace import ToggleTrace

__all__ = [
    "PowerDataset",
    "select_uniform_power",
    "build_training_dataset",
    "build_testing_dataset",
    "DATASET_VERSION",
]

#: Bump when benchmark/dataset generators change semantics, so cached
#: datasets (keyed on this) regenerate.  v4: batch-width-independent
#: float64 accumulator reduction in the simulator (labels shift at
#: float32 rounding level relative to v3).
DATASET_VERSION = 4


@dataclass
class PowerDataset:
    """Per-cycle toggle features + power labels for one design.

    ``trace`` holds every net's toggles (batch 1, cycles N);
    ``candidate_ids`` are the monitorable net ids (the selection search
    space); ``segments`` maps benchmark names to [start, end) cycle ranges.
    """

    trace: ToggleTrace
    labels: np.ndarray
    candidate_ids: np.ndarray
    segments: list[tuple[str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.trace.batch != 1:
            raise DatasetError("dataset traces must have batch == 1")
        if self.labels.shape != (self.trace.n_cycles,):
            raise DatasetError(
                f"labels {self.labels.shape} vs trace cycles "
                f"{self.trace.n_cycles}"
            )

    @property
    def n_cycles(self) -> int:
        return self.trace.n_cycles

    def features(self, cols: np.ndarray | None = None) -> np.ndarray:
        """Dense (N, k) uint8 toggle matrix for the given net ids.

        Defaults to all candidate nets.
        """
        cols = self.candidate_ids if cols is None else np.asarray(cols)
        return self.trace.dense(cols)[0]

    def segment(self, name: str) -> tuple[int, int]:
        for seg_name, start, end in self.segments:
            if seg_name == name:
                return start, end
        raise DatasetError(f"no segment named {name!r}")

    def split(self, val_frac: float, seed: int = 0) -> tuple[
        np.ndarray, np.ndarray
    ]:
        """Random train/validation cycle-index split."""
        if not (0 < val_frac < 1):
            raise DatasetError("val_frac must be in (0, 1)")
        rng = np.random.default_rng(seed)
        idx = rng.permutation(self.n_cycles)
        n_val = int(self.n_cycles * val_frac)
        return np.sort(idx[n_val:]), np.sort(idx[:n_val])

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        path = Path(path)
        names = np.array([s[0] for s in self.segments])
        bounds = np.array(
            [[s[1], s[2]] for s in self.segments], dtype=np.int64
        ).reshape(-1, 2)
        # Atomic publish: concurrent experiment fan-out must never
        # observe a partially-written artifact.
        atomic_save_npz(
            path,
            {
                "packed": self.trace.packed,
                "n_nets": np.int64(self.trace.n_nets),
                "labels": self.labels,
                "candidate_ids": self.candidate_ids,
                "seg_names": names,
                "seg_bounds": bounds,
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "PowerDataset":
        with np.load(path, allow_pickle=False) as data:
            segments = [
                (str(n), int(b[0]), int(b[1]))
                for n, b in zip(data["seg_names"], data["seg_bounds"])
            ]
            return cls(
                trace=ToggleTrace(
                    packed=data["packed"], n_nets=int(data["n_nets"])
                ),
                labels=data["labels"],
                candidate_ids=data["candidate_ids"],
                segments=segments,
            )


def select_uniform_power(
    individuals: list[GaIndividual],
    count: int,
    n_bins: int = 12,
    seed: int = 0,
) -> list[GaIndividual]:
    """Pick ``count`` individuals with near-uniform power coverage.

    Mirrors §7.1: "around 300 micro-benchmarks are selected to form the
    training set with a uniform power distribution."  Bins span the
    observed power range; picks round-robin across bins.
    """
    if not individuals:
        raise DatasetError("no individuals to select from")
    count = min(count, len(individuals))
    powers = np.array([i.power for i in individuals])
    lo, hi = powers.min(), powers.max()
    if hi <= lo:
        return individuals[:count]
    edges = np.linspace(lo, hi, n_bins + 1)
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for idx, p in enumerate(powers):
        b = min(n_bins - 1, int((p - lo) / (hi - lo) * n_bins))
        bins[b].append(idx)
    rng = np.random.default_rng(seed)
    for b in bins:
        rng.shuffle(b)
    chosen: list[int] = []
    round_i = 0
    while len(chosen) < count:
        progressed = False
        for b in bins:
            if round_i < len(b):
                chosen.append(b[round_i])
                progressed = True
                if len(chosen) >= count:
                    break
        if not progressed:
            break
        round_i += 1
    return [individuals[i] for i in sorted(chosen)]


def _simulate_benchmarks(
    core,
    runs: list[tuple[str, object, int, object]],
    batch_group: int = 8,
    engine: str = "packed",
    workers: int = 1,
    cache: EvalCache | None = None,
    pool: WorkerPool | None = None,
    checkpoints: CheckpointStore | None = None,
    stage: str = "dataset",
    faults=None,
    resume: bool = False,
) -> tuple[ToggleTrace, np.ndarray, list[tuple[str, int, int]]]:
    """Simulate (name, program, cycles, throttle) runs; concat results.

    Runs with identical (cycles, throttle) are batched together; cached
    runs are skipped and the remaining groups fan out across ``workers``
    processes (or the caller-supplied ``pool``).  Output is
    bit-identical for any worker count and cache state — per-benchmark
    results depend only on the benchmark itself, never on its
    batch-mates (width-independent accumulator reduction).

    With ``checkpoints`` set, completed per-run results are checkpointed
    under ``stage`` after every wave of ``workers`` groups;
    ``resume=True`` restores a matching checkpoint and simulates only
    the remaining runs.  Re-grouping the survivors changes batch-mates
    but (by the contract above) not a single output bit.
    """
    weights = PowerAnalyzer(core.netlist).label_weights()
    state_key = state_key_for(core, engine)
    seed_state(
        state_key,
        CoreState.from_parts(core, engine, label_weights=weights),
    )
    netlist_fp = core.netlist.fingerprint()
    weights_fp = array_fingerprint(weights) if cache is not None else ""

    n = len(runs)
    results: list[dict[str, np.ndarray] | None] = [None] * n
    keys: list[str | None] = [None] * n
    if cache is not None:
        # No engine in the key: backends are bit-identical by contract,
        # so cached runs are shared (and resumable) across them.
        for i, (_name, prog, cycles, throttle) in enumerate(runs):
            keys[i] = make_key(
                "dataset-run",
                netlist_fp,
                cycles,
                throttle_fingerprint(throttle),
                program_fingerprint(prog),
                weights_fp,
            )
            results[i] = cache.get(keys[i])

    # Checkpoint identity: any change to the run list or its inputs
    # makes old checkpoints unusable (they are ignored, not trusted).
    ckpt_identity = None
    if checkpoints is not None:
        # Engine-agnostic identity: a stage checkpointed under one
        # backend resumes under any other with the same bits.
        ckpt_identity = make_key(
            "dataset-stage",
            netlist_fp,
            *(
                make_key(
                    name, cycles, throttle_fingerprint(throttle),
                    program_fingerprint(prog),
                )
                for name, prog, cycles, throttle in runs
            ),
        )
        if resume:
            ck = checkpoints.latest(stage)
            if ck is not None and ck.meta.get("identity") == ckpt_identity:
                for i in ck.arrays["done"]:
                    i = int(i)
                    results[i] = {
                        "packed": ck.arrays[f"run{i}_packed"],
                        "label": ck.arrays[f"run{i}_label"],
                    }

    # Group consecutive misses by (cycles, throttle identity).
    miss = [i for i in range(n) if results[i] is None]
    groups: list[tuple[list[int], int, object]] = []
    j = 0
    while j < len(miss):
        cycles, throttle = runs[miss[j]][2], runs[miss[j]][3]
        group = [miss[j]]
        while (
            len(group) < batch_group
            and j + len(group) < len(miss)
            and runs[miss[j + len(group)]][2] == cycles
            and runs[miss[j + len(group)]][3] is throttle
        ):
            group.append(miss[j + len(group)])
        j += len(group)
        groups.append((group, cycles, throttle))

    if groups:
        own_pool = pool is None
        if own_pool:
            pool = WorkerPool(
                workers,
                initializer=init_core_state,
                initargs=(state_key, core, engine),
                faults=faults,
            )
        # Without a checkpoint store every group goes out in one map;
        # with one, groups go out in waves of ``workers`` so progress is
        # persisted at pool-width granularity.
        wave = len(groups) if checkpoints is None else max(1, pool.workers)
        try:
            for w0 in range(0, len(groups), wave):
                wave_groups = groups[w0:w0 + wave]
                outs = pool.map(
                    simulate_group,
                    [
                        (
                            state_key,
                            cycles,
                            throttle,
                            [runs[i][1] for i in group],
                        )
                        for group, cycles, throttle in wave_groups
                    ],
                    label="dataset.sim",
                )
                for (group, _cyc, _thr), payloads in zip(wave_groups, outs):
                    for i, payload in zip(group, payloads):
                        results[i] = payload
                        if keys[i] is not None:
                            cache.put(keys[i], payload)
                if checkpoints is not None:
                    done = [
                        i for i in range(n) if results[i] is not None
                    ]
                    arrays = {"done": np.asarray(done, dtype=np.int64)}
                    for i in done:
                        arrays[f"run{i}_packed"] = results[i]["packed"]
                        arrays[f"run{i}_label"] = results[i]["label"]
                    # step = completed-run count: monotonic across
                    # interrupted and resumed builds alike.
                    checkpoints.save(
                        stage,
                        len(done),
                        arrays,
                        meta={"identity": ckpt_identity},
                    )
                if faults is not None:
                    faults.raise_if(f"{stage}.wave")
        finally:
            if own_pool:
                pool.close()

    traces: list[ToggleTrace] = []
    labels: list[np.ndarray] = []
    segments: list[tuple[str, int, int]] = []
    cursor = 0
    for (name, _prog, cycles, _thr), payload in zip(runs, results):
        traces.append(
            ToggleTrace(
                packed=payload["packed"][None],
                n_nets=core.netlist.n_nets,
            )
        )
        labels.append(payload["label"])
        segments.append((name, cursor, cursor + cycles))
        cursor += cycles

    trace = ToggleTrace.concat_cycles(traces)
    return trace, np.concatenate(labels), segments


def build_training_dataset(
    core,
    ga_result: GaResult,
    target_cycles: int,
    replay_cycles: int = 300,
    seed: int = 0,
    engine: str = "packed",
    workers: int = 1,
    cache: EvalCache | None = None,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
) -> PowerDataset:
    """Replay a uniform-power GA subset to collect ``target_cycles``.

    Each selected micro-benchmark contributes ``replay_cycles`` cycles.
    With ``checkpoints``, progress persists under stage
    ``"dataset.train"`` and ``resume=True`` skips already-simulated
    benchmarks (bit-identical output either way).
    """
    if target_cycles < replay_cycles:
        raise DatasetError("target_cycles smaller than one replay")
    n_benchmarks = int(np.ceil(target_cycles / replay_cycles))
    chosen = select_uniform_power(
        ga_result.individuals, n_benchmarks, seed=seed
    )
    runs = [
        (ind.program.name, ind.program, replay_cycles, None)
        for ind in chosen
    ]
    trace, labels, segments = _simulate_benchmarks(
        core, runs, engine=engine, workers=workers, cache=cache,
        checkpoints=checkpoints, stage="dataset.train",
        faults=faults, resume=resume,
    )
    return PowerDataset(
        trace=trace,
        labels=labels,
        candidate_ids=core.monitorable_nets(),
        segments=segments,
    )


def build_testing_dataset(
    core,
    cycle_scale: float = 1.0,
    engine: str = "packed",
    workers: int = 1,
    cache: EvalCache | None = None,
    checkpoints: CheckpointStore | None = None,
    faults=None,
    resume: bool = False,
) -> PowerDataset:
    """Simulate the 12 handcrafted Table-4 benchmarks.

    With ``checkpoints``, progress persists under stage
    ``"dataset.test"`` and ``resume=True`` skips completed benchmarks.
    """
    suite = testing_suite(cycle_scale)
    runs = [(b.name, b.program, b.cycles, b.throttle) for b in suite]
    trace, labels, segments = _simulate_benchmarks(
        core, runs, engine=engine, workers=workers, cache=cache,
        checkpoints=checkpoints, stage="dataset.test",
        faults=faults, resume=resume,
    )
    return PowerDataset(
        trace=trace,
        labels=labels,
        candidate_ids=core.monitorable_nets(),
        segments=segments,
    )
