"""GA-based micro-benchmark generation (GeST-style, §4.1 / Fig. 3).

Individuals are fixed-length instruction sequences.  Fitness is average
power measured by the reproduction's signoff flow (pipeline model + gate
simulation + capacitance-weighted toggles); the highest-power individuals
become parents (truncation selection), produce children via single-point
crossover, and mutate by instruction replacement.  Every evaluated
individual is kept: the union across generations spans low to high power
(>5x in the paper, asserted in the Fig. 3 experiment).

Power evaluation is the expensive step; a whole generation is evaluated in
*one batched* gate-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError, DatasetError
from repro.obs.trace import NULL_TRACER
from repro.resilience.checkpoint import (
    CheckpointStore,
    programs_from_arrays,
    programs_to_arrays,
    restore_rng_state,
    rng_state_meta,
)
from repro.parallel.cache import (
    EvalCache,
    array_fingerprint,
    make_key,
    program_fingerprint,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    CoreState,
    eval_power_shard,
    init_core_state,
    seed_state,
    state_key_for,
)
from repro.isa.instructions import Instruction
from repro.isa.program import (
    DEFAULT_MIX,
    InstructionMix,
    Program,
    random_program,
    _random_instruction,
)
from repro.isa.instructions import IClass, Opcode
from repro.power.analyzer import PowerAnalyzer
from repro.rtl.simulator import RecordSpec, Simulator
from repro.uarch.pipeline import Pipeline

__all__ = ["GaConfig", "GaIndividual", "GaResult", "BenchmarkEvolver"]


@dataclass(frozen=True)
class GaConfig:
    """Genetic-algorithm budget and operator rates.

    ``fitness`` selects the optimization target: ``"power"`` evolves a
    power virus (the paper's training-data generator, §4.1); ``"didt"``
    evolves an Ldi/dt stressmark — the worst current *ramp* over a short
    window — the §8.2 voltage-droop scenario (GeST [28] supports the
    same two stressmark families).
    """

    population: int = 16
    generations: int = 14
    program_length: int = 48
    eval_cycles: int = 300
    elite: int = 2
    parent_frac: float = 0.5
    mutation_rate: float = 0.08
    seed: int = 7
    fitness: str = "power"
    didt_window: int = 4

    def __post_init__(self) -> None:
        if self.population < 4:
            raise DatasetError("population must be >= 4")
        if not (0 < self.parent_frac <= 1):
            raise DatasetError("parent_frac must be in (0, 1]")
        if self.elite >= self.population:
            raise DatasetError("elite must be smaller than population")
        if self.fitness not in ("power", "didt"):
            raise DatasetError(
                f"fitness must be 'power' or 'didt', got {self.fitness!r}"
            )
        if self.didt_window < 1:
            raise DatasetError("didt_window must be >= 1")
        if self.program_length < 2:
            raise DatasetError(
                "program_length must be >= 2 (single-point crossover "
                "needs an interior cut)"
            )
        if self.elite < 0:
            raise DatasetError("elite must be >= 0")
        if not (0 <= self.mutation_rate <= 1):
            raise DatasetError("mutation_rate must be in [0, 1]")


@dataclass
class GaIndividual:
    """One evaluated micro-benchmark.

    ``power`` is always the average switching power; ``fitness`` is the
    selection objective (equal to ``power`` for power-virus runs, the
    worst current ramp for dI/dt runs).
    """

    program: Program
    power: float
    generation: int
    fitness: float | None = None

    def __post_init__(self) -> None:
        if self.fitness is None:
            self.fitness = self.power


@dataclass
class GaResult:
    """All evaluated individuals plus per-generation statistics."""

    individuals: list[GaIndividual]
    generations: int

    @property
    def best(self) -> GaIndividual:
        return max(self.individuals, key=lambda i: i.power)

    @property
    def best_by_fitness(self) -> GaIndividual:
        """Top individual under the configured objective (power or didt)."""
        return max(self.individuals, key=lambda i: i.fitness)

    @property
    def power_range(self) -> tuple[float, float]:
        powers = [i.power for i in self.individuals]
        return min(powers), max(powers)

    @property
    def max_min_ratio(self) -> float:
        lo, hi = self.power_range
        return hi / lo if lo > 0 else float("inf")

    def generation_stats(self) -> list[tuple[int, float, float, float]]:
        """(generation, min, mean, max) power rows — Fig. 3(b)'s data."""
        out = []
        for g in range(self.generations):
            powers = [
                i.power for i in self.individuals if i.generation == g
            ]
            if powers:
                out.append(
                    (g, min(powers), float(np.mean(powers)), max(powers))
                )
        return out

    def scatter_points(self) -> list[tuple[int, float]]:
        """(generation, power) pairs, one per individual (Fig. 3b)."""
        return [(i.generation, i.power) for i in self.individuals]


class BenchmarkEvolver:
    """Evolves power-virus micro-benchmarks for one core design.

    Parameters beyond PR 1's:

    workers:
        Process count for fitness evaluation.  Each generation's
        pipeline walks + batched simulation are sharded across workers;
        results are bit-identical to ``workers=1`` for any count (the
        simulator's accumulator reduction is batch-width independent).
    cache:
        Optional :class:`repro.parallel.EvalCache`; per-program power
        traces are memoized by content hash, so re-encountered programs
        (elites with ``reuse_elites=False``, duplicate children,
        cross-run repeats via a disk tier) skip simulation entirely.
    reuse_elites:
        Carry elite individuals' measured traces into the next
        generation instead of re-simulating them (on by default; the
        flag exists so tests can compare both paths).
    checkpoints:
        Optional :class:`~repro.resilience.CheckpointStore`.  When set,
        the full GA state (population, RNG bit-generator state, every
        evaluated individual, elite traces) is checkpointed under stage
        ``"ga"`` at the top of each generation, and ``run(resume=True)``
        continues an interrupted run **bit-identically** to an
        uninterrupted one.
    faults:
        Optional :class:`~repro.resilience.FaultInjector`, forwarded to
        the worker pool (``pool.map`` site) and fired at the
        ``ga.generation`` site just after each checkpoint is saved — a
        scheduled ``interrupt`` there models a crash at the stage
        boundary that a later ``run(resume=True)`` recovers from.
    """

    def __init__(
        self,
        core,
        config: GaConfig | None = None,
        engine: str = "packed",
        tracer=None,
        workers: int = 1,
        cache: EvalCache | None = None,
        reuse_elites: bool = True,
        checkpoints: CheckpointStore | None = None,
        faults=None,
    ) -> None:
        self.core = core
        self.config = config or GaConfig()
        self.tracer = tracer or NULL_TRACER
        self.pipeline = Pipeline(core.params)
        self.simulator = Simulator(core.netlist, engine=engine)
        analyzer = PowerAnalyzer(core.netlist)
        self._label_weights = analyzer.label_weights()
        self._rng = np.random.default_rng(self.config.seed)
        self.cache = cache
        self.reuse_elites = reuse_elites
        self._netlist_fp = core.netlist.fingerprint()
        self._weights_fp = (
            array_fingerprint(self._label_weights)
            if cache is not None else ""
        )
        # Workers rebuild this state from (core, engine) in their
        # initializer; the parent seeds its already-built objects under
        # the same key so the serial path reuses them.
        self._state_key = state_key_for(core, engine)
        seed_state(
            self._state_key,
            CoreState.from_parts(
                core,
                engine,
                pipeline=self.pipeline,
                simulator=self.simulator,
                label_weights=self._label_weights,
            ),
        )
        self.checkpoints = checkpoints
        self.faults = faults
        self.pool = WorkerPool(
            workers,
            initializer=init_core_state,
            initargs=(self._state_key, core, engine),
            tracer=self.tracer,
            faults=faults,
        )
        #: Work counters (cumulative over this evolver's lifetime).
        self.n_simulated = 0
        self.n_cache_hits = 0
        self.n_elite_reuses = 0

    def close(self) -> None:
        """Release worker processes (idempotent)."""
        self.pool.close()

    def __enter__(self) -> "BenchmarkEvolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _power_traces(
        self,
        programs: list[Program],
        known: dict[int, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Per-cycle power of each program, batched: (B, cycles).

        ``known`` maps positions to already-measured traces (elite
        carry-over).  Remaining programs are looked up in the cache,
        and the misses simulated in up to ``workers`` shards; every
        path yields the same bits as one monolithic serial batch.
        """
        cycles = self.config.eval_cycles
        n = len(programs)
        out = np.empty((n, cycles), dtype=np.float64)
        keys: list[str | None] = [None] * n
        miss: list[int] = []
        for i, prog in enumerate(programs):
            if known is not None and i in known:
                out[i] = known[i]
                self.n_elite_reuses += 1
                continue
            if self.cache is not None:
                # No engine in the key: every backend is bit-identical
                # by contract, so cached traces are shared across them.
                keys[i] = make_key(
                    "ga-power",
                    self._netlist_fp,
                    cycles,
                    program_fingerprint(prog),
                    self._weights_fp,
                )
                hit = self.cache.get(keys[i])
                if hit is not None:
                    out[i] = hit["power"]
                    self.n_cache_hits += 1
                    continue
            miss.append(i)
        if miss:
            # Cross-individual batching: the whole generation's misses
            # compile into packed runs.  Shard only when the pool will
            # actually fan out (mirroring WorkerPool.map's own serial
            # criterion); otherwise one monolithic batch beats many
            # small ones.  Either plan yields the same bits — the
            # accumulator reduction is batch-width independent.
            if self.pool.parallel and len(miss) >= self.pool.workers:
                slices = self.pool.shard(len(miss))
            else:
                slices = [slice(0, len(miss))]
            shards = [
                (
                    self._state_key,
                    cycles,
                    [programs[i] for i in miss[sl]],
                )
                for sl in slices
            ]
            rows = np.concatenate(
                self.pool.map(eval_power_shard, shards, label="ga.eval"),
                axis=0,
            )
            self.n_simulated += len(miss)
            for j, i in enumerate(miss):
                out[i] = rows[j]
                if keys[i] is not None:
                    self.cache.put(keys[i], {"power": rows[j]})
        return out

    def measure_power(self, programs: list[Program]) -> np.ndarray:
        """Average switching power (mW) of each program, batched."""
        if not programs:
            return np.zeros(0)
        return self._power_traces(programs).mean(axis=1)

    def measure_didt(self, traces: np.ndarray) -> np.ndarray:
        """Worst positive current ramp per trace (mA over the window).

        The ramp is the difference between the mean current of the next
        ``didt_window`` cycles and the previous ``didt_window`` cycles —
        the quantity that excites Ldi/dt droops (§8.2).  Computed for
        the whole batch at once via sliding-window sums (one pass, no
        per-trace Python loop).
        """
        w = self.config.didt_window
        cur = np.asarray(traces, dtype=np.float64) / 0.75  # mA at vdd
        if cur.shape[1] < 2 * w:
            raise DatasetError("eval_cycles too short for didt_window")
        # sw[:, t] = sum(cur[:, t:t+w]); the ramp at t compares the
        # window starting at t+w against the one starting at t.
        sw = np.lib.stride_tricks.sliding_window_view(
            cur, w, axis=1
        ).sum(axis=2)
        ramps = (sw[:, w:] - sw[:, :-w]) / w
        return ramps.max(axis=1)

    def _measure_didt_loop(self, traces: np.ndarray) -> np.ndarray:
        """Reference per-trace convolution (kept for property tests)."""
        w = self.config.didt_window
        cur = traces / 0.75
        if cur.shape[1] < 2 * w:
            raise DatasetError("eval_cycles too short for didt_window")
        kernel = np.concatenate(
            [-np.ones(w) / w, np.ones(w) / w]
        )
        out = np.empty(cur.shape[0])
        for b in range(cur.shape[0]):
            ramps = np.convolve(cur[b], kernel[::-1], mode="valid")
            out[b] = float(ramps.max())
        return out

    # ------------------------------------------------------------------ #
    def _initial_population(self) -> list[Program]:
        """Random programs with randomized instruction mixes (diversity).

        A few deterministic low-activity prototypes (serial dependence
        chains, branch storms) seed the low end of the power range so the
        accumulated training set spans idle-ish to virus (Fig. 3b's >5x
        max/min spread).
        """
        from repro.isa.assembler import assemble

        pop: list[Program] = []
        length = self.config.program_length
        serial = ["movi x1, 3"] + ["mul x1, x1, x1"] * (length - 1)
        chase = ["movi x1, 0"] + ["ld x1, 1777(x1)"] * (length - 1)
        storm = ["movi x2, 1"]
        while len(storm) < length:
            storm += ["xor x1, x1, x2", "bne x1, x0, 2", "nop", "nop"]
        for name, src in (
            ("ga_seed_serial", serial),
            ("ga_seed_chase", chase),
            ("ga_seed_branchy", storm[:length]),
        ):
            pop.append(
                Program(name, tuple(assemble("\n".join(src))))
            )
        for k in range(self.config.population - len(pop)):
            weights = {
                c: float(self._rng.uniform(0.1, 4.0)) for c in IClass
            }
            mix = InstructionMix(
                weights=weights,
                mem_stride=int(self._rng.choice((1, 2, 8, 64))),
                mem_region_words=int(self._rng.choice((64, 512, 4096))),
            )
            pop.append(
                random_program(
                    self._rng,
                    self.config.program_length,
                    mix,
                    name=f"ga_g0_i{k}",
                )
            )
        return pop

    def _crossover(
        self, a: Program, b: Program, name: str
    ) -> Program:
        if len(a) < 2:  # no interior cut exists
            return Program(name, a.instructions)
        cut = int(self._rng.integers(1, len(a)))
        child = a.instructions[:cut] + b.instructions[cut:]
        return Program(name, child)

    def _mutate(self, prog: Program, name: str) -> Program:
        insts: list[Instruction] = []
        for inst in prog.instructions:
            if self._rng.random() < self.config.mutation_rate:
                op = Opcode(int(self._rng.integers(0, len(Opcode))))
                insts.append(
                    _random_instruction(
                        self._rng, op, DEFAULT_MIX,
                        mem_offset=int(self._rng.integers(0, 512)),
                    )
                )
            else:
                insts.append(inst)
        return Program(name, tuple(insts))

    # ------------------------------------------------------------------ #
    def _ckpt_identity(self) -> dict:
        """What a checkpoint must match to be resumable by this evolver."""
        cfg = self.config
        return {
            "population": cfg.population,
            "generations": cfg.generations,
            "program_length": cfg.program_length,
            "eval_cycles": cfg.eval_cycles,
            "elite": cfg.elite,
            "parent_frac": cfg.parent_frac,
            "mutation_rate": cfg.mutation_rate,
            "seed": cfg.seed,
            "fitness": cfg.fitness,
            "didt_window": cfg.didt_window,
            # Deliberately no engine field: backends are bit-identical,
            # so a checkpoint written under one resumes under any other
            # with the same results.  (Checkpoints from the era when the
            # engine was part of the identity are refused, determinis-
            # tically, by the dict mismatch.)
            "netlist": self._netlist_fp,
            "reuse_elites": self.reuse_elites,
        }

    def _save_generation(
        self,
        gen: int,
        population: list[Program],
        all_individuals: list[GaIndividual],
        known: dict[int, np.ndarray] | None,
    ) -> None:
        """Checkpoint the exact state the top of generation ``gen`` sees."""
        pop_arrs, pop_names = programs_to_arrays(population)
        ind_arrs, ind_names = programs_to_arrays(
            [ind.program for ind in all_individuals]
        )
        arrays = {
            "pop_fields": pop_arrs["prog_fields"],
            "pop_offsets": pop_arrs["prog_offsets"],
            "ind_fields": ind_arrs["prog_fields"],
            "ind_offsets": ind_arrs["prog_offsets"],
            "ind_power": np.asarray(
                [ind.power for ind in all_individuals], dtype=np.float64
            ),
            "ind_fitness": np.asarray(
                [ind.fitness for ind in all_individuals], dtype=np.float64
            ),
            "ind_generation": np.asarray(
                [ind.generation for ind in all_individuals], dtype=np.int64
            ),
        }
        if known:
            positions = sorted(known)
            arrays["known_positions"] = np.asarray(positions, dtype=np.int64)
            arrays["known_traces"] = np.stack(
                [np.asarray(known[p], dtype=np.float64) for p in positions]
            )
        meta = {
            "rng_state": rng_state_meta(self._rng),
            "pop_names": pop_names,
            "ind_names": ind_names,
            "identity": self._ckpt_identity(),
            "counters": {
                "n_simulated": self.n_simulated,
                "n_cache_hits": self.n_cache_hits,
                "n_elite_reuses": self.n_elite_reuses,
            },
        }
        self.checkpoints.save("ga", gen, arrays, meta)

    def _restore_generation(self, ck) -> tuple[
        int, list[Program], list[GaIndividual], dict[int, np.ndarray] | None
    ]:
        """Inverse of :meth:`_save_generation` (validates identity)."""
        identity = ck.meta.get("identity")
        if identity != self._ckpt_identity():
            raise CheckpointError(
                "GA checkpoint belongs to a different run configuration "
                f"(checkpoint {identity!r} vs current "
                f"{self._ckpt_identity()!r})"
            )
        population = programs_from_arrays(
            {
                "prog_fields": ck.arrays["pop_fields"],
                "prog_offsets": ck.arrays["pop_offsets"],
            },
            ck.meta["pop_names"],
        )
        ind_programs = programs_from_arrays(
            {
                "prog_fields": ck.arrays["ind_fields"],
                "prog_offsets": ck.arrays["ind_offsets"],
            },
            ck.meta["ind_names"],
        )
        all_individuals = [
            GaIndividual(
                program=p,
                power=float(pw),
                generation=int(g),
                fitness=float(fit),
            )
            for p, pw, fit, g in zip(
                ind_programs,
                ck.arrays["ind_power"],
                ck.arrays["ind_fitness"],
                ck.arrays["ind_generation"],
            )
        ]
        known: dict[int, np.ndarray] | None = None
        if "known_positions" in ck.arrays:
            known = {
                int(pos): ck.arrays["known_traces"][j]
                for j, pos in enumerate(ck.arrays["known_positions"])
            }
        restore_rng_state(self._rng, ck.meta["rng_state"])
        return ck.step, population, all_individuals, known

    def run(self, resume: bool = False) -> GaResult:
        """Run the full GA; returns every evaluated individual.

        With a checkpoint store attached, ``resume=True`` continues from
        the newest verifying ``"ga"`` checkpoint (falling back to a
        fresh start when none exists); the resumed run's result is
        bit-identical to an uninterrupted run of the same configuration.
        """
        cfg = self.config
        with self.tracer.span(
            "ga.run",
            population=cfg.population,
            generations=cfg.generations,
            fitness=cfg.fitness,
            engine=self.simulator.engine,
            seed=cfg.seed,
        ) as root:
            start_gen = 0
            population: list[Program] | None = None
            all_individuals: list[GaIndividual] = []
            known: dict[int, np.ndarray] | None = None
            if resume and self.checkpoints is not None:
                ck = self.checkpoints.latest("ga")
                if ck is not None:
                    (
                        start_gen,
                        population,
                        all_individuals,
                        known,
                    ) = self._restore_generation(ck)
                    if root:
                        root.set(resumed_from=start_gen)
            if population is None:
                population = self._initial_population()
            sim0, hit0, reuse0 = (
                self.n_simulated, self.n_cache_hits, self.n_elite_reuses
            )

            for gen in range(start_gen, cfg.generations):
                if self.checkpoints is not None:
                    self._save_generation(
                        gen, population, all_individuals, known
                    )
                if self.faults is not None:
                    # A scheduled "interrupt" models a crash right after
                    # the checkpoint: run(resume=True) re-enters here.
                    self.faults.raise_if("ga.generation")
                with self.tracer.span(
                    "ga.generation", generation=gen
                ) as sp:
                    traces = self._power_traces(population, known=known)
                    powers = traces.mean(axis=1)
                    if cfg.fitness == "didt":
                        fitness = self.measure_didt(traces)
                    else:
                        fitness = powers
                    scored = sorted(
                        zip(population, powers, fitness,
                            range(len(population))),
                        key=lambda t: -t[2],
                    )
                    all_individuals.extend(
                        GaIndividual(
                            program=p,
                            power=float(pw),
                            generation=gen,
                            fitness=float(fit),
                        )
                        for p, pw, fit, _i in scored
                    )
                    if sp:
                        sp.set(
                            min_power=float(powers.min()),
                            mean_power=float(np.mean(powers)),
                            max_power=float(powers.max()),
                            best_fitness=float(np.max(fitness)),
                            n_simulated=self.n_simulated - sim0,
                        )
                    if gen == cfg.generations - 1:
                        break
                    n_parents = max(
                        2, int(cfg.parent_frac * cfg.population)
                    )
                    parents = [
                        p for p, _pw, _fit, _i in scored[:n_parents]
                    ]
                    nxt: list[Program] = [
                        p for p, _pw, _fit, _i in scored[: cfg.elite]
                    ]
                    # Elites keep their measured traces: positions
                    # 0..elite-1 of the next population need no
                    # re-simulation (bit-identical either way — the
                    # accumulator reduction is batch-width independent).
                    if self.reuse_elites:
                        known = {
                            pos: traces[i]
                            for pos, (_p, _pw, _fit, i) in enumerate(
                                scored[: cfg.elite]
                            )
                        }
                    k = 0
                    while len(nxt) < cfg.population:
                        pa, pb = self._rng.choice(
                            len(parents), size=2, replace=False
                        )
                        child = self._crossover(
                            parents[int(pa)],
                            parents[int(pb)],
                            name=f"ga_g{gen + 1}_i{k}",
                        )
                        nxt.append(self._mutate(child, child.name))
                        k += 1
                    population = nxt

            result = GaResult(
                individuals=all_individuals, generations=cfg.generations
            )
            if root:
                root.set(
                    n_individuals=len(all_individuals),
                    max_min_ratio=float(result.max_min_ratio),
                    best_power=float(result.best.power),
                    n_simulated=self.n_simulated - sim0,
                    n_cache_hits=self.n_cache_hits - hit0,
                    n_elite_reuses=self.n_elite_reuses - reuse0,
                )
        return result
