"""Field recalibration of a deployed OPM (§6 of the paper).

"All weights are quantized into B-bit fixed-point values, which can be
configured to accommodate potential model re-training using sign-off or
hardware measurement power values."

The deployed OPM's *structure* (proxy set, detectors, adder tree) is
frozen in silicon; only the weight register file can be rewritten.  This
module implements the re-training loop: given windowed reference power
measurements (from a lab power rail or sign-off reruns) and the per-cycle
proxy toggles of the same run, refit the weights by ridge regression and
requantize onto the existing B-bit format.  Covers silicon/model drift
(process corners, voltage/temperature shifts) without new hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OpmError
from repro.core.solvers import ridge_fit
from repro.opm.quantize import QuantizedModel

__all__ = ["CalibrationResult", "recalibrate"]


@dataclass
class CalibrationResult:
    """Before/after of one recalibration.

    ``applied`` is False when the refit did not beat the deployed
    weights on the calibration data (a good factory model can outperform
    a refit from coarse windowed measurements) — the original model is
    returned unchanged in that case.
    """

    model: QuantizedModel
    rms_error_before: float
    rms_error_after: float
    applied: bool = True

    @property
    def improvement_pct(self) -> float:
        if self.rms_error_before == 0:
            return 0.0
        return 100.0 * (
            1.0 - self.rms_error_after / self.rms_error_before
        )


def recalibrate(
    qmodel: QuantizedModel,
    toggles: np.ndarray,
    measured_power: np.ndarray,
    t: int,
    ridge_lam: float = 1e-3,
) -> CalibrationResult:
    """Refit a deployed OPM's weights against measured power.

    Parameters
    ----------
    qmodel:
        The deployed quantized model (proxy set and bit width are kept).
    toggles:
        (N, Q) per-cycle proxy toggles recorded alongside the
        measurements (the OPM interface already produces these).
    measured_power:
        Reference power per T-cycle window, length ``N // t`` — the
        granularity a lab power rail or sign-off rerun provides.
    t:
        Measurement window size in cycles.

    Returns
    -------
    CalibrationResult
        The requantized model plus before/after RMS errors on the
        calibration data.
    """
    X = np.asarray(toggles, dtype=np.float64)
    y = np.asarray(measured_power, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != qmodel.q:
        raise OpmError(f"expected (N, {qmodel.q}) toggles, got {X.shape}")
    if t < 1:
        raise OpmError("window T must be >= 1")
    n_win = X.shape[0] // t
    if n_win < qmodel.q // 4 + 2:
        raise OpmError(
            f"{n_win} calibration windows is too few for Q={qmodel.q}"
        )
    if y.shape != (n_win,):
        raise OpmError(
            f"expected {n_win} window measurements, got {y.shape}"
        )
    Xw = X[: n_win * t].reshape(n_win, t, qmodel.q).mean(axis=1)

    before = qmodel.predict(X[: n_win * t])
    before_w = before.reshape(n_win, t).mean(axis=1)
    rms_before = float(np.sqrt(((before_w - y) ** 2).mean()))

    w, b = ridge_fit(Xw, y, lam=ridge_lam)

    # Requantize onto the deployed bit width.
    w_max = float(np.abs(w).max())
    if w_max == 0:
        raise OpmError("recalibration produced an all-zero model")
    limit = (1 << (qmodel.bits - 1)) - 1
    step = w_max / limit
    new = QuantizedModel(
        proxies=qmodel.proxies.copy(),
        int_weights=np.clip(
            np.round(w / step), -limit, limit
        ).astype(np.int64),
        int_intercept=int(round(b / step)),
        step=step,
        bits=qmodel.bits,
    )
    after = new.predict(X[: n_win * t])
    after_w = after.reshape(n_win, t).mean(axis=1)
    rms_after = float(np.sqrt(((after_w - y) ** 2).mean()))
    if rms_after >= rms_before:
        # Keep the deployed weights: the refit did not help.
        return CalibrationResult(
            model=qmodel,
            rms_error_before=rms_before,
            rms_error_after=rms_before,
            applied=False,
        )
    return CalibrationResult(
        model=new,
        rms_error_before=rms_before,
        rms_error_after=rms_after,
        applied=True,
    )
