"""The OPM as gate-level hardware in the reproduction's own RTL IR.

Implements the three blocks of Fig. 8:

* **interface** — per 1-bit proxy, a capture flip-flop + XOR toggle
  detector; gated-clock proxies latch the enable directly (no XOR),
  exactly as §6 describes;
* **power computation** — each B-bit constant weight is masked by its
  toggle bit (AND gates on the set bits, sign-extended to the accumulator
  width) and summed by a balanced tree of ripple adders; the quantized
  intercept enters as a constant operand;
* **T-cycle average** — an accumulator register, a mod-T counter whose
  wrap resets the sum and captures the output, and division by T realized
  by dropping the low ``log2(T)`` bits.

Because the OPM is an ordinary netlist, it is *simulated by the same
simulator and costed by the same power analyzer as the CPU core* — the
reproduction's stand-in for Catapult HLS + Design Compiler synthesis —
and verified bit-exact against :class:`repro.opm.meter.OpmMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OpmError
from repro.rtl.datapath import (
    reduce_or,
    ripple_adder,
)
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import RecordSpec, Simulator
from repro.opm.quantize import QuantizedModel

__all__ = ["OpmHardware", "build_opm_netlist"]


def _is_pow2(t: int) -> bool:
    return t >= 1 and (t & (t - 1)) == 0


@dataclass
class OpmHardware:
    """A synthesized OPM: netlist + the hooks needed to drive/verify it."""

    netlist: Netlist
    qmodel: QuantizedModel
    t: int
    input_nets: list[int]
    clock_mask: np.ndarray  # True where the proxy is a gated-clock signal
    out_bits: list[int]
    acc_width: int
    out_width: int

    @property
    def area(self) -> float:
        return self.netlist.total_area()

    @property
    def q(self) -> int:
        return self.qmodel.q

    # ------------------------------------------------------------------ #
    def stimulus_from_toggles(self, toggles: np.ndarray) -> np.ndarray:
        """Convert proxy toggle bits to OPM input *values*.

        Ordinary proxies are reconstructed as cumulative-XOR waveforms (the
        interface XOR then re-derives exactly the toggle bits); gated-clock
        proxies feed their enable (= toggle) directly.
        """
        tg = np.asarray(toggles, dtype=np.uint8)
        if tg.ndim != 2 or tg.shape[1] != self.q:
            raise OpmError(
                f"expected (N, {self.q}) toggles, got {tg.shape}"
            )
        values = tg.copy()
        normal = ~self.clock_mask
        if normal.any():
            values[:, normal] = np.bitwise_xor.accumulate(
                tg[:, normal], axis=0
            )
        return values

    def simulate(self, toggles: np.ndarray) -> np.ndarray:
        """Gate-level OPM run; returns integer window outputs.

        Output ``k`` is the value the ``out`` register holds at cycle
        ``(k + 1) * T`` — one extra cycle is simulated to capture the
        final window.
        """
        tg = np.asarray(toggles, dtype=np.uint8)
        n_windows = tg.shape[0] // self.t
        if n_windows == 0:
            raise OpmError("toggle trace shorter than one window")
        values = self.stimulus_from_toggles(tg[: n_windows * self.t])
        # The interface capture register delays toggles by one cycle and
        # the output register by another; two extra held cycles let the
        # final window's output land.
        values = np.vstack([values, values[-1:], values[-1:]])
        sim = Simulator(self.netlist)
        res = sim.run(
            values, RecordSpec(columns=np.asarray(self.out_bits))
        )
        out_toggles = res.columns[0]  # (cycles, out_width)
        bit_values = np.cumsum(out_toggles, axis=0) % 2
        # Window k's output reaches the out register at cycle
        # (k + 1) * T + 1 (one-cycle interface latency).
        sample_at = np.arange(1, n_windows + 1) * self.t + 1
        sampled = bit_values[sample_at]  # (n_windows, out_width)
        weights = 1 << np.arange(self.out_width, dtype=np.int64)
        unsigned = sampled.astype(np.int64) @ weights
        # Two's complement interpretation.
        sign = 1 << (self.out_width - 1)
        return (unsigned ^ sign) - sign

    def read(self, toggles: np.ndarray) -> np.ndarray:
        """Gate-level window power estimates in mW."""
        return self.simulate(toggles).astype(np.float64) * self.qmodel.step


def build_opm_netlist(
    qmodel: QuantizedModel,
    t: int = 1,
    clock_mask: np.ndarray | None = None,
    synthesize: bool = True,
) -> OpmHardware:
    """Generate the OPM netlist for a quantized model and window T.

    With ``synthesize=True`` (default) the raw netlist is passed through
    constant folding + dead-logic elimination — the Python analogue of
    the paper's Design Compiler synthesis, which removes the adder logic
    feeding from constant weight bits.  Area numbers are reported on the
    synthesized netlist.
    """
    if not _is_pow2(t):
        raise OpmError(f"T must be a power of two, got {t}")
    q = qmodel.q
    if clock_mask is None:
        clock_mask = np.zeros(q, dtype=bool)
    clock_mask = np.asarray(clock_mask, dtype=bool)
    if clock_mask.shape != (q,):
        raise OpmError("clock_mask length must equal Q")

    b = qmodel.bits
    q_bits = int(np.ceil(np.log2(max(2, q))))
    t_bits = int(np.log2(t)) if t > 1 else 0
    acc_width = b + q_bits + t_bits + 1
    out_width = acc_width - t_bits

    nl = Netlist("opm")
    dom = nl.clock_domain("opm", enable=None)
    zero = nl.const(0)
    one = nl.const(1)

    # ---------------- interface ---------------- #
    with nl.scope("interface"):
        inputs = [nl.input_bit(f"p{j}") for j in range(q)]
        toggles: list[int] = []
        for j, sig in enumerate(inputs):
            latched = nl.reg(sig, dom, name=f"lat{j}")
            if clock_mask[j]:
                # Gated clock: the latched enable *is* the toggle bit.
                toggles.append(latched)
            else:
                prev = nl.reg(latched, dom, name=f"prev{j}")
                toggles.append(nl.xor(latched, prev, name=f"tog{j}"))

    # ---------------- power computation ---------------- #
    with nl.scope("compute"):
        operands: list[list[int]] = []
        for j, tog in enumerate(toggles):
            w = int(qmodel.int_weights[j])
            wbits = [(w >> k) & 1 for k in range(b - 1)]
            sign = 1 if w < 0 else 0
            ext = wbits + [sign] * (acc_width - (b - 1))
            operand = [
                nl.and_(tog, one, name=f"m{j}_{k}") if bit else zero
                for k, bit in enumerate(ext)
            ]
            operands.append(operand)
        # Constant intercept operand (two's complement at acc width).
        c = int(qmodel.int_intercept) & ((1 << acc_width) - 1)
        operands.append(
            [one if (c >> k) & 1 else zero for k in range(acc_width)]
        )
        # Balanced adder tree (wrapping mod 2^acc_width).
        while len(operands) > 1:
            nxt = []
            for i in range(0, len(operands) - 1, 2):
                s, _carry = ripple_adder(
                    nl, operands[i], operands[i + 1]
                )
                nxt.append(s)
            if len(operands) % 2:
                nxt.append(operands[-1])
            operands = nxt
        cycle_sum = operands[0]

    # ---------------- T-cycle average ---------------- #
    with nl.scope("average"):
        if t > 1:
            # mod-T counter; wrap (counter == 0) ends a window.
            from repro.rtl.datapath import (
                connect_register_bus,
                incrementer,
                mux_bus,
                register_bus_uninit,
            )

            # Counter initialized to T-1 so the first wrap lands at cycle
            # 0 (discarding warm-up) and windows align with the 1-cycle
            # interface latency.
            ctr = register_bus_uninit(
                nl, t_bits, dom, name="tctr", init=t - 1
            )
            connect_register_bus(nl, ctr, incrementer(nl, ctr))
            wrap = nl.not_(reduce_or(nl, ctr))

            acc = register_bus_uninit(nl, acc_width, dom, name="acc")
            summed, _ = ripple_adder(nl, acc, cycle_sum)
            zeros = [zero] * acc_width
            connect_register_bus(
                nl, acc, mux_bus(nl, wrap, zeros, summed)
            )
            shifted = summed[t_bits:]
            out_regs = register_bus_uninit(
                nl, out_width, dom, name="out"
            )
            connect_register_bus(
                nl, out_regs, mux_bus(nl, wrap, shifted, out_regs)
            )
        else:
            from repro.rtl.datapath import register_bus

            out_regs = register_bus(nl, cycle_sum, dom, name="out")

    nl.validate()
    if synthesize:
        from repro.rtl.optimize import optimize

        res = optimize(nl, keep=list(out_regs))
        nl = res.netlist
        inputs = res.map_nets(inputs)
        out_regs = res.map_nets(out_regs)
    return OpmHardware(
        netlist=nl,
        qmodel=qmodel,
        t=t,
        input_nets=inputs,
        clock_mask=clock_mask,
        out_bits=out_regs,
        acc_width=acc_width,
        out_width=out_width,
    )
