"""OPM health monitoring: detecting broken proxy inputs in the field.

A deployed power meter is itself hardware that can fail: a proxy wire can
break or short (stuck-at fault), leaving the OPM silently mis-reading.
This module provides the self-check a production OPM would ship with:
per-proxy toggle statistics over a long observation window compared
against the statistics recorded at training time, flagging

* **stuck** proxies (zero toggles where training saw activity),
* **hyperactive** proxies (toggle rates far above anything trained on),
* the worst-case power misreading a given fault set can cause.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OpmError

__all__ = ["HealthReport", "ProxyHealthMonitor", "inject_stuck_faults"]


def inject_stuck_faults(
    toggles: np.ndarray, nets: list[int], stuck_to: int = 0
) -> np.ndarray:
    """Test utility: force the given proxy columns to a constant."""
    if stuck_to not in (0, 1):
        raise OpmError("stuck_to must be 0 or 1")
    out = np.asarray(toggles).copy()
    out[:, nets] = stuck_to
    return out


@dataclass
class HealthReport:
    """Outcome of one health check."""

    stuck: list[int]
    hyperactive: list[int]
    observed_rates: np.ndarray
    reference_rates: np.ndarray
    worst_misread_mw: float

    @property
    def healthy(self) -> bool:
        return not self.stuck and not self.hyperactive


class ProxyHealthMonitor:
    """Checks live proxy statistics against training-time references."""

    def __init__(
        self,
        qmodel,
        reference_toggles: np.ndarray,
        min_rate_factor: float = 0.02,
        max_rate_margin: float = 3.0,
    ) -> None:
        ref = np.asarray(reference_toggles, dtype=np.float64)
        if ref.ndim != 2 or ref.shape[1] != qmodel.q:
            raise OpmError(
                f"reference toggles must be (N, {qmodel.q})"
            )
        self.qmodel = qmodel
        self.reference_rates = ref.mean(axis=0)
        self.min_rate_factor = min_rate_factor
        self.max_rate_margin = max_rate_margin

    def check(self, toggles: np.ndarray) -> HealthReport:
        """Assess a live observation window."""
        X = np.asarray(toggles, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.qmodel.q:
            raise OpmError(
                f"expected (N, {self.qmodel.q}) toggles, got {X.shape}"
            )
        if X.shape[0] < 64:
            raise OpmError(
                "need at least 64 cycles for meaningful statistics"
            )
        rates = X.mean(axis=0)
        ref = self.reference_rates
        stuck = [
            int(j)
            for j in range(self.qmodel.q)
            if ref[j] > 0.01 and rates[j] < self.min_rate_factor * ref[j]
        ]
        hyper = [
            int(j)
            for j in range(self.qmodel.q)
            if rates[j] > max(0.05, self.max_rate_margin * ref[j])
        ]
        # Worst misreading: every flagged proxy contributes at most its
        # full weight per cycle (stuck-at-1 on a never-toggling signal or
        # vice versa).
        w = np.abs(self.qmodel.weights)
        worst = float(w[stuck].sum() + w[hyper].sum())
        return HealthReport(
            stuck=stuck,
            hyperactive=hyper,
            observed_rates=rates,
            reference_rates=ref.copy(),
            worst_misread_mw=worst,
        )
