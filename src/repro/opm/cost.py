"""OPM cost accounting: area and power overheads (§7.5) and Table 3.

Overheads have three components, as in the paper:

* the OPM circuitry itself (synthesized netlist area; its switching power
  measured by simulating the OPM netlist on real proxy toggles with the
  same power analyzer used for the core);
* routing buffers: each proxy is driven from its floorplan location to a
  centralized OPM; buffers are inserted every ``buffer_reach`` distance
  units (§7.5's 0.4% power contribution);
* the core itself as the denominator.

**Scale note** — the OPM's absolute size depends on (Q, B, T), not on the
core, while the paper's 0.2% denominator is a multi-million-gate CPU.  The
reproduction's cores are ~10^4 nets, so the honest same-scale percentage
is larger.  Reports therefore carry both numbers: ``area_overhead_pct``
(vs the actual synthetic core) and ``area_overhead_pct_paper_scale`` (vs a
core scaled to the paper's >5x10^5-signal N1), and EXPERIMENTS.md compares
the latter against the paper's 0.2%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OpmError
from repro.power.analyzer import PowerAnalyzer
from repro.power.liberty import DEFAULT_TECH, TechParams
from repro.rtl.cells import Op
from repro.rtl.simulator import RecordSpec, Simulator
from repro.baselines.registry import METHODS
from repro.opm.hardware import OpmHardware, build_opm_netlist
from repro.opm.quantize import QuantizedModel

__all__ = ["OpmCostReport", "estimate_opm_cost", "table3_rows",
           "PAPER_N1_SIGNALS"]

#: Signal count of the paper's Neoverse N1 (">5 x 10^5", §7.1) — used to
#: express overheads at the paper's design scale.
PAPER_N1_SIGNALS = 5e5

#: Buffer insertion pitch for proxy routing, in floorplan distance units.
BUFFER_REACH = 8.0

#: Area / switching energy of one routing buffer (gate equivalents / fF).
BUFFER_AREA = 1.6
BUFFER_CAP_FF = 2.4


@dataclass
class OpmCostReport:
    """Area/power overhead of one OPM configuration."""

    q: int
    bits: int
    t: int
    opm_area: float
    buffer_area: float
    core_area: float
    scale_factor: float
    opm_power_mw: float
    buffer_power_mw: float
    core_power_mw: float
    latency_cycles: int = 2

    @property
    def total_area(self) -> float:
        return self.opm_area + self.buffer_area

    @property
    def area_overhead_pct(self) -> float:
        """OPM + buffers vs the actual synthetic core."""
        return 100.0 * self.total_area / self.core_area

    @property
    def area_overhead_pct_paper_scale(self) -> float:
        """Same numerator vs a core scaled to the paper's N1 size."""
        return self.area_overhead_pct / self.scale_factor

    @property
    def power_overhead_pct(self) -> float:
        return 100.0 * (
            self.opm_power_mw + self.buffer_power_mw
        ) / self.core_power_mw

    @property
    def power_overhead_pct_paper_scale(self) -> float:
        return self.power_overhead_pct / self.scale_factor


def _routing_buffers(core, proxies: np.ndarray) -> int:
    """Number of buffers to route each proxy to a centralized OPM."""
    xy = core.netlist.positions
    if xy is None:
        raise OpmError("core has no placement; run build_core first")
    die_max = xy.max(axis=0)
    center = die_max / 2.0
    dists = np.abs(xy[proxies] - center).sum(axis=1)  # Manhattan
    return int(np.ceil(dists / BUFFER_REACH).sum())


def estimate_opm_cost(
    core,
    hardware: OpmHardware,
    proxy_toggles: np.ndarray,
    core_power_mw: float,
    tech: TechParams = DEFAULT_TECH,
) -> OpmCostReport:
    """Measure one OPM's overheads against its host core.

    Parameters
    ----------
    core:
        The :class:`~repro.design.generator.CoreDesign` hosting the OPM.
    hardware:
        Built OPM netlist (:func:`~repro.opm.hardware.build_opm_netlist`).
    proxy_toggles:
        (N, Q) per-cycle toggles of the proxies on a representative
        workload — drives the OPM power measurement.
    core_power_mw:
        Average core power on the same workload (the denominator).
    """
    if core_power_mw <= 0:
        raise OpmError("core power must be positive")
    qm = hardware.qmodel

    # OPM dynamic power: simulate the OPM netlist on the real toggles.
    analyzer = PowerAnalyzer(hardware.netlist, tech)
    values = hardware.stimulus_from_toggles(proxy_toggles)
    sim = Simulator(hardware.netlist)
    res = sim.run(
        values,
        RecordSpec(accumulators={"p": analyzer.label_weights()}),
    )
    opm_power = float(res.accum["p"].mean())

    # Routing buffers.
    n_buf = _routing_buffers(core, qm.proxies)
    buffer_area = n_buf * BUFFER_AREA
    # Each buffer switches when its proxy toggles.
    toggle_rate = float(np.asarray(proxy_toggles, dtype=np.float64).mean())
    buffer_power = (
        n_buf
        * BUFFER_CAP_FF
        * tech.edge_energy_scale
        * toggle_rate
        * tech.freq_ghz
        * 1e-3
    )

    core_area = core.netlist.total_area()
    scale = PAPER_N1_SIGNALS / core.netlist.n_nets
    return OpmCostReport(
        q=qm.q,
        bits=qm.bits,
        t=hardware.t,
        opm_area=hardware.area,
        buffer_area=buffer_area,
        core_area=core_area,
        scale_factor=scale,
        opm_power_mw=opm_power,
        buffer_power_mw=buffer_power,
        core_power_mw=core_power_mw,
    )


def table3_rows(q: int, m: int | None = None) -> list[dict]:
    """Regenerate Table 3: hardware primitives per method at proxy count Q.

    Per-cycle and multi-cycle APOLLO need one counter (the T-cycle
    accumulator) and zero multipliers; counter-per-proxy methods need Q;
    Simmani's polynomial terms imply ~Q^2 multipliers; the SVD-based
    emulator [75] multiplies every signal.
    """
    order = ["yang_svd", "simmani", "lasso", "apollo", "apollo_tau"]
    rows = []
    for key in order:
        info = METHODS[key]
        rows.append(
            {
                "method": info.display,
                "citation": info.citation,
                "counters": info.counter_count(q, m),
                "multipliers": info.multiplier_count(q, m),
            }
        )
    return rows
