"""Runtime on-chip power meter (OPM), §6 / Fig. 8 of the paper.

The trained linear model is turned into hardware three ways:

* :mod:`repro.opm.quantize` — B-bit fixed-point weights (§6, Fig. 15b);
* :mod:`repro.opm.meter` — a bit-exact behavioural model of the OPM
  (integer accumulate, T-cycle average, divide-by-T via bit dropping);
* :mod:`repro.opm.hardware` — the OPM as a netlist in the same RTL IR as
  the core (toggle-detector interface, AND-masked weight adder tree,
  T-cycle accumulator), "synthesized" against the synthetic cell library;
* :mod:`repro.opm.cost` — area/power overhead accounting, including the
  proxy-routing buffers of §7.5 and the Table-3 counter/multiplier
  comparison.
"""

from repro.opm.quantize import QuantizedModel, quantize_model
from repro.opm.meter import OpmMeter, OpmStream
from repro.opm.hardware import build_opm_netlist, OpmHardware
from repro.opm.cost import OpmCostReport, estimate_opm_cost, table3_rows
from repro.opm.calibrate import CalibrationResult, recalibrate
from repro.opm.health import (
    HealthReport,
    ProxyHealthMonitor,
    inject_stuck_faults,
)

__all__ = [
    "QuantizedModel",
    "quantize_model",
    "OpmMeter",
    "OpmStream",
    "build_opm_netlist",
    "OpmHardware",
    "OpmCostReport",
    "estimate_opm_cost",
    "table3_rows",
    "CalibrationResult",
    "recalibrate",
    "HealthReport",
    "ProxyHealthMonitor",
    "inject_stuck_faults",
]
