"""Bit-exact behavioural model of the OPM datapath (Fig. 8).

Models exactly what the hardware computes: integer weights conditionally
accumulated on per-cycle toggle bits, a constant intercept term added each
cycle, a T-cycle integer accumulator, and division by T realized by
dropping the low ``log2(T)`` bits (T restricted to powers of two, §4.5).
Useful both for the Fig. 15(b) accuracy/area sweep (fast) and as the
reference the gate-level OPM netlist is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OpmError
from repro.opm.quantize import QuantizedModel

__all__ = ["OpmMeter", "OpmStream"]


def _is_pow2(t: int) -> bool:
    return t >= 1 and (t & (t - 1)) == 0


@dataclass
class OpmMeter:
    """Behavioural OPM for one quantized model and window size T."""

    qmodel: QuantizedModel
    t: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.t):
            raise OpmError(
                f"T must be a power of two for bit-drop division, got "
                f"{self.t}"
            )

    @property
    def latency_cycles(self) -> int:
        """Input registration + output registration (§7.5: 2 cycles)."""
        return 2

    def per_cycle(self, x_proxies: np.ndarray) -> np.ndarray:
        """Per-cycle integer accumulator inputs (before T-windowing).

        These are the values entering the Fig. 8 accumulator each cycle:
        ``weights . toggles + intercept`` in integer arithmetic.  Accepts
        an empty ``(0, Q)`` chunk (returns an empty array) so streaming
        callers can pass short or empty final chunks through unchanged.
        """
        X = np.asarray(x_proxies)
        if X.ndim != 2 or X.shape[1] != self.qmodel.q:
            raise OpmError(
                f"expected (N, {self.qmodel.q}) proxy toggles, got {X.shape}"
            )
        if X.size and not np.isin(X, (0, 1)).all():
            raise OpmError("OPM inputs must be binary toggle bits")
        return (
            X.astype(np.int64) @ self.qmodel.int_weights
            + self.qmodel.int_intercept
        )

    def accumulate(self, x_proxies: np.ndarray) -> np.ndarray:
        """Raw integer OPM outputs, one per complete T-cycle window.

        The returned integers are what the ``out`` register of Fig. 8
        holds after the bit-drop division.
        """
        per_cycle = self.per_cycle(x_proxies)
        n = (per_cycle.size // self.t) * self.t
        if n == 0:
            raise OpmError(
                f"trace of {per_cycle.size} cycles shorter than T={self.t}"
            )
        sums = per_cycle[:n].reshape(-1, self.t).sum(axis=1)
        # Divide by T by dropping log2(T) bits (arithmetic shift).
        shift = int(np.log2(self.t))
        return sums >> shift

    def read(self, x_proxies: np.ndarray) -> np.ndarray:
        """Windowed power estimates in mW (integer outputs x step)."""
        return self.accumulate(x_proxies).astype(np.float64) * (
            self.qmodel.step
        )

    def stream(self) -> "OpmStream":
        """A stateful chunk-by-chunk view of this meter.

        The returned :class:`OpmStream` carries the open T-cycle window
        across chunk boundaries, so feeding a trace in arbitrary chunks
        produces bit-identical window outputs to :meth:`accumulate` on
        the whole trace.
        """
        return OpmStream(self)

    def max_abs_accumulator(self, x_proxies: np.ndarray) -> int:
        """Largest |value| seen in the T-cycle accumulator — must fit in
        :meth:`QuantizedModel.accumulator_bits`, asserted in tests."""
        X = np.asarray(x_proxies).astype(np.int64)
        per_cycle = X @ self.qmodel.int_weights + self.qmodel.int_intercept
        n = (per_cycle.size // self.t) * self.t
        sums = np.cumsum(
            per_cycle[:n].reshape(-1, self.t), axis=1
        )
        return int(np.abs(sums).max(initial=0))


class OpmStream:
    """Incremental T-cycle windowing over per-cycle OPM values.

    Mirrors the hardware exactly: the accumulator register persists
    between chunks, so chunk boundaries are invisible.  ``push`` accepts
    raw proxy-toggle chunks; ``push_per_cycle`` accepts precomputed
    per-cycle integers (the batched-inference path, where one GEMV serves
    many streams).  A trailing partial window is held pending — never
    emitted — matching :meth:`OpmMeter.accumulate`'s drop of incomplete
    windows.
    """

    def __init__(self, meter: OpmMeter) -> None:
        self.meter = meter
        self._partial = 0  # running sum of the open window
        self._pending = 0  # cycles currently in the open window
        self.cycles_in = 0
        self.windows_out = 0

    @property
    def pending_cycles(self) -> int:
        """Cycles buffered in the open (incomplete) window."""
        return self._pending

    def push(self, x_proxies: np.ndarray) -> np.ndarray:
        """Feed one toggle chunk; return completed raw window outputs."""
        return self.push_per_cycle(self.meter.per_cycle(x_proxies))

    def push_per_cycle(self, per_cycle: np.ndarray) -> np.ndarray:
        """Feed precomputed per-cycle integers; return window outputs."""
        vals = np.asarray(per_cycle, dtype=np.int64).ravel()
        self.cycles_in += int(vals.size)
        t = self.meter.t
        shift = int(np.log2(t))
        out: list[int] = []
        if self._pending:
            take = min(t - self._pending, vals.size)
            self._partial += int(vals[:take].sum())
            self._pending += take
            vals = vals[take:]
            if self._pending == t:
                # Python's >> floors like the int64 arithmetic shift.
                out.append(self._partial >> shift)
                self._partial = 0
                self._pending = 0
        n_full = (vals.size // t) * t
        full: np.ndarray | None = None
        if n_full:
            full = vals[:n_full].reshape(-1, t).sum(axis=1) >> shift
        rem = vals[n_full:]
        if rem.size:
            self._partial = int(rem.sum())
            self._pending = int(rem.size)
        head = np.asarray(out, dtype=np.int64)
        windows = head if full is None else np.concatenate([head, full])
        self.windows_out += int(windows.size)
        return windows

    def read_per_cycle(self, per_cycle: np.ndarray) -> np.ndarray:
        """Convert per-cycle integers to mW (same scale as ``read``)."""
        return np.asarray(per_cycle, dtype=np.float64) * self.meter.qmodel.step

    def read_windows(self, windows: np.ndarray) -> np.ndarray:
        """Convert raw window outputs to mW (same scale as ``read``)."""
        return np.asarray(windows, dtype=np.float64) * self.meter.qmodel.step
