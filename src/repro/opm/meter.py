"""Bit-exact behavioural model of the OPM datapath (Fig. 8).

Models exactly what the hardware computes: integer weights conditionally
accumulated on per-cycle toggle bits, a constant intercept term added each
cycle, a T-cycle integer accumulator, and division by T realized by
dropping the low ``log2(T)`` bits (T restricted to powers of two, §4.5).
Useful both for the Fig. 15(b) accuracy/area sweep (fast) and as the
reference the gate-level OPM netlist is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OpmError
from repro.opm.quantize import QuantizedModel

__all__ = ["OpmMeter"]


def _is_pow2(t: int) -> bool:
    return t >= 1 and (t & (t - 1)) == 0


@dataclass
class OpmMeter:
    """Behavioural OPM for one quantized model and window size T."""

    qmodel: QuantizedModel
    t: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.t):
            raise OpmError(
                f"T must be a power of two for bit-drop division, got "
                f"{self.t}"
            )

    @property
    def latency_cycles(self) -> int:
        """Input registration + output registration (§7.5: 2 cycles)."""
        return 2

    def accumulate(self, x_proxies: np.ndarray) -> np.ndarray:
        """Raw integer OPM outputs, one per complete T-cycle window.

        The returned integers are what the ``out`` register of Fig. 8
        holds after the bit-drop division.
        """
        X = np.asarray(x_proxies)
        if X.ndim != 2 or X.shape[1] != self.qmodel.q:
            raise OpmError(
                f"expected (N, {self.qmodel.q}) proxy toggles, got {X.shape}"
            )
        if not np.isin(X, (0, 1)).all():
            raise OpmError("OPM inputs must be binary toggle bits")
        per_cycle = (
            X.astype(np.int64) @ self.qmodel.int_weights
            + self.qmodel.int_intercept
        )
        n = (per_cycle.size // self.t) * self.t
        if n == 0:
            raise OpmError(
                f"trace of {per_cycle.size} cycles shorter than T={self.t}"
            )
        sums = per_cycle[:n].reshape(-1, self.t).sum(axis=1)
        # Divide by T by dropping log2(T) bits (arithmetic shift).
        shift = int(np.log2(self.t))
        return sums >> shift

    def read(self, x_proxies: np.ndarray) -> np.ndarray:
        """Windowed power estimates in mW (integer outputs x step)."""
        return self.accumulate(x_proxies).astype(np.float64) * (
            self.qmodel.step
        )

    def max_abs_accumulator(self, x_proxies: np.ndarray) -> int:
        """Largest |value| seen in the T-cycle accumulator — must fit in
        :meth:`QuantizedModel.accumulator_bits`, asserted in tests."""
        X = np.asarray(x_proxies).astype(np.int64)
        per_cycle = X @ self.qmodel.int_weights + self.qmodel.int_intercept
        n = (per_cycle.size // self.t) * self.t
        sums = np.cumsum(
            per_cycle[:n].reshape(-1, self.t), axis=1
        )
        return int(np.abs(sums).max(initial=0))
