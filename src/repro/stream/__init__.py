"""Bounded-memory streaming introspection pipeline (fleet-scale OPM).

The offline flows (:mod:`repro.flow`) materialize a whole trace, then
analyze it.  This package runs the same chain — simulate -> capture
proxy toggles -> OPM inference -> aggregate -> alert — *incrementally*
over fixed-size chunks, with explicit state handoff at every layer, so
a stream of millions of cycles needs memory for one chunk per session:

* :mod:`repro.stream.source` — chunked proxy-block sources
  (:class:`SimulatorSource`, :class:`TraceSource`);
* :mod:`repro.stream.session` — per-core sessions with bounded queues,
  drop-oldest backpressure, and degraded T-cycle fallback, multiplexed
  through batched OPM inference by :class:`StreamService`;
* :mod:`repro.stream.aggregate` — rolling/EMA aggregation, droop
  precursor alerts with hysteresis, power-budget checks feeding the
  :class:`~repro.flow.dvfs.DvfsGovernor`;
* :mod:`repro.stream.metrics` — back-compat shim over
  :mod:`repro.obs.metrics` (counters/gauges/histograms with JSON
  snapshots now live in the shared observability layer).

The streamed per-cycle and T-window readings are bit-identical to
:class:`~repro.opm.meter.OpmMeter` on the whole trace (property-tested
against both simulator engines).
"""

from __future__ import annotations

from repro.opm.meter import OpmMeter
from repro.stream.aggregate import (
    BudgetWatcher,
    DroopWatcher,
    EmaTracker,
    RingBuffer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.stream.session import (
    SessionHooks,
    StreamConfig,
    StreamService,
    StreamSession,
)
from repro.stream.source import ProxyBlock, SimulatorSource, TraceSource

__all__ = [
    "ProxyBlock",
    "SimulatorSource",
    "TraceSource",
    "SessionHooks",
    "StreamConfig",
    "StreamSession",
    "StreamService",
    "RingBuffer",
    "EmaTracker",
    "DroopWatcher",
    "BudgetWatcher",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "service_for_programs",
]


def service_for_programs(
    core,
    qmodel,
    programs,
    cycles: int,
    t: int = 8,
    chunk_cycles: int = 256,
    engine: str = "packed",
    config: StreamConfig | None = None,
    pdn=None,
    droop_enter_ma: float | None = None,
    budget_mw: float | None = None,
    governor=None,
    registry: MetricsRegistry | None = None,
    tracer=None,
) -> StreamService:
    """Wire one session per program into a ready-to-run service.

    The per-core path mirrors :class:`~repro.flow.multicore`'s socket
    model — one workload per core, one session per core here — and all
    sessions share a single compiled simulator.  ``qmodel`` is a
    :class:`~repro.opm.quantize.QuantizedModel`; pass ``droop_enter_ma``
    and/or ``budget_mw`` to enable the alert layers.
    """
    from repro.rtl.simulator import Simulator

    meter = OpmMeter(qmodel, t=t)
    config = config or StreamConfig()
    sim = Simulator(core.netlist, engine=engine)
    sessions = []
    for i, program in enumerate(programs):
        source = SimulatorSource.from_program(
            core,
            qmodel.proxies,
            program,
            cycles,
            chunk_cycles=chunk_cycles,
            engine=engine,
            simulator=sim,
            tracer=tracer,
        )
        droop = (
            DroopWatcher(pdn=pdn, enter_ma=droop_enter_ma)
            if droop_enter_ma is not None
            else None
        )
        budget = (
            BudgetWatcher(budget_mw, governor=governor)
            if budget_mw is not None
            else None
        )
        name = f"core{i}-{getattr(program, 'name', 'workload')}"
        sessions.append(
            StreamSession(
                name, source, meter, config=config,
                droop=droop, budget=budget,
            )
        )
    return StreamService(meter, sessions, registry=registry, tracer=tracer)
