"""Windowed aggregation and alerting over streamed OPM readings.

Everything here is incremental: state carried across chunks, no
whole-trace arrays.  Three aggregations (per-cycle ring, T-cycle window
ring, EMA) plus two alert watchers:

* :class:`DroopWatcher` — the §8.2 runtime use case.  Per-cycle delta-I
  (via :func:`repro.power.pdn.delta_current` semantics, computed with a
  carried previous-cycle current) feeds a droop-precursor detector with
  hysteresis, while the shared-rail voltage advances chunk by chunk
  through :meth:`PdnModel.step_chunk`.
* :class:`BudgetWatcher` — the §1 coarse-grained use case.  Completed
  T-cycle window readings are checked against a power budget and
  (optionally) fed straight into the existing
  :class:`~repro.flow.dvfs.DvfsGovernor` via its incremental ``step``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError
from repro.power.pdn import PdnModel, PdnState

__all__ = ["RingBuffer", "EmaTracker", "DroopWatcher", "BudgetWatcher"]


class RingBuffer:
    """Fixed-capacity float ring holding the most recent readings."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise StreamError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buf = np.zeros(self.capacity, dtype=np.float64)
        self._next = 0
        self._filled = 0
        self.total_pushed = 0

    def __len__(self) -> int:
        return self._filled

    def push(self, values: np.ndarray) -> None:
        vals = np.asarray(values, dtype=np.float64).ravel()
        self.total_pushed += int(vals.size)
        if vals.size >= self.capacity:
            self._buf[:] = vals[-self.capacity:]
            self._next = 0
            self._filled = self.capacity
            return
        end = self._next + vals.size
        if end <= self.capacity:
            self._buf[self._next:end] = vals
        else:
            split = self.capacity - self._next
            self._buf[self._next:] = vals[:split]
            self._buf[: end - self.capacity] = vals[split:]
        self._next = end % self.capacity
        self._filled = min(self.capacity, self._filled + vals.size)

    def values(self) -> np.ndarray:
        """Retained readings, oldest first."""
        if self._filled < self.capacity:
            return self._buf[: self._filled].copy()
        return np.concatenate(
            [self._buf[self._next:], self._buf[: self._next]]
        )


class EmaTracker:
    """Exponential moving average carried across chunks."""

    def __init__(self, alpha: float = 0.05) -> None:
        if not (0.0 < alpha <= 1.0):
            raise StreamError(f"EMA alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: float | None = None
        self.n = 0

    def update(self, values: np.ndarray) -> float | None:
        vals = np.asarray(values, dtype=np.float64).ravel()
        v = self.value
        a = self.alpha
        for x in vals:
            v = x if v is None else v + a * (x - v)
        self.value = v
        self.n += int(vals.size)
        return v


class DroopWatcher:
    """Droop-precursor detection with hysteresis + incremental PDN.

    An alert is *raised* when the per-cycle current step exceeds
    ``enter_ma`` and *re-armed* only after delta-I falls below
    ``exit_ma`` (default ``exit_frac * enter_ma``).  Hovering at the
    enter threshold therefore produces one alert, not a storm.
    """

    def __init__(
        self,
        pdn: PdnModel | None = None,
        enter_ma: float = 2.0,
        exit_ma: float | None = None,
        exit_frac: float = 0.7,
    ) -> None:
        self.pdn = pdn or PdnModel()
        if enter_ma <= 0:
            raise StreamError("enter threshold must be positive")
        self.enter_ma = float(enter_ma)
        self.exit_ma = (
            float(exit_ma) if exit_ma is not None
            else self.enter_ma * float(exit_frac)
        )
        if self.exit_ma > self.enter_ma:
            raise StreamError(
                "exit threshold must not exceed enter threshold"
            )
        self._last_current: float | None = None
        self._pdn_state: PdnState | None = None
        self._active = False
        self.alerts = 0
        self.alert_cycles = 0
        self.min_voltage = float("inf")
        self.max_delta_i = 0.0

    @property
    def active(self) -> bool:
        return self._active

    def observe(self, power_mw: np.ndarray) -> int:
        """Process one chunk of per-cycle power; return new alert count."""
        power = np.asarray(power_mw, dtype=np.float64).ravel()
        if power.size == 0:
            return 0
        current = power / self.pdn.vdd  # mA
        # delta-I with the carried previous-cycle current; the first
        # cycle ever seen has no predecessor (0 by convention, matching
        # delta_current on a whole trace).
        prev = (
            current[0] if self._last_current is None
            else self._last_current
        )
        di = np.diff(current, prepend=prev)
        self._last_current = float(current[-1])
        self.max_delta_i = max(self.max_delta_i, float(di.max(initial=0.0)))

        if self._pdn_state is None:
            self._pdn_state = self.pdn.equilibrium_state(float(power[0]))
        v, self._pdn_state = self.pdn.step_chunk(power, self._pdn_state)
        self.min_voltage = min(self.min_voltage, float(v.min()))

        new_alerts = 0
        for x in di:
            if self._active:
                self.alert_cycles += 1
                if x < self.exit_ma:
                    self._active = False
            elif x > self.enter_ma:
                self._active = True
                self.alert_cycles += 1
                new_alerts += 1
        self.alerts += new_alerts
        return new_alerts


class BudgetWatcher:
    """Power-budget checks on completed T-cycle window readings."""

    def __init__(
        self,
        budget_mw: float,
        governor=None,
        start_level: int | None = None,
    ) -> None:
        if budget_mw <= 0:
            raise StreamError("power budget must be positive")
        self.budget_mw = float(budget_mw)
        self.governor = governor
        self.dvfs_state = (
            governor.start(start_level) if governor is not None else None
        )
        self.violations = 0
        self.windows_seen = 0

    def observe(self, window_mw: np.ndarray) -> int:
        """Check one chunk of window readings; return new violations."""
        wins = np.asarray(window_mw, dtype=np.float64).ravel()
        self.windows_seen += int(wins.size)
        new = int((wins > self.budget_mw).sum())
        self.violations += new
        if self.governor is not None:
            for w in wins:
                self.governor.step(float(w), self.dvfs_state)
        return new
