"""Chunked proxy-toggle sources for the streaming pipeline.

A *source* is any iterable of :class:`ProxyBlock` — fixed-size chunks of
the Q proxy columns, in cycle order, with an explicit ``last`` marker.
The two built-in adapters cover the repo's existing producers:

* :class:`SimulatorSource` drives the gate-level :class:`Simulator` in
  proxy-capture mode chunk by chunk, carrying the register state between
  chunks via ``init_values`` / ``final_values`` — so the concatenation of
  its blocks is bit-identical to one whole-trace run, on either engine;
* :class:`TraceSource` replays a pre-recorded :class:`ToggleTrace`
  (an emulator dump), unpacking only the selected columns of one chunk
  at a time.

Neither source ever materializes the full all-nets toggle trace: peak
memory is one chunk of Q columns (plus the simulator's value vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StreamError
from repro.obs.trace import NULL_TRACER
from repro.rtl.simulator import RecordSpec, Simulator
from repro.rtl.trace import ToggleTrace
from repro.uarch.pipeline import Pipeline

__all__ = ["ProxyBlock", "SimulatorSource", "TraceSource"]


@dataclass(frozen=True)
class ProxyBlock:
    """One chunk of proxy toggles: ``(n_cycles, Q)`` uint8."""

    start_cycle: int
    toggles: np.ndarray
    last: bool = False

    @property
    def n_cycles(self) -> int:
        return int(self.toggles.shape[0])


def _check_chunk(chunk_cycles: int) -> None:
    if chunk_cycles < 1:
        raise StreamError(f"chunk_cycles must be >= 1, got {chunk_cycles}")


class SimulatorSource:
    """Chunked gate-level simulation of one workload's proxy columns.

    Parameters
    ----------
    netlist:
        Design to simulate.
    proxies:
        Net ids of the Q proxy columns to capture.
    stimulus:
        uint8 array of shape ``(cycles, n_inputs)``.
    chunk_cycles:
        Cycles per emitted block (the final block may be shorter).
    engine:
        Simulator engine; any name in
        :data:`repro.rtl.simulator.ENGINES` (``"packed"``, ``"uint8"``,
        ``"compiled"``).
    simulator:
        Optionally share one compiled :class:`Simulator` across many
        sources of the same design (compilation is the expensive part).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`: each emitted chunk
        becomes a ``stream.chunk`` span (start cycle, cycles).
    """

    def __init__(
        self,
        netlist,
        proxies: np.ndarray,
        stimulus: np.ndarray,
        chunk_cycles: int = 256,
        engine: str = "packed",
        simulator: Simulator | None = None,
        tracer=None,
    ) -> None:
        _check_chunk(chunk_cycles)
        stim = np.asarray(stimulus, dtype=np.uint8)
        if stim.ndim != 2:
            raise StreamError(
                f"stimulus must be (cycles, n_inputs), got {stim.shape}"
            )
        if stim.shape[0] == 0:
            raise StreamError("stimulus must cover at least one cycle")
        self.proxies = np.asarray(proxies, dtype=np.int64)
        self.stimulus = stim
        self.chunk_cycles = int(chunk_cycles)
        self.sim = simulator or Simulator(netlist, engine=engine)
        self.record = RecordSpec(columns=self.proxies)
        self.tracer = tracer or NULL_TRACER

    @classmethod
    def from_program(
        cls,
        core,
        proxies: np.ndarray,
        program,
        cycles: int,
        chunk_cycles: int = 256,
        engine: str = "packed",
        simulator: Simulator | None = None,
        tracer=None,
    ) -> "SimulatorSource":
        """Build the stimulus from a pipeline-model workload run.

        Mirrors :class:`~repro.flow.multicore.MulticoreSimulator`'s
        per-core path: pipeline activity -> design stimulus.
        """
        if cycles <= 0:
            raise StreamError("cycles must be positive")
        activity, _stats = Pipeline(core.params).run(program, cycles)
        return cls(
            core.netlist,
            proxies,
            core.stimulus_for(activity),
            chunk_cycles=chunk_cycles,
            engine=engine,
            simulator=simulator,
            tracer=tracer,
        )

    @property
    def n_cycles(self) -> int:
        return int(self.stimulus.shape[0])

    def __iter__(self):
        state = None
        n = self.n_cycles
        for start in range(0, n, self.chunk_cycles):
            stop = min(start + self.chunk_cycles, n)
            with self.tracer.span(
                "stream.chunk", start_cycle=start, n_cycles=stop - start
            ):
                res = self.sim.run(
                    self.stimulus[start:stop],
                    self.record,
                    init_values=state,
                )
            state = res.final_values
            yield ProxyBlock(
                start_cycle=start,
                toggles=res.columns[0],
                last=stop == n,
            )


class TraceSource:
    """Replay the proxy columns of a pre-recorded toggle trace."""

    def __init__(
        self,
        trace: ToggleTrace,
        proxies: np.ndarray,
        chunk_cycles: int = 256,
        batch_index: int = 0,
    ) -> None:
        _check_chunk(chunk_cycles)
        if trace.n_cycles == 0:
            raise StreamError("trace has no cycles to stream")
        self.trace = trace
        self.proxies = np.asarray(proxies, dtype=np.int64)
        self.chunk_cycles = int(chunk_cycles)
        self.batch_index = int(batch_index)

    @property
    def n_cycles(self) -> int:
        return self.trace.n_cycles

    def __iter__(self):
        n = self.trace.n_cycles
        it = self.trace.iter_chunks(
            self.chunk_cycles, cols=self.proxies,
            batch_index=self.batch_index,
        )
        for start, block in it:
            yield ProxyBlock(
                start_cycle=start,
                toggles=block,
                last=start + block.shape[0] == n,
            )
