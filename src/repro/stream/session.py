"""Multi-session streaming introspection service.

One :class:`StreamSession` is one core's telemetry stream: a chunked
proxy source, a bounded pending-block queue, incremental T-cycle
windowing (:class:`~repro.opm.meter.OpmStream`), ring buffers of recent
readings, and optional droop/budget watchers.  A :class:`StreamService`
multiplexes many sessions through *batched* OPM inference — one integer
GEMV per drain covers every session's pending chunks, the same
amortization the hardware gets from one adder tree serving T cycles.

Flow control is explicit and deterministic (no threads):

* ``pump`` moves blocks from sources into per-session queues; a full
  queue drops its *oldest* block (freshest-data-wins, as a real
  telemetry bus would) and accounts the loss;
* ``drain`` runs batched inference over at most ``drain_blocks`` queued
  blocks per session, so a fast producer + slow consumer genuinely falls
  behind;
* a session that dropped blocks enters *degraded* mode: per-cycle
  products (ring, EMA, droop detection) pause — per-cycle continuity is
  broken anyway — while T-cycle-averaged window readings keep flowing.
  The session recovers once its queue fully drains.

Session health is a full ``ok -> degraded -> failed``
:class:`~repro.resilience.retry.HealthState` machine (``session.health``;
the old ``degraded`` boolean remains as a property over it).  Source
pulls run under a :class:`~repro.resilience.retry.RetryPolicy`, so a
transient source error (or an injected
:class:`~repro.errors.TransientFault` stall) heals in place; a stall
that outlives the retry budget degrades the session, and
``max_source_errors`` *consecutive* failed pumps fail it outright —
its remaining queue still drains, then the session reports done.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from repro.errors import StreamError, TransientFault
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.opm.meter import OpmMeter
from repro.resilience.retry import HealthState, RetryPolicy
from repro.stream.aggregate import (
    BudgetWatcher,
    DroopWatcher,
    EmaTracker,
    RingBuffer,
)
from repro.stream.source import ProxyBlock

__all__ = [
    "DrainGroup",
    "SessionHooks",
    "StreamConfig",
    "StreamSession",
    "StreamService",
]


class DrainGroup(NamedTuple):
    """One batched-inference group out of :meth:`gather_pending`.

    Unpacks like the historical ``(meter, picks, mats)`` tuple; the
    extras exist for transports that want the stacked matrix written
    into caller-owned storage (the shm data plane) without an
    intermediate ``np.concatenate`` copy.
    """

    meter: OpmMeter
    picks: list
    mats: list

    @property
    def rows(self) -> int:
        """Total stacked rows (cycles) across the group's blocks."""
        return sum(int(m.shape[0]) for m in self.mats)

    def stacked(self, out: np.ndarray | None = None) -> np.ndarray:
        """The group's toggle blocks as one ``(rows, q)`` matrix.

        With ``out`` (for example an arena slab view) the blocks are
        copied straight into it — the single memcpy of the zero-copy
        dispatch path; without it this is ``np.concatenate``.
        """
        if out is None:
            return np.concatenate(self.mats, axis=0)
        r = 0
        for m in self.mats:
            out[r:r + m.shape[0]] = m
            r += m.shape[0]
        return out


@dataclass
class SessionHooks:
    """Lifecycle callbacks a layer above the service can observe.

    The serve gateway uses these to mirror a session's life out to
    remote clients and fleet reports without the session knowing it is
    being served: ``on_drain`` sees every dequeued block *before*
    inference (per-proxy toggle accounting for power attribution),
    ``on_ingest`` sees the inferred readings (per-cycle mW and any
    completed windows — the data a telemetry client is subscribed to),
    ``on_drop`` sees each block lost to backpressure, and ``on_done``
    fires exactly once when the session finishes.
    """

    on_drain: Callable | None = None  # (session, blocks)
    on_ingest: Callable | None = None  # (session, per_cycle_mw, windows_mw)
    on_drop: Callable | None = None  # (session, lost_block)
    on_done: Callable | None = None  # (session,)


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs shared by every session of a service.

    ``pump_blocks`` > ``drain_blocks`` models a producer faster than the
    inference path — the backpressure scenario; the defaults are
    balanced (no drops unless a source bursts).
    """

    queue_depth: int = 8
    pump_blocks: int = 1
    drain_blocks: int = 1
    ring_capacity: int = 4096
    window_ring_capacity: int = 1024
    ema_alpha: float = 0.05
    max_source_errors: int = 3

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise StreamError("queue_depth must be >= 1")
        if self.pump_blocks < 1 or self.drain_blocks < 1:
            raise StreamError("pump/drain block counts must be >= 1")
        if self.ring_capacity < 1 or self.window_ring_capacity < 1:
            raise StreamError("ring capacities must be >= 1")
        if self.max_source_errors < 1:
            raise StreamError("max_source_errors must be >= 1")


class StreamSession:
    """One core's stream: source -> bounded queue -> aggregations."""

    def __init__(
        self,
        name: str,
        source,
        meter: OpmMeter,
        config: StreamConfig | None = None,
        droop: DroopWatcher | None = None,
        budget: BudgetWatcher | None = None,
        retry: RetryPolicy | None = None,
        hooks: SessionHooks | None = None,
    ) -> None:
        self.name = name
        self.config = config or StreamConfig()
        self.hooks = hooks or SessionHooks()
        self._done_notified = False
        self._it = iter(source)
        self.queue: deque[ProxyBlock] = deque()
        # Failover machinery: blocks leave the queue into ``_inflight``
        # at :meth:`take` and are acknowledged (popped, sequence
        # counted, ``on_drain`` fired) only when their inferred results
        # come back through :meth:`ingest`.  If the inference layer
        # dies mid-flight (a serve shard killed between gather and
        # apply), :meth:`requeue_inflight` moves them to ``_replay``,
        # which :meth:`take` consumes *ahead of* the queue and which is
        # exempt from drop-oldest backpressure — replayed blocks were
        # already admitted once and must re-emit bit-identical
        # readings, never be shed.  Both buffers are bounded by
        # ``drain_blocks`` (the most one take can stage).
        self._inflight: deque[ProxyBlock] = deque()
        self._replay: deque[ProxyBlock] = deque()
        self.take_seq = 0  # blocks handed to inference, lifetime
        self.ingest_seq = 0  # blocks acknowledged back, lifetime
        self.seq_gaps = 0  # acks that arrived without a matching take
        self.requeued_blocks = 0  # blocks replayed after a failover
        self.exhausted = False
        self.opm_stream = meter.stream()
        self.ring = RingBuffer(self.config.ring_capacity)
        self.window_ring = RingBuffer(self.config.window_ring_capacity)
        self.ema = EmaTracker(self.config.ema_alpha)
        self.droop = droop
        self.budget = budget
        self.retry = retry if retry is not None else RetryPolicy()
        self.health = HealthState()
        self.cycles_processed = 0
        self.blocks_processed = 0
        self.dropped_blocks = 0
        self.dropped_cycles = 0
        self.degraded_entries = 0
        self.degraded_cycles = 0
        self.source_errors = 0
        self._consecutive_source_errors = 0
        self.window_sum = 0.0
        self.window_count = 0

    @property
    def degraded(self) -> bool:
        """Boolean view of :attr:`health` (degraded or failed)."""
        return not self.health.ok

    @property
    def failed(self) -> bool:
        return self.health.failed

    @property
    def done(self) -> bool:
        return (
            self.exhausted
            and not self.queue
            and not self._replay
            and not self._inflight
        )

    @property
    def pending_blocks(self) -> int:
        """Blocks not yet acknowledged: queued, replayable or in flight."""
        return len(self.queue) + len(self._replay) + len(self._inflight)

    # -------------------------------------------------------------- #
    def _pull(self) -> ProxyBlock:
        return next(self._it)

    def pump(self, max_blocks: int | None = None) -> int:
        """Pull up to ``max_blocks`` blocks from the source.

        Each pull runs under the session's retry policy, so transient
        source errors shorter than the retry budget are invisible.  A
        pull that exhausts its retries counts as one source error and
        degrades the session; ``max_source_errors`` *consecutive* such
        pumps fail it (the source is considered dead and the session
        finishes from its queue).
        """
        if self.exhausted:
            return 0
        n = self.config.pump_blocks if max_blocks is None else max_blocks
        pulled = 0
        for _ in range(n):
            try:
                block = self.retry.call(
                    self._pull, label=f"stream.pump.{self.name}"
                )
            except StopIteration:
                self.exhausted = True
                break
            except (TransientFault, StreamError, OSError) as exc:
                self.source_errors += 1
                self._consecutive_source_errors += 1
                if (
                    self._consecutive_source_errors
                    >= self.config.max_source_errors
                ):
                    self.health.fail(
                        f"source dead after "
                        f"{self._consecutive_source_errors} consecutive "
                        f"errors ({exc})"
                    )
                    self.exhausted = True
                else:
                    self._degrade(f"source stall: {exc}")
                break
            self._consecutive_source_errors = 0
            if self.health.degraded and not self.queue:
                self.health.recover("source recovered")
            self._enqueue(block)
            pulled += 1
        return pulled

    def _degrade(self, reason: str) -> None:
        if self.health.ok:
            self.health.degrade(reason)
            self.degraded_entries += 1

    def _enqueue(self, block: ProxyBlock) -> None:
        if len(self.queue) >= self.config.queue_depth:
            lost = self.queue.popleft()
            self.dropped_blocks += 1
            self.dropped_cycles += lost.n_cycles
            self._degrade("queue overflow: dropped oldest block")
            if self.hooks.on_drop is not None:
                self.hooks.on_drop(self, lost)
        self.queue.append(block)

    def take(self, max_blocks: int) -> list[ProxyBlock]:
        """Stage up to ``max_blocks`` blocks for inference.

        Replayed blocks (from a failover) go first, then the queue.
        Taken blocks sit in the in-flight buffer until :meth:`ingest`
        acknowledges them — ``on_drain`` fires at *ack* time, so a
        block whose inference was lost and replayed is drained (and
        attributed) exactly once.
        """
        out = []
        while self._replay and len(out) < max_blocks:
            out.append(self._replay.popleft())
        while self.queue and len(out) < max_blocks:
            out.append(self.queue.popleft())
        self._inflight.extend(out)
        self.take_seq += len(out)
        return out

    def requeue_inflight(self) -> int:
        """Return un-acknowledged in-flight blocks to the replay buffer.

        Called by the inference layer when results for staged blocks
        were lost (a serve shard died between gather and apply).  The
        blocks re-enter in original order, ahead of the queue and
        exempt from backpressure drops, and the take sequence rewinds —
        the re-take re-issues the same sequence numbers, so downstream
        continuity checks see zero gaps.
        """
        n = len(self._inflight)
        if n:
            self._replay.extendleft(reversed(self._inflight))
            self._inflight.clear()
            self.take_seq -= n
            self.requeued_blocks += n
        return n

    def notify_done(self) -> None:
        """Fire ``on_done`` exactly once after the session completes."""
        if self.done and not self._done_notified:
            self._done_notified = True
            if self.hooks.on_done is not None:
                self.hooks.on_done(self)

    # -------------------------------------------------------------- #
    def ingest(
        self, per_cycle_ints: np.ndarray, n_blocks: int = 1
    ) -> None:
        """Fold one inferred chunk into the session's aggregations.

        Also acknowledges ``n_blocks`` staged blocks: they leave the
        in-flight buffer, the ingest sequence advances, and the
        ``on_drain`` hook fires over exactly the acknowledged blocks.
        An ack without a matching take (results for blocks this
        session never staged) counts a sequence gap.
        """
        acked: list[ProxyBlock] = []
        while self._inflight and len(acked) < n_blocks:
            acked.append(self._inflight.popleft())
        if len(acked) < n_blocks:
            self.seq_gaps += n_blocks - len(acked)
        self.ingest_seq += len(acked)
        if acked and self.hooks.on_drain is not None:
            self.hooks.on_drain(self, acked)
        stream = self.opm_stream
        windows_int = stream.push_per_cycle(per_cycle_ints)
        per_cycle_mw = stream.read_per_cycle(per_cycle_ints)
        windows_mw = stream.read_windows(windows_int)
        n = int(per_cycle_ints.size)
        self.cycles_processed += n
        self.blocks_processed += n_blocks
        if self.degraded:
            # T-cycle fallback: windowed readings continue below,
            # per-cycle products pause until the queue drains.
            self.degraded_cycles += n
        else:
            self.ring.push(per_cycle_mw)
            self.ema.update(per_cycle_mw)
            if self.droop is not None:
                self.droop.observe(per_cycle_mw)
        if windows_mw.size:
            self.window_ring.push(windows_mw)
            self.window_sum += float(windows_mw.sum())
            self.window_count += int(windows_mw.size)
            if self.budget is not None:
                self.budget.observe(windows_mw)
        if self.hooks.on_ingest is not None:
            self.hooks.on_ingest(self, per_cycle_mw, windows_mw)
        if self.health.degraded and not self.queue:
            self.health.recover("queue drained")  # caught up

    # -------------------------------------------------------------- #
    def stats(self) -> dict:
        """Per-session slice of the metrics snapshot (plain data)."""
        out = {
            "cycles_processed": self.cycles_processed,
            "blocks_processed": self.blocks_processed,
            "dropped_blocks": self.dropped_blocks,
            "dropped_cycles": self.dropped_cycles,
            "degraded": self.degraded,
            "degraded_entries": self.degraded_entries,
            "degraded_cycles": self.degraded_cycles,
            "health": self.health.as_dict(),
            "source_errors": self.source_errors,
            "queue_depth": len(self.queue),
            "inflight_blocks": len(self._inflight),
            "replay_blocks": len(self._replay),
            "take_seq": self.take_seq,
            "ingest_seq": self.ingest_seq,
            "seq_gaps": self.seq_gaps,
            "requeued_blocks": self.requeued_blocks,
            "windows_emitted": self.window_count,
            "mean_window_mw": (
                self.window_sum / self.window_count
                if self.window_count else 0.0
            ),
            "ema_mw": self.ema.value if self.ema.value is not None else 0.0,
            "pending_window_cycles": self.opm_stream.pending_cycles,
        }
        if self.droop is not None:
            out["droop_alerts"] = self.droop.alerts
            out["droop_alert_cycles"] = self.droop.alert_cycles
            out["min_voltage_v"] = (
                self.droop.min_voltage
                if self.droop.min_voltage != float("inf") else None
            )
            out["max_delta_i_ma"] = self.droop.max_delta_i
        if self.budget is not None:
            out["budget_violations"] = self.budget.violations
            if self.budget.dvfs_state is not None:
                out["dvfs_level"] = self.budget.dvfs_state.level
        return out


class StreamService:
    """Drives many sessions through batched OPM inference.

    Inference is grouped by each session's *own* meter (the meter inside
    its :class:`~repro.opm.meter.OpmStream`), so one service can host
    sessions pinned to different model versions — the serve layer's hot
    model swap depends on this.  Sessions sharing a meter still share a
    single integer GEMV per drain, exactly as before; with one meter for
    every session (the common library case) the behaviour is unchanged.
    """

    #: Bucket edges (seconds) for the per-drain inference-latency
    #: histogram.
    LATENCY_EDGES = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)

    def __init__(
        self,
        meter: OpmMeter | None,
        sessions: list[StreamSession] | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        allow_empty: bool = False,
    ) -> None:
        sessions = list(sessions or [])
        if not sessions and not allow_empty:
            raise StreamError("service needs at least one session")
        names = [s.name for s in sessions]
        if len(set(names)) != len(names):
            raise StreamError(f"duplicate session names in {names}")
        self.meter = meter
        self.sessions = sessions
        self.metrics = registry or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self._elapsed = 0.0
        self.steps = 0

    def add_session(self, session: StreamSession) -> None:
        """Attach a new session mid-flight (serve gateway arrivals)."""
        if any(s.name == session.name for s in self.sessions):
            raise StreamError(f"duplicate session name {session.name!r}")
        self.sessions.append(session)

    def remove_session(self, session: StreamSession) -> None:
        """Detach a session (no-op if it is not attached)."""
        self.sessions = [s for s in self.sessions if s is not session]

    # -------------------------------------------------------------- #
    # The step is split into phases so a layer above can interleave
    # them: ``pump_all`` -> ``gather_pending`` -> (inference, possibly
    # on a worker pool) -> ``scatter`` -> ``finish_step``.  ``step``
    # composes them inline for the single-process path.
    # -------------------------------------------------------------- #
    def pump_all(self) -> None:
        """Move blocks from every session's source into its queue."""
        for sess in self.sessions:
            sess.pump()

    def gather_pending(self) -> list[DrainGroup]:
        """Dequeue pending blocks, grouped by session meter.

        Each :class:`DrainGroup` unpacks as ``(meter, picks, mats)``:
        sessions sharing a meter are concatenated into one batched
        GEMV.  Group order follows session order, so results are
        deterministic.
        """
        groups: dict[int, DrainGroup] = {}
        for sess in self.sessions:
            blocks = sess.take(sess.config.drain_blocks)
            if not blocks:
                continue
            meter = sess.opm_stream.meter
            _meter, picks, mats = groups.setdefault(
                id(meter), DrainGroup(meter, [], [])
            )
            picks.append((sess, blocks))
            mats.extend(b.toggles for b in blocks)
        return list(groups.values())

    def scatter(
        self,
        picks: list[tuple[StreamSession, list[ProxyBlock]]],
        per_cycle: np.ndarray,
    ) -> None:
        """Distribute one group's inferred per-cycle integers back."""
        offset = 0
        for sess, blocks in picks:
            n = sum(b.n_cycles for b in blocks)
            sess.ingest(
                per_cycle[offset:offset + n], n_blocks=len(blocks)
            )
            offset += n

    def observe_inference(self, seconds: float) -> None:
        """Record one drain's inference latency."""
        self.metrics.histogram(
            "inference_seconds", self.LATENCY_EDGES
        ).observe(seconds)

    def finish_step(self, t0: float) -> bool:
        """Close one step: bookkeeping, metrics, done notifications."""
        self.steps += 1
        dt = time.perf_counter() - t0
        self._elapsed += dt
        self.metrics.hist("stream.step.latency").observe(dt)
        self._refresh_metrics()
        for sess in self.sessions:
            sess.notify_done()
        return not all(s.done for s in self.sessions)

    def step(self, ctx=None) -> bool:
        """One pump + one batched drain; False when all streams end.

        ``ctx`` (a :class:`~repro.obs.trace.SpanContext`) parents this
        step under a possibly remote span: the whole step is wrapped in
        a ``stream.step`` span child of ``ctx``, so a driver across a
        process or connection boundary still renders one connected
        trace.  Without ``ctx`` the span structure is unchanged.
        """
        if ctx is not None:
            with self.tracer.span("stream.step", ctx=ctx):
                return self.step()
        t0 = time.perf_counter()
        self.pump_all()
        for meter, picks, mats in self.gather_pending():
            with self.tracer.span(
                "stream.drain",
                n_sessions=len(picks),
                n_blocks=sum(len(b) for _s, b in picks),
            ) as sp:
                t_inf = time.perf_counter()
                per_cycle = meter.per_cycle(np.concatenate(mats, axis=0))
                inf_seconds = time.perf_counter() - t_inf
                if sp:
                    sp.set(n_cycles=int(per_cycle.size))
            self.observe_inference(inf_seconds)
            self.scatter(picks, per_cycle)
        return self.finish_step(t0)

    def run(self, max_steps: int | None = None) -> dict:
        """Step until every session completes; return the snapshot."""
        with self.tracer.span(
            "stream.run", n_sessions=len(self.sessions)
        ) as sp:
            steps = 0
            while self.step():
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    break
            if sp:
                sp.set(
                    steps=self.steps,
                    cycles_processed=self.metrics.counter(
                        "cycles_processed"
                    ).value,
                )
        return self.snapshot()

    # -------------------------------------------------------------- #
    def _refresh_metrics(self) -> None:
        m = self.metrics
        totals = {
            "cycles_processed": 0,
            "blocks_processed": 0,
            "blocks_dropped": 0,
            "windows_emitted": 0,
            "droop_alerts": 0,
            "budget_violations": 0,
            "degraded_entries": 0,
            "source_errors": 0,
        }
        queue_total = 0
        for s in self.sessions:
            totals["cycles_processed"] += s.cycles_processed
            totals["blocks_processed"] += s.blocks_processed
            totals["blocks_dropped"] += s.dropped_blocks
            totals["windows_emitted"] += s.window_count
            totals["degraded_entries"] += s.degraded_entries
            totals["source_errors"] += s.source_errors
            if s.droop is not None:
                totals["droop_alerts"] += s.droop.alerts
            if s.budget is not None:
                totals["budget_violations"] += s.budget.violations
            queue_total += len(s.queue)
        for name, value in totals.items():
            c = m.counter(name)
            c.value = value  # totals are recomputed, not incremented
        m.gauge("queue_depth_total").set(queue_total)
        m.gauge("n_sessions").set(len(self.sessions))
        m.gauge("elapsed_seconds").set(self._elapsed)
        if self._elapsed > 0:
            m.gauge("cycles_per_second").set(
                totals["cycles_processed"] / self._elapsed
            )
        # Health and backpressure, per session and rolled up, as plain
        # gauges — the serve gateway routes on the snapshot alone.
        worst = 0
        for s in self.sessions:
            worst = max(worst, s.health.code)
            m.gauge(f"stream.session.health.{s.name}").set(s.health.code)
            m.gauge(f"stream.session.dropped_blocks.{s.name}").set(
                s.dropped_blocks
            )
        m.gauge("stream.service.health").set(worst)

    def snapshot(self) -> dict:
        """Full metrics snapshot: service totals + per-session stats."""
        snap = self.metrics.snapshot()
        snap["sessions"] = {s.name: s.stats() for s in self.sessions}
        snap["steps"] = self.steps
        # Worst session health wins the service rollup.
        if any(s.health.failed for s in self.sessions):
            snap["health"] = "failed"
        elif any(s.degraded for s in self.sessions):
            snap["health"] = "degraded"
        else:
            snap["health"] = "ok"
        return snap
