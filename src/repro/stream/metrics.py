"""Back-compat shim: the metrics vocabulary moved to ``repro.obs.metrics``.

The streaming pipeline's Counter/Gauge/Histogram/MetricsRegistry are now
shared by every layer through :mod:`repro.obs.metrics`; this module
re-exports the same objects so existing ``repro.stream.metrics`` imports
keep working unchanged — but emits a :class:`DeprecationWarning` on
import so callers migrate to the canonical home.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.stream.metrics is deprecated; import from repro.obs.metrics",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]
