"""Set-associative LRU cache model (L1I / L1D / shared L2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["Cache", "CacheStats"]


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache over word addresses.

    Geometry: ``n_sets`` sets x ``assoc`` ways, ``line_words`` words per
    line.  Lookups return hit/miss; fills happen implicitly on miss
    (allocate-on-miss, no writeback modeling — power effects of misses are
    captured through the miss-handling activity channels instead).
    """

    def __init__(self, n_sets: int, assoc: int, line_words: int) -> None:
        if n_sets <= 0 or assoc <= 0 or line_words <= 0:
            raise ReproError("cache geometry must be positive")
        if n_sets & (n_sets - 1):
            raise ReproError("n_sets must be a power of two")
        if line_words & (line_words - 1):
            raise ReproError("line_words must be a power of two")
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_words = line_words
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.stats = CacheStats()

    @property
    def capacity_words(self) -> int:
        return self.n_sets * self.assoc * self.line_words

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_words
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int) -> bool:
        """Access ``addr``; returns True on hit.  Misses allocate."""
        idx, tag = self._index_tag(addr)
        ways = self._sets[idx]
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def probe(self, addr: int) -> bool:
        """Non-allocating lookup (no stats update)."""
        idx, tag = self._index_tag(addr)
        return tag in self._sets[idx]

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(w) for w in self._sets)
