"""Microarchitecture substrate: a cycle-level out-of-order core model.

The pipeline model is *trace-driven*: architectural execution (values)
happens in program order via :class:`repro.isa.ArchState`, and a timing
model (fetch / decode / dispatch / issue / writeback / retire with caches
and branch prediction) schedules when each instruction's activity lands.
Its output, the :class:`~repro.uarch.events.ActivityTrace`, carries
per-cycle operand values and unit-enable bits — the stimulus that drives
the gate-level core design in :mod:`repro.design`.
"""

from repro.uarch.params import CoreParams, ThrottleScheme, N1_LIKE, A77_LIKE, M0_LIKE
from repro.uarch.caches import Cache, CacheStats
from repro.uarch.events import ActivityTrace, stimulus_schema
from repro.uarch.pipeline import Pipeline, PipelineStats

__all__ = [
    "CoreParams",
    "ThrottleScheme",
    "N1_LIKE",
    "A77_LIKE",
    "M0_LIKE",
    "Cache",
    "CacheStats",
    "ActivityTrace",
    "stimulus_schema",
    "Pipeline",
    "PipelineStats",
]
