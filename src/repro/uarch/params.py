"""Core parameter presets.

Two presets mirror the paper's two validation targets:

* ``N1_LIKE`` — a server-class out-of-order core (the Neoverse-N1 role);
* ``A77_LIKE`` — a wider mobile-class core with a bigger vector engine and
  larger queues (the Cortex-A77 role, ~2x the RTL signal count).

The absolute sizes are scaled to what a NumPy gate-level simulation can
sweep in minutes; the *relative* relationship (A77-like is wider and
larger) is what Fig. 12 needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ThrottleScheme", "CoreParams", "N1_LIKE", "A77_LIKE", "M0_LIKE"]


@dataclass(frozen=True)
class ThrottleScheme:
    """An issue-throttling scheme (Table 4's throttling_{1,2,3}).

    ``max_issue`` caps total issue width while active; ``period`` and
    ``duty`` define a deterministic on/off pattern (active for
    ``duty * period`` cycles of every ``period``); ``block_vector`` stalls
    vector issue entirely while active.
    """

    max_issue: int | None = None
    period: int = 1
    duty: float = 1.0
    block_vector: bool = False

    def active(self, cycle: int) -> bool:
        if self.period <= 1:
            return True
        return (cycle % self.period) < self.duty * self.period


@dataclass(frozen=True)
class CoreParams:
    """Parameters of the synthetic out-of-order core."""

    name: str = "n1-like"
    # Widths.
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    # Execution resources.
    n_alu: int = 2
    n_mul: int = 1
    n_vec: int = 1
    vec_lanes: int = 4
    lsu_ports: int = 1
    # Window sizes.
    iq_size: int = 16
    rob_size: int = 32
    fetch_buffer: int = 8
    # Latencies (cycles).
    alu_latency: int = 1
    mul_latency: int = 3
    vec_latency: int = 2
    vmul_latency: int = 4
    l1_hit_latency: int = 2
    l2_hit_latency: int = 8
    mem_latency: int = 24
    # Caches (word-granular geometry).
    l1i_sets: int = 16
    l1i_assoc: int = 2
    l1i_line: int = 8
    l1d_sets: int = 16
    l1d_assoc: int = 4
    l1d_line: int = 8
    l2_sets: int = 64
    l2_assoc: int = 8
    l2_line: int = 8
    # Branch prediction.
    bp_entries: int = 64
    mispredict_penalty: int = 6
    # Miss handling.
    max_outstanding_misses: int = 4
    # Clock gating hysteresis: a unit's clock stays enabled this many
    # cycles after its last activity.
    gate_hysteresis: int = 1
    # Optional issue throttling (None = unthrottled).
    throttle: ThrottleScheme | None = None

    def with_throttle(self, scheme: ThrottleScheme | None) -> "CoreParams":
        return replace(self, throttle=scheme)

    @property
    def unit_names(self) -> list[str]:
        """Functional unit tags, shared with the design generator."""
        units = ["fetch", "decode", "rename", "issue", "rob"]
        units += [f"alu{i}" for i in range(self.n_alu)]
        units += [f"mul{i}" for i in range(self.n_mul)]
        units += [f"vec{i}" for i in range(self.n_vec)]
        units += [f"lsu{i}" for i in range(self.lsu_ports)]
        units += ["l2ctl"]
        return units


N1_LIKE = CoreParams(
    name="n1-like",
)

#: A little, narrow, in-order-ish embedded core (the "diverse compute
#: units" retargeting demo: same generator, same automated APOLLO
#: pipeline, radically different design point).
M0_LIKE = CoreParams(
    name="m0-like",
    fetch_width=1,
    issue_width=1,
    retire_width=1,
    n_alu=1,
    n_mul=1,
    n_vec=1,
    vec_lanes=2,
    lsu_ports=1,
    iq_size=2,
    rob_size=4,
    fetch_buffer=2,
    l1i_sets=8,
    l1i_assoc=1,
    l1d_sets=8,
    l1d_assoc=2,
    l2_sets=32,
    l2_assoc=4,
    bp_entries=16,
    mispredict_penalty=3,
    max_outstanding_misses=1,
)

A77_LIKE = CoreParams(
    name="a77-like",
    fetch_width=6,
    issue_width=6,
    retire_width=6,
    n_alu=3,
    n_mul=2,
    n_vec=2,
    vec_lanes=6,
    lsu_ports=2,
    iq_size=24,
    rob_size=48,
    fetch_buffer=12,
    l1d_sets=32,
    l2_sets=128,
    bp_entries=128,
)
