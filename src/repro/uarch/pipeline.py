"""Trace-driven out-of-order pipeline timing model.

Architectural values are computed in program order (functional-first via
:class:`repro.isa.ArchState`); this model schedules *when* each dynamic
instruction's activity happens: fetch with an I-cache and branch predictor,
in-order dispatch into an issue queue + ROB, out-of-order issue limited by
functional units / dependencies / optional throttling, a D-cache + L2 with
bounded outstanding misses, and in-order retire.

Its product is an :class:`~repro.uarch.events.ActivityTrace`: per-cycle
channel values (operands flowing into each unit, occupancies, clock-gate
enables) that the gate-level design consumes as stimulus.  Fidelity goals
are behavioural, not RTL-exact: stalls, bursts, miss clusters, gated idle
units — the structures that shape real per-cycle power.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.isa.instructions import IClass, Instruction, Opcode
from repro.isa.program import Program
from repro.isa.semantics import ArchState, ExecResult
from repro.uarch.caches import Cache, CacheStats
from repro.uarch.events import ActivityTrace, stimulus_schema
from repro.uarch.params import CoreParams

__all__ = ["Pipeline", "PipelineStats"]

_ALU_OPCODE_CODE = {
    Opcode.ADD: 0,
    Opcode.SUB: 1,
    Opcode.AND: 2,
    Opcode.OR: 3,
    Opcode.XOR: 4,
    Opcode.SHL: 5,
    Opcode.SHR: 6,
    Opcode.MOVI: 7,
    Opcode.BEQ: 1,  # branches compare via subtract
    Opcode.BNE: 1,
}

_VEC_OPCODE_CODE = {
    Opcode.VADD: 0,
    Opcode.VMUL: 1,
    Opcode.VMAC: 2,
    Opcode.VLD: 3,
    Opcode.VST: 3,
}


@dataclass
class PipelineStats:
    """Aggregate statistics of one pipeline run."""

    cycles: int = 0
    fetched: int = 0
    retired: int = 0
    mispredicts: int = 0
    l1i: CacheStats = field(default_factory=CacheStats)
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


@dataclass
class _DynInst:
    """One dynamic instruction with its architectural values."""

    seq: int
    pc: int
    inst: Instruction
    result: ExecResult
    mispredicted: bool = False


class _BranchPredictor:
    """Per-PC 2-bit saturating counters (taken >= 2)."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self.table[pc % self.entries] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = pc % self.entries
        if taken:
            self.table[i] = min(3, self.table[i] + 1)
        else:
            self.table[i] = max(0, self.table[i] - 1)


@dataclass
class _IqEntry:
    di: _DynInst
    src_tags: list[str]
    dst_tag: str | None


class Pipeline:
    """Cycle-level model of one core configuration."""

    def __init__(self, params: CoreParams) -> None:
        self.params = params
        self.schema = stimulus_schema(params)

    # ------------------------------------------------------------------ #
    def run(self, program: Program, n_cycles: int) -> tuple[
        ActivityTrace, PipelineStats
    ]:
        """Run ``program`` (looping) for exactly ``n_cycles`` cycles."""
        if n_cycles <= 0:
            raise ReproError("n_cycles must be positive")
        p = self.params
        trace = ActivityTrace(self.schema, n_cycles)
        stats = PipelineStats()
        arch = ArchState(lanes=p.vec_lanes)
        predictor = _BranchPredictor(p.bp_entries)
        l1i = Cache(p.l1i_sets, p.l1i_assoc, p.l1i_line)
        l1d = Cache(p.l1d_sets, p.l1d_assoc, p.l1d_line)
        l2 = Cache(p.l2_sets, p.l2_assoc, p.l2_line)

        seq_counter = 0
        fetch_stall_until = 0
        fetch_queue: deque[_DynInst] = deque()
        iq: list[_IqEntry] = []
        rob: deque[list] = deque()  # [seq, done_cycle or None]
        reg_ready: dict[str, int] = {}
        outstanding_misses: list[int] = []  # completion cycles
        last_active = {u: -(10**9) for u in p.unit_names}

        def unit_active(unit: str, cycle: int) -> None:
            last_active[unit] = cycle

        for cycle in range(n_cycles):
            # ---------------- retire (in order) ---------------- #
            retired = 0
            while (
                rob
                and retired < p.retire_width
                and rob[0][1] is not None
                and rob[0][1] <= cycle
            ):
                rob.popleft()
                retired += 1
            if retired:
                stats.retired += retired
                unit_active("rob", cycle)
            trace.set("rob/retire", cycle, retired)

            # ---------------- miss completion ---------------- #
            outstanding_misses = [
                c for c in outstanding_misses if c > cycle
            ]

            # ---------------- issue (out of order) ---------------- #
            throttled = p.throttle is not None and p.throttle.active(cycle)
            issue_cap = p.issue_width
            if throttled and p.throttle.max_issue is not None:
                issue_cap = min(issue_cap, p.throttle.max_issue)
            free = {
                "alu": p.n_alu,
                "mul": p.n_mul,
                "vec": p.n_vec,
                "lsu": p.lsu_ports,
            }
            issued_entries: list[_IqEntry] = []
            n_issued = 0
            for entry in iq:
                if n_issued >= issue_cap:
                    break
                di = entry.di
                icls = di.inst.iclass
                if throttled and p.throttle.block_vector and icls in (
                    IClass.VEC, IClass.VMUL, IClass.VMEM
                ):
                    continue
                if not all(
                    reg_ready.get(t, 0) <= cycle for t in entry.src_tags
                ):
                    continue
                pool, latency = self._unit_for(icls)
                if pool is not None and free[pool] <= 0:
                    continue
                if icls in (IClass.MEM, IClass.VMEM):
                    if len(outstanding_misses) >= p.max_outstanding_misses:
                        continue
                    latency = self._memory_access(
                        di, cycle, l1d, l2, trace, stats,
                        port=p.lsu_ports - free["lsu"],
                        outstanding=outstanding_misses,
                        unit_active=unit_active,
                    )
                if pool is not None:
                    idx = (
                        {"alu": p.n_alu, "mul": p.n_mul,
                         "vec": p.n_vec, "lsu": p.lsu_ports}[pool]
                        - free[pool]
                    )
                    free[pool] -= 1
                    self._drive_unit_channels(
                        di, pool, idx, cycle, trace, unit_active
                    )
                done = cycle + latency
                if entry.dst_tag is not None:
                    reg_ready[entry.dst_tag] = done
                for slot in rob:
                    if slot[0] == di.seq:
                        slot[1] = done
                        break
                issued_entries.append(entry)
                n_issued += 1
            for entry in issued_entries:
                iq.remove(entry)
            # The IQ clock gates on *events* (issue or dispatch), not on
            # occupancy: a full-but-stalled queue holds state untouched.
            if n_issued:
                unit_active("issue", cycle)
            trace.set("issue/occ", cycle, len(iq))

            # ---------------- dispatch (decode -> IQ/ROB) ---------------- #
            dispatched = 0
            valid_mask = 0
            while (
                fetch_queue
                and dispatched < p.issue_width
                and len(iq) < p.iq_size
                and len(rob) < p.rob_size
            ):
                di = fetch_queue.popleft()
                entry = _IqEntry(
                    di=di,
                    src_tags=self._source_tags(di.inst),
                    dst_tag=self._dest_tag(di.inst),
                )
                iq.append(entry)
                rob.append([di.seq, None])
                valid_mask |= 1 << dispatched
                dispatched += 1
            if dispatched:
                unit_active("decode", cycle)
                unit_active("rename", cycle)
                unit_active("issue", cycle)
                unit_active("rob", cycle)
            trace.set("decode/valid", cycle, valid_mask)
            trace.set("rename/count", cycle, dispatched)
            trace.set("rob/occ", cycle, len(rob))

            # ---------------- fetch ---------------- #
            if cycle >= fetch_stall_until and len(fetch_queue) < p.fetch_buffer:
                fetched_insts: list[_DynInst] = []
                first_pc = arch.pc
                for _slot in range(p.fetch_width):
                    if len(fetch_queue) + len(fetched_insts) >= p.fetch_buffer:
                        break
                    pc = arch.pc
                    hit = l1i.access(pc)
                    if not hit:
                        miss_latency = (
                            p.l2_hit_latency
                            if self._l2_access(pc + 0x8000, cycle, l2, trace,
                                               stats, unit_active)
                            else p.mem_latency
                        )
                        fetch_stall_until = cycle + miss_latency
                        break
                    inst = program[pc]
                    result = arch.execute(inst, len(program))
                    di = _DynInst(
                        seq=seq_counter, pc=pc, inst=inst, result=result
                    )
                    seq_counter += 1
                    fetched_insts.append(di)
                    stats.fetched += 1
                    if inst.iclass == IClass.BRANCH:
                        pred = predictor.predict(pc)
                        predictor.update(pc, result.branch_taken)
                        if pred != result.branch_taken:
                            di.mispredicted = True
                            stats.mispredicts += 1
                            fetch_stall_until = (
                                cycle + p.mispredict_penalty
                            )
                        break  # redirect: stop fetching this cycle
                if fetched_insts:
                    unit_active("fetch", cycle)
                    trace.set("fetch/valid", cycle, 1)
                    trace.set("fetch/pc", cycle, first_pc & 0xFFF)
                    for k, di in enumerate(fetched_insts):
                        trace.set(
                            f"fetch/inst{k}", cycle, di.inst.encode()
                        )
                    fetch_queue.extend(fetched_insts)

            # ---------------- clock enables ---------------- #
            for unit in p.unit_names:
                en = int(cycle - last_active[unit] <= p.gate_hysteresis)
                trace.set(f"{unit}/clk_en", cycle, en)

        stats.cycles = n_cycles
        stats.l1i = l1i.stats
        stats.l1d = l1d.stats
        stats.l2 = l2.stats
        return trace, stats

    # ------------------------------------------------------------------ #
    def _unit_for(self, icls: IClass) -> tuple[str | None, int]:
        p = self.params
        if icls == IClass.ALU or icls == IClass.BRANCH:
            return "alu", p.alu_latency
        if icls == IClass.MUL:
            return "mul", p.mul_latency
        if icls == IClass.VEC:
            return "vec", p.vec_latency
        if icls == IClass.VMUL:
            return "vec", p.vmul_latency
        if icls in (IClass.MEM, IClass.VMEM):
            return "lsu", p.l1_hit_latency  # refined by _memory_access
        return None, 1  # NOP

    @staticmethod
    def _source_tags(inst: Instruction) -> list[str]:
        tags = [f"x{r}" for r in inst.reads_scalar if r != 0]
        tags += [f"v{r}" for r in inst.reads_vector]
        return tags

    @staticmethod
    def _dest_tag(inst: Instruction) -> str | None:
        if inst.writes_scalar is not None:
            return f"x{inst.writes_scalar}"
        if inst.writes_vector is not None:
            return f"v{inst.writes_vector}"
        return None

    def _l2_access(
        self,
        addr: int,
        cycle: int,
        l2: Cache,
        trace: ActivityTrace,
        stats: PipelineStats,
        unit_active,
    ) -> bool:
        hit = l2.access(addr)
        unit_active("l2ctl", cycle)
        trace.set("l2ctl/req", cycle, 1)
        trace.set("l2ctl/addr", cycle, addr & 0xFFFF)
        trace.set("l2ctl/hit", cycle, int(hit))
        return hit

    def _memory_access(
        self,
        di: _DynInst,
        cycle: int,
        l1d: Cache,
        l2: Cache,
        trace: ActivityTrace,
        stats: PipelineStats,
        port: int,
        outstanding: list[int],
        unit_active,
    ) -> int:
        p = self.params
        inst = di.inst
        res = di.result
        addr = res.addresses[0] if res.addresses else 0
        hit = l1d.access(addr)
        if hit:
            latency = p.l1_hit_latency
        else:
            l2_hit = self._l2_access(
                addr, cycle, l2, trace, stats, unit_active
            )
            latency = p.l2_hit_latency if l2_hit else p.mem_latency
            outstanding.append(cycle + latency)
        is_store = inst.opcode in (Opcode.ST, Opcode.VST)
        if is_store:
            wdata = res.operands[1] if len(res.operands) > 1 else (
                res.vector_operands[0][0] if res.vector_operands else 0
            )
        else:
            wdata = res.results[0] if res.results else (
                res.vector_results[0] if res.vector_results else 0
            )
        trace.set(f"lsu{port}/valid", cycle, 1)
        trace.set(f"lsu{port}/is_store", cycle, int(is_store))
        trace.set(f"lsu{port}/addr", cycle, addr & 0xFFFF)
        trace.set(f"lsu{port}/wdata", cycle, wdata & 0xFFFF)
        trace.set(f"lsu{port}/hit", cycle, int(hit))
        unit_active(f"lsu{port}", cycle)
        # Vector memory ops also move data through the vector unit's
        # register-file write path.
        if inst.iclass == IClass.VMEM:
            lanes = (
                res.vector_results
                if res.vector_results
                else (res.vector_operands[0] if res.vector_operands else ())
            )
            self._drive_vec_lanes(0, cycle, inst, lanes, (), trace,
                                  unit_active)
        return latency

    def _drive_unit_channels(
        self,
        di: _DynInst,
        pool: str,
        idx: int,
        cycle: int,
        trace: ActivityTrace,
        unit_active,
    ) -> None:
        inst = di.inst
        res = di.result
        if pool == "alu":
            unit = f"alu{idx}"
            a = res.operands[0] if res.operands else 0
            b = res.operands[1] if len(res.operands) > 1 else 0
            trace.set(f"{unit}/valid", cycle, 1)
            trace.set(
                f"{unit}/op", cycle, _ALU_OPCODE_CODE.get(inst.opcode, 0)
            )
            trace.set(f"{unit}/a", cycle, a & 0xFFFF)
            trace.set(f"{unit}/b", cycle, b & 0xFFFF)
            unit_active(unit, cycle)
        elif pool == "mul":
            unit = f"mul{idx}"
            a = res.operands[0] if res.operands else 0
            b = res.operands[1] if len(res.operands) > 1 else 0
            acc = res.operands[2] if len(res.operands) > 2 else 0
            trace.set(f"{unit}/valid", cycle, 1)
            trace.set(f"{unit}/a", cycle, a & 0xFFFF)
            trace.set(f"{unit}/b", cycle, b & 0xFFFF)
            trace.set(f"{unit}/acc", cycle, acc & 0xFFFF)
            unit_active(unit, cycle)
        elif pool == "vec":
            va = res.vector_operands[0] if res.vector_operands else ()
            vb = (
                res.vector_operands[1]
                if len(res.vector_operands) > 1
                else ()
            )
            self._drive_vec_lanes(idx, cycle, inst, va, vb, trace,
                                  unit_active)
        elif pool == "lsu":
            pass  # handled by _memory_access

    def _drive_vec_lanes(
        self,
        idx: int,
        cycle: int,
        inst: Instruction,
        va,
        vb,
        trace: ActivityTrace,
        unit_active,
    ) -> None:
        p = self.params
        unit = f"vec{idx}"
        trace.set(f"{unit}/valid", cycle, 1)
        trace.set(f"{unit}/op", cycle, _VEC_OPCODE_CODE.get(inst.opcode, 0))
        for lane in range(p.vec_lanes):
            a = va[lane] if lane < len(va) else 0
            b = vb[lane] if lane < len(vb) else 0
            trace.set(f"{unit}/a{lane}", cycle, a & 0xFFFF)
            trace.set(f"{unit}/b{lane}", cycle, b & 0xFFFF)
        unit_active(unit, cycle)
