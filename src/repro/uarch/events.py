"""Activity traces and the stimulus channel schema.

The pipeline model and the gate-level design generator are decoupled by a
*schema*: an ordered list of named channels (with bit widths) derived
purely from :class:`~repro.uarch.params.CoreParams`.  The pipeline fills
per-cycle channel values; :func:`ActivityTrace.encode_stimulus` flattens
them (LSB first, schema order) into the bit matrix the RTL simulator
consumes.  The design generator creates its input buses in the same order,
so the two sides always agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StimulusError
from repro.uarch.params import CoreParams

__all__ = ["stimulus_schema", "ActivityTrace"]


def _bits_for(n: int) -> int:
    """Bits needed to represent values 0..n inclusive."""
    return max(1, math.ceil(math.log2(n + 1)))


def stimulus_schema(params: CoreParams) -> list[tuple[str, int]]:
    """Ordered (channel, width) list for a core configuration."""
    p = params
    schema: list[tuple[str, int]] = [
        ("fetch/clk_en", 1),
        ("fetch/valid", 1),
        ("fetch/pc", 12),
    ]
    schema += [(f"fetch/inst{k}", 32) for k in range(p.fetch_width)]
    schema += [
        ("decode/clk_en", 1),
        ("decode/valid", p.fetch_width),
        ("rename/clk_en", 1),
        ("rename/count", _bits_for(p.issue_width)),
        ("issue/clk_en", 1),
        ("issue/occ", _bits_for(p.iq_size)),
        ("rob/clk_en", 1),
        ("rob/occ", _bits_for(p.rob_size)),
        ("rob/retire", _bits_for(p.retire_width)),
    ]
    for i in range(p.n_alu):
        schema += [
            (f"alu{i}/clk_en", 1),
            (f"alu{i}/valid", 1),
            (f"alu{i}/op", 3),
            (f"alu{i}/a", 16),
            (f"alu{i}/b", 16),
        ]
    for i in range(p.n_mul):
        schema += [
            (f"mul{i}/clk_en", 1),
            (f"mul{i}/valid", 1),
            (f"mul{i}/a", 16),
            (f"mul{i}/b", 16),
            (f"mul{i}/acc", 16),
        ]
    for i in range(p.n_vec):
        schema += [
            (f"vec{i}/clk_en", 1),
            (f"vec{i}/valid", 1),
            (f"vec{i}/op", 2),
        ]
        for lane in range(p.vec_lanes):
            schema += [
                (f"vec{i}/a{lane}", 16),
                (f"vec{i}/b{lane}", 16),
            ]
    for i in range(p.lsu_ports):
        schema += [
            (f"lsu{i}/clk_en", 1),
            (f"lsu{i}/valid", 1),
            (f"lsu{i}/is_store", 1),
            (f"lsu{i}/addr", 16),
            (f"lsu{i}/wdata", 16),
            (f"lsu{i}/hit", 1),
        ]
    schema += [
        ("l2ctl/clk_en", 1),
        ("l2ctl/req", 1),
        ("l2ctl/addr", 16),
        ("l2ctl/hit", 1),
    ]
    return schema


@dataclass
class ActivityTrace:
    """Per-cycle channel values produced by the pipeline model."""

    schema: list[tuple[str, int]]
    n_cycles: int
    channels: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [n for n, _ in self.schema]
        if len(set(names)) != len(names):
            raise StimulusError("duplicate channel names in schema")
        for name, _w in self.schema:
            if name not in self.channels:
                self.channels[name] = np.zeros(self.n_cycles, dtype=np.uint64)

    def set(self, name: str, cycle: int, value: int) -> None:
        self.channels[name][cycle] = value

    def get(self, name: str) -> np.ndarray:
        return self.channels[name]

    @property
    def total_bits(self) -> int:
        return sum(w for _n, w in self.schema)

    def encode_stimulus(self) -> np.ndarray:
        """Flatten to a (n_cycles, total_bits) uint8 stimulus matrix."""
        out = np.empty((self.n_cycles, self.total_bits), dtype=np.uint8)
        col = 0
        for name, width in self.schema:
            vals = self.channels[name]
            max_ok = (1 << width) - 1
            if vals.size and int(vals.max()) > max_ok:
                raise StimulusError(
                    f"channel {name!r} value {int(vals.max())} exceeds "
                    f"{width}-bit width"
                )
            shifts = np.arange(width, dtype=np.uint64)
            out[:, col : col + width] = (
                (vals[:, None] >> shifts) & np.uint64(1)
            ).astype(np.uint8)
            col += width
        return out

    def duty_cycle(self, name: str) -> float:
        """Fraction of cycles a 1-bit channel is high."""
        return float(self.channels[name].astype(bool).mean())
