"""Core assembly: schema-ordered ports, gated domains, unit netlists.

``build_core`` is the reproduction's stand-in for "the RTL of an arbitrary
CPU design" handed to APOLLO: given :class:`~repro.uarch.params.CoreParams`
it emits a netlist whose inputs exactly match the pipeline model's stimulus
schema, builds each functional unit inside its own gated clock domain, and
annotates a floorplan placement used by the OPM routing-cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError
from repro.rtl.netlist import ClockDomain, Netlist
from repro.uarch.events import ActivityTrace, stimulus_schema
from repro.uarch.params import CoreParams
from repro.design import units as unit_builders

__all__ = ["CoreDesign", "build_core"]


@dataclass
class CoreDesign:
    """A generated core: netlist + the metadata experiments need."""

    params: CoreParams
    netlist: Netlist
    schema: list[tuple[str, int]]
    ports: dict[str, list[int]]
    domains: dict[str, ClockDomain]
    floorplan: dict[str, tuple[float, float, float, float]] = field(
        default_factory=dict
    )

    @property
    def n_nets(self) -> int:
        return self.netlist.n_nets

    def unit_of_net(self, net: int) -> str:
        """Top-level unit tag of a net ("alu0", "issue", ...)."""
        unit = self.netlist.unit_of(net)
        return unit.split("/")[0]

    def monitorable_nets(self) -> np.ndarray:
        """Net ids APOLLO may select as proxies.

        Everything except tie cells and raw input pins — matching the
        paper, where proxies are internal RTL signals (including gated
        clocks) rather than top-level ports.
        """
        from repro.rtl.cells import Op

        ops = self.netlist.ops_array()
        mask = (ops != int(Op.CONST0)) & (ops != int(Op.CONST1)) & (
            ops != int(Op.INPUT)
        )
        return np.nonzero(mask)[0].astype(np.int64)

    def stimulus_for(self, activity: ActivityTrace) -> np.ndarray:
        """Encode a pipeline activity trace for this design's inputs."""
        if [n for n, _ in activity.schema] != [n for n, _ in self.schema]:
            raise NetlistError(
                "activity trace schema does not match design schema"
            )
        return activity.encode_stimulus()


def build_core(params: CoreParams) -> CoreDesign:
    """Generate the gate-level core for ``params``."""
    nl = Netlist(params.name)
    schema = stimulus_schema(params)

    # 1. Inputs first, in schema order (the simulator feeds them by
    #    creation order).
    ports: dict[str, list[int]] = {}
    for name, width in schema:
        ports[name] = nl.input_bus(name, width)

    # 2. One gated clock domain per unit, enabled by its clk_en port.
    #    Domains are created inside the unit scope so their clock-tree
    #    nets attribute to the unit in power breakdowns and Fig. 15(a).
    domains: dict[str, ClockDomain] = {}
    for unit in params.unit_names:
        with nl.scope(unit):
            domains[unit] = nl.clock_domain(
                unit, enable=ports[f"{unit}/clk_en"][0]
            )

    # 2b. A small always-on "global" domain (cycle counter, LFSR-based
    #     debug/DFT churn): real cores never gate everything, so baseline
    #     power stays above zero on fully idle cycles.
    with nl.scope("global"):
        gdom = nl.clock_domain("global", enable=None)
        domains["global"] = gdom
        from repro.rtl.datapath import (
            connect_register_bus,
            incrementer,
            register_bus_uninit,
        )

        ctr = register_bus_uninit(nl, 12, gdom, name="cycles")
        connect_register_bus(nl, ctr, incrementer(nl, ctr))
        lfsr = register_bus_uninit(nl, 16, gdom, name="lfsr", init=0xACE1)
        fb = nl.xor(
            nl.xor(lfsr[15], lfsr[13]), nl.xor(lfsr[12], lfsr[10])
        )
        connect_register_bus(nl, lfsr, [fb] + lfsr[:-1])

    # 3. Unit logic.
    with nl.scope("fetch"):
        unit_builders.build_fetch(nl, domains["fetch"], ports, params)
    with nl.scope("decode"):
        unit_builders.build_decode(nl, domains["decode"], ports, params)
    with nl.scope("rename"):
        unit_builders.build_rename(nl, domains["rename"], ports, params)
    with nl.scope("issue"):
        unit_builders.build_issue(nl, domains["issue"], ports, params)
    with nl.scope("rob"):
        unit_builders.build_rob(nl, domains["rob"], ports, params)
    for i in range(params.n_alu):
        with nl.scope(f"alu{i}"):
            unit_builders.build_alu(nl, domains[f"alu{i}"], ports, params, i)
    for i in range(params.n_mul):
        with nl.scope(f"mul{i}"):
            unit_builders.build_mul(nl, domains[f"mul{i}"], ports, params, i)
    for i in range(params.n_vec):
        with nl.scope(f"vec{i}"):
            unit_builders.build_vec(nl, domains[f"vec{i}"], ports, params, i)
    for i in range(params.lsu_ports):
        with nl.scope(f"lsu{i}"):
            unit_builders.build_lsu(nl, domains[f"lsu{i}"], ports, params, i)
    with nl.scope("l2ctl"):
        unit_builders.build_l2ctl(nl, domains["l2ctl"], ports, params)

    nl.validate()
    floorplan = _place(nl, params)
    return CoreDesign(
        params=params,
        netlist=nl,
        schema=schema,
        ports=ports,
        domains=domains,
        floorplan=floorplan,
    )


def _place(
    nl: Netlist, params: CoreParams
) -> dict[str, tuple[float, float, float, float]]:
    """Assign each unit a floorplan rectangle and scatter its nets inside.

    The floorplan is a grid of unit tiles on a square die whose side scales
    with total area.  Net coordinates feed the OPM's proxy-routing buffer
    model (§7.5: proxies routed to a centralized OPM need buffers).
    """
    unit_tags = nl.units_array()
    top_tags = np.array([t.split("/")[0] for t in unit_tags])
    units = [u for u in dict.fromkeys(top_tags) if u != "top"]
    total = max(1.0, sum(nl.area_by_unit().values()))
    die = math.sqrt(total) * 1.2
    cols = math.ceil(math.sqrt(len(units)))
    rows = math.ceil(len(units) / cols)
    tile_w, tile_h = die / cols, die / rows

    floorplan: dict[str, tuple[float, float, float, float]] = {}
    for k, unit in enumerate(units):
        cx, cy = k % cols, k // cols
        floorplan[unit] = (
            cx * tile_w, cy * tile_h, (cx + 1) * tile_w, (cy + 1) * tile_h
        )

    rng = np.random.default_rng(0xF100F)
    xy = np.zeros((nl.n_nets, 2), dtype=np.float64)
    for unit in units:
        x0, y0, x1, y1 = floorplan[unit]
        mask = top_tags == unit
        n = int(mask.sum())
        if n:
            xy[mask, 0] = rng.uniform(x0, x1, size=n)
            xy[mask, 1] = rng.uniform(y0, y1, size=n)
    # "top" nets (ports etc.) scatter over the whole die.
    top_mask = top_tags == "top"
    n_top = int(top_mask.sum())
    if n_top:
        xy[top_mask, 0] = rng.uniform(0, die, size=n_top)
        xy[top_mask, 1] = rng.uniform(0, die, size=n_top)
    nl.set_positions(xy)
    return floorplan
