"""Gate-level functional-unit builders.

Each builder receives the netlist, the unit's (gated) clock domain, and the
unit's input-port buses, and constructs a real datapath: ripple adders,
array multipliers, barrel shifters, tag comparators, one-hot decoders,
saturating-counter tables.  Data first lands in input registers clocked by
the unit's domain, so a clock-gated idle unit is genuinely toggle-free.

The goal is not ISA-complete RTL but *power-representative* structure:
gate counts, logic depths, and data-dependent switching in proportions a
real core exhibits.
"""

from __future__ import annotations

import numpy as np

from repro.rtl.datapath import (
    and_bus_with_bit,
    array_multiplier,
    barrel_shifter,
    bus_and,
    bus_not,
    bus_or,
    bus_xor,
    connect_register_bus,
    const_bus,
    decoder,
    equality,
    incrementer,
    less_than,
    mux_bus,
    mux_tree,
    reduce_and,
    reduce_or,
    reduce_xor,
    register_bus,
    register_bus_uninit,
    ripple_adder,
    subtractor,
)
from repro.rtl.netlist import ClockDomain, Netlist

__all__ = [
    "build_fetch",
    "build_decode",
    "build_rename",
    "build_issue",
    "build_rob",
    "build_alu",
    "build_mul",
    "build_vec",
    "build_lsu",
    "build_l2ctl",
]

Ports = dict[str, list[int]]


def _therm(nl: Netlist, count: list[int], n: int) -> list[int]:
    """Thermometer decode: bit i = (count > i), for occupancy displays."""
    out = []
    for i in range(n):
        thresh = const_bus(nl, i, len(count))
        out.append(less_than(nl, thresh, count))
    return out


def build_fetch(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """Fetch: PC datapath, I-cache tag path, branch predictor table."""
    valid = ports["fetch/valid"][0]
    pc_in = ports["fetch/pc"]
    pc = register_bus(nl, pc_in, dom, name="pc_q")
    # Next-PC speculation adder (pc + fetch_width).
    stride = const_bus(nl, params.fetch_width, len(pc))
    next_pc, _ = ripple_adder(nl, pc, stride)
    register_bus(nl, next_pc, dom, name="npc_q")
    # Instruction registers per slot.
    for k in range(params.fetch_width):
        w = ports[f"fetch/inst{k}"]
        register_bus(nl, w, dom, name=f"iw{k}_q")
    # I-cache tag path: compare pc tag against 4 resident-way tag registers
    # that rotate on fetch (models fills).
    tag = pc[4:]
    way_tags = []
    for wy in range(4):
        regs = register_bus_uninit(nl, len(tag), dom, name=f"itag{wy}")
        way_tags.append(regs)
    # rotate: way0 <- tag when valid, wayN <- wayN-1.
    prev = tag
    for wy, regs in enumerate(way_tags):
        nxt = mux_bus(nl, valid, prev, regs)
        connect_register_bus(nl, regs, nxt)
        prev = regs
    hits = [equality(nl, tag, regs) for regs in way_tags]
    hit_any = reduce_or(nl, hits)
    nl.buf(nl.and_(hit_any, valid), name="ic_hit")
    # Branch predictor: bp_entries x 2-bit saturating counters with a
    # decoded write port indexed by pc low bits.
    import math

    idx_bits = max(1, int(math.log2(params.bp_entries)))
    idx = pc[:idx_bits]
    sel = decoder(nl, idx)
    taken_bit = pc[0]  # proxy for outcome: drives table churn
    for e in range(params.bp_entries):
        en = nl.and_(sel[e], valid, name=f"bp_en{e}")
        state = register_bus_uninit(nl, 2, dom, name=f"bp{e}")
        # saturating up/down: next = taken ? min(3, s+1) : max(0, s-1)
        up0 = nl.or_(state[0], state[1])
        up1 = nl.or_(state[1], state[0])
        dn0 = nl.and_(state[0], state[1])
        dn1 = nl.and_(state[1], nl.not_(nl.and_(nl.not_(state[0]), nl.not_(state[1]))))
        nxt0 = nl.mux(taken_bit, up0, dn0)
        nxt1 = nl.mux(taken_bit, up1, dn1)
        connect_register_bus(
            nl,
            state,
            [nl.mux(en, nxt0, state[0]), nl.mux(en, nxt1, state[1])],
        )


def build_decode(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """Decode planes: opcode one-hot, field extraction, immediate logic."""
    valid_bus = ports["decode/valid"]
    slot_clk_en = ports["decode/clk_en"][0]
    for k in range(params.fetch_width):
        word = ports[f"fetch/inst{k}"]
        v = valid_bus[k]
        # Per-slot derived clock gating: a decode slot only clocks when
        # it holds a valid instruction.
        slot_dom = nl.clock_domain(
            f"decode_slot{k}",
            enable=nl.and_(slot_clk_en, v, name=f"slot_en{k}"),
        )
        wq = register_bus(
            nl, and_bus_with_bit(nl, word, v), slot_dom, name=f"dw{k}"
        )
        opfield = wq[24:29]  # 5 bits cover all opcodes
        onehot = decoder(nl, opfield)
        # Class grouping OR-planes (mirrors real decode PLAs).
        is_alu = reduce_or(nl, onehot[1:9])
        is_mul = reduce_or(nl, onehot[9:11])
        is_vec = reduce_or(nl, onehot[11:14])
        is_mem = reduce_or(nl, onehot[14:18])
        is_br = reduce_or(nl, onehot[18:20])
        for name, sig in (
            ("alu", is_alu),
            ("mul", is_mul),
            ("vec", is_vec),
            ("mem", is_mem),
            ("br", is_br),
        ):
            nl.reg(sig, dom, name=f"cls_{name}{k}")
        # Immediate sign-extension network.
        imm = wq[0:12]
        sign = imm[11]
        ext = [nl.mux(sign, nl.const(1), b) for b in imm[8:]]
        register_bus(nl, imm[:8] + ext, slot_dom, name=f"imm{k}")
        # Register fields xor-folded (read-port address toggles).
        ra = wq[16:20]
        rb = wq[12:16]
        rd = wq[20:24]
        fold = bus_xor(nl, bus_xor(nl, ra, rb), rd)
        register_bus(nl, fold, slot_dom, name=f"rf_addr{k}")


def build_rename(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """Rename: free-list counter and a small map table with write muxes."""
    count = ports["rename/count"]
    cq = register_bus(nl, count, dom, name="cnt_q")
    any_alloc = reduce_or(nl, cq)
    # Free-list head pointer: advances by count.
    head = register_bus_uninit(nl, 6, dom, name="flhead")
    padded = cq + [nl.const(0)] * (6 - len(cq))
    nxt, _ = ripple_adder(nl, head, padded)
    connect_register_bus(nl, head, nxt)
    # Map table: 16 entries x 6-bit physical tags, written round-robin.
    sel = decoder(nl, head[:4])
    for e in range(16):
        entry = register_bus_uninit(nl, 6, dom, name=f"map{e}")
        en = nl.and_(sel[e], any_alloc)
        bumped = incrementer(nl, entry)
        connect_register_bus(
            nl, entry, mux_bus(nl, en, bumped, entry)
        )


def build_issue(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """Issue queue: occupancy thermometer, entry payloads, select tree."""
    occ = ports["issue/occ"]
    occ_q = register_bus(nl, occ, dom, name="occ_q")
    valid_bits = _therm(nl, occ_q, params.iq_size)
    # Entry payload registers shift when occupancy changes (models entry
    # compaction churn in a collapsing queue).
    changed = reduce_or(nl, bus_xor(nl, occ, occ_q))
    prev_payload = occ_q + [nl.const(0)] * (8 - len(occ_q))
    prev_payload = prev_payload[:8]
    for e in range(params.iq_size):
        v = nl.reg(valid_bits[e], dom, name=f"vld{e}")
        payload = register_bus_uninit(nl, 8, dom, name=f"pay{e}")
        rotated = prev_payload[1:] + prev_payload[:1]
        shift_en = nl.and_(changed, v)
        connect_register_bus(
            nl, payload, mux_bus(nl, shift_en, rotated, payload)
        )
        prev_payload = payload
    # Priority select tree over valid bits (grant = leading one).
    grants = []
    blocked = nl.const(0)
    for e in range(params.iq_size):
        g = nl.and_(valid_bits[e], nl.not_(blocked))
        blocked = nl.or_(blocked, valid_bits[e])
        grants.append(g)
    nl.buf(reduce_or(nl, grants), name="any_grant")


def build_rob(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """ROB: head/tail pointers, occupancy compare, completion bits."""
    occ = ports["rob/occ"]
    retire = ports["rob/retire"]
    occ_q = register_bus(nl, occ, dom, name="occ_q")
    ret_q = register_bus(nl, retire, dom, name="ret_q")
    # Head pointer advances by retire count.
    import math

    ptr_bits = max(3, int(math.log2(params.rob_size)))
    head = register_bus_uninit(nl, ptr_bits, dom, name="head")
    pad = ret_q + [nl.const(0)] * (ptr_bits - len(ret_q))
    nxt, _ = ripple_adder(nl, head, pad[:ptr_bits])
    connect_register_bus(nl, head, nxt)
    # Completion bitmap churns with occupancy.
    valid_bits = _therm(nl, occ_q, params.rob_size)
    for e in range(params.rob_size):
        nl.reg(valid_bits[e], dom, name=f"c{e}")
    # Full/empty flags.
    full = equality(
        nl, occ_q, const_bus(nl, params.rob_size, len(occ_q))
    )
    empty = nl.not_(reduce_or(nl, occ_q))
    nl.buf(nl.or_(full, empty), name="flags")


def build_alu(
    nl: Netlist, dom: ClockDomain, ports: Ports, params, idx: int
) -> None:
    """Scalar ALU: add/sub/logic/shift datapath with an op-select mux."""
    unit = f"alu{idx}"
    v = ports[f"{unit}/valid"][0]
    a = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/a"], v), dom, name="a_q"
    )
    b = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/b"], v), dom, name="b_q"
    )
    op = register_bus(nl, ports[f"{unit}/op"], dom, name="op_q")
    add, _ = ripple_adder(nl, a, b)
    sub, _ = subtractor(nl, a, b)
    andv = bus_and(nl, a, b)
    orv = bus_or(nl, a, b)
    xorv = bus_xor(nl, a, b)
    shl = barrel_shifter(nl, a, b[:4])
    shr = list(reversed(barrel_shifter(nl, list(reversed(a)), b[:4])))
    movi = b
    result = mux_tree(
        nl, op, [add, sub, andv, orv, xorv, shl, shr, movi]
    )
    register_bus(nl, result, dom, name="res_q")
    # Zero/sign flags.
    nl.reg(nl.not_(reduce_or(nl, result)), dom, name="zflag")
    nl.reg(result[-1], dom, name="nflag")


def build_mul(
    nl: Netlist, dom: ClockDomain, ports: Ports, params, idx: int
) -> None:
    """Multiply-accumulate unit: array multiplier + accumulate adder."""
    unit = f"mul{idx}"
    v = ports[f"{unit}/valid"][0]
    a = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/a"], v), dom, name="a_q"
    )
    b = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/b"], v), dom, name="b_q"
    )
    acc = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/acc"], v), dom, name="acc_q"
    )
    prod = array_multiplier(nl, a, b, out_width=16)
    stage = register_bus(nl, prod, dom, name="pp_q")  # pipeline register
    mac, _ = ripple_adder(nl, stage, acc)
    register_bus(nl, mac, dom, name="res_q")


def build_vec(
    nl: Netlist, dom: ClockDomain, ports: Ports, params, idx: int
) -> None:
    """Vector engine: per-lane multiplier + adder with op muxing.

    Each lane's datapath registers live in a *derived* clock domain gated
    by ``unit clk_en AND valid`` — the second-level clock gating real
    vector engines use (the lane only clocks on actual operations).
    These fine-grained enables are exactly the gated-clock proxies
    Fig. 15(a) finds dominant.
    """
    unit = f"vec{idx}"
    v = ports[f"{unit}/valid"][0]
    op = register_bus(nl, ports[f"{unit}/op"], dom, name="op_q")
    lane_en = nl.and_(ports[f"{unit}/clk_en"][0], v, name="lane_en")
    for lane in range(params.vec_lanes):
        with nl.scope(f"lane{lane}"):
            lane_dom = nl.clock_domain(
                f"{unit}_lane{lane}", enable=lane_en
            )
            a = register_bus(
                nl,
                and_bus_with_bit(nl, ports[f"{unit}/a{lane}"], v),
                lane_dom,
                name="a_q",
            )
            b = register_bus(
                nl,
                and_bus_with_bit(nl, ports[f"{unit}/b{lane}"], v),
                lane_dom,
                name="b_q",
            )
            # 12-bit lane multipliers keep the engine dominant but bounded.
            prod = array_multiplier(nl, a[:12], b[:12], out_width=12)
            prod16 = prod + [nl.const(0)] * 4
            add, _ = ripple_adder(nl, a, b)
            mac, _ = ripple_adder(nl, prod16, b)
            res = mux_tree(nl, op[:2], [add, prod16, mac, a])
            register_bus(nl, res, lane_dom, name="res_q")


def build_lsu(
    nl: Netlist, dom: ClockDomain, ports: Ports, params, idx: int
) -> None:
    """Load/store unit: tag compare path, store buffer, data alignment."""
    unit = f"lsu{idx}"
    v = ports[f"{unit}/valid"][0]
    is_store = ports[f"{unit}/is_store"][0]
    addr = register_bus(
        nl, and_bus_with_bit(nl, ports[f"{unit}/addr"], v), dom, name="addr_q"
    )
    wdata = register_bus(
        nl,
        and_bus_with_bit(nl, ports[f"{unit}/wdata"], v),
        dom,
        name="wdata_q",
    )
    hit_in = nl.reg(ports[f"{unit}/hit"][0], dom, name="hit_q")
    tag = addr[7:]
    # Way tags rotate on (valid & !hit): a fill replaces a way.
    fill = nl.and_(v, nl.not_(hit_in))
    prev = tag
    way_hits = []
    for wy in range(params.l1d_assoc):
        regs = register_bus_uninit(nl, len(tag), dom, name=f"dtag{wy}")
        nxt = mux_bus(nl, fill, prev, regs)
        connect_register_bus(nl, regs, nxt)
        prev = regs
        way_hits.append(equality(nl, tag, regs))
    nl.buf(reduce_or(nl, way_hits), name="way_hit")
    # Store buffer: 4 entries shifting on stores, in a derived domain
    # clocked only on store traffic (second-level clock gating).
    st_en = nl.and_(v, is_store)
    stb_dom = nl.clock_domain(
        f"{unit}_stb",
        enable=nl.and_(ports[f"{unit}/clk_en"][0], st_en, name="stb_en"),
    )
    prev_data = wdata
    for e in range(4):
        entry = register_bus_uninit(nl, 16, stb_dom, name=f"stb{e}")
        nxt = mux_bus(nl, st_en, prev_data, entry)
        connect_register_bus(nl, entry, nxt)
        prev_data = entry
    # Data alignment rotator (addr low bits select rotation).
    rot = barrel_shifter(nl, wdata, addr[:3])
    register_bus(nl, rot, dom, name="aligned_q")
    # Parity generation for the data path.
    nl.reg(reduce_xor(nl, wdata), dom, name="parity")


def build_l2ctl(
    nl: Netlist, dom: ClockDomain, ports: Ports, params
) -> None:
    """L2 controller: request path, tag compare, fill state machine."""
    req = ports["l2ctl/req"][0]
    addr = register_bus(
        nl,
        and_bus_with_bit(nl, ports["l2ctl/addr"], req),
        dom,
        name="addr_q",
    )
    hit_in = nl.reg(ports["l2ctl/hit"][0], dom, name="hit_q")
    tag = addr[6:]
    fill = nl.and_(nl.reg(req, dom, name="req_q"), nl.not_(hit_in))
    prev = tag
    for wy in range(8):
        regs = register_bus_uninit(nl, len(tag), dom, name=f"l2tag{wy}")
        nxt = mux_bus(nl, fill, prev, regs)
        connect_register_bus(nl, regs, nxt)
        prev = regs
    # Miss counter (performance-counter style).
    ctr = register_bus_uninit(nl, 10, dom, name="missctr")
    bumped = incrementer(nl, ctr)
    connect_register_bus(nl, ctr, mux_bus(nl, fill, bumped, ctr))
    # Fill burst FSM: 3-bit counter runs while filling.
    fsm = register_bus_uninit(nl, 3, dom, name="fsm")
    running = reduce_or(nl, fsm)
    start = nl.or_(fill, running)
    nxt_fsm = incrementer(nl, fsm)
    connect_register_bus(
        nl, fsm, mux_bus(nl, start, nxt_fsm, fsm)
    )
