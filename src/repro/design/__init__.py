"""Synthetic CPU design generator.

Builds a gate-level out-of-order core (fetch / decode / rename / issue /
ROB / ALUs / multiplier / vector engine / LSU / L2 control) whose input
ports follow the stimulus schema of :mod:`repro.uarch.events`, so a
pipeline-model run drives the netlist cycle-by-cycle.  Every unit sits in
its own gated clock domain — giving APOLLO the clock-enable proxies that
dominate real designs (Fig. 15a of the paper).
"""

from repro.design.generator import build_core, CoreDesign

__all__ = ["build_core", "CoreDesign"]
