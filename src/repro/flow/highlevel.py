"""High-abstraction power model (the paper's §9 future work).

"Secondly, we will focus on translating the APOLLO design-time model into
higher abstraction models (C/C++ instead of RTL), thereby integrating
performance simulation with power-tracing."

This module implements that direction on the reproduction's substrate:
a per-cycle power model trained directly on *microarchitectural activity*
(the pipeline model's channels — unit enables, occupancies, operand
hamming activity) with no gate-level simulation at inference time.  Power
tracing then runs at performance-simulator speed: one pipeline-model pass
instead of pipeline + RTL simulation.

Features per activity channel:

* 1-bit channels (valids, clock enables, hit bits) enter as-is;
* multi-bit channels contribute their population count and the hamming
  distance to the previous cycle's value (a datapath-switching proxy).

The model is ridge-regressed against the same ground-truth labels APOLLO
trains on, so the experiment can quantify exactly what abstraction costs:
accuracy (R^2/NRMSE gap vs RTL-proxy APOLLO) versus speed (no RTL
simulation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError, ReproError
from repro.core.solvers import ridge_fit
from repro.uarch.events import ActivityTrace
from repro.uarch.pipeline import Pipeline

__all__ = [
    "activity_features",
    "ActivityPowerModel",
    "train_activity_model",
    "dataset_activities",
]


def _popcount(values: np.ndarray) -> np.ndarray:
    out = np.zeros_like(values, dtype=np.uint64)
    v = values.copy()
    while np.any(v):
        out += v & np.uint64(1)
        v >>= np.uint64(1)
    return out


def activity_features(
    trace: ActivityTrace,
) -> tuple[np.ndarray, list[str]]:
    """Per-cycle feature matrix from an activity trace.

    Returns (features, names) where ``features`` is float64 of shape
    (cycles, n_features).
    """
    cols: list[np.ndarray] = []
    names: list[str] = []
    for name, width in trace.schema:
        vals = trace.channels[name].astype(np.uint64)
        if width == 1:
            cols.append(vals.astype(np.float64))
            names.append(name)
        else:
            pc = _popcount(vals).astype(np.float64)
            prev = np.concatenate([[0], vals[:-1]]).astype(np.uint64)
            ham = _popcount(vals ^ prev).astype(np.float64)
            cols.append(pc)
            names.append(f"{name}:popcount")
            cols.append(ham)
            names.append(f"{name}:hamming")
    return np.column_stack(cols), names


@dataclass
class ActivityPowerModel:
    """Linear per-cycle power model over microarchitectural activity."""

    feature_names: list[str]
    weights: np.ndarray
    intercept: float

    @property
    def n_features(self) -> int:
        return int(self.weights.size)

    def predict_from_features(self, features: np.ndarray) -> np.ndarray:
        F = np.asarray(features, dtype=np.float64)
        if F.ndim != 2 or F.shape[1] != self.n_features:
            raise PowerModelError(
                f"expected (N, {self.n_features}) features, got {F.shape}"
            )
        return F @ self.weights + self.intercept

    def predict(self, trace: ActivityTrace) -> np.ndarray:
        """Per-cycle power directly from an activity trace."""
        F, names = activity_features(trace)
        if names != self.feature_names:
            raise PowerModelError(
                "activity schema does not match the trained model"
            )
        return self.predict_from_features(F)

    def trace_program(
        self, params, program, cycles: int
    ) -> tuple[np.ndarray, float]:
        """Power-trace a program with *only* the performance model.

        Returns (per-cycle power, elapsed seconds) — the §9 scenario:
        performance simulation with integrated power tracing.
        """
        t0 = time.perf_counter()
        activity, _stats = Pipeline(params).run(program, cycles)
        power = self.predict(activity)
        return power, time.perf_counter() - t0

    def top_contributors(self, k: int = 10) -> list[tuple[str, float]]:
        """Largest |weight| features — which activity drives power."""
        order = np.argsort(-np.abs(self.weights))[:k]
        return [
            (self.feature_names[int(i)], float(self.weights[int(i)]))
            for i in order
        ]


def dataset_activities(
    core, dataset, programs_by_name: dict
) -> ActivityTrace:
    """Reconstruct the concatenated activity trace behind a dataset.

    ``programs_by_name`` maps segment names to (program, throttle)
    pairs; segments are re-run through the pipeline model in order.  The
    pipeline is deterministic, so the rebuilt activity aligns cycle-wise
    with the dataset's stored labels.
    """
    from repro.uarch.events import stimulus_schema

    schema = stimulus_schema(core.params)
    merged = ActivityTrace(schema, dataset.n_cycles)
    for name, start, end in dataset.segments:
        if name not in programs_by_name:
            raise ReproError(f"no program registered for segment {name!r}")
        program, throttle = programs_by_name[name]
        params = core.params.with_throttle(throttle)
        activity, _stats = Pipeline(params).run(program, end - start)
        for ch, vals in activity.channels.items():
            merged.channels[ch][start:end] = vals
    return merged


def train_activity_model(
    activity: ActivityTrace,
    labels: np.ndarray,
    ridge_lam: float = 1e-2,
) -> ActivityPowerModel:
    """Fit the high-level model on activity features vs power labels."""
    F, names = activity_features(activity)
    y = np.asarray(labels, dtype=np.float64)
    if F.shape[0] != y.shape[0]:
        raise PowerModelError("activity/labels cycle mismatch")
    w, b = ridge_fit(F, y, lam=ridge_lam)
    return ActivityPowerModel(
        feature_names=names, weights=w, intercept=b
    )
