"""End-to-end flows built on the APOLLO model (§5, §8).

* :mod:`repro.flow.design_time` — APOLLO-assisted power analysis
  (Fig. 7b): trace only the Q proxies, infer per-cycle power in software;
* :mod:`repro.flow.emulator` — the emulator-assisted flow (Fig. 7c):
  proxy-only tracing with storage accounting (the 200 GB -> ~1 GB claim)
  and emulation-throughput extrapolation;
* :mod:`repro.flow.runtime` — runtime introspection with the OPM:
  per-cycle delta-I tracking, voltage-droop correlation (Fig. 17), and a
  proactive Ldi/dt mitigation demo (§8.2).
"""

from repro.flow.design_time import DesignTimeFlow, FlowEstimate
from repro.flow.emulator import EmulatorFlow, StorageAccounting
from repro.flow.runtime import (
    DroopAnalysis,
    MitigationResult,
    RuntimeIntrospection,
)
from repro.flow.highlevel import (
    ActivityPowerModel,
    train_activity_model,
)
from repro.flow.dvfs import (
    DvfsGovernor,
    DvfsPolicy,
    DvfsState,
    DvfsStep,
    OperatingPoint,
)
from repro.flow.multicore import MulticoreRun, MulticoreSimulator

__all__ = [
    "DesignTimeFlow",
    "FlowEstimate",
    "EmulatorFlow",
    "StorageAccounting",
    "RuntimeIntrospection",
    "DroopAnalysis",
    "MitigationResult",
    "ActivityPowerModel",
    "train_activity_model",
    "DvfsGovernor",
    "DvfsPolicy",
    "DvfsState",
    "DvfsStep",
    "OperatingPoint",
    "MulticoreSimulator",
    "MulticoreRun",
]
