"""Design-time APOLLO-assisted power analysis (Fig. 7b).

The conventional flow simulates all signals and runs a slow power
calculation; the APOLLO flow traces only the Q proxies and replaces power
calculation with a Q-term dot product.  ``DesignTimeFlow`` runs both paths
over the same workload so experiments can report accuracy *and* the
measured speed/storage ratios, plus the §8.1 inference-throughput
extrapolations (minutes per billion cycles for APOLLO vs days/months for
the all-signal baselines).

Stage timing goes through :mod:`repro.obs.trace` spans instead of ad-hoc
``perf_counter`` triples: ``estimate`` always runs its stages under a
``flow.estimate`` span tree (an internal tracer if the caller did not
supply one), and :class:`FlowEstimate` carries the resulting per-stage
seconds on the result object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.obs.trace import Tracer
from repro.power.analyzer import PowerAnalyzer
from repro.rtl.simulator import RecordSpec, Simulator
from repro.uarch.pipeline import Pipeline

__all__ = ["FlowEstimate", "DesignTimeFlow", "inference_seconds_per_1e9"]


@dataclass
class FlowEstimate:
    """Result of one APOLLO-flow power estimation run.

    ``stage_seconds`` maps stage name (``"uarch"``, ``"rtl"``,
    ``"inference"``) to wall seconds, extracted from the run's span tree;
    the legacy per-stage properties read from it.
    """

    name: str
    power: np.ndarray  # per-cycle predicted power (mW)
    proxy_bytes: int
    stage_seconds: dict[str, float] = field(default_factory=dict)
    label: np.ndarray | None = None  # ground truth if requested

    @property
    def uarch_seconds(self) -> float:
        return self.stage_seconds.get("uarch", 0.0)

    @property
    def rtl_seconds(self) -> float:
        return self.stage_seconds.get("rtl", 0.0)

    @property
    def inference_seconds(self) -> float:
        return self.stage_seconds.get("inference", 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def n_cycles(self) -> int:
        return int(self.power.size)


class DesignTimeFlow:
    """APOLLO-based per-cycle power estimation for one core + model."""

    def __init__(
        self, core, model, engine: str = "packed", tracer=None
    ) -> None:
        self.core = core
        self.model = model
        self.tracer = tracer
        self._sim = Simulator(core.netlist, engine=engine)
        self._analyzer = PowerAnalyzer(core.netlist)

    def estimate(
        self,
        program,
        cycles: int,
        with_reference: bool = False,
        throttle=None,
        tracer=None,
    ) -> FlowEstimate:
        """Per-cycle power for ``program`` over ``cycles`` cycles.

        ``with_reference`` additionally runs the signoff accumulator (the
        "commercial flow" stand-in) for accuracy comparison — on the same
        simulation pass, so the comparison is apples-to-apples.

        ``tracer`` (or the constructor's) collects the ``flow.estimate``
        span tree; without one, a private tracer still measures the
        stages so :class:`FlowEstimate` always reports its timings.
        """
        if cycles <= 0:
            raise ReproError("cycles must be positive")
        tracer = tracer or self.tracer
        if tracer is None or not tracer.enabled:
            tracer = Tracer()  # timings must exist even untraced
        params = self.core.params.with_throttle(throttle)

        with tracer.span(
            "flow.estimate",
            workload=getattr(program, "name", "workload"),
            cycles=cycles,
            engine=self._sim.engine,
            q=self.model.q,
        ) as root:
            with tracer.span("flow.uarch"):
                activity, _stats = Pipeline(params).run(program, cycles)
                stim = self.core.stimulus_for(activity)

            accum = {}
            if with_reference:
                accum["label"] = self._analyzer.label_weights()
            with tracer.span("flow.rtl"):
                res = self._sim.run(
                    stim,
                    RecordSpec(
                        columns=self.model.proxies, accumulators=accum
                    ),
                    tracer=tracer,
                )

            with tracer.span("flow.inference"):
                toggles = res.columns[0].astype(np.float64)
                power = self.model.predict(toggles)

        stage_seconds = {
            c.name.split(".", 1)[1]: c.duration for c in root.children
        }
        return FlowEstimate(
            name=getattr(program, "name", "workload"),
            power=power,
            proxy_bytes=(self.model.q * cycles + 7) // 8,
            stage_seconds=stage_seconds,
            label=res.accum.get("label", [None])[0]
            if with_reference
            else None,
        )


def inference_seconds_per_1e9(
    predict_fn, n_features: int, sample_cycles: int = 20000, seed: int = 0
) -> float:
    """Measure a model's inference rate and extrapolate to 10^9 cycles.

    The §8.1 comparison: APOLLO's Q-term linear model infers a billion
    cycles in about a minute; CNN/PCA models over all signals take days to
    months.  ``predict_fn`` maps an (N, n_features) float matrix to (N,)
    predictions.
    """
    rng = np.random.default_rng(seed)
    X = (rng.random((sample_cycles, n_features)) < 0.3).astype(np.float64)
    # Warm-up (JIT-free NumPy, but page in the buffers).
    predict_fn(X[:256])
    t0 = time.perf_counter()
    predict_fn(X)
    elapsed = time.perf_counter() - t0
    return elapsed * (1e9 / sample_cycles)
