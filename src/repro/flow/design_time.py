"""Design-time APOLLO-assisted power analysis (Fig. 7b).

The conventional flow simulates all signals and runs a slow power
calculation; the APOLLO flow traces only the Q proxies and replaces power
calculation with a Q-term dot product.  ``DesignTimeFlow`` runs both paths
over the same workload so experiments can report accuracy *and* the
measured speed/storage ratios, plus the §8.1 inference-throughput
extrapolations (minutes per billion cycles for APOLLO vs days/months for
the all-signal baselines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.power.analyzer import PowerAnalyzer
from repro.rtl.simulator import RecordSpec, Simulator
from repro.uarch.pipeline import Pipeline

__all__ = ["FlowEstimate", "DesignTimeFlow", "inference_seconds_per_1e9"]


@dataclass
class FlowEstimate:
    """Result of one APOLLO-flow power estimation run."""

    name: str
    power: np.ndarray  # per-cycle predicted power (mW)
    uarch_seconds: float
    rtl_seconds: float
    inference_seconds: float
    proxy_bytes: int
    label: np.ndarray | None = None  # ground truth if requested

    @property
    def total_seconds(self) -> float:
        return self.uarch_seconds + self.rtl_seconds + self.inference_seconds

    @property
    def n_cycles(self) -> int:
        return int(self.power.size)


class DesignTimeFlow:
    """APOLLO-based per-cycle power estimation for one core + model."""

    def __init__(self, core, model, engine: str = "packed") -> None:
        self.core = core
        self.model = model
        self._sim = Simulator(core.netlist, engine=engine)
        self._analyzer = PowerAnalyzer(core.netlist)

    def estimate(
        self,
        program,
        cycles: int,
        with_reference: bool = False,
        throttle=None,
    ) -> FlowEstimate:
        """Per-cycle power for ``program`` over ``cycles`` cycles.

        ``with_reference`` additionally runs the signoff accumulator (the
        "commercial flow" stand-in) for accuracy comparison — on the same
        simulation pass, so the comparison is apples-to-apples.
        """
        if cycles <= 0:
            raise ReproError("cycles must be positive")
        params = self.core.params.with_throttle(throttle)
        t0 = time.perf_counter()
        activity, _stats = Pipeline(params).run(program, cycles)
        stim = self.core.stimulus_for(activity)
        t_uarch = time.perf_counter() - t0

        accum = {}
        if with_reference:
            accum["label"] = self._analyzer.label_weights()
        t0 = time.perf_counter()
        res = self._sim.run(
            stim,
            RecordSpec(columns=self.model.proxies, accumulators=accum),
        )
        t_rtl = time.perf_counter() - t0

        toggles = res.columns[0].astype(np.float64)
        t0 = time.perf_counter()
        power = self.model.predict(toggles)
        t_inf = time.perf_counter() - t0

        return FlowEstimate(
            name=getattr(program, "name", "workload"),
            power=power,
            uarch_seconds=t_uarch,
            rtl_seconds=t_rtl,
            inference_seconds=t_inf,
            proxy_bytes=(self.model.q * cycles + 7) // 8,
            label=res.accum.get("label", [None])[0]
            if with_reference
            else None,
        )


def inference_seconds_per_1e9(
    predict_fn, n_features: int, sample_cycles: int = 20000, seed: int = 0
) -> float:
    """Measure a model's inference rate and extrapolate to 10^9 cycles.

    The §8.1 comparison: APOLLO's Q-term linear model infers a billion
    cycles in about a minute; CNN/PCA models over all signals take days to
    months.  ``predict_fn`` maps an (N, n_features) float matrix to (N,)
    predictions.
    """
    rng = np.random.default_rng(seed)
    X = (rng.random((sample_cycles, n_features)) < 0.3).astype(np.float64)
    # Warm-up (JIT-free NumPy, but page in the buffers).
    predict_fn(X[:256])
    t0 = time.perf_counter()
    predict_fn(X)
    elapsed = time.perf_counter() - t0
    return elapsed * (1e9 / sample_cycles)
