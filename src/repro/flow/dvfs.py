"""DVFS governed by OPM power readings (the §1 coarse-grained use case).

DVFS "is orchestrated by the system firmware and/or the OS, and hence
requires coarse-grained temporal resolution in power-tracing" — served by
the same OPM hardware with a large averaging window T.  This module
implements a simple reactive governor: windowed OPM readings (scaled for
the active voltage/frequency point) feed a power budget + thermal cap
policy that steps an operating point up or down; the simulation reports
energy, performance, and temperature against fixed-point baselines.

Scaling model: relative to the characterization point, dynamic power
scales as ``(V / V0)^2 * (f / f0)`` and delivered performance as
``f / f0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.power.thermal import ThermalModel

__all__ = [
    "OperatingPoint",
    "DvfsPolicy",
    "DvfsGovernor",
    "DvfsRun",
    "DvfsState",
    "DvfsStep",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One voltage/frequency point."""

    name: str
    freq_ghz: float
    vdd: float

    def power_scale(self, ref: "OperatingPoint") -> float:
        return (self.vdd / ref.vdd) ** 2 * (self.freq_ghz / ref.freq_ghz)

    def perf_scale(self, ref: "OperatingPoint") -> float:
        return self.freq_ghz / ref.freq_ghz


DEFAULT_POINTS = (
    OperatingPoint("eco", 1.5, 0.60),
    OperatingPoint("nominal", 2.4, 0.68),
    OperatingPoint("boost", 3.0, 0.75),
)


@dataclass(frozen=True)
class DvfsPolicy:
    """Reactive budget policy.

    Step down when the windowed power reading exceeds ``power_budget_mw``
    or temperature exceeds ``thermal_cap_c``; step up when power sits
    under ``upshift_frac`` of budget (with hysteresis) and temperature
    has headroom.
    """

    power_budget_mw: float = 6.0
    thermal_cap_c: float = 85.0
    upshift_frac: float = 0.7
    hysteresis_windows: int = 3

    def __post_init__(self) -> None:
        if self.power_budget_mw <= 0:
            raise ReproError("power budget must be positive")
        if not (0 < self.upshift_frac < 1):
            raise ReproError("upshift_frac must be in (0, 1)")


@dataclass
class DvfsState:
    """Mutable continuation state for window-at-a-time governing.

    Created by :meth:`DvfsGovernor.start`; advanced by
    :meth:`DvfsGovernor.step`.  Streaming callers feed OPM window
    readings as they complete instead of materializing a whole series.
    """

    level: int
    t_now: float
    calm: int = 0
    n: int = 0
    perf_acc: float = 0.0
    energy_mj: float = 0.0
    budget_violations: int = 0
    thermal_violations: int = 0


@dataclass(frozen=True)
class DvfsStep:
    """One governed window: what ran, at what power and temperature."""

    power_mw: float
    level: int
    temperature_c: float


@dataclass
class DvfsRun:
    """Outcome of one governed run."""

    levels: np.ndarray  # operating-point index per window
    power_mw: np.ndarray  # actual power per window at the chosen points
    temperature_c: np.ndarray
    performance: float  # delivered work relative to the reference point
    energy_mj: float
    budget_violations: int
    thermal_violations: int

    @property
    def avg_power_mw(self) -> float:
        return float(self.power_mw.mean())


class DvfsGovernor:
    """Steps operating points from windowed OPM power readings."""

    def __init__(
        self,
        points: tuple[OperatingPoint, ...] = DEFAULT_POINTS,
        policy: DvfsPolicy | None = None,
        thermal: ThermalModel | None = None,
        reference: OperatingPoint | None = None,
    ) -> None:
        if len(points) < 2:
            raise ReproError("need at least two operating points")
        freqs = [p.freq_ghz for p in points]
        if freqs != sorted(freqs):
            raise ReproError("operating points must be sorted by freq")
        self.points = points
        self.policy = policy or DvfsPolicy()
        self.thermal = thermal or ThermalModel()
        # Characterization point: where the OPM readings were trained.
        self.reference = reference or points[-1]

    # ------------------------------------------------------------------ #
    def start(self, start_level: int | None = None) -> DvfsState:
        """Begin an incremental governed run (streaming entry point)."""
        level = (
            len(self.points) - 1 if start_level is None else start_level
        )
        if not (0 <= level < len(self.points)):
            raise ReproError(f"bad start level {level}")
        return DvfsState(level=level, t_now=self.thermal.t_ambient)

    def step(self, reading_mw: float, state: DvfsState) -> DvfsStep:
        """Govern one window reading, mutating ``state`` in place.

        Identical arithmetic to :meth:`run`'s loop (which is built on
        this method), so a streamed run reproduces the offline one.
        """
        pol = self.policy
        point = self.points[state.level]
        p_now = float(reading_mw) * point.power_scale(self.reference)
        level_used = state.level
        state.perf_acc += point.perf_scale(self.reference)
        # thermal step (power in watts)
        steady = self.thermal.t_ambient + (
            p_now * 1e-3
        ) * self.thermal.r_th
        state.t_now = steady + (state.t_now - steady) * self.thermal._decay
        state.n += 1
        state.energy_mj += p_now * 1e-3 * self.thermal.window_seconds * 1e3

        over_budget = p_now > pol.power_budget_mw
        over_thermal = state.t_now > pol.thermal_cap_c
        if over_budget:
            state.budget_violations += 1
        if over_thermal:
            state.thermal_violations += 1
        if over_budget or over_thermal:
            state.level = max(0, state.level - 1)
            state.calm = 0
        elif p_now < pol.upshift_frac * pol.power_budget_mw:
            state.calm += 1
            if state.calm >= pol.hysteresis_windows:
                state.level = min(len(self.points) - 1, state.level + 1)
                state.calm = 0
        else:
            state.calm = 0
        return DvfsStep(
            power_mw=p_now,
            level=level_used,
            temperature_c=state.t_now,
        )

    def run(
        self, opm_readings_mw: np.ndarray, start_level: int | None = None
    ) -> DvfsRun:
        """Govern a workload given its reference-point OPM readings.

        ``opm_readings_mw`` are windowed power readings *as if* running
        at the reference point; the governor rescales them for the active
        point each window (activity is assumed workload-dominated).
        """
        readings = np.asarray(opm_readings_mw, dtype=np.float64)
        if readings.ndim != 1 or readings.size == 0:
            raise ReproError("need a 1-D, non-empty reading series")
        n = readings.size
        state = self.start(start_level)

        levels = np.empty(n, dtype=np.int64)
        power = np.empty(n, dtype=np.float64)
        temp = np.empty(n, dtype=np.float64)
        for k in range(n):
            s = self.step(readings[k], state)
            power[k] = s.power_mw
            levels[k] = s.level
            temp[k] = s.temperature_c

        # Recomputed vectorized (not from state.energy_mj) to keep the
        # historical float summation order of this method.
        energy_mj = float(
            (power * 1e-3 * self.thermal.window_seconds).sum() * 1e3
        )
        return DvfsRun(
            levels=levels,
            power_mw=power,
            temperature_c=temp,
            performance=state.perf_acc / n,
            energy_mj=energy_mj,
            budget_violations=state.budget_violations,
            thermal_violations=state.thermal_violations,
        )

    def run_fixed(self, opm_readings_mw: np.ndarray, level: int) -> DvfsRun:
        """Baseline: pin one operating point for the whole run."""
        if not (0 <= level < len(self.points)):
            raise ReproError(f"bad level {level}")
        readings = np.asarray(opm_readings_mw, dtype=np.float64)
        point = self.points[level]
        power = readings * point.power_scale(self.reference)
        temp = self.thermal.simulate(power * 1e-3)
        energy_mj = float(
            (power * 1e-3 * self.thermal.window_seconds).sum() * 1e3
        )
        return DvfsRun(
            levels=np.full(readings.size, level, dtype=np.int64),
            power_mw=power,
            temperature_c=temp,
            performance=point.perf_scale(self.reference),
            energy_mj=energy_mj,
            budget_violations=int(
                (power > self.policy.power_budget_mw).sum()
            ),
            thermal_violations=int(
                (temp > self.policy.thermal_cap_c).sum()
            ),
        )
