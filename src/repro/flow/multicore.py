"""Multi-core power simulation over a shared power-delivery network.

§1 of the paper notes that signoff-grade power analysis "does not scale
for ... simulating the simultaneous execution of multiple CPU cores" —
one reason APOLLO exists.  The reproduction's vectorized simulator runs a
whole socket in one *batched* pass (one batch lane per core), so we can
study the multi-core effects the paper gestures at: aggregate power,
shared-PDN voltage droop, and the benefit of de-phasing synchronized
high-power bursts (the classic multi-core dI/dt alignment hazard, which
per-core OPM readings make visible at runtime).

The socket PDN scales the single-core model: ``n`` cores share a supply
whose decap grows with ``n`` while the per-core demand adds up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.power.analyzer import PowerAnalyzer
from repro.power.pdn import PdnModel
from repro.rtl.simulator import RecordSpec, Simulator
from repro.uarch.pipeline import Pipeline

__all__ = ["MulticoreRun", "MulticoreSimulator"]


@dataclass
class MulticoreRun:
    """Result of one socket simulation."""

    per_core_power: np.ndarray  # (n_cores, cycles) mW
    voltage: np.ndarray  # shared-rail voltage (volts)
    vdd: float
    offsets: list[int]

    @property
    def n_cores(self) -> int:
        return int(self.per_core_power.shape[0])

    @property
    def total_power(self) -> np.ndarray:
        return self.per_core_power.sum(axis=0)

    @property
    def droop_mv(self) -> float:
        return float((self.vdd - self.voltage.min()) * 1e3)

    def alignment_factor(self) -> float:
        """Peak total power over the sum of per-core peaks (1.0 = fully
        aligned bursts; lower = de-phased)."""
        per_core_peak = self.per_core_power.max(axis=1).sum()
        return float(self.total_power.max() / per_core_peak)


class MulticoreSimulator:
    """Simulate ``n`` copies of one core design as a socket."""

    def __init__(
        self,
        core,
        n_cores: int,
        pdn: PdnModel | None = None,
    ) -> None:
        if n_cores < 1:
            raise ReproError("need at least one core")
        self.core = core
        self.n_cores = n_cores
        self._sim = Simulator(core.netlist)
        self._weights = PowerAnalyzer(core.netlist).label_weights()
        base = pdn or PdnModel()
        # Shared rail: n cores' decap in parallel, same series R/L per
        # package model (pessimistic: no per-core LDOs).
        self.pdn = PdnModel(
            vdd=base.vdd,
            r_ohm=base.r_ohm / n_cores,
            l_henry=base.l_henry / n_cores,
            c_farad=base.c_farad * n_cores,
            freq_ghz=base.freq_ghz,
        )

    def run(
        self,
        programs: list,
        cycles: int,
        offsets: list[int] | None = None,
    ) -> MulticoreRun:
        """Run one program per core (lists shorter than n_cores repeat).

        ``offsets`` delays each core's workload start by that many cycles
        (idle NOP-like warm-up), modeling staggered thread launch — the
        de-phasing lever for synchronized power viruses.
        """
        if cycles <= 0:
            raise ReproError("cycles must be positive")
        progs = [
            programs[i % len(programs)] for i in range(self.n_cores)
        ]
        offsets = offsets or [0] * self.n_cores
        if len(offsets) != self.n_cores:
            raise ReproError("offsets length must equal n_cores")
        if any(o < 0 for o in offsets):
            raise ReproError("offsets must be non-negative")

        pipeline = Pipeline(self.core.params)
        stims = []
        for prog, off in zip(progs, offsets):
            activity, _stats = pipeline.run(prog, cycles)
            stim = self.core.stimulus_for(activity)
            if off:
                # idle prefix: zero stimulus (nothing fetched, clocks
                # gated) then the workload, truncated to `cycles`.
                idle = np.zeros((off, stim.shape[1]), dtype=np.uint8)
                stim = np.vstack([idle, stim])[:cycles]
            stims.append(stim)
        res = self._sim.run(
            np.stack(stims),
            RecordSpec(accumulators={"p": self._weights}),
        )
        per_core = res.accum["p"]
        voltage = self.pdn.simulate(per_core.sum(axis=0))
        return MulticoreRun(
            per_core_power=per_core,
            voltage=voltage,
            vdd=self.pdn.vdd,
            offsets=list(offsets),
        )
