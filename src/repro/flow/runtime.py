"""Runtime power introspection with the OPM (§8.2, Fig. 17).

The per-cycle OPM reading tracks CPU current demand; its cycle-to-cycle
difference (delta-I) is the precursor of Ldi/dt voltage droops.  This
module reproduces the Fig. 17 analysis — OPM-estimated vs ground-truth
delta-I, quadrant structure, Pearson correlation — and demonstrates the
paper's proposed *proactive mitigation*: when the OPM predicts a large
current step, an adaptive-clock model stretches the next cycles, and the
PDN simulation shows the droop shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.core.metrics import pearson
from repro.power.pdn import PdnModel, delta_current

__all__ = ["DroopAnalysis", "MitigationResult", "RuntimeIntrospection"]


@dataclass
class DroopAnalysis:
    """Fig. 17's scatter data plus summary statistics."""

    delta_i_true: np.ndarray
    delta_i_opm: np.ndarray
    pearson: float
    quadrants: dict[str, int]
    deep_threshold: float

    @property
    def n_samples(self) -> int:
        return int(self.delta_i_true.size)


@dataclass
class MitigationResult:
    """Droop with and without OPM-triggered adaptive clocking."""

    droop_baseline_mv: float
    droop_mitigated_mv: float
    n_interventions: int

    @property
    def reduction_pct(self) -> float:
        if self.droop_baseline_mv <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.droop_mitigated_mv / self.droop_baseline_mv
        )


class RuntimeIntrospection:
    """Delta-I tracking and droop analysis for one OPM + PDN."""

    def __init__(self, pdn: PdnModel | None = None) -> None:
        self.pdn = pdn or PdnModel()

    # ------------------------------------------------------------------ #
    def droop_analysis(
        self,
        power_true: np.ndarray,
        power_opm: np.ndarray,
        deep_quantile: float = 0.98,
    ) -> DroopAnalysis:
        """Compare OPM delta-I against ground truth (Fig. 17).

        Quadrants follow the paper: top-right = rising current (droop
        precursors), bottom-left = falling current (overshoot risk);
        off-diagonal quadrants are disagreements, expected to cluster
        near the origin.
        """
        power_true = np.asarray(power_true, dtype=np.float64)
        power_opm = np.asarray(power_opm, dtype=np.float64)
        if power_true.shape != power_opm.shape:
            raise ReproError("power series must align")
        di_true = delta_current(power_true, self.pdn.vdd)
        di_opm = delta_current(power_opm, self.pdn.vdd)
        quadrants = {
            "both_rising": int(np.sum((di_true > 0) & (di_opm > 0))),
            "both_falling": int(np.sum((di_true < 0) & (di_opm < 0))),
            "opm_only_rising": int(np.sum((di_true <= 0) & (di_opm > 0))),
            "opm_only_falling": int(np.sum((di_true >= 0) & (di_opm < 0))),
        }
        deep = float(np.quantile(np.abs(di_true), deep_quantile))
        return DroopAnalysis(
            delta_i_true=di_true,
            delta_i_opm=di_opm,
            pearson=pearson(di_true, di_opm),
            quadrants=quadrants,
            deep_threshold=deep,
        )

    def deep_event_agreement(
        self, analysis: DroopAnalysis
    ) -> float:
        """Sign-agreement rate restricted to deep (large |delta-I|) events.

        The paper's observation: disagreements live near the origin; in
        the deep droop/overshoot region the OPM tracks ground truth.
        """
        mask = np.abs(analysis.delta_i_true) >= analysis.deep_threshold
        if not mask.any():
            raise ReproError("no deep events at this threshold")
        same = np.sign(analysis.delta_i_true[mask]) == np.sign(
            analysis.delta_i_opm[mask]
        )
        return float(same.mean())

    # ------------------------------------------------------------------ #
    def mitigation_demo(
        self,
        power_true: np.ndarray,
        power_opm: np.ndarray,
        threshold_quantile: float = 0.97,
        stretch: float = 0.6,
        horizon: int = 4,
    ) -> MitigationResult:
        """Proactive Ldi/dt mitigation using OPM predictions.

        When the OPM sees a current step above the threshold, the
        adaptive-clock model stretches the next ``horizon`` cycles: each
        cycle's current level moves only ``stretch`` of the way from the
        previous level, flattening the demand ramp (the performance cost
        of clock stretching).  The PDN is simulated with and without
        intervention; the droop reduction is the payoff §8.2 motivates.
        """
        if not (0.0 < stretch <= 1.0):
            raise ReproError("stretch must be in (0, 1]")
        power_true = np.asarray(power_true, dtype=np.float64)
        di_opm = delta_current(
            np.asarray(power_opm, dtype=np.float64), self.pdn.vdd
        )
        threshold = float(
            np.quantile(di_opm[di_opm > 0], threshold_quantile)
        ) if np.any(di_opm > 0) else float("inf")

        mitigated = power_true.copy()
        interventions = 0
        i = 1
        n = len(mitigated)
        while i < n:
            if di_opm[i] > threshold:
                interventions += 1
                end = min(n, i + horizon)
                window = mitigated[i:end]
                base = mitigated[i - 1]
                for k in range(len(window)):
                    window[k] = base + (window[k] - base) * stretch
                    base = window[k]
                mitigated[i:end] = window
                i = end
            else:
                i += 1

        base_droop = self.pdn.droop_magnitude(power_true)
        mit_droop = self.pdn.droop_magnitude(mitigated)
        return MitigationResult(
            droop_baseline_mv=base_droop,
            droop_mitigated_mv=mit_droop,
            n_interventions=interventions,
        )
