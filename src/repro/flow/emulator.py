"""Emulator-assisted power analysis (Fig. 7c, §5 / §8.1).

The Palladium emulator's role in the paper is twofold: it runs long
benchmarks fast (millions of cycles in minutes), and — with APOLLO — it
only needs to dump the Q proxy signals instead of every net, collapsing a
>200 GB full-signal dump to ~1 GB.  The reproduction's "emulator" is the
same vectorized gate simulator in proxy-capture mode; the storage math is
exact and extrapolated to the paper's design/benchmark scale, and wall
time on emulation hardware is modeled from an emulation clock rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.rtl.simulator import RecordSpec, Simulator
from repro.uarch.pipeline import Pipeline

__all__ = ["StorageAccounting", "EmulatorFlow"]

#: The paper's Fig. 16 benchmark scale: 17M cycles of SPEC2006 hmmer on a
#: >5e5-signal design, traced on a Palladium Z1 within ~3 minutes.
PAPER_TRACE_CYCLES = 17_000_000
PAPER_N1_SIGNALS = 500_000


@dataclass
class StorageAccounting:
    """Dump-size arithmetic for full-signal vs proxy-only tracing."""

    n_cycles: int
    n_signals: int
    q: int

    @property
    def full_dump_bytes(self) -> int:
        """All signals, 1 bit per signal per cycle."""
        return self.n_cycles * ((self.n_signals + 7) // 8)

    @property
    def proxy_dump_bytes(self) -> int:
        return self.n_cycles * ((self.q + 7) // 8)

    @property
    def reduction_factor(self) -> float:
        return self.full_dump_bytes / max(1, self.proxy_dump_bytes)

    def at_paper_scale(self) -> "StorageAccounting":
        """The same Q applied to the paper's 17M-cycle, 5e5-signal trace."""
        return StorageAccounting(
            n_cycles=PAPER_TRACE_CYCLES,
            n_signals=PAPER_N1_SIGNALS,
            q=self.q,
        )


@dataclass
class EmulatorRun:
    """Output of one emulator-assisted tracing run."""

    proxy_toggles: np.ndarray  # (cycles, Q) uint8
    power: np.ndarray  # per-cycle APOLLO estimate (mW)
    storage: StorageAccounting
    sim_seconds: float
    inference_seconds: float
    emulated_wall_seconds: float


class EmulatorFlow:
    """Proxy-only long-trace capture + APOLLO inference."""

    def __init__(self, core, model, emulation_mhz: float = 1.5) -> None:
        if emulation_mhz <= 0:
            raise ReproError("emulation clock must be positive")
        self.core = core
        self.model = model
        self.emulation_mhz = emulation_mhz
        self._sim = Simulator(core.netlist)

    def trace(
        self, program, cycles: int, chunk: int = 20000, throttle=None
    ) -> EmulatorRun:
        """Capture proxy toggles for a long benchmark and infer power.

        The run is chunked so memory stays bounded regardless of trace
        length (only Q columns are ever materialized).
        """
        if cycles <= 0:
            raise ReproError("cycles must be positive")
        params = self.core.params.with_throttle(throttle)
        pipeline = Pipeline(params)
        activity, _stats = pipeline.run(program, cycles)
        stim = self.core.stimulus_for(activity)

        t0 = time.perf_counter()
        pieces = []
        state = None
        for start in range(0, cycles, chunk):
            res = self._sim.run(
                stim[start : start + chunk],
                RecordSpec(columns=self.model.proxies),
                init_values=state,
            )
            state = res.final_values
            pieces.append(res.columns[0])
        toggles = np.concatenate(pieces, axis=0)
        sim_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        power = self.model.predict(toggles.astype(np.float64))
        inference_seconds = time.perf_counter() - t0

        storage = StorageAccounting(
            n_cycles=cycles,
            n_signals=self.core.netlist.n_nets,
            q=self.model.q,
        )
        return EmulatorRun(
            proxy_toggles=toggles,
            power=power,
            storage=storage,
            sim_seconds=sim_seconds,
            inference_seconds=inference_seconds,
            emulated_wall_seconds=cycles / (self.emulation_mhz * 1e6),
        )
