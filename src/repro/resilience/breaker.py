"""Deterministic circuit breaker for the serving and disk-I/O paths.

:class:`CircuitBreaker` is the classic three-state machine — *closed*
(calls pass through), *open* (calls fast-fail with
:class:`~repro.errors.BreakerOpenError`), *half-open* (exactly one
probe call is let through) — with one repo-specific twist: **time is
counted in calls, not seconds**.  Every rejected call while open ticks
the cooldown down by one; when it reaches zero the breaker moves to
half-open and admits a single probe.  A successful probe closes the
breaker; a failed probe re-opens it with the *next* cooldown from a
bounded, deterministic escalation schedule derived from a
:class:`~repro.resilience.retry.RetryPolicy` (``base -> base*mult ->
... -> cap``).  No wall clocks anywhere, so a seeded run trips, cools
and recovers at exactly the same call numbers every time — which is
what lets the chaos gates assert byte-identical output *through* a
breaker trip.

The breaker composes with the rest of the resilience layer rather than
duplicating it:

* an attached :class:`~repro.resilience.retry.HealthState` is degraded
  while the breaker is open and recovered when it closes, so routing
  layers that already watch health (the serve gateway) need no new
  wiring;
* an attached :class:`~repro.obs.flightrec.FlightRecorder` gets a
  ``breaker_open`` record per trip (and ``breaker_close`` on
  recovery), putting trips on the same postmortem timeline as shard
  deaths and worker respawns;
* ``resilience.breaker.*`` counters and a state gauge land in the
  shared :class:`~repro.obs.metrics.MetricsRegistry`.

:class:`~repro.errors.BreakerOpenError` is *not* retryable by
:class:`RetryPolicy` defaults — callers are expected to take their
fallback path (inline inference, skipping a cache) instead of spinning
on an open breaker.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BreakerOpenError, TransientFault
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.resilience.retry import HealthState, RetryPolicy

__all__ = ["CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Default escalation schedule: cooldowns of 4, 8, ... capped at 64
#: rejected calls.  ``base_delay``/``multiplier``/``max_delay`` are
#: reinterpreted as call counts (the breaker never sleeps).
DEFAULT_COOLDOWN = RetryPolicy(
    max_attempts=6, base_delay=4.0, multiplier=2.0, max_delay=64.0,
)


class CircuitBreaker:
    """Closed -> open -> half-open breaker with call-counted cooldowns.

    Parameters
    ----------
    name:
        Label used in metrics (``resilience.breaker.<name>.*``),
        flight-recorder records and error messages.
    failure_threshold:
        Consecutive failures (of ``trip_on`` type) that trip the
        breaker from closed to open.
    cooldown:
        A :class:`RetryPolicy` whose *delay schedule* is read as the
        escalating sequence of open-state cooldowns, in rejected
        calls.  ``delays()[k]`` is the cooldown after the ``k``-th
        consecutive re-open; beyond the schedule the last entry
        repeats (the cap is sticky, the breaker never gives up).
    trip_on:
        Exception types that count as dependency failures.  Anything
        else propagates without touching breaker state — a
        ``ServeError`` from bad client input must not open the breaker
        protecting the worker pool.
    health:
        Optional :class:`HealthState` mirrored by the breaker
        (degraded while open/half-open, recovered on close).
    flightrec:
        Optional flight recorder receiving ``breaker_open`` /
        ``breaker_close`` records on the breaker's lane.
    """

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        cooldown: RetryPolicy = DEFAULT_COOLDOWN,
        trip_on: tuple[type[BaseException], ...] = (
            TransientFault,
            OSError,
        ),
        metrics: MetricsRegistry | None = None,
        health: HealthState | None = None,
        flightrec=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.trip_on = trip_on
        self.metrics = metrics if metrics is not None else default_registry()
        self.health = health
        self.flightrec = flightrec
        schedule = [max(1, int(d)) for d in cooldown.delays()]
        self._cooldowns = schedule or [1]
        self.state = BREAKER_CLOSED
        self.failures = 0  # consecutive failures while closed
        self.reopens = 0  # consecutive open episodes (escalation index)
        self.trips = 0  # lifetime trips (monotonic)
        self._remaining = 0  # rejected calls until half-open
        self._publish_state()

    # -------------------------------------------------------------- #
    @property
    def closed(self) -> bool:
        return self.state == BREAKER_CLOSED

    @property
    def open(self) -> bool:
        return self.state == BREAKER_OPEN

    @property
    def half_open(self) -> bool:
        return self.state == BREAKER_HALF_OPEN

    def _counter(self, leaf: str):
        return self.metrics.counter(f"resilience.breaker.{self.name}.{leaf}")

    def _publish_state(self) -> None:
        code = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}[
            self.state
        ]
        self.metrics.gauge(f"resilience.breaker.{self.name}.state").set(code)

    def cooldown_for(self, episode: int) -> int:
        """Cooldown (in rejected calls) for the given re-open episode."""
        idx = min(episode, len(self._cooldowns) - 1)
        return self._cooldowns[idx]

    # -------------------------------------------------------------- #
    def _trip(self, reason: str) -> None:
        self.state = BREAKER_OPEN
        self.trips += 1
        self._remaining = self.cooldown_for(self.reopens)
        self.reopens += 1
        self._counter("trips").inc()
        self._publish_state()
        if self.health is not None:
            self.health.degrade(f"breaker {self.name} open: {reason}")
        if self.flightrec is not None:
            self.flightrec.record(
                f"breaker.{self.name}",
                "breaker_open",
                reason=reason,
                cooldown_calls=self._remaining,
                episode=self.reopens,
            )

    def _close(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.reopens = 0
        self._counter("closes").inc()
        self._publish_state()
        if self.health is not None:
            self.health.recover(f"breaker {self.name} closed")
        if self.flightrec is not None:
            self.flightrec.record(
                f"breaker.{self.name}", "breaker_close",
            )

    def record_success(self) -> None:
        """Report a dependency success (closes a half-open breaker)."""
        if self.state == BREAKER_HALF_OPEN:
            self._close()
        elif self.state == BREAKER_CLOSED:
            self.failures = 0

    def record_failure(self, exc: BaseException | None = None) -> None:
        """Report a dependency failure (may trip or re-open)."""
        reason = (
            f"{type(exc).__name__}: {exc}" if exc is not None else "failure"
        )
        self._counter("failures").inc()
        if self.state == BREAKER_HALF_OPEN:
            # Failed probe: re-open with the escalated cooldown.
            self._trip(f"probe failed ({reason})")
        elif self.state == BREAKER_CLOSED:
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self._trip(reason)

    def allow(self) -> bool:
        """Admission check without running a call.

        While open, each rejected check ticks the cooldown; when it
        expires the breaker moves to half-open and this check (the
        probe) is admitted.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            self._remaining -= 1
            if self._remaining > 0:
                self._counter("rejected").inc()
                return False
            self.state = BREAKER_HALF_OPEN
            self._publish_state()
            return True
        # Half-open: exactly one probe in flight at a time; breakers
        # here are used from single-threaded tick loops, so a second
        # call before the probe resolves means the probe itself
        # re-entered — reject it.
        self._counter("rejected").inc()
        return False

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker.

        Fast-fails with :class:`BreakerOpenError` while open; counts
        ``trip_on`` failures against the threshold and re-raises them
        unchanged; other exceptions pass through without touching
        breaker state.
        """
        if not self.allow():
            raise BreakerOpenError(
                f"breaker {self.name!r} is open "
                f"({self._remaining} rejected calls until probe)"
            )
        try:
            result = fn(*args, **kwargs)
        except self.trip_on as exc:
            self.record_failure(exc)
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Operator reset: force closed and clear escalation state."""
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.reopens = 0
        self._remaining = 0
        self._publish_state()
        if self.health is not None:
            self.health.recover(f"breaker {self.name} reset")

    def as_dict(self) -> dict:
        """JSON-ready snapshot for manifests and gateway snapshots."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "reopens": self.reopens,
            "remaining_cooldown": self._remaining,
            "cooldown_schedule": list(self._cooldowns),
        }
