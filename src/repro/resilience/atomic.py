"""Atomic, durable file publication.

Every artifact the pipeline persists — cache entries, datasets, model
files, checkpoints — must never be observable half-written: a crashed
writer, a concurrent reader, or a resumed run must see either the old
content or the new content, nothing in between.  The pattern is the
classic one (write a temporary file *in the same directory*, fsync it,
``os.replace`` over the target, fsync the directory), centralized here
so every save path shares one audited implementation instead of the
three hand-rolled copies PR 4 left behind.

Same-directory temporaries matter twice over: ``os.replace`` is only
atomic within one filesystem, and a crash can only ever leak a tmp file
next to its target (cleaned up by the ``finally``), never a torn
target.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_save_npz"]


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so the rename itself is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path, suffix: str = ""):
    """Context manager yielding a tmp path that is published on success.

    ``suffix`` keeps the target's extension on the temporary (needed for
    writers like ``np.savez`` that append one).  On an exception the tmp
    file is removed and the target left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp{suffix}")
    try:
        yield tmp
        with open(tmp, "rb+") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically publish ``data`` at ``path`` (fsync'd)."""
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_save_npz(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    compressed: bool = True,
) -> Path:
    """Atomically publish an ``.npz`` archive at ``path``.

    The tmp name keeps the ``.npz`` suffix so ``np.savez`` doesn't
    append another one.
    """
    path = Path(path)
    save: Callable = np.savez_compressed if compressed else np.savez
    with atomic_write(path, suffix=".npz") as tmp:
        save(tmp, **arrays)
    return path
