"""Schema-versioned, corruption-detected checkpoints for pipeline stages.

A :class:`CheckpointStore` is a directory tree of per-stage checkpoints::

    <root>/<stage>/step-00000003.npz        # array payload (atomic)
    <root>/<stage>/step-00000003.json       # sidecar: schema, sha256, meta

The sidecar carries the payload's SHA-256, so a torn or bit-rotted
``.npz`` is *detected* at load time (``CheckpointError``) rather than
silently resumed from; :meth:`CheckpointStore.latest` walks backwards
past corrupt steps to the newest checkpoint that verifies, counting
every rejection in ``resilience.checkpoint.corrupt``.

Checkpoints exist to make interrupted-then-resumed runs **bit-identical**
to uninterrupted ones, so the helpers here serialize exactly the state
that determinism depends on: NumPy RNG bit-generator state
(:func:`rng_state_meta` / :func:`restore_rng_state`) and instruction
sequences (:func:`programs_to_arrays` / :func:`programs_from_arrays`) —
all exact-integer or raw-binary round trips, never text floats.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import NULL_TRACER
from repro.resilience.atomic import atomic_save_npz, atomic_write_bytes

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "rng_state_meta",
    "restore_rng_state",
    "programs_to_arrays",
    "programs_from_arrays",
]

#: Bump on incompatible checkpoint layout changes; newer-than-supported
#: checkpoints are refused on load.
CHECKPOINT_SCHEMA_VERSION = 1

_FORMAT = "apollo-repro-checkpoint"


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


@dataclass
class Checkpoint:
    """One loaded checkpoint: arrays + JSON meta + identity."""

    stage: str
    step: int
    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)
    path: Path | None = None


class CheckpointStore:
    """Atomic, hash-verified checkpoint directory for one run.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per stage (created lazily).
    keep:
        Retain at most this many newest steps per stage (older ones are
        pruned after a successful save).  ``0`` keeps everything.
    metrics, tracer:
        ``resilience.checkpoint.*`` counters and ``checkpoint.save`` /
        ``checkpoint.load`` spans.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; the
        ``checkpoint.write`` site can truncate a just-written payload
        (torn write) or raise a transient I/O error.
    """

    def __init__(
        self,
        root: str | Path,
        keep: int = 3,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        faults=None,
    ) -> None:
        if keep < 0:
            raise CheckpointError("keep must be >= 0")
        self.root = Path(root)
        self.keep = keep
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer or NULL_TRACER
        self.faults = faults

    # ------------------------------------------------------------------ #
    def _stage_dir(self, stage: str) -> Path:
        if not stage or "/" in stage or stage.startswith("."):
            raise CheckpointError(f"bad stage name {stage!r}")
        return self.root / stage

    def _paths(self, stage: str, step: int) -> tuple[Path, Path]:
        d = self._stage_dir(stage)
        base = f"step-{step:08d}"
        return d / f"{base}.npz", d / f"{base}.json"

    def steps(self, stage: str) -> list[int]:
        """Ascending step numbers with both payload and sidecar present."""
        d = self._stage_dir(stage)
        if not d.is_dir():
            return []
        out = []
        for sc in d.glob("step-*.json"):
            try:
                step = int(sc.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if sc.with_suffix(".npz").exists():
                out.append(step)
        return sorted(out)

    # ------------------------------------------------------------------ #
    def save(
        self,
        stage: str,
        step: int,
        arrays: dict[str, np.ndarray],
        meta: dict | None = None,
    ) -> Path:
        """Atomically persist one checkpoint; returns the payload path.

        The payload is published first, then the sidecar (with the
        payload's hash) — a crash between the two leaves a payload
        without a sidecar, which :meth:`steps` ignores, so a half-saved
        checkpoint can never be resumed from.
        """
        npz, sidecar = self._paths(stage, step)
        npz.parent.mkdir(parents=True, exist_ok=True)
        with self.tracer.span(
            "checkpoint.save", stage=stage, step=step
        ):
            specs = (
                self.faults.raise_if("checkpoint.write")
                if self.faults is not None
                else []
            )
            atomic_save_npz(npz, {k: np.asarray(v) for k, v in arrays.items()})
            record = {
                "format": _FORMAT,
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "stage": stage,
                "step": step,
                "sha256": _sha256_file(npz),
                "created_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
                "meta": meta or {},
            }
            if any(s.kind == "truncate" for s in specs):
                # torn write: the sidecar hash (computed above) will no
                # longer match the payload, so load() must reject it
                from repro.resilience.faults import truncate_file

                truncate_file(npz)
            atomic_write_bytes(
                sidecar, (json.dumps(record, indent=2) + "\n").encode()
            )
        self.metrics.counter("resilience.checkpoint.saves").inc()
        if self.keep:
            self._prune(stage)
        return npz

    def _prune(self, stage: str) -> None:
        for step in self.steps(stage)[: -self.keep]:
            npz, sidecar = self._paths(stage, step)
            npz.unlink(missing_ok=True)
            sidecar.unlink(missing_ok=True)
            self.metrics.counter("resilience.checkpoint.pruned").inc()

    # ------------------------------------------------------------------ #
    def load(self, stage: str, step: int) -> Checkpoint:
        """Load and verify one checkpoint; raise on any inconsistency."""
        npz, sidecar = self._paths(stage, step)
        with self.tracer.span(
            "checkpoint.load", stage=stage, step=step
        ):
            if not sidecar.exists() or not npz.exists():
                raise CheckpointError(
                    f"no checkpoint for stage {stage!r} step {step}"
                )
            try:
                record = json.loads(sidecar.read_text())
            except ValueError as exc:
                raise CheckpointError(
                    f"unreadable checkpoint sidecar {sidecar}: {exc}"
                ) from exc
            if record.get("format") != _FORMAT:
                raise CheckpointError(
                    f"{sidecar} is not a {_FORMAT} sidecar"
                )
            version = int(record.get("schema_version", 0))
            if version > CHECKPOINT_SCHEMA_VERSION:
                raise CheckpointError(
                    f"{sidecar} uses checkpoint schema v{version}, newer "
                    f"than supported v{CHECKPOINT_SCHEMA_VERSION}"
                )
            digest = _sha256_file(npz)
            if digest != record.get("sha256"):
                raise CheckpointError(
                    f"checkpoint payload {npz} is corrupt: content hash "
                    f"{digest[:12]} != recorded "
                    f"{str(record.get('sha256'))[:12]}"
                )
            try:
                with np.load(npz, allow_pickle=False) as data:
                    arrays = {k: data[k].copy() for k in data.files}
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint payload {npz} failed to decode: {exc}"
                ) from exc
        self.metrics.counter("resilience.checkpoint.loads").inc()
        return Checkpoint(
            stage=stage,
            step=int(record.get("step", step)),
            arrays=arrays,
            meta=record.get("meta") or {},
            path=npz,
        )

    def latest(self, stage: str, strict: bool = False) -> Checkpoint | None:
        """Newest checkpoint that verifies, or ``None``.

        Corrupt steps are skipped (newest first) and counted in
        ``resilience.checkpoint.corrupt``; ``strict=True`` raises on the
        first corrupt step instead of falling back to an older one.
        """
        for step in reversed(self.steps(stage)):
            try:
                return self.load(stage, step)
            except CheckpointError:
                self.metrics.counter("resilience.checkpoint.corrupt").inc()
                if strict:
                    raise
        return None

    def clear(self, stage: str) -> None:
        """Delete every checkpoint of one stage."""
        for step in self.steps(stage):
            npz, sidecar = self._paths(stage, step)
            npz.unlink(missing_ok=True)
            sidecar.unlink(missing_ok=True)


# ---------------------------------------------------------------------- #
# deterministic-state serialization helpers
# ---------------------------------------------------------------------- #
def rng_state_meta(rng: np.random.Generator) -> dict:
    """JSON-safe snapshot of a Generator's bit-generator state.

    NumPy's PCG64 state is plain ints (arbitrary precision survives
    JSON round trips in Python), so restoring it reproduces the exact
    stream the interrupted run would have drawn.
    """
    return json.loads(json.dumps(rng.bit_generator.state))


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`rng_state_meta` in place."""
    try:
        rng.bit_generator.state = state
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"incompatible RNG state in checkpoint: {exc}"
        ) from exc


def programs_to_arrays(programs) -> tuple[dict[str, np.ndarray], list[str]]:
    """Pack Programs into exact-integer arrays plus a name list.

    Returns ``({"prog_fields": (total, 5) int64, "prog_offsets":
    (n+1,) int64}, names)`` — offsets delimit each program's rows, and
    the five columns are (opcode, dst, src1, src2, imm).
    """
    rows: list[tuple[int, int, int, int, int]] = []
    offsets = [0]
    names = []
    for prog in programs:
        for inst in prog.instructions:
            rows.append(
                (int(inst.opcode), inst.dst, inst.src1, inst.src2, inst.imm)
            )
        offsets.append(len(rows))
        names.append(prog.name)
    fields = np.asarray(rows, dtype=np.int64).reshape(-1, 5)
    return (
        {
            "prog_fields": fields,
            "prog_offsets": np.asarray(offsets, dtype=np.int64),
        },
        names,
    )


def programs_from_arrays(
    arrays: dict[str, np.ndarray], names: list[str]
) -> list:
    """Inverse of :func:`programs_to_arrays`."""
    from repro.isa.instructions import Instruction, Opcode
    from repro.isa.program import Program

    fields = np.asarray(arrays["prog_fields"], dtype=np.int64)
    offsets = np.asarray(arrays["prog_offsets"], dtype=np.int64)
    if offsets.size != len(names) + 1:
        raise CheckpointError(
            f"program offsets ({offsets.size}) inconsistent with "
            f"{len(names)} names"
        )
    programs = []
    for i, name in enumerate(names):
        insts = tuple(
            Instruction(
                Opcode(int(op)), int(d), int(s1), int(s2), int(imm)
            )
            for op, d, s1, s2, imm in fields[offsets[i]:offsets[i + 1]]
        )
        programs.append(Program(str(name), insts))
    return programs
