"""End-to-end chaos harness: a faulted pipeline must match a clean one.

:func:`run_chaos` runs the training pipeline (GA micro-benchmark
evolution -> training-dataset collection -> APOLLO selection/relaxation
-> fixed-point quantization) twice:

1. a **baseline** run — serial, no faults, no checkpoints;
2. a **faulted** run — checkpointed, cached, worker-pooled, and driven
   under a seeded :class:`~repro.resilience.faults.FaultPlan` that
   kills workers, raises transients, tears checkpoint writes, corrupts
   cache entries, and interrupts stage boundaries.  Every interrupt is
   handled the way production would handle a crashed process: the stage
   is re-entered with ``resume=True`` and continues from its newest
   verifying checkpoint.

The harness then compares the two quantized models **bit for bit**.
A match is the whole point of the resilience layer: faults may cost
time, but they may never change the answer.  The ``apollo-repro chaos``
subcommand wraps this function; chaos property tests drive it (and the
individual fault sites) directly.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ResilienceError, TransientFault
from repro.obs.trace import NULL_TRACER
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector, FaultPlan

__all__ = ["CHAOS_SITES", "ChaosReport", "run_chaos"]

#: Fault sites a default chaos plan draws from — exactly the ones the
#: GA + dataset + training pipeline passes through.
CHAOS_SITES: dict[str, tuple[str, ...]] = {
    "pool.map": ("kill_worker", "transient"),
    "cache.read": ("corrupt",),
    "cache.write": ("transient",),
    "checkpoint.write": ("truncate",),
    "ga.generation": ("interrupt",),
    "dataset.train.wave": ("interrupt",),
}


@dataclass
class ChaosReport:
    """Outcome of one chaos experiment (JSON-ready via :meth:`to_dict`)."""

    seed: int
    match: bool
    restarts: int
    injected: list[dict]
    plan: dict
    baseline_sha256: str
    faulted_sha256: str
    baseline_seconds: float
    faulted_seconds: float
    design: str = "m0"
    scale: str = "tiny"
    engine: str = "packed"
    workers: int = 2
    out_dir: str | None = None
    stages: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "match": self.match,
            "restarts": self.restarts,
            "injected": self.injected,
            "plan": self.plan,
            "baseline_sha256": self.baseline_sha256,
            "faulted_sha256": self.faulted_sha256,
            "baseline_seconds": self.baseline_seconds,
            "faulted_seconds": self.faulted_seconds,
            "design": self.design,
            "scale": self.scale,
            "engine": self.engine,
            "workers": self.workers,
            "out_dir": self.out_dir,
            "stages": self.stages,
        }

    def render(self) -> str:
        lines = [
            f"chaos seed {self.seed}: "
            + ("MATCH — faulted run is bit-identical" if self.match
               else "MISMATCH — faulted run diverged"),
            f"  design {self.design} · scale {self.scale} · engine "
            f"{self.engine} · workers {self.workers}",
            f"  faults injected: {len(self.injected)}  "
            f"stage restarts: {self.restarts}",
            f"  baseline {self.baseline_seconds:.2f}s  "
            f"faulted {self.faulted_seconds:.2f}s",
            f"  model sha256 {self.baseline_sha256[:16]} vs "
            f"{self.faulted_sha256[:16]}",
        ]
        for site, kind, at in sorted(
            (f["site"], f["kind"], f["at"]) for f in self.injected
        ):
            lines.append(f"    {site:<18} {kind:<12} arrival {at}")
        return "\n".join(lines)


def _model_sha256(qmodel) -> str:
    """Content hash over every array/scalar the artifact persists."""
    h = hashlib.sha256()
    for arr in (
        np.asarray(qmodel.proxies, dtype=np.int64),
        np.asarray(qmodel.int_weights, dtype=np.int64),
        np.asarray([qmodel.int_intercept], dtype=np.int64),
        np.asarray([qmodel.step], dtype=np.float64),
        np.asarray([qmodel.bits], dtype=np.int64),
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _models_equal(a, b) -> bool:
    return (
        np.array_equal(a.proxies, b.proxies)
        and np.array_equal(a.int_weights, b.int_weights)
        and a.int_intercept == b.int_intercept
        and a.step == b.step
        and a.bits == b.bits
    )


def _restartable(fn, counters: dict, label: str, max_restarts: int):
    """Crash-restart driver: re-enter ``fn(resume=True)`` on interrupts.

    ``fn(resume)`` is one pipeline stage; an escaped
    :class:`TransientFault` models the process dying at a stage
    boundary, and the re-entry models the operator (or supervisor)
    restarting it — which resumes from the newest checkpoint.
    """
    for attempt in range(max_restarts + 1):
        try:
            return fn(resume=attempt > 0)
        except TransientFault:
            counters["restarts"] += 1
            counters.setdefault("by_stage", {}).setdefault(label, 0)
            counters["by_stage"][label] += 1
    raise ResilienceError(
        f"stage {label!r} did not complete within {max_restarts} restarts"
    )


def _pipeline(
    core,
    scale,
    seed: int,
    engine: str,
    workers: int,
    cache,
    checkpoints,
    faults,
    tracer,
    counters: dict,
    max_restarts: int,
    stages: dict | None = None,
):
    """GA -> training dataset -> APOLLO -> quantized model."""
    from repro.core.model import train_apollo
    from repro.core.selection import _abs_corr
    from repro.genbench import (
        BenchmarkEvolver,
        GaConfig,
        build_training_dataset,
    )
    from repro.opm import quantize_model

    def timed(name):
        t0 = time.perf_counter()

        def done():
            if stages is not None:
                stages[name] = round(time.perf_counter() - t0, 4)

        return done

    done = timed("ga")
    cfg = GaConfig(
        population=scale.ga_population,
        generations=scale.ga_generations,
        eval_cycles=scale.ga_benchmark_cycles,
        seed=seed,
    )
    evolver = BenchmarkEvolver(
        core,
        cfg,
        engine=engine,
        tracer=tracer,
        workers=workers,
        cache=cache,
        checkpoints=checkpoints,
        faults=faults,
    )
    try:
        ga = _restartable(
            lambda resume: evolver.run(resume=resume),
            counters, "ga", max_restarts,
        )
    finally:
        evolver.close()
    done()

    done = timed("dataset")
    train = _restartable(
        lambda resume: build_training_dataset(
            core,
            ga,
            target_cycles=scale.train_cycles,
            replay_cycles=scale.ga_benchmark_cycles,
            seed=seed,
            engine=engine,
            workers=workers,
            cache=cache,
            checkpoints=checkpoints,
            faults=faults,
            resume=resume,
        ),
        counters, "dataset", max_restarts,
    )
    done()

    done = timed("train")
    # Correlation screen + MCP selection + ridge relaxation, the same
    # shape ExperimentContext uses (inlined so the chaos pipeline has no
    # hidden disk caches of its own).
    ids = train.candidate_ids
    X = train.features(ids)
    if X.shape[1] > scale.screen_width:
        corr = _abs_corr(X.astype(np.float32), train.labels)
        keep = np.sort(
            np.argsort(-corr, kind="stable")[: scale.screen_width]
        )
        X = X[:, keep]
        ids = ids[keep]
    q = max(4, min(scale.max_quickstart_q, X.shape[1] // 4))
    model = train_apollo(
        np.ascontiguousarray(X),
        train.labels,
        q=q,
        candidate_ids=np.asarray(ids),
        tracer=tracer,
    )
    qmodel = quantize_model(model)
    done()
    return qmodel


def run_chaos(
    seed: int = 0,
    design: str = "m0",
    scale: str | None = "tiny",
    engine: str = "packed",
    workers: int = 2,
    out_dir: str | Path | None = None,
    plan: FaultPlan | None = None,
    n_faults: int = 6,
    max_at: int = 3,
    tracer=None,
) -> ChaosReport:
    """Run the faulted-vs-clean pipeline comparison; see module docs.

    Parameters
    ----------
    seed:
        Seeds both the pipeline (GA etc.) and, when ``plan`` is not
        given, the random :class:`FaultPlan` — the whole experiment is
        reproducible from this one number.
    design, scale, engine, workers:
        Pipeline configuration for both runs.  The baseline runs
        serial/uncached regardless of ``workers``; the faulted run uses
        the full parallel+cache+checkpoint machinery.
    out_dir:
        Where checkpoints, the cache tier, the report JSON, and the run
        manifest land.  A temporary directory is used when omitted.
    plan:
        Explicit :class:`FaultPlan`; default is
        ``FaultPlan.random(seed, sites=CHAOS_SITES, ...)``.
    """
    import tempfile

    from repro.config import get_scale
    from repro.design import build_core
    from repro.obs.provenance import RunManifest, config_hash
    from repro.parallel.cache import EvalCache
    from repro.uarch import A77_LIKE, M0_LIKE, N1_LIKE

    params = {"m0": M0_LIKE, "n1": N1_LIKE, "a77": A77_LIKE}.get(design)
    if params is None:
        raise ResilienceError(f"unknown design {design!r}")
    scale_obj = get_scale(scale if isinstance(scale, str) else None)
    tracer = tracer or NULL_TRACER
    core = build_core(params)
    plan = plan or FaultPlan.random(
        seed, sites=CHAOS_SITES, n_faults=n_faults, max_at=max_at
    )
    # Every scheduled fault can fire at most once, so interrupts (the
    # only kind that escapes a stage) bound the restart count.
    max_restarts = len(plan.faults) + 1

    tmp = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="apollo-chaos-")
        out_dir = tmp.name
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    try:
        t0 = time.perf_counter()
        baseline = _pipeline(
            core, scale_obj, seed, engine,
            workers=1, cache=None, checkpoints=None, faults=None,
            tracer=tracer, counters={"restarts": 0}, max_restarts=0,
        )
        baseline_s = time.perf_counter() - t0

        injector = FaultInjector(plan)
        checkpoints = CheckpointStore(
            out / "checkpoints", tracer=tracer, faults=injector
        )
        cache = EvalCache(disk_dir=out / "cache", faults=injector)
        counters: dict = {"restarts": 0}
        stages: dict = {}
        t0 = time.perf_counter()
        faulted = _pipeline(
            core, scale_obj, seed, engine,
            workers=workers, cache=cache, checkpoints=checkpoints,
            faults=injector, tracer=tracer, counters=counters,
            max_restarts=max_restarts, stages=stages,
        )
        faulted_s = time.perf_counter() - t0

        report = ChaosReport(
            seed=seed,
            match=_models_equal(baseline, faulted),
            restarts=counters["restarts"],
            injected=[
                {"site": site, "kind": kind, "at": at}
                for site, kind, at in injector.fired
            ],
            plan=plan.to_dict(),
            baseline_sha256=_model_sha256(baseline),
            faulted_sha256=_model_sha256(faulted),
            baseline_seconds=round(baseline_s, 4),
            faulted_seconds=round(faulted_s, 4),
            design=design,
            scale=scale_obj.name,
            engine=engine,
            workers=workers,
            out_dir=None if tmp is not None else str(out),
            stages=stages,
        )

        manifest = RunManifest(
            run="chaos",
            design=design,
            scale=scale_obj.name,
            seed=seed,
            engine=engine,
            config={"workers": workers, "n_faults": len(plan.faults)},
            extra={
                "match": report.match,
                "restarts": report.restarts,
                "config_hash": config_hash(plan.to_dict()),
            },
        )
        manifest.record_fault_plan(injector)
        for name, wall in stages.items():
            manifest.add_stage(name, wall)
        manifest.save(out / "chaos.manifest.json")
        (out / "chaos.report.json").write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()
