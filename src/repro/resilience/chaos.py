"""End-to-end chaos harness: a faulted pipeline must match a clean one.

:func:`run_chaos` runs the training pipeline (GA micro-benchmark
evolution -> training-dataset collection -> APOLLO selection/relaxation
-> fixed-point quantization) twice:

1. a **baseline** run — serial, no faults, no checkpoints;
2. a **faulted** run — checkpointed, cached, worker-pooled, and driven
   under a seeded :class:`~repro.resilience.faults.FaultPlan` that
   kills workers, raises transients, tears checkpoint writes, corrupts
   cache entries, and interrupts stage boundaries.  Every interrupt is
   handled the way production would handle a crashed process: the stage
   is re-entered with ``resume=True`` and continues from its newest
   verifying checkpoint.

The harness then compares the two quantized models **bit for bit**.
A match is the whole point of the resilience layer: faults may cost
time, but they may never change the answer.  The ``apollo-repro chaos``
subcommand wraps this function; chaos property tests drive it (and the
individual fault sites) directly.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import AdmissionError, ResilienceError, TransientFault
from repro.obs.trace import NULL_TRACER
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector, FaultPlan

__all__ = [
    "CHAOS_SITES",
    "SERVE_CHAOS_SITES",
    "ChaosReport",
    "ServeChaosReport",
    "run_chaos",
    "run_chaos_serve",
]

#: Fault sites a default chaos plan draws from — exactly the ones the
#: GA + dataset + training pipeline passes through.
CHAOS_SITES: dict[str, tuple[str, ...]] = {
    "pool.map": ("kill_worker", "transient"),
    "cache.read": ("corrupt",),
    "cache.write": ("transient",),
    "checkpoint.write": ("truncate",),
    "ga.generation": ("interrupt",),
    "dataset.train.wave": ("interrupt",),
}

#: Fault sites a serve chaos plan draws from — the serving hot path.
#: ``serve.tick`` fires inside the gateway between gather and apply
#: (the loss-free failover window), ``pool.map`` inside the worker
#: pool, ``stream.source`` on pull-session source pulls, and
#: ``serve.admission`` is fired by the chaos driver itself to flood
#: the gateway with best-effort opens mid-load.
SERVE_CHAOS_SITES: dict[str, tuple[str, ...]] = {
    "serve.tick": ("kill_shard", "slab_overflow"),
    "pool.map": ("kill_worker",),
    "stream.source": ("stall",),
    "serve.admission": ("flood",),
}


@dataclass
class ChaosReport:
    """Outcome of one chaos experiment (JSON-ready via :meth:`to_dict`)."""

    seed: int
    match: bool
    restarts: int
    injected: list[dict]
    plan: dict
    baseline_sha256: str
    faulted_sha256: str
    baseline_seconds: float
    faulted_seconds: float
    design: str = "m0"
    scale: str = "tiny"
    engine: str = "packed"
    workers: int = 2
    out_dir: str | None = None
    stages: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "match": self.match,
            "restarts": self.restarts,
            "injected": self.injected,
            "plan": self.plan,
            "baseline_sha256": self.baseline_sha256,
            "faulted_sha256": self.faulted_sha256,
            "baseline_seconds": self.baseline_seconds,
            "faulted_seconds": self.faulted_seconds,
            "design": self.design,
            "scale": self.scale,
            "engine": self.engine,
            "workers": self.workers,
            "out_dir": self.out_dir,
            "stages": self.stages,
        }

    def render(self) -> str:
        lines = [
            f"chaos seed {self.seed}: "
            + ("MATCH — faulted run is bit-identical" if self.match
               else "MISMATCH — faulted run diverged"),
            f"  design {self.design} · scale {self.scale} · engine "
            f"{self.engine} · workers {self.workers}",
            f"  faults injected: {len(self.injected)}  "
            f"stage restarts: {self.restarts}",
            f"  baseline {self.baseline_seconds:.2f}s  "
            f"faulted {self.faulted_seconds:.2f}s",
            f"  model sha256 {self.baseline_sha256[:16]} vs "
            f"{self.faulted_sha256[:16]}",
        ]
        for site, kind, at in sorted(
            (f["site"], f["kind"], f["at"]) for f in self.injected
        ):
            lines.append(f"    {site:<18} {kind:<12} arrival {at}")
        return "\n".join(lines)


def _model_sha256(qmodel) -> str:
    """Content hash over every array/scalar the artifact persists."""
    h = hashlib.sha256()
    for arr in (
        np.asarray(qmodel.proxies, dtype=np.int64),
        np.asarray(qmodel.int_weights, dtype=np.int64),
        np.asarray([qmodel.int_intercept], dtype=np.int64),
        np.asarray([qmodel.step], dtype=np.float64),
        np.asarray([qmodel.bits], dtype=np.int64),
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _models_equal(a, b) -> bool:
    return (
        np.array_equal(a.proxies, b.proxies)
        and np.array_equal(a.int_weights, b.int_weights)
        and a.int_intercept == b.int_intercept
        and a.step == b.step
        and a.bits == b.bits
    )


def _restartable(fn, counters: dict, label: str, max_restarts: int):
    """Crash-restart driver: re-enter ``fn(resume=True)`` on interrupts.

    ``fn(resume)`` is one pipeline stage; an escaped
    :class:`TransientFault` models the process dying at a stage
    boundary, and the re-entry models the operator (or supervisor)
    restarting it — which resumes from the newest checkpoint.
    """
    for attempt in range(max_restarts + 1):
        try:
            return fn(resume=attempt > 0)
        except TransientFault:
            counters["restarts"] += 1
            counters.setdefault("by_stage", {}).setdefault(label, 0)
            counters["by_stage"][label] += 1
    raise ResilienceError(
        f"stage {label!r} did not complete within {max_restarts} restarts"
    )


def _pipeline(
    core,
    scale,
    seed: int,
    engine: str,
    workers: int,
    cache,
    checkpoints,
    faults,
    tracer,
    counters: dict,
    max_restarts: int,
    stages: dict | None = None,
):
    """GA -> training dataset -> APOLLO -> quantized model."""
    from repro.core.model import train_apollo
    from repro.core.selection import _abs_corr
    from repro.genbench import (
        BenchmarkEvolver,
        GaConfig,
        build_training_dataset,
    )
    from repro.opm import quantize_model

    def timed(name):
        t0 = time.perf_counter()

        def done():
            if stages is not None:
                stages[name] = round(time.perf_counter() - t0, 4)

        return done

    done = timed("ga")
    cfg = GaConfig(
        population=scale.ga_population,
        generations=scale.ga_generations,
        eval_cycles=scale.ga_benchmark_cycles,
        seed=seed,
    )
    evolver = BenchmarkEvolver(
        core,
        cfg,
        engine=engine,
        tracer=tracer,
        workers=workers,
        cache=cache,
        checkpoints=checkpoints,
        faults=faults,
    )
    try:
        ga = _restartable(
            lambda resume: evolver.run(resume=resume),
            counters, "ga", max_restarts,
        )
    finally:
        evolver.close()
    done()

    done = timed("dataset")
    train = _restartable(
        lambda resume: build_training_dataset(
            core,
            ga,
            target_cycles=scale.train_cycles,
            replay_cycles=scale.ga_benchmark_cycles,
            seed=seed,
            engine=engine,
            workers=workers,
            cache=cache,
            checkpoints=checkpoints,
            faults=faults,
            resume=resume,
        ),
        counters, "dataset", max_restarts,
    )
    done()

    done = timed("train")
    # Correlation screen + MCP selection + ridge relaxation, the same
    # shape ExperimentContext uses (inlined so the chaos pipeline has no
    # hidden disk caches of its own).
    ids = train.candidate_ids
    X = train.features(ids)
    if X.shape[1] > scale.screen_width:
        corr = _abs_corr(X.astype(np.float32), train.labels)
        keep = np.sort(
            np.argsort(-corr, kind="stable")[: scale.screen_width]
        )
        X = X[:, keep]
        ids = ids[keep]
    q = max(4, min(scale.max_quickstart_q, X.shape[1] // 4))
    model = train_apollo(
        np.ascontiguousarray(X),
        train.labels,
        q=q,
        candidate_ids=np.asarray(ids),
        tracer=tracer,
    )
    qmodel = quantize_model(model)
    done()
    return qmodel


def run_chaos(
    seed: int = 0,
    design: str = "m0",
    scale: str | None = "tiny",
    engine: str = "packed",
    workers: int = 2,
    out_dir: str | Path | None = None,
    plan: FaultPlan | None = None,
    n_faults: int = 6,
    max_at: int = 3,
    tracer=None,
) -> ChaosReport:
    """Run the faulted-vs-clean pipeline comparison; see module docs.

    Parameters
    ----------
    seed:
        Seeds both the pipeline (GA etc.) and, when ``plan`` is not
        given, the random :class:`FaultPlan` — the whole experiment is
        reproducible from this one number.
    design, scale, engine, workers:
        Pipeline configuration for both runs.  The baseline runs
        serial/uncached regardless of ``workers``; the faulted run uses
        the full parallel+cache+checkpoint machinery.
    out_dir:
        Where checkpoints, the cache tier, the report JSON, and the run
        manifest land.  A temporary directory is used when omitted.
    plan:
        Explicit :class:`FaultPlan`; default is
        ``FaultPlan.random(seed, sites=CHAOS_SITES, ...)``.
    """
    import tempfile

    from repro.config import get_scale
    from repro.design import build_core
    from repro.obs.provenance import RunManifest, config_hash
    from repro.parallel.cache import EvalCache
    from repro.uarch import A77_LIKE, M0_LIKE, N1_LIKE

    params = {"m0": M0_LIKE, "n1": N1_LIKE, "a77": A77_LIKE}.get(design)
    if params is None:
        raise ResilienceError(f"unknown design {design!r}")
    scale_obj = get_scale(scale if isinstance(scale, str) else None)
    tracer = tracer or NULL_TRACER
    core = build_core(params)
    plan = plan or FaultPlan.random(
        seed, sites=CHAOS_SITES, n_faults=n_faults, max_at=max_at
    )
    # Every scheduled fault can fire at most once, so interrupts (the
    # only kind that escapes a stage) bound the restart count.
    max_restarts = len(plan.faults) + 1

    tmp = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="apollo-chaos-")
        out_dir = tmp.name
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    try:
        t0 = time.perf_counter()
        baseline = _pipeline(
            core, scale_obj, seed, engine,
            workers=1, cache=None, checkpoints=None, faults=None,
            tracer=tracer, counters={"restarts": 0}, max_restarts=0,
        )
        baseline_s = time.perf_counter() - t0

        injector = FaultInjector(plan)
        checkpoints = CheckpointStore(
            out / "checkpoints", tracer=tracer, faults=injector
        )
        cache = EvalCache(disk_dir=out / "cache", faults=injector)
        counters: dict = {"restarts": 0}
        stages: dict = {}
        t0 = time.perf_counter()
        faulted = _pipeline(
            core, scale_obj, seed, engine,
            workers=workers, cache=cache, checkpoints=checkpoints,
            faults=injector, tracer=tracer, counters=counters,
            max_restarts=max_restarts, stages=stages,
        )
        faulted_s = time.perf_counter() - t0

        report = ChaosReport(
            seed=seed,
            match=_models_equal(baseline, faulted),
            restarts=counters["restarts"],
            injected=[
                {"site": site, "kind": kind, "at": at}
                for site, kind, at in injector.fired
            ],
            plan=plan.to_dict(),
            baseline_sha256=_model_sha256(baseline),
            faulted_sha256=_model_sha256(faulted),
            baseline_seconds=round(baseline_s, 4),
            faulted_seconds=round(faulted_s, 4),
            design=design,
            scale=scale_obj.name,
            engine=engine,
            workers=workers,
            out_dir=None if tmp is not None else str(out),
            stages=stages,
        )

        manifest = RunManifest(
            run="chaos",
            design=design,
            scale=scale_obj.name,
            seed=seed,
            engine=engine,
            config={"workers": workers, "n_faults": len(plan.faults)},
            extra={
                "match": report.match,
                "restarts": report.restarts,
                "config_hash": config_hash(plan.to_dict()),
            },
        )
        manifest.record_fault_plan(injector)
        for name, wall in stages.items():
            manifest.add_stage(name, wall)
        manifest.save(out / "chaos.manifest.json")
        (out / "chaos.report.json").write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()


# ------------------------------------------------------------------ #
# Serving chaos: a faulted fleet must match a fault-free one
# ------------------------------------------------------------------ #

#: Synthetic serving model shape (mirrors the serve demo: no RTL
#: needed to exercise the gateway).
_SERVE_Q = 6
_SERVE_T = 8


@dataclass
class ServeChaosReport:
    """Outcome of one serve chaos experiment (``make chaos-serve``)."""

    seed: int
    match: bool
    mismatches: list[str]
    injected: list[dict]
    plan: dict
    shards: int
    workers: int
    transport: str
    sessions: int
    floods_attempted: int
    floods_shed: int
    floods_admitted: int
    requeued_blocks: int
    seq_gaps: int
    baseline_sha256: str
    faulted_sha256: str
    baseline_seconds: float
    faulted_seconds: float
    out_dir: str | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "match": self.match,
            "mismatches": self.mismatches,
            "injected": self.injected,
            "plan": self.plan,
            "shards": self.shards,
            "workers": self.workers,
            "transport": self.transport,
            "sessions": self.sessions,
            "floods_attempted": self.floods_attempted,
            "floods_shed": self.floods_shed,
            "floods_admitted": self.floods_admitted,
            "requeued_blocks": self.requeued_blocks,
            "seq_gaps": self.seq_gaps,
            "baseline_sha256": self.baseline_sha256,
            "faulted_sha256": self.faulted_sha256,
            "baseline_seconds": self.baseline_seconds,
            "faulted_seconds": self.faulted_seconds,
            "out_dir": self.out_dir,
        }

    def render(self) -> str:
        lines = [
            f"chaos-serve seed {self.seed}: "
            + ("MATCH — faulted fleet is bit-identical" if self.match
               else "MISMATCH — faulted fleet diverged"),
            f"  shards {self.shards} · workers {self.workers} · "
            f"transport {self.transport} · sessions {self.sessions}",
            f"  faults injected: {len(self.injected)}  "
            f"requeued blocks: {self.requeued_blocks}  "
            f"seq gaps: {self.seq_gaps}",
            f"  admission floods: {self.floods_attempted} attempted, "
            f"{self.floods_shed} shed, {self.floods_admitted} admitted",
            f"  baseline {self.baseline_seconds:.2f}s  "
            f"faulted {self.faulted_seconds:.2f}s",
            f"  report sha256 {self.baseline_sha256[:16]} vs "
            f"{self.faulted_sha256[:16]}",
        ]
        for site, kind, at in sorted(
            (f["site"], f["kind"], f["at"]) for f in self.injected
        ):
            lines.append(f"    {site:<18} {kind:<14} arrival {at}")
        for reason in self.mismatches:
            lines.append(f"    MISMATCH: {reason}")
        return "\n".join(lines)


class _ArraySource:
    """Replay pre-planned toggle chunks as a pull-mode stream source."""

    def __init__(self, chunks) -> None:
        self.chunks = list(chunks)

    def __iter__(self):
        from repro.stream.source import ProxyBlock

        start = 0
        last_i = len(self.chunks) - 1
        for i, chunk in enumerate(self.chunks):
            yield ProxyBlock(
                start_cycle=start, toggles=chunk, last=i == last_i
            )
            start += chunk.shape[0]


def _serve_model(seed: int, bits: int = 8):
    """Tiny synthetic quantized model (same shape the serve demo uses)."""
    from repro.opm.quantize import QuantizedModel

    rng = np.random.default_rng(seed)
    limit = (1 << (bits - 1)) - 1
    return QuantizedModel(
        proxies=np.arange(_SERVE_Q, dtype=np.int64),
        int_weights=rng.integers(1, limit, size=_SERVE_Q).astype(np.int64),
        int_intercept=5,
        step=0.01,
        bits=bits,
    )


def _drive_serve(
    seed: int,
    push_plans,
    pull_plans,
    shards: int,
    workers: int,
    transport: str,
    admission_cfg,
    injector,
    tracer,
) -> dict:
    """Drive one gateway over the shared plans; return everything the
    comparison needs.  ``injector=None`` is the fault-free baseline;
    with an injector the gateway, pool, and pull sources all pass
    through it and the driver floods admission on schedule."""
    from repro.parallel.pool import WorkerPool
    from repro.parallel.shm import leaked_segments
    from repro.serve.gateway import Gateway
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry()
    registry.publish("v1", _serve_model(seed), activate=True)

    floods_attempted = floods_shed = floods_admitted = 0
    pool = WorkerPool(
        workers=workers, tracer=tracer, transport=transport,
        faults=injector,
    )
    gateway = Gateway(
        registry,
        n_shards=shards,
        t=_SERVE_T,
        pool=pool,
        tracer=tracer,
        admission=admission_cfg,
        faults=injector,
    )

    handles = []
    for p in push_plans:
        handles.append(gateway.open_session(p.core_id))
    for p in pull_plans:
        source = _ArraySource(p.chunks)
        if injector is not None:
            source = injector.wrap_source(source)
        handles.append(gateway.open_session(p.core_id, source=source))

    def flood() -> None:
        nonlocal floods_attempted, floods_shed, floods_admitted
        for spec in injector.fire("serve.admission"):
            if spec.kind != "flood":
                continue
            for _ in range(3):
                floods_attempted += 1
                try:
                    extra = gateway.open_session(f"flood{spec.at}")
                except AdmissionError:
                    floods_shed += 1
                else:
                    # Must not happen under the live-session watermark;
                    # close it so the drain below still terminates and
                    # let the report comparison flag the divergence.
                    floods_admitted += 1
                    gateway.close_session(extra)

    steps = max(len(p.chunks) for p in push_plans)
    for step in range(steps):
        for handle, p in zip(handles, push_plans):
            if step < len(p.chunks):
                gateway.push(
                    handle, p.chunks[step],
                    last=step == len(p.chunks) - 1,
                )
        if injector is not None:
            flood()
        gateway.tick()
    gateway.drain()

    from repro.serve.report import build_report

    fleet = build_report(gateway)
    windows = {h.name: h.pop_windows() for h in handles}
    seq_gaps = requeued = 0
    for h in handles:
        stats = h.session.stats()
        requeued += int(stats.get("requeued_blocks", 0))
        seq_gaps += int(stats.get("seq_gaps", 0))
        if stats.get("take_seq") != stats.get("ingest_seq"):
            seq_gaps += 1
    gateway.close()
    leaked = leaked_segments() if transport == "shm" else []
    return {
        "report": fleet,
        "windows": windows,
        "handles": [h.name for h in handles],
        "floods_attempted": floods_attempted,
        "floods_shed": floods_shed,
        "floods_admitted": floods_admitted,
        "requeued_blocks": requeued,
        "seq_gaps": seq_gaps,
        "leaked": list(leaked),
    }


def _normalized_report(fleet) -> dict:
    """Fleet report dict minus the fields faults legitimately change.

    ``ticks`` (recovery costs extra ticks), ``shard_respawns`` (the
    whole point of a kill), and per-session ``health`` (a healed stall
    may leave a session degraded) — everything else, power totals
    included, must be bit-identical.
    """
    doc = json.loads(json.dumps(fleet.to_dict()))
    doc["totals"].pop("ticks", None)
    doc["totals"].pop("shard_respawns", None)
    for rec in doc.get("ranked", []):
        rec.pop("health", None)
    return doc


def _report_sha256(doc: dict) -> str:
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


def run_chaos_serve(
    seed: int = 0,
    shards: int = 2,
    workers: int = 2,
    transport: str = "pickle",
    out_dir: str | Path | None = None,
    plan: FaultPlan | None = None,
    n_faults: int = 8,
    max_at: int = 4,
    tracer=None,
) -> ServeChaosReport:
    """Serve-layer chaos gate: a faulted fleet must match a clean one.

    Drives the same seeded load (six push sessions and two pull
    sessions, closed-loop) through two gateways:

    1. a **baseline** — no faults, admission control active;
    2. a **faulted** run under a seeded :class:`FaultPlan` drawn from
       :data:`SERVE_CHAOS_SITES`: shards killed *between* gather and
       apply (stranding in-flight blocks), pool workers SIGKILLed,
       pull sources stalled, shm slabs forced to overflow, and the
       admission layer flooded with best-effort opens mid-load.

    The gate then asserts, bit for bit:

    * the two fleet reports are identical once the fields faults
      legitimately change (ticks, respawns, health) are stripped —
      power totals, per-session energy, cycles, and windows included;
    * every session's streamed windows equal the baseline's **and** an
      offline :class:`~repro.opm.meter.OpmMeter` over the same planned
      stimulus;
    * no session saw a sequence gap (``take_seq == ingest_seq``,
      ``seq_gaps == 0`` — loss-free failover);
    * every flood open was shed and no shared-memory segment leaked.
    """
    from repro.obs.provenance import RunManifest, config_hash
    from repro.obs.trace import NULL_TRACER as _NULL
    from repro.serve.admission import AdmissionConfig
    from repro.serve.loadgen import LoadGenConfig
    from repro.serve.loadgen import plan as load_plan

    tracer = tracer or _NULL
    plan = plan or FaultPlan.random(
        seed, sites=SERVE_CHAOS_SITES, n_faults=n_faults, max_at=max_at
    )
    n_push, n_pull = 6, 2
    push_plans = load_plan(
        LoadGenConfig(
            n_sessions=n_push, cycles=192, chunk_cycles=32, seed=seed,
        ),
        _SERVE_Q,
    )
    pull_plans = load_plan(
        LoadGenConfig(
            n_sessions=n_pull, cycles=192, chunk_cycles=32,
            seed=seed + 1000, n_cores=2,
        ),
        _SERVE_Q,
    )
    admission_cfg = AdmissionConfig(
        open_rate=8.0,
        open_burst=16,
        push_rate=64.0,
        push_burst=128,
        max_live_sessions=n_push + n_pull,
    )

    tmp = None
    if out_dir is None:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="apollo-chaos-serve-")
        out_dir = tmp.name
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    try:
        t0 = time.perf_counter()
        baseline = _drive_serve(
            seed, push_plans, pull_plans, shards, workers, transport,
            admission_cfg, injector=None, tracer=tracer,
        )
        baseline_s = time.perf_counter() - t0

        injector = FaultInjector(plan)
        t0 = time.perf_counter()
        faulted = _drive_serve(
            seed, push_plans, pull_plans, shards, workers, transport,
            admission_cfg, injector=injector, tracer=tracer,
        )
        faulted_s = time.perf_counter() - t0

        mismatches: list[str] = []
        base_doc = _normalized_report(baseline["report"])
        fault_doc = _normalized_report(faulted["report"])
        if base_doc != fault_doc:
            mismatches.append("fleet report diverged from baseline")
        if baseline["handles"] != faulted["handles"]:
            mismatches.append("session names diverged (shed opens leaked "
                              "into the open sequence)")
        # Per-session windows: faulted == baseline == offline meter.
        from repro.opm.meter import OpmMeter

        meter = OpmMeter(_serve_model(seed), t=_SERVE_T)
        all_plans = list(push_plans) + list(pull_plans)
        for name, p in zip(faulted["handles"], all_plans):
            offline = meter.read(p.stimulus)
            got = faulted["windows"].get(name)
            base = baseline["windows"].get(name)
            if got is None or not np.array_equal(got, base):
                mismatches.append(
                    f"{name}: faulted windows diverge from baseline"
                )
            elif not np.array_equal(got, offline):
                mismatches.append(
                    f"{name}: faulted windows diverge from offline meter"
                )
        if faulted["seq_gaps"]:
            mismatches.append(
                f"{faulted['seq_gaps']} session sequence gaps (failover "
                "lost or double-counted blocks)"
            )
        if faulted["floods_admitted"]:
            mismatches.append(
                f"{faulted['floods_admitted']} flood opens admitted past "
                "the live-session watermark"
            )
        if any(s.kind == "flood" for s in plan.faults) and (
            faulted["floods_attempted"] == 0
        ):
            mismatches.append("flood faults planned but never attempted")
        for run_name, res in (("baseline", baseline), ("faulted", faulted)):
            if res["leaked"]:
                mismatches.append(
                    f"{run_name} leaked shm segments: {res['leaked']}"
                )

        report = ServeChaosReport(
            seed=seed,
            match=not mismatches,
            mismatches=mismatches,
            injected=[
                {"site": site, "kind": kind, "at": at}
                for site, kind, at in injector.fired
            ],
            plan=plan.to_dict(),
            shards=shards,
            workers=workers,
            transport=transport,
            sessions=len(faulted["handles"]),
            floods_attempted=faulted["floods_attempted"],
            floods_shed=faulted["floods_shed"],
            floods_admitted=faulted["floods_admitted"],
            requeued_blocks=faulted["requeued_blocks"],
            seq_gaps=faulted["seq_gaps"],
            baseline_sha256=_report_sha256(base_doc),
            faulted_sha256=_report_sha256(fault_doc),
            baseline_seconds=round(baseline_s, 4),
            faulted_seconds=round(faulted_s, 4),
            out_dir=None if tmp is not None else str(out),
        )

        manifest = RunManifest(
            run="chaos-serve",
            design="synthetic",
            scale="serve",
            seed=seed,
            engine=transport,
            config={
                "shards": shards,
                "workers": workers,
                "n_faults": len(plan.faults),
            },
            extra={
                "match": report.match,
                "requeued_blocks": report.requeued_blocks,
                "config_hash": config_hash(plan.to_dict()),
            },
        )
        manifest.record_fault_plan(injector)
        manifest.save(out / "chaos-serve.manifest.json")
        (out / "chaos-serve.report.json").write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()
