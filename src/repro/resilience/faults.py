"""Deterministic fault injection for the training pipeline.

A :class:`FaultPlan` is a seeded, JSON-serializable list of
:class:`FaultSpec` entries — *which* failure to inject (``kind``),
*where* (``site``), and at which arrival count (``at``).  A
:class:`FaultInjector` executes a plan: components call
``injector.fire(site)`` at their fault points, and the injector returns
the specs scheduled for that exact arrival.  The same seed always
produces the same plan and the same firing sequence, so every chaos
test is a reproducible experiment, not a flake generator.

Sites and kinds currently wired through the pipeline:

====================  ==========================================================
``pool.map``          ``kill_worker`` (SIGKILL one live worker),
                      ``transient`` (raise before dispatch)
``cache.read``        ``corrupt`` (truncate the disk entry first)
``cache.write``       ``transient`` (I/O error; retried by policy)
``checkpoint.write``  ``truncate`` (torn payload), ``transient``
``stream.source``     ``stall`` (``duration`` empty pulls), ``transient``
``ga.generation``     ``interrupt`` (simulated crash at a stage boundary)
``dataset.train.wave``  ``interrupt`` (likewise ``dataset.test.wave``)
``tune.wave``         ``interrupt``
``experiments.wave``  ``interrupt``
====================  ==========================================================

``transient`` and ``interrupt`` both raise
:class:`~repro.errors.TransientFault`; the distinction is semantic —
transients are retried in place, interrupts model a killed process that
a later run resumes from checkpoint.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ResilienceError, TransientFault
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultySource",
    "truncate_file",
]

#: site -> kinds a random plan may schedule there.
DEFAULT_SITES: dict[str, tuple[str, ...]] = {
    "pool.map": ("kill_worker", "transient"),
    "cache.read": ("corrupt",),
    "cache.write": ("transient",),
    "checkpoint.write": ("truncate",),
    "stream.source": ("stall", "transient"),
    "ga.generation": ("interrupt",),
    "dataset.train.wave": ("interrupt",),
    "dataset.test.wave": ("interrupt",),
    "tune.wave": ("interrupt",),
}


def truncate_file(path: str | Path, keep_frac: float = 0.5) -> None:
    """Chop a file to a prefix of itself (a simulated torn write)."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "rb+") as fh:
        fh.truncate(max(1, int(size * keep_frac)))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` at the ``at``-th arrival of ``site``."""

    site: str
    kind: str
    at: int
    duration: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ResilienceError("fault arrival counts are 1-based")
        if self.duration < 1:
            raise ResilienceError("fault duration must be >= 1")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of scheduled faults."""

    seed: int
    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def random(
        cls,
        seed: int,
        sites: dict[str, tuple[str, ...]] | None = None,
        n_faults: int = 6,
        max_at: int = 3,
    ) -> "FaultPlan":
        """Draw a deterministic plan from ``seed``.

        Every (site, kind) pair in ``sites`` is eligible; ``n_faults``
        draws pick a pair and a 1-based arrival in ``[1, max_at]``.
        Duplicate (site, at) draws collapse to the first.
        """
        sites = DEFAULT_SITES if sites is None else sites
        pairs = [
            (site, kind)
            for site in sorted(sites)
            for kind in sites[site]
        ]
        if not pairs:
            raise ResilienceError("fault plan needs at least one site")
        rng = np.random.default_rng(seed)
        chosen: dict[tuple[str, int], FaultSpec] = {}
        for _ in range(n_faults):
            site, kind = pairs[int(rng.integers(len(pairs)))]
            at = int(rng.integers(1, max_at + 1))
            duration = (
                int(rng.integers(1, 4)) if kind == "stall" else 1
            )
            chosen.setdefault(
                (site, at),
                FaultSpec(site=site, kind=kind, at=at, duration=duration),
            )
        faults = tuple(
            sorted(chosen.values(), key=lambda s: (s.site, s.at))
        )
        return cls(seed=seed, faults=faults)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(
                FaultSpec(
                    site=str(s["site"]),
                    kind=str(s["kind"]),
                    at=int(s["at"]),
                    duration=int(s.get("duration", 1)),
                )
                for s in data.get("faults", [])
            ),
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` against named fault points.

    Components call :meth:`fire` (or the raising shorthand
    :meth:`raise_if`) each time execution passes their fault point; the
    injector matches the per-site arrival count against the plan.  A
    ``None``-plan injector is inert and always safe to call.
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.plan = plan or FaultPlan(seed=0)
        self.metrics = metrics if metrics is not None else default_registry()
        self._counts: dict[str, int] = {}
        #: (site, kind, arrival) log of every fault actually injected.
        self.fired: list[tuple[str, str, int]] = []

    def fire(self, site: str) -> list[FaultSpec]:
        """Register one arrival at ``site``; return its scheduled faults."""
        n = self._counts.get(site, 0) + 1
        self._counts[site] = n
        specs = [
            s for s in self.plan.faults if s.site == site and s.at == n
        ]
        for s in specs:
            self.fired.append((site, s.kind, n))
            self.metrics.counter("resilience.faults.injected").inc()
        return specs

    def raise_if(self, site: str) -> list[FaultSpec]:
        """:meth:`fire`, raising on ``transient``/``interrupt`` kinds.

        Returns the fired specs so callers can also apply non-raising
        kinds (``truncate``, ``corrupt``) in the same arrival.
        """
        specs = self.fire(site)
        for s in specs:
            if s.kind in ("transient", "interrupt"):
                raise TransientFault(
                    f"injected {s.kind} fault at {site} (arrival {s.at})"
                )
        return specs

    def kill_one_worker(self, executor) -> bool:
        """SIGKILL one live process of a ``ProcessPoolExecutor``."""
        procs = list(getattr(executor, "_processes", {}).values())
        if not any(p.is_alive() for p in procs):
            # Executors spawn workers lazily on first submit; force one
            # up so the kill lands on a real process, not thin air.
            executor.submit(os.getpid).result()
            procs = list(getattr(executor, "_processes", {}).values())
        for proc in procs:
            if proc.is_alive() and proc.pid:
                os.kill(proc.pid, signal.SIGKILL)
                return True
        return False

    def wrap_source(self, source, site: str = "stream.source"):
        """Wrap a stream source so its pulls pass through this injector."""
        return FaultySource(source, self, site=site)

    def summary(self) -> dict:
        """JSON-ready record of the plan and what actually fired."""
        return {
            "plan": self.plan.to_dict(),
            "fired": [
                {"site": site, "kind": kind, "at": at}
                for site, kind, at in self.fired
            ],
        }


class FaultySource:
    """A stream source whose pulls pass through a fault injector.

    ``stall`` faults make the next ``duration`` pulls raise
    :class:`TransientFault` without consuming the underlying source —
    the data is late, never lost — and ``transient`` faults raise once.
    """

    def __init__(
        self, source, injector: FaultInjector, site: str = "stream.source"
    ) -> None:
        self.source = source
        self.injector = injector
        self.site = site

    def __iter__(self):
        return _FaultyIterator(iter(self.source), self.injector, self.site)


class _FaultyIterator:
    def __init__(self, it, injector: FaultInjector, site: str) -> None:
        self._it = it
        self._injector = injector
        self._site = site
        self._stall = 0

    def __iter__(self):
        return self

    def __next__(self):
        for spec in self._injector.fire(self._site):
            if spec.kind == "stall":
                self._stall += spec.duration
            elif spec.kind == "transient":
                raise TransientFault(
                    f"injected transient fault at {self._site} "
                    f"(arrival {spec.at})"
                )
        if self._stall > 0:
            self._stall -= 1
            raise TransientFault(f"injected stall at {self._site}")
        return next(self._it)
