"""Bounded, deterministic retries and a shared health-state machine.

:class:`RetryPolicy` retries transient failures a bounded number of
times with a *deterministic* backoff schedule (no jitter — reproducible
runs are the repo's core contract), publishing ``resilience.retry.*``
counters and a ``resilience.retry`` span per retried call through
:mod:`repro.obs`.  When attempts are exhausted the **original**
exception propagates unchanged, so callers' error handling never has to
unwrap a policy-specific wrapper.

:class:`HealthState` is the three-state machine (``ok -> degraded ->
failed``) that replaces the ad-hoc ``degraded`` booleans previously
scattered through :class:`~repro.parallel.pool.WorkerPool` and
:class:`~repro.stream.session.StreamSession`: *degraded* means the
component lost capacity but still produces correct output (serial
fallback, T-cycle-only readings) and may recover; *failed* is terminal
until an explicit :meth:`HealthState.reset`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import ResilienceError, TransientFault
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import NULL_TRACER

__all__ = ["RetryPolicy", "Health", "HealthState"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with a deterministic exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (``1`` means "no retries").
    base_delay, multiplier, max_delay:
        Delay before retry ``k`` (1-based) is
        ``min(base_delay * multiplier**(k-1), max_delay)`` seconds —
        fully determined by the policy, never randomized.
    retry_on:
        Exception types considered transient.  Anything else propagates
        immediately.
    sleep:
        Injectable clock for tests; defaults to :func:`time.sleep`.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 1.0
    retry_on: tuple[type[BaseException], ...] = (
        TransientFault,
        OSError,
    )
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("delays must be >= 0")

    def delays(self) -> list[float]:
        """The deterministic backoff schedule (one entry per retry)."""
        return [
            min(self.base_delay * self.multiplier ** k, self.max_delay)
            for k in range(self.max_attempts - 1)
        ]

    def call(
        self,
        fn: Callable,
        *args,
        label: str = "call",
        metrics: MetricsRegistry | None = None,
        tracer=None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)`` under this policy.

        ``on_retry(attempt, exc)`` runs before each re-attempt — the
        hook components use to rebuild broken state (re-spawn a pool,
        reopen a file) between tries.  On exhaustion the last exception
        is re-raised as-is.
        """
        metrics = metrics if metrics is not None else default_registry()
        tracer = tracer or NULL_TRACER
        delays = self.delays()
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            metrics.counter("resilience.retry.attempts").inc()
            try:
                result = fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                metrics.counter("resilience.retry.retries").inc()
                with tracer.span(
                    "resilience.retry",
                    label=label,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                ):
                    delay = delays[attempt - 1]
                    if delay > 0:
                        self.sleep(delay)
                    if on_retry is not None:
                        on_retry(attempt, exc)
                continue
            if attempt > 1:
                metrics.counter("resilience.retry.recovered").inc()
            return result
        metrics.counter("resilience.retry.exhausted").inc()
        assert last is not None
        raise last


class Health(Enum):
    """Component health: correct+full, correct+reduced, or stopped."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass
class HealthState:
    """The ``ok -> degraded -> failed`` machine with transition log.

    ``degrade``/``recover`` move between OK and DEGRADED; ``fail`` is a
    one-way door reopened only by :meth:`reset`.  Every transition is
    recorded (old state, new state, reason), so snapshots and manifests
    can show *why* a component is where it is.
    """

    state: Health = Health.OK
    reason: str | None = None
    transitions: list[tuple[str, str, str]] = field(default_factory=list)
    _listeners: list = field(
        default_factory=list, repr=False, compare=False,
    )

    def subscribe(self, listener) -> None:
        """Register ``listener(old, new, reason)`` to run per transition.

        Observability hooks (the serve flight recorder) subscribe here;
        listener state is excluded from :meth:`as_dict`."""
        self._listeners.append(listener)

    @property
    def ok(self) -> bool:
        return self.state is Health.OK

    @property
    def degraded(self) -> bool:
        return self.state is Health.DEGRADED

    @property
    def failed(self) -> bool:
        return self.state is Health.FAILED

    @property
    def code(self) -> int:
        """Numeric view for gauges: 0 = ok, 1 = degraded, 2 = failed.

        Metric snapshots are plain floats, so routing layers (the serve
        gateway's shard picker) read health as a number; the ordering is
        severity, so ``max`` over codes is the fleet rollup."""
        return {Health.OK: 0, Health.DEGRADED: 1, Health.FAILED: 2}[
            self.state
        ]

    def _move(self, to: Health, reason: str) -> None:
        old = self.state.value
        self.transitions.append((old, to.value, reason))
        self.state = to
        self.reason = reason
        for listener in self._listeners:
            listener(old, to.value, reason)

    def degrade(self, reason: str = "") -> None:
        """OK -> DEGRADED (no-op when already degraded or failed)."""
        if self.state is Health.OK:
            self._move(Health.DEGRADED, reason)

    def recover(self, reason: str = "recovered") -> None:
        """DEGRADED -> OK (failure is sticky; use :meth:`reset`)."""
        if self.state is Health.DEGRADED:
            self._move(Health.OK, reason)

    def fail(self, reason: str = "") -> None:
        """Any state -> FAILED."""
        if self.state is not Health.FAILED:
            self._move(Health.FAILED, reason)

    def reset(self, reason: str = "reset") -> None:
        """Force back to OK from any state (operator intervention)."""
        if self.state is not Health.OK:
            self._move(Health.OK, reason)

    def as_dict(self) -> dict:
        """JSON-ready view for snapshots and manifests."""
        return {
            "state": self.state.value,
            "reason": self.reason,
            "transitions": [list(t) for t in self.transitions],
        }
