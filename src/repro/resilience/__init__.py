"""Resilience layer: checkpoint/resume, fault injection, retries.

Three cooperating pieces make the pipeline survivable without giving up
its bit-exact determinism contract:

- :mod:`repro.resilience.checkpoint` — schema-versioned, hash-verified
  checkpoints (:class:`CheckpointStore`) that let the GA, dataset
  builders, tuning grids, and experiment runner resume an interrupted
  run *bit-identically* to an uninterrupted one.
- :mod:`repro.resilience.faults` — seeded, deterministic fault
  injection (:class:`FaultPlan` / :class:`FaultInjector`) so every
  recovery path is exercised by reproducible chaos tests and the
  ``apollo-repro chaos`` subcommand, not discovered in production.
- :mod:`repro.resilience.retry` — bounded deterministic-backoff
  retries (:class:`RetryPolicy`) and the shared ``ok -> degraded ->
  failed`` :class:`HealthState` machine used by the worker pool and
  stream session.

:mod:`repro.resilience.atomic` provides the single audited
write-tmp/fsync/rename implementation every artifact save goes through.
"""

from repro.resilience.atomic import (
    atomic_save_npz,
    atomic_write,
    atomic_write_bytes,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointStore,
    programs_from_arrays,
    programs_to_arrays,
    restore_rng_state,
    rng_state_meta,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultySource,
    truncate_file,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import Health, HealthState, RetryPolicy

# chaos imports pipeline modules that themselves depend on the layers
# above, so it must come last.
from repro.resilience.chaos import (
    CHAOS_SITES,
    SERVE_CHAOS_SITES,
    ChaosReport,
    ServeChaosReport,
    run_chaos,
    run_chaos_serve,
)

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_save_npz",
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "rng_state_meta",
    "restore_rng_state",
    "programs_to_arrays",
    "programs_from_arrays",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultySource",
    "truncate_file",
    "RetryPolicy",
    "Health",
    "HealthState",
    "CircuitBreaker",
    "CHAOS_SITES",
    "SERVE_CHAOS_SITES",
    "ChaosReport",
    "ServeChaosReport",
    "run_chaos",
    "run_chaos_serve",
]
