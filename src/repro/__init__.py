"""APOLLO (MICRO 2021) reproduction.

Public API re-exports for the common path: build a core, generate
training data, train APOLLO, quantize into an OPM.  Subsystems live in
their own packages (``repro.rtl``, ``repro.power``, ``repro.isa``,
``repro.uarch``, ``repro.design``, ``repro.genbench``, ``repro.core``,
``repro.baselines``, ``repro.opm``, ``repro.flow``,
``repro.experiments``, ``repro.obs``).
"""

from repro.core import (
    ApolloModel,
    ApolloTauModel,
    nmae,
    nrmse,
    pearson,
    r2_score,
    train_apollo,
    train_apollo_tau,
)
from repro.design import build_core
from repro.genbench import (
    BenchmarkEvolver,
    GaConfig,
    build_testing_dataset,
    build_training_dataset,
)
from repro.obs import NULL_TRACER, MetricsRegistry, RunManifest, Tracer
from repro.opm import OpmMeter, build_opm_netlist, quantize_model
from repro.uarch import A77_LIKE, N1_LIKE, CoreParams

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ApolloModel",
    "ApolloTauModel",
    "train_apollo",
    "train_apollo_tau",
    "r2_score",
    "nrmse",
    "nmae",
    "pearson",
    "build_core",
    "BenchmarkEvolver",
    "GaConfig",
    "build_training_dataset",
    "build_testing_dataset",
    "quantize_model",
    "OpmMeter",
    "build_opm_netlist",
    "CoreParams",
    "N1_LIKE",
    "A77_LIKE",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "RunManifest",
]
