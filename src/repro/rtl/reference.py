"""Reference netlist interpreter: slow, obviously-correct semantics.

A direct, per-net, per-cycle Python evaluation of the same netlist
semantics the vectorized :class:`~repro.rtl.simulator.Simulator`
implements.  It exists purely as a differential-testing oracle: property
tests generate random netlists and stimuli and require bit-identical
toggle streams from both engines.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StimulusError
from repro.rtl.cells import Op
from repro.rtl.netlist import NO_NET, Netlist

__all__ = ["ReferenceSimulator"]


class ReferenceSimulator:
    """Evaluate a netlist one net at a time (oracle for tests)."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist

    # ------------------------------------------------------------------ #
    def _eval_net(self, net: int, values: dict[int, int]) -> int:
        nl = self.netlist
        op = nl.op_of(net)
        fanin = nl.fanin_of(net)
        if op == Op.CONST0:
            return 0
        if op == Op.CONST1:
            return 1
        if op in (Op.INPUT, Op.REG, Op.CLK):
            return values[net]  # set elsewhere
        a = values[fanin[0]]
        if op == Op.BUF:
            return a
        if op == Op.NOT:
            return a ^ 1
        b = values[fanin[1]]
        if op == Op.AND:
            return a & b
        if op == Op.OR:
            return a | b
        if op == Op.XOR:
            return a ^ b
        if op == Op.NAND:
            return (a & b) ^ 1
        if op == Op.NOR:
            return (a | b) ^ 1
        if op == Op.XNOR:
            return (a ^ b) ^ 1
        if op == Op.MUX:
            s, x, y = a, b, values[fanin[2]]
            return x if s else y
        raise AssertionError(f"unhandled op {op!r}")  # pragma: no cover

    def _eval_all(self, values: dict[int, int]) -> None:
        """Evaluate combinational nets in id order (ids are topological)."""
        nl = self.netlist
        for net in range(nl.n_nets):
            op = nl.op_of(net)
            if op not in (Op.INPUT, Op.REG, Op.CLK, Op.CONST0, Op.CONST1):
                values[net] = self._eval_net(net, values)
            elif op == Op.CONST0:
                values[net] = 0
            elif op == Op.CONST1:
                values[net] = 1

    def run(self, stimulus: np.ndarray) -> np.ndarray:
        """Simulate and return dense toggles, shape (cycles, n_nets)."""
        nl = self.netlist
        stim = np.asarray(stimulus, dtype=np.uint8)
        if stim.ndim != 2 or stim.shape[1] != len(nl.input_ids):
            raise StimulusError(
                f"stimulus shape {stim.shape} does not match "
                f"{len(nl.input_ids)} inputs"
            )
        input_ids = nl.input_ids
        reg_ids = nl.reg_ids
        reg_init = nl.reg_init_array()

        # Reset evaluation: regs at init, inputs 0.
        values: dict[int, int] = {}
        for rid in reg_ids:
            values[rid] = int(reg_init[rid])
        for iid in input_ids:
            values[iid] = 0
        for dom in nl.domains:
            values[dom.clk_net] = 0  # placeholder; set below
        self._eval_all(values)
        for dom in nl.domains:
            en = 1 if dom.enable is None else values[dom.enable]
            values[dom.clk_net] = en

        toggles = np.zeros((stim.shape[0], nl.n_nets), dtype=np.uint8)
        prev = dict(values)
        for cyc in range(stim.shape[0]):
            cur: dict[int, int] = {}
            # 1. register capture from previous-cycle values.
            for rid in reg_ids:
                dom = nl.domain_of_reg(rid)
                en = 1 if dom.enable is None else prev[dom.enable]
                d = nl.fanin_of(rid)[0]
                cur[rid] = prev[d] if en else prev[rid]
            # 2. stimulus.
            for k, iid in enumerate(input_ids):
                cur[iid] = int(stim[cyc, k])
            # 3. comb eval (placeholders for clk first).
            for dom in nl.domains:
                cur[dom.clk_net] = 0
            self._eval_all(cur)
            # 4. clock values (latched enables).
            for dom in nl.domains:
                en = 1 if dom.enable is None else prev[dom.enable]
                cur[dom.clk_net] = en
            # 5. toggles.
            clk_nets = {d.clk_net for d in nl.domains}
            for net in range(nl.n_nets):
                if net in clk_nets:
                    toggles[cyc, net] = cur[net]
                else:
                    toggles[cyc, net] = cur[net] ^ prev[net]
            prev = cur
        return toggles
