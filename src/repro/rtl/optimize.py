"""Netlist optimization: constant folding and dead-logic elimination.

The OPM generator instantiates adder trees whose operands include the
*constant* bits of quantized weights; real synthesis (the paper uses
Design Compiler) folds those constants away.  This pass reproduces that:

* **constant propagation** — tie cells propagate through gates
  (``AND(x, 0) = 0``, ``OR(x, 1) = 1``, ``XOR(x, 0) = x``, constant-select
  muxes, ...), rewriting gates to buffers/inverters/constants;
* **alias collapsing** — buffers and pass-through gates forward their
  source;
* **dead-logic elimination** — logic not reachable (backwards through
  fanins, register D pins, and clock-gate enables) from the kept outputs
  is dropped.  ``INPUT`` nets are always preserved so the stimulus
  interface is unchanged.

The result is functionally identical on the kept nets — asserted by
differential tests against the unoptimized netlist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError
from repro.rtl.cells import EVAL_OPS, Op
from repro.rtl.netlist import NO_NET, Netlist

__all__ = ["OptimizeResult", "optimize"]


@dataclass
class OptimizeResult:
    """Optimized netlist plus the old-net -> new-net map.

    ``net_map[i]`` is the new id carrying old net ``i``'s value, or -1 if
    the net was eliminated as dead.  Constant-valued nets map to shared
    tie cells.
    """

    netlist: Netlist
    net_map: np.ndarray

    def map_nets(self, nets) -> list[int]:
        out = []
        for n in nets:
            m = int(self.net_map[int(n)])
            if m < 0:
                raise NetlistError(f"net {n} was eliminated as dead")
            out.append(m)
        return out


class _Analysis:
    """Per-net constant value / alias / rewrite decisions."""

    __slots__ = ("const", "alias", "rewrite_op", "rewrite_fanin")

    def __init__(self, n: int) -> None:
        self.const: list[int | None] = [None] * n
        self.alias: list[int | None] = [None] * n
        self.rewrite_op: list[Op | None] = [None] * n
        self.rewrite_fanin: list[tuple[int, ...] | None] = [None] * n


def _resolve(an: _Analysis, net: int) -> tuple[int | None, int]:
    """Follow aliases; return (const value or None, representative net)."""
    seen = 0
    while an.alias[net] is not None:
        net = an.alias[net]
        seen += 1
        if seen > 10_000:  # pragma: no cover - defensive
            raise NetlistError("alias cycle")
    return an.const[net], net


def _analyze(nl: Netlist) -> _Analysis:
    an = _Analysis(nl.n_nets)
    eval_ops = set(EVAL_OPS)
    for i in range(nl.n_nets):
        op = nl.op_of(i)
        if op == Op.CONST0:
            an.const[i] = 0
            continue
        if op == Op.CONST1:
            an.const[i] = 1
            continue
        if op not in eval_ops:
            continue
        fanin = nl.fanin_of(i)
        vals_reps = [_resolve(an, f) for f in fanin]
        consts = [v for v, _r in vals_reps]
        reps = [r for _v, r in vals_reps]

        if op == Op.BUF:
            if consts[0] is not None:
                an.const[i] = consts[0]
            else:
                an.alias[i] = reps[0]
        elif op == Op.NOT:
            if consts[0] is not None:
                an.const[i] = consts[0] ^ 1
            else:
                an.rewrite_fanin[i] = (reps[0],)
        elif op in (Op.AND, Op.NAND):
            inv = 1 if op == Op.NAND else 0
            if 0 in consts:
                an.const[i] = 0 ^ inv
            elif consts[0] == 1 and consts[1] == 1:
                an.const[i] = 1 ^ inv
            elif consts[0] == 1 or consts[1] == 1:
                other = reps[1] if consts[0] == 1 else reps[0]
                if inv:
                    an.rewrite_op[i] = Op.NOT
                    an.rewrite_fanin[i] = (other,)
                else:
                    an.alias[i] = other
            else:
                an.rewrite_fanin[i] = tuple(reps)
        elif op in (Op.OR, Op.NOR):
            inv = 1 if op == Op.NOR else 0
            if 1 in consts:
                an.const[i] = 1 ^ inv
            elif consts[0] == 0 and consts[1] == 0:
                an.const[i] = 0 ^ inv
            elif consts[0] == 0 or consts[1] == 0:
                other = reps[1] if consts[0] == 0 else reps[0]
                if inv:
                    an.rewrite_op[i] = Op.NOT
                    an.rewrite_fanin[i] = (other,)
                else:
                    an.alias[i] = other
            else:
                an.rewrite_fanin[i] = tuple(reps)
        elif op in (Op.XOR, Op.XNOR):
            inv = 1 if op == Op.XNOR else 0
            if consts[0] is not None and consts[1] is not None:
                an.const[i] = consts[0] ^ consts[1] ^ inv
            elif consts[0] is not None or consts[1] is not None:
                c = consts[0] if consts[0] is not None else consts[1]
                other = reps[1] if consts[0] is not None else reps[0]
                eff = c ^ inv
                if eff == 0:
                    an.alias[i] = other
                else:
                    an.rewrite_op[i] = Op.NOT
                    an.rewrite_fanin[i] = (other,)
            elif reps[0] == reps[1]:
                an.const[i] = 0 ^ inv
            else:
                an.rewrite_fanin[i] = tuple(reps)
        elif op == Op.MUX:
            s, a, b = consts
            rs, ra, rb = reps
            if s is not None:
                chosen = (a, ra) if s else (b, rb)
                if chosen[0] is not None:
                    an.const[i] = chosen[0]
                else:
                    an.alias[i] = chosen[1]
            elif a is not None and b is not None:
                if a == b:
                    an.const[i] = a
                elif a == 1 and b == 0:
                    an.alias[i] = rs
                else:  # a == 0, b == 1
                    an.rewrite_op[i] = Op.NOT
                    an.rewrite_fanin[i] = (rs,)
            elif ra == rb and a is None and b is None:
                an.alias[i] = ra
            else:
                an.rewrite_fanin[i] = (rs, ra, rb)
        else:  # pragma: no cover - exhaustive over EVAL_OPS
            raise NetlistError(f"unhandled op {op!r}")
    return an


def optimize(nl: Netlist, keep: list[int]) -> OptimizeResult:
    """Optimize ``nl``, preserving the values of the ``keep`` nets.

    ``INPUT`` nets always survive (same count and order) so existing
    stimulus matrices remain valid for the optimized netlist.
    """
    nl.validate()
    an = _analyze(nl)
    n = nl.n_nets

    # ---------------- liveness (backwards from keep) ---------------- #
    live = np.zeros(n, dtype=bool)
    stack: list[int] = []

    def mark(net: int) -> None:
        c, rep = _resolve(an, net)
        if c is None and not live[rep]:
            live[rep] = True
            stack.append(rep)

    for k in keep:
        if not (0 <= k < n):
            raise NetlistError(f"keep net {k} does not exist")
        mark(k)
    for iid in nl.input_ids:
        live[iid] = True  # interface stability; cheap (no logic behind)

    while stack:
        net = stack.pop()
        op = nl.op_of(net)
        if op == Op.REG:
            mark(nl.fanin_of(net)[0])
            dom = nl.domain_of_reg(net)
            if dom.enable is not None:
                mark(dom.enable)
        elif op == Op.CLK:
            dom = next(
                d for d in nl.domains if d.clk_net == net
            )
            if dom.enable is not None:
                mark(dom.enable)
        else:
            fanin = (
                an.rewrite_fanin[net]
                if an.rewrite_fanin[net] is not None
                else nl.fanin_of(net)
            )
            for f in fanin:
                mark(f)

    # ---------------- rebuild ---------------- #
    out = Netlist(f"{nl.name}_opt")
    net_map = np.full(n, -1, dtype=np.int64)
    const_nets: dict[int, int] = {}

    def const_net(v: int) -> int:
        if v not in const_nets:
            const_nets[v] = out.const(v)
        return const_nets[v]

    # Domains: recreate every domain whose clk or regs are live; keep
    # enable wiring (filled after nets exist).
    domain_map: dict[int, int] = {}

    def new_id_of(old: int) -> int:
        c, rep = _resolve(an, old)
        if c is not None:
            return const_net(c)
        m = int(net_map[rep])
        if m < 0:
            raise NetlistError(
                f"net {nl.name_of(rep)} used before definition during "
                "rebuild"
            )
        return m

    # Pass 1: create domains lazily as registers appear; create nets.
    reg_init = nl.reg_init_array()
    pending_regs: list[tuple[int, int]] = []  # (old reg, new reg)
    for i in range(n):
        c, rep = _resolve(an, i)
        if c is not None or rep != i:
            continue  # folded or aliased; mapped on demand
        if not live[i]:
            continue
        op = nl.op_of(i)
        if op == Op.INPUT:
            net_map[i] = out.input_bit(nl.name_of(i))
        elif op in (Op.CONST0, Op.CONST1):  # pragma: no cover
            net_map[i] = const_net(1 if op == Op.CONST1 else 0)
        elif op == Op.CLK:
            dom_old = next(
                d for d in nl.domains if d.clk_net == i
            )
            dom_new = out.clock_domain(dom_old.name)
            domain_map[dom_old.index] = dom_new.index
            net_map[i] = dom_new.clk_net
        elif op == Op.REG:
            dom_old = nl.domain_of_reg(i)
            if dom_old.index not in domain_map:
                dom_new = out.clock_domain(dom_old.name)
                domain_map[dom_old.index] = dom_new.index
                net_map[dom_old.clk_net] = dom_new.clk_net
                if live[dom_old.clk_net]:
                    pass  # already mapped above
            dom_new = out.domains[domain_map[dom_old.index]]
            new_reg = out.reg_uninit(
                dom_new, init=int(reg_init[i]), name=nl.name_of(i)
            )
            net_map[i] = new_reg
            pending_regs.append((i, new_reg))
        else:
            new_op = an.rewrite_op[i] or op
            fanin = (
                an.rewrite_fanin[i]
                if an.rewrite_fanin[i] is not None
                else nl.fanin_of(i)
            )
            new_fanin = [new_id_of(f) for f in fanin]
            net_map[i] = out.gate(
                new_op, *new_fanin, name=nl.name_of(i)
            )

    # Pass 2: connect register D pins and domain enables.
    for old_reg, new_reg in pending_regs:
        out.connect_reg(new_reg, new_id_of(nl.fanin_of(old_reg)[0]))
    for dom_old in nl.domains:
        if dom_old.index in domain_map and dom_old.enable is not None:
            out.set_domain_enable(
                out.domains[domain_map[dom_old.index]],
                new_id_of(dom_old.enable),
            )

    # Fill the map for aliases and constants.
    for i in range(n):
        if net_map[i] >= 0:
            continue
        c, rep = _resolve(an, i)
        if c is not None:
            net_map[i] = const_net(c)
        elif net_map[rep] >= 0:
            net_map[i] = net_map[rep]

    out.validate()
    return OptimizeResult(netlist=out, net_map=net_map)
