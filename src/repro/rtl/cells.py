"""Cell library: net operations and their physical characteristics.

The reproduction needs a stand-in for the paper's commercial 7nm standard
cell library.  Only *relative* quantities matter for the experiments (area
overhead percentages, capacitance-weighted switching power), so the numbers
below are synthetic but ordered realistically: an XOR is larger and more
capacitive than a NAND, a flip-flop dominates combinational cells, and
clock-tree nets carry large capacitance.

Units are arbitrary-but-consistent: area in gate-equivalents (GE, NAND2=1),
capacitance in femtofarads, leakage in nanowatts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["Op", "CellInfo", "CELL_LIBRARY", "N_FANIN", "EVAL_OPS"]


class Op(IntEnum):
    """Operation of a net.

    ``CONST0``/``CONST1`` are tie cells; ``INPUT`` nets are driven by the
    stimulus; ``CLK`` nets model a (possibly gated) clock-tree branch whose
    per-cycle toggle equals its domain's latched enable; all other ops are
    ordinary combinational cells or the flip-flop ``REG``.
    """

    CONST0 = 0
    CONST1 = 1
    INPUT = 2
    BUF = 3
    NOT = 4
    AND = 5
    OR = 6
    XOR = 7
    NAND = 8
    NOR = 9
    XNOR = 10
    MUX = 11  # fanin (sel, a, b): sel ? a : b
    REG = 12  # fanin (d,)
    CLK = 13  # clock-tree net of a domain; fanin () — driven by the domain


#: Number of fanin slots each op consumes (-1-padded in the netlist arrays).
N_FANIN: dict[Op, int] = {
    Op.CONST0: 0,
    Op.CONST1: 0,
    Op.INPUT: 0,
    Op.BUF: 1,
    Op.NOT: 1,
    Op.AND: 2,
    Op.OR: 2,
    Op.XOR: 2,
    Op.NAND: 2,
    Op.NOR: 2,
    Op.XNOR: 2,
    Op.MUX: 3,
    Op.REG: 1,
    Op.CLK: 0,
}

#: Combinational ops evaluated by the simulator's levelized schedule.
EVAL_OPS: tuple[Op, ...] = (
    Op.BUF,
    Op.NOT,
    Op.AND,
    Op.OR,
    Op.XOR,
    Op.NAND,
    Op.NOR,
    Op.XNOR,
    Op.MUX,
)


@dataclass(frozen=True)
class CellInfo:
    """Physical characteristics of one cell type.

    Attributes
    ----------
    area:
        Cell area in gate equivalents (NAND2 = 1.0).
    out_cap:
        Intrinsic output capacitance in fF (before wire load).
    in_cap:
        Input pin capacitance in fF (adds to the *driving* net's load
        per fanout; the analyzer folds this into a per-fanout wire model).
    leakage:
        Static leakage in nW at nominal corner.
    """

    area: float
    out_cap: float
    in_cap: float
    leakage: float


CELL_LIBRARY: dict[Op, CellInfo] = {
    Op.CONST0: CellInfo(area=0.0, out_cap=0.0, in_cap=0.0, leakage=0.0),
    Op.CONST1: CellInfo(area=0.0, out_cap=0.0, in_cap=0.0, leakage=0.0),
    Op.INPUT: CellInfo(area=0.0, out_cap=0.3, in_cap=0.0, leakage=0.0),
    Op.BUF: CellInfo(area=0.8, out_cap=0.5, in_cap=0.9, leakage=0.6),
    Op.NOT: CellInfo(area=0.5, out_cap=0.4, in_cap=0.8, leakage=0.4),
    Op.AND: CellInfo(area=1.2, out_cap=0.5, in_cap=0.9, leakage=0.9),
    Op.OR: CellInfo(area=1.2, out_cap=0.5, in_cap=0.9, leakage=0.9),
    Op.XOR: CellInfo(area=2.2, out_cap=0.7, in_cap=1.3, leakage=1.6),
    Op.NAND: CellInfo(area=1.0, out_cap=0.45, in_cap=0.85, leakage=0.7),
    Op.NOR: CellInfo(area=1.0, out_cap=0.45, in_cap=0.85, leakage=0.7),
    Op.XNOR: CellInfo(area=2.2, out_cap=0.7, in_cap=1.3, leakage=1.6),
    Op.MUX: CellInfo(area=2.0, out_cap=0.6, in_cap=1.0, leakage=1.4),
    Op.REG: CellInfo(area=4.5, out_cap=0.6, in_cap=1.1, leakage=3.2),
    # CLK cells: a clock-tree branch; large effective capacitance is applied
    # by the analyzer proportionally to the number of registers it drives.
    Op.CLK: CellInfo(area=1.5, out_cap=1.0, in_cap=1.2, leakage=1.0),
}
