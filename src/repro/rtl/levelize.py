"""Levelization: compile a netlist into vectorizable evaluation groups.

Because the :class:`~repro.rtl.netlist.Netlist` builder enforces that every
fanin already exists (topological creation order), combinational logic is
acyclic by construction and the logic level of each net is a single forward
pass: ``level = 1 + max(level(fanins))`` with inputs/registers/consts/CLK
nets at level 0.

The simulator wants, per level and per op, contiguous index arrays
``(out, a, b, c)`` so each group is one vectorized NumPy expression.

:func:`compile_packed` goes one step further for the bit-parallel engine:
it folds inverting ops into per-net storage polarities (AIG-style) and
fuses every gate of a level into at most four kernel segments — an
AND-run (AND/NAND/OR/NOR), an XOR-run (XOR/XNOR), a copy-run (BUF/NOT)
and a MUX-run — each driven by one concatenated fanin gather plus one
precomputed complement mask.  A net's *stored* word is
``true_value XOR pol[net]``; since both operands of a toggle XOR carry
the same polarity, toggles computed on stored words are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError
from repro.rtl.cells import EVAL_OPS, N_FANIN, Op
from repro.rtl.netlist import NO_NET, Netlist

__all__ = [
    "EvalGroup",
    "LevelSchedule",
    "levelize",
    "PackedLevel",
    "PackedSchedule",
    "compile_packed",
]


@dataclass(frozen=True)
class EvalGroup:
    """One vectorized evaluation step: all nets of one op at one level."""

    op: Op
    out: np.ndarray  # int32 net ids
    a: np.ndarray  # first fanin ids
    b: np.ndarray  # second fanin ids (unused slots hold 0)
    c: np.ndarray  # third fanin ids (MUX only; unused slots hold 0)

    def __len__(self) -> int:
        return int(self.out.size)


@dataclass
class LevelSchedule:
    """Compiled evaluation order plus register / clock bookkeeping.

    Attributes
    ----------
    groups:
        Evaluation groups in dependency-safe order (level-major).
    levels:
        Per-net logic depth (int32), 0 for sources.
    reg_out / reg_d / reg_en:
        Parallel arrays describing registers: output net id, data fanin id,
        and the domain-enable net id (``NO_NET`` for always-on domains).
    reg_init:
        Initial register values (uint8).
    clk_out / clk_en:
        CLK net ids and their enable net ids (``NO_NET`` if always-on).
    input_ids:
        Stimulus-driven nets in creation order.
    const_ids / const_vals:
        Tie cells and their values.
    max_level:
        Maximum combinational depth (used by the glitch power model).
    """

    groups: list[EvalGroup]
    levels: np.ndarray
    reg_out: np.ndarray
    reg_d: np.ndarray
    reg_en: np.ndarray
    reg_init: np.ndarray
    clk_out: np.ndarray
    clk_en: np.ndarray
    input_ids: np.ndarray
    const_ids: np.ndarray
    const_vals: np.ndarray
    max_level: int = field(default=0)

    @property
    def n_nets(self) -> int:
        return int(self.levels.size)


def levelize(netlist: Netlist) -> LevelSchedule:
    """Compile ``netlist`` into a :class:`LevelSchedule`.

    Raises
    ------
    NetlistError
        If the netlist fails :meth:`Netlist.validate`.
    """
    netlist.validate()
    n = netlist.n_nets
    ops = netlist.ops_array()
    fanin = netlist.fanin_array() if n else np.zeros((0, 3), np.int32)

    levels = np.zeros(n, dtype=np.int32)
    eval_op_set = {int(o) for o in EVAL_OPS}
    # Forward pass in id order (ids are topological for comb logic).
    for i in range(n):
        op = ops[i]
        if op not in eval_op_set:
            continue
        nf = N_FANIN[Op(op)]
        lv = 0
        for k in range(nf):
            f = fanin[i, k]
            if f != NO_NET:
                lv = max(lv, int(levels[f]))
        levels[i] = lv + 1

    # Bucket combinational nets by (level, op).
    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        if ops[i] in eval_op_set:
            buckets.setdefault((int(levels[i]), int(ops[i])), []).append(i)

    groups: list[EvalGroup] = []
    for (lv, op_i) in sorted(buckets):
        ids = np.asarray(buckets[(lv, op_i)], dtype=np.int32)
        fa = fanin[ids]
        a = fa[:, 0].copy()
        b = np.where(fa[:, 1] == NO_NET, 0, fa[:, 1]).astype(np.int32)
        c = np.where(fa[:, 2] == NO_NET, 0, fa[:, 2]).astype(np.int32)
        groups.append(EvalGroup(op=Op(op_i), out=ids, a=a, b=b, c=c))

    # Registers.
    reg_ids = np.asarray(
        [i for i in range(n) if ops[i] == Op.REG], dtype=np.int32
    )
    reg_d = fanin[reg_ids, 0] if reg_ids.size else np.zeros(0, np.int32)
    domains = netlist.reg_domain_array()
    reg_en = np.full(reg_ids.size, NO_NET, dtype=np.int32)
    for k, rid in enumerate(reg_ids):
        dom = netlist.domains[int(domains[rid])]
        if dom.enable is not None:
            reg_en[k] = dom.enable
    reg_init = (
        netlist.reg_init_array()[reg_ids]
        if reg_ids.size
        else np.zeros(0, np.uint8)
    )

    # Clock nets.
    clk_out = np.asarray(
        [d.clk_net for d in netlist.domains], dtype=np.int32
    )
    clk_en = np.asarray(
        [NO_NET if d.enable is None else d.enable for d in netlist.domains],
        dtype=np.int32,
    )

    const_ids = np.asarray(
        [i for i in range(n) if ops[i] in (Op.CONST0, Op.CONST1)],
        dtype=np.int32,
    )
    const_vals = np.asarray(
        [1 if ops[i] == Op.CONST1 else 0 for i in const_ids], dtype=np.uint8
    )

    input_ids = np.asarray(netlist.input_ids, dtype=np.int32)

    return LevelSchedule(
        groups=groups,
        levels=levels,
        reg_out=reg_ids,
        reg_d=reg_d.astype(np.int32),
        reg_en=reg_en,
        reg_init=reg_init,
        clk_out=clk_out,
        clk_en=clk_en,
        input_ids=input_ids,
        const_ids=const_ids,
        const_vals=const_vals,
        max_level=int(levels.max()) if n else 0,
    )

# ---------------------------------------------------------------------- #
# Bit-parallel (packed uint64) compilation
# ---------------------------------------------------------------------- #
# The packed engine stores one uint64 word per net per 64 batch lanes and
# keeps net values in *renumbered* storage rows chosen so that every write
# target of the simulation loop is a contiguous slice:
#
#   [consts | inputs | free regs | gated regs | free CLKs | gated CLKs |
#    level 1: AND-run, XOR-run, copy-run, MUX outs | level 2: ... |
#    aliases]
#
# Per level the engine does one concatenated fanin gather, one
# complement-mask XOR, and one in-place kernel per non-empty segment that
# writes straight into the value array — no scatter indexing anywhere in
# the cycle loop.  Inverting ops fold into per-net storage polarities
# (AIG style): a net's stored word is ``true_value ^ pol[net]``, which
# turns NAND/OR/NOR into the AND-run and XNOR into the XOR-run.  MUXes
# fold into the AND-run too: ``sel ? x : y`` is the disjoint union
# ``(sel & x) | (~sel & y)``, so two *virtual* product rows ``u = s & x``
# and ``v = ~s & y`` ride along the AND-run and the MUX output is the
# single extra call ``u ^ v``.  BUF/NOT nets are pure storage aliases of
# their (transitive) source and are never evaluated; their toggle rows
# are filled from the source rows once per cycle.  The one exception is a
# BUF/NOT driven by a CLK net, which must keep the uint8 engine's
# semantics of observing the previous-cycle clock value — those stay as
# an evaluated copy-run.

_POL_ONE_OPS = frozenset({int(Op.NAND), int(Op.OR), int(Op.XNOR)})
_COMP_OPERAND_OPS = frozenset({int(Op.OR), int(Op.NOR)})
_AND_FAMILY = frozenset({int(Op.AND), int(Op.NAND), int(Op.OR), int(Op.NOR)})
_XOR_FAMILY = frozenset({int(Op.XOR), int(Op.XNOR)})
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _inv_column(bits: np.ndarray) -> np.ndarray:
    """uint64 complement-mask column: all-ones where ``bits`` is set."""
    return np.where(bits.astype(bool), _ALL_ONES, np.uint64(0))[:, None]


@dataclass(frozen=True)
class PackedLevel:
    """One fused evaluation step of the packed engine.

    ``gather`` holds the source *rows* (renumbered, alias-resolved) of
    all operands, run-major (``[A-run | B-run | xor_a | xor_b | copy]``
    with MUX select/data operands folded into the A/B runs); ``inv`` is
    the matching complement-mask column.  The ``sl_*`` slices address
    operand runs inside the gathered scratch buffer while ``out_*`` /
    ``sl_u`` / ``sl_v`` slices address contiguous storage rows in the
    value array (``sl_u``/``sl_v`` are the virtual MUX product rows).
    """

    gather: np.ndarray  # intp source rows, run-major
    inv: np.ndarray  # uint64 (width, 1) complement-mask column
    has_inv: bool
    n_and: int  # A/B operand pairs (real AND-family + 2 per MUX)
    n_xor: int
    n_copy: int
    n_mux: int
    sl_and_a: slice
    sl_and_b: slice
    sl_xor_a: slice
    sl_xor_b: slice
    sl_copy: slice
    out_and: slice  # AND-run rows: [real outs | u products | v products]
    out_xor: slice
    out_copy: slice
    out_mux: slice
    sl_u: slice  # virtual rows holding sel & x
    sl_v: slice  # virtual rows holding ~sel & y

    @property
    def width(self) -> int:
        return int(self.gather.size)


@dataclass
class PackedSchedule:
    """Renumbered, polarity-folded compilation for the packed engine.

    ``row_of_net`` maps net ids to storage rows; the value array has
    ``n_rows >= n_nets`` rows because MUX gates contribute two virtual
    product rows each.  All index arrays below live in storage-row space
    with aliases already resolved to their driving root.  ``*_inv``
    arrays are uint64 complement-mask columns derived from operand
    polarities; the matching ``*_has_inv`` flags let the simulator skip
    all-zero masks.
    """

    levels: list[PackedLevel]
    pol: np.ndarray  # (n_nets,) uint8, indexed by net id
    row_of_net: np.ndarray  # (n_nets,) int32: net id -> storage row
    n_rows: int  # storage rows (nets + virtual MUX products)
    max_gather: int
    # Contiguous row blocks of the renumbered layout.
    sl_const: slice
    sl_inputs: slice
    sl_free: slice
    sl_gated: slice
    sl_clk_free: slice
    sl_clk_gated: slice
    sl_clk_all: slice
    sl_alias: slice
    # Sequential-element sources (storage rows).
    free_d: np.ndarray
    free_d_inv: np.ndarray
    free_has_inv: bool
    gated_d: np.ndarray
    gated_d_inv: np.ndarray
    gated_d_has_inv: bool
    gated_en: np.ndarray
    gated_en_inv: np.ndarray
    gated_en_has_inv: bool
    clk_g_en: np.ndarray
    clk_g_en_inv: np.ndarray
    clk_g_has_inv: bool
    alias_src: np.ndarray  # storage rows feeding the alias block

    @property
    def n_nets(self) -> int:
        return int(self.pol.size)


def compile_packed(
    netlist: Netlist, schedule: LevelSchedule | None = None
) -> PackedSchedule:
    """Compile ``netlist`` for the bit-parallel engine.

    Reuses an existing :class:`LevelSchedule` when given (the simulator
    always has one) to avoid levelizing twice.
    """
    sch = schedule if schedule is not None else levelize(netlist)
    n = sch.n_nets
    ops = netlist.ops_array()
    fanin = netlist.fanin_array() if n else np.zeros((0, 3), np.int32)

    is_clk = np.zeros(n, dtype=bool)
    if sch.clk_out.size:
        is_clk[sch.clk_out] = True

    # --- polarity assignment + alias resolution (ids are topological) ---
    pol = np.zeros(n, dtype=np.uint8)
    root = np.arange(n, dtype=np.int32)
    buf_i, not_i = int(Op.BUF), int(Op.NOT)
    is_alias = np.zeros(n, dtype=bool)
    alias_list: list[int] = []
    for i in range(n):
        op = int(ops[i])
        if op == buf_i or op == not_i:
            a = int(fanin[i, 0])
            if is_clk[root[a]]:
                # Evaluated copy: comb logic must see the previous-cycle
                # clock value, which only the level-ordered copy-run does.
                continue
            root[i] = root[a]
            pol[i] = pol[a] ^ (1 if op == not_i else 0)
            is_alias[i] = True
            alias_list.append(i)
        elif op in _POL_ONE_OPS:
            pol[i] = 1
    alias_ids = np.asarray(alias_list, dtype=np.int32)

    # --- bucket comb gates by level into AND/XOR/copy/MUX segments ---
    per_level: dict[int, dict[str, list]] = {}

    def _bucket(lv: int) -> dict[str, list]:
        return per_level.setdefault(
            lv, {"and": [], "xor": [], "copy": [], "mux": []}
        )

    for g in sch.groups:
        op = int(g.op)
        lv = int(sch.levels[g.out[0]])
        if op == buf_i or op == not_i:
            keep = ~is_alias[g.out]
            if keep.any():
                flip = np.uint8(1 if op == not_i else 0)
                _bucket(lv)["copy"].append((g.out[keep], g.a[keep], flip))
            continue
        if op in _AND_FAMILY:
            comp = np.uint8(1 if op in _COMP_OPERAND_OPS else 0)
            _bucket(lv)["and"].append((g.out, g.a, g.b, comp))
        elif op in _XOR_FAMILY:
            _bucket(lv)["xor"].append((g.out, g.a, g.b))
        else:  # MUX: fanin order (sel, x, y) meaning sel ? x : y
            _bucket(lv)["mux"].append((g.out, g.a, g.b, g.c))

    # --- sequential bookkeeping (net-id space) ---
    gated_m = sch.reg_en != NO_NET
    free_out_ids = sch.reg_out[~gated_m]
    free_d_ids = sch.reg_d[~gated_m]
    gated_out_ids = sch.reg_out[gated_m]
    gated_d_ids = sch.reg_d[gated_m]
    gated_en_ids = sch.reg_en[gated_m]
    clk_g_m = sch.clk_en != NO_NET
    clk_free_ids = sch.clk_out[~clk_g_m]
    clk_g_ids = sch.clk_out[clk_g_m]
    clk_g_en_ids = sch.clk_en[clk_g_m]

    # --- renumbered storage layout ---
    row_of_net = np.full(n, -1, dtype=np.int32)
    cursor = [0]

    def _place(ids: np.ndarray) -> slice:
        s = slice(cursor[0], cursor[0] + ids.size)
        row_of_net[ids] = np.arange(s.start, s.stop, dtype=np.int32)
        cursor[0] = s.stop
        return s

    def _skip(count: int) -> slice:
        s = slice(cursor[0], cursor[0] + count)
        cursor[0] = s.stop
        return s

    sl_const = _place(sch.const_ids)
    sl_inputs = _place(sch.input_ids)
    sl_free = _place(free_out_ids)
    sl_gated = _place(gated_out_ids)
    sl_clk_free = _place(clk_free_ids)
    sl_clk_gated = _place(clk_g_ids)
    sl_clk_all = slice(sl_clk_free.start, sl_clk_gated.stop)

    def _cat(tuples: list, idx: int) -> np.ndarray:
        if not tuples:
            return np.zeros(0, dtype=np.int32)
        return np.concatenate([t[idx] for t in tuples]).astype(np.int32)

    def _flags(tuples: list) -> np.ndarray:
        if not tuples:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(
            [np.full(t[0].size, t[-1], dtype=np.uint8) for t in tuples]
        )

    level_tmp = []
    for lv in sorted(per_level):
        seg = per_level[lv]
        and_out, and_a, and_b = (_cat(seg["and"], k) for k in range(3))
        and_comp = _flags(seg["and"])
        xor_out, xor_a, xor_b = (_cat(seg["xor"], k) for k in range(3))
        copy_out, copy_a = (_cat(seg["copy"], k) for k in range(2))
        copy_flip = _flags(seg["copy"])
        mux_out, mux_s, mux_x, mux_y = (
            _cat(seg["mux"], k) for k in range(4)
        )
        n_mux = mux_s.size
        out_real_and = _place(and_out)
        sl_u = _skip(n_mux)
        sl_v = _skip(n_mux)
        out_and = slice(out_real_and.start, sl_v.stop)
        out_xor = _place(xor_out)
        out_copy = _place(copy_out)
        out_mux = _place(mux_out)
        level_tmp.append(
            (and_a, and_b, and_comp, xor_a, xor_b, copy_a, copy_flip,
             mux_s, mux_x, mux_y, out_and, out_xor, out_copy, out_mux,
             sl_u, sl_v)
        )
    sl_alias = _place(alias_ids)
    n_rows = cursor[0]

    if int((row_of_net >= 0).sum()) != n:  # pragma: no cover - invariant
        raise NetlistError("packed layout does not cover every net")

    def _rows(ids: np.ndarray) -> np.ndarray:
        """Alias-resolved storage rows for operand net ids.

        Returned as ``intp`` so the simulator's ``take`` calls skip the
        per-call index-dtype conversion.
        """
        if not ids.size:
            return np.zeros(0, dtype=np.intp)
        return row_of_net[root[ids]].astype(np.intp)

    def _invcol(bits: np.ndarray) -> tuple[np.ndarray, bool]:
        return _inv_column(bits), bool(bits.any())

    one = np.uint8(1)
    levels_out: list[PackedLevel] = []
    max_gather = 0
    for (and_a, and_b, and_comp, xor_a, xor_b, copy_a, copy_flip,
         mux_s, mux_x, mux_y, out_and, out_xor, out_copy, out_mux,
         sl_u, sl_v) in level_tmp:
        # A/B operand runs: real AND-family pairs, then (s, x) for the u
        # products, then (s, y) — with s complemented — for the v ones.
        src = np.concatenate(
            [and_a, mux_s, mux_s, and_b, mux_x, mux_y,
             xor_a, xor_b, copy_a]
        )
        inv_bits = np.concatenate([
            pol[and_a] ^ and_comp,
            pol[mux_s],
            pol[mux_s] ^ one,
            pol[and_b] ^ and_comp,
            pol[mux_x],
            pol[mux_y],
            pol[xor_a],
            pol[xor_b],
            pol[copy_a] ^ copy_flip,
        ])
        n_and = and_a.size + 2 * mux_s.size
        n_xor, n_copy, n_mux = xor_a.size, copy_a.size, mux_s.size
        o = [0]

        def _run(count: int) -> slice:
            s = slice(o[0], o[0] + count)
            o[0] = s.stop
            return s

        inv, has_inv = _invcol(inv_bits)
        levels_out.append(
            PackedLevel(
                gather=np.ascontiguousarray(_rows(src)),
                inv=inv,
                has_inv=has_inv,
                n_and=n_and,
                n_xor=n_xor,
                n_copy=n_copy,
                n_mux=n_mux,
                sl_and_a=_run(n_and),
                sl_and_b=_run(n_and),
                sl_xor_a=_run(n_xor),
                sl_xor_b=_run(n_xor),
                sl_copy=_run(n_copy),
                out_and=out_and,
                out_xor=out_xor,
                out_copy=out_copy,
                out_mux=out_mux,
                sl_u=sl_u,
                sl_v=sl_v,
            )
        )
        max_gather = max(max_gather, src.size)

    free_d_inv, free_has_inv = _invcol(pol[free_d_ids])
    gated_d_inv, gated_d_has_inv = _invcol(pol[gated_d_ids])
    gated_en_inv, gated_en_has_inv = _invcol(pol[gated_en_ids])
    clk_g_en_inv, clk_g_has_inv = _invcol(pol[clk_g_en_ids])

    return PackedSchedule(
        levels=levels_out,
        pol=pol,
        row_of_net=row_of_net,
        n_rows=n_rows,
        max_gather=max_gather,
        sl_const=sl_const,
        sl_inputs=sl_inputs,
        sl_free=sl_free,
        sl_gated=sl_gated,
        sl_clk_free=sl_clk_free,
        sl_clk_gated=sl_clk_gated,
        sl_clk_all=sl_clk_all,
        sl_alias=sl_alias,
        free_d=_rows(free_d_ids),
        free_d_inv=free_d_inv,
        free_has_inv=free_has_inv,
        gated_d=_rows(gated_d_ids),
        gated_d_inv=gated_d_inv,
        gated_d_has_inv=gated_d_has_inv,
        gated_en=_rows(gated_en_ids),
        gated_en_inv=gated_en_inv,
        gated_en_has_inv=gated_en_has_inv,
        clk_g_en=_rows(clk_g_en_ids),
        clk_g_en_inv=clk_g_en_inv,
        clk_g_has_inv=clk_g_has_inv,
        alias_src=_rows(alias_ids),
    )
