"""Levelization: compile a netlist into vectorizable evaluation groups.

Because the :class:`~repro.rtl.netlist.Netlist` builder enforces that every
fanin already exists (topological creation order), combinational logic is
acyclic by construction and the logic level of each net is a single forward
pass: ``level = 1 + max(level(fanins))`` with inputs/registers/consts/CLK
nets at level 0.

The simulator wants, per level and per op, contiguous index arrays
``(out, a, b, c)`` so each group is one vectorized NumPy expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetlistError
from repro.rtl.cells import EVAL_OPS, N_FANIN, Op
from repro.rtl.netlist import NO_NET, Netlist

__all__ = ["EvalGroup", "LevelSchedule", "levelize"]


@dataclass(frozen=True)
class EvalGroup:
    """One vectorized evaluation step: all nets of one op at one level."""

    op: Op
    out: np.ndarray  # int32 net ids
    a: np.ndarray  # first fanin ids
    b: np.ndarray  # second fanin ids (unused slots hold 0)
    c: np.ndarray  # third fanin ids (MUX only; unused slots hold 0)

    def __len__(self) -> int:
        return int(self.out.size)


@dataclass
class LevelSchedule:
    """Compiled evaluation order plus register / clock bookkeeping.

    Attributes
    ----------
    groups:
        Evaluation groups in dependency-safe order (level-major).
    levels:
        Per-net logic depth (int32), 0 for sources.
    reg_out / reg_d / reg_en:
        Parallel arrays describing registers: output net id, data fanin id,
        and the domain-enable net id (``NO_NET`` for always-on domains).
    reg_init:
        Initial register values (uint8).
    clk_out / clk_en:
        CLK net ids and their enable net ids (``NO_NET`` if always-on).
    input_ids:
        Stimulus-driven nets in creation order.
    const_ids / const_vals:
        Tie cells and their values.
    max_level:
        Maximum combinational depth (used by the glitch power model).
    """

    groups: list[EvalGroup]
    levels: np.ndarray
    reg_out: np.ndarray
    reg_d: np.ndarray
    reg_en: np.ndarray
    reg_init: np.ndarray
    clk_out: np.ndarray
    clk_en: np.ndarray
    input_ids: np.ndarray
    const_ids: np.ndarray
    const_vals: np.ndarray
    max_level: int = field(default=0)

    @property
    def n_nets(self) -> int:
        return int(self.levels.size)


def levelize(netlist: Netlist) -> LevelSchedule:
    """Compile ``netlist`` into a :class:`LevelSchedule`.

    Raises
    ------
    NetlistError
        If the netlist fails :meth:`Netlist.validate`.
    """
    netlist.validate()
    n = netlist.n_nets
    ops = netlist.ops_array()
    fanin = netlist.fanin_array() if n else np.zeros((0, 3), np.int32)

    levels = np.zeros(n, dtype=np.int32)
    eval_op_set = {int(o) for o in EVAL_OPS}
    # Forward pass in id order (ids are topological for comb logic).
    for i in range(n):
        op = ops[i]
        if op not in eval_op_set:
            continue
        nf = N_FANIN[Op(op)]
        lv = 0
        for k in range(nf):
            f = fanin[i, k]
            if f != NO_NET:
                lv = max(lv, int(levels[f]))
        levels[i] = lv + 1

    # Bucket combinational nets by (level, op).
    buckets: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        if ops[i] in eval_op_set:
            buckets.setdefault((int(levels[i]), int(ops[i])), []).append(i)

    groups: list[EvalGroup] = []
    for (lv, op_i) in sorted(buckets):
        ids = np.asarray(buckets[(lv, op_i)], dtype=np.int32)
        fa = fanin[ids]
        a = fa[:, 0].copy()
        b = np.where(fa[:, 1] == NO_NET, 0, fa[:, 1]).astype(np.int32)
        c = np.where(fa[:, 2] == NO_NET, 0, fa[:, 2]).astype(np.int32)
        groups.append(EvalGroup(op=Op(op_i), out=ids, a=a, b=b, c=c))

    # Registers.
    reg_ids = np.asarray(
        [i for i in range(n) if ops[i] == Op.REG], dtype=np.int32
    )
    reg_d = fanin[reg_ids, 0] if reg_ids.size else np.zeros(0, np.int32)
    domains = netlist.reg_domain_array()
    reg_en = np.full(reg_ids.size, NO_NET, dtype=np.int32)
    for k, rid in enumerate(reg_ids):
        dom = netlist.domains[int(domains[rid])]
        if dom.enable is not None:
            reg_en[k] = dom.enable
    reg_init = (
        netlist.reg_init_array()[reg_ids]
        if reg_ids.size
        else np.zeros(0, np.uint8)
    )

    # Clock nets.
    clk_out = np.asarray(
        [d.clk_net for d in netlist.domains], dtype=np.int32
    )
    clk_en = np.asarray(
        [NO_NET if d.enable is None else d.enable for d in netlist.domains],
        dtype=np.int32,
    )

    const_ids = np.asarray(
        [i for i in range(n) if ops[i] in (Op.CONST0, Op.CONST1)],
        dtype=np.int32,
    )
    const_vals = np.asarray(
        [1 if ops[i] == Op.CONST1 else 0 for i in const_ids], dtype=np.uint8
    )

    input_ids = np.asarray(netlist.input_ids, dtype=np.int32)

    return LevelSchedule(
        groups=groups,
        levels=levels,
        reg_out=reg_ids,
        reg_d=reg_d.astype(np.int32),
        reg_en=reg_en,
        reg_init=reg_init,
        clk_out=clk_out,
        clk_en=clk_en,
        input_ids=input_ids,
        const_ids=const_ids,
        const_vals=const_vals,
        max_level=int(levels.max()) if n else 0,
    )
