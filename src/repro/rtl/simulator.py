"""Vectorized cycle-accurate netlist simulator.

Stands in for the paper's VCS RTL simulation (design-time flow) and, in
proxy-capture mode, for the Palladium emulator's selective signal tracing.

Semantics
---------
Each simulated cycle ``i``:

1. registers capture their D values computed during cycle ``i - 1``
   (clock-gated registers hold when their domain enable was 0);
2. ``INPUT`` nets take the cycle-``i`` stimulus;
3. combinational nets evaluate in levelized order;
4. ``CLK`` nets take their (latched) enable value;
5. the toggle vector is ``value[i] XOR value[i-1]`` for ordinary nets and
   the enable itself for ``CLK`` nets — a gated clock toggles exactly when
   its edge is enabled, matching §6 of the paper.

The simulator runs a *batch* of independent stimuli at once (one extra
array axis), which is what makes the GA's per-generation power evaluation
affordable in NumPy.

Recording options per run:

* full packed :class:`~repro.rtl.trace.ToggleTrace` (training data);
* dense toggles of selected columns only (emulator-assisted proxy flow);
* named *accumulators*: per-cycle dot products ``weights . toggles`` used
  by the power analyzer so long runs never materialize a full trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, StimulusError
from repro.obs.trace import NULL_TRACER
from repro.rtl.cells import Op
from repro.rtl.levelize import (
    LevelSchedule,
    PackedSchedule,
    compile_packed,
    levelize,
)
from repro.rtl.netlist import NO_NET, Netlist
from repro.rtl.trace import ToggleTrace, pack_lanes, unpack_lanes

__all__ = ["RecordSpec", "SimResult", "Simulator", "ENGINES"]

#: Available simulation engines.  ``"packed"`` packs 64 batch lanes per
#: uint64 word and evaluates fused per-level kernels; ``"uint8"`` is the
#: one-lane-per-byte reference implementation.  Both produce bit-identical
#: results.
ENGINES = ("packed", "uint8")

_WORD_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _acc_reduce(w64: np.ndarray, toggles: np.ndarray) -> np.ndarray:
    """Weighted per-lane toggle sum, independent of the batch width.

    ``sum(axis=0)`` reduces each lane's column with numpy's pairwise
    summation, whose blocking depends only on the reduction *length* —
    never on how many other lanes share the call — so lane ``b`` of the
    result is a pure function of ``toggles[:, b]``.  That is what makes
    sharded, cached, and elite-reusing evaluation paths
    (:mod:`repro.parallel`) bit-identical to one monolithic batched
    call.  A float32 BLAS GEMV (``w @ toggles``) lacks this property:
    its reduction order changes with the batch width.
    """
    return (w64[:, None] * toggles).sum(axis=0)


@dataclass(frozen=True)
class RecordSpec:
    """What a simulation run should record.

    Attributes
    ----------
    full_trace:
        Record the packed toggle bits of every net.
    columns:
        Net ids whose toggle bits are recorded densely (or ``None``).
    accumulators:
        Name -> float32 weight vector (length ``n_nets``); each produces a
        per-cycle weighted toggle sum.
    """

    full_trace: bool = False
    columns: np.ndarray | None = None
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class SimResult:
    """Output of one :meth:`Simulator.run` call."""

    n_cycles: int
    batch: int
    trace: ToggleTrace | None
    columns: np.ndarray | None  # (batch, cycles, n_cols) uint8
    accum: dict[str, np.ndarray]  # name -> (batch, cycles) float64
    elapsed: float
    final_values: np.ndarray | None = None  # (n_nets, batch) uint8

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles (x batch) per wall second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.n_cycles * self.batch / self.elapsed


class Simulator:
    """Compiled simulator for one netlist.

    Compilation (levelization, plus fused-kernel precomputation for the
    packed engine) happens once in the constructor; ``run`` may be called
    many times with different stimuli.

    Parameters
    ----------
    netlist:
        The design to simulate.
    engine:
        ``"packed"`` (default) packs 64 batch lanes into each uint64 word
        so every bitwise op processes 64 runs at once; ``"uint8"`` keeps
        one lane per byte (the reference implementation).  Both engines
        produce bit-identical :class:`SimResult` contents.
    """

    def __init__(self, netlist: Netlist, engine: str = "packed") -> None:
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine == "packed" and not np.little_endian:  # pragma: no cover
            engine = "uint8"  # lane-word reinterpretation needs LE
        self.netlist = netlist
        self.engine = engine
        self.schedule: LevelSchedule = levelize(netlist)
        self.packed_schedule: PackedSchedule | None = (
            compile_packed(netlist, self.schedule)
            if engine == "packed"
            else None
        )
        self._n = netlist.n_nets
        self._plans: dict[int, "_PackedPlan"] = {}

    # ------------------------------------------------------------------ #
    def _initial_values(self, batch: int) -> np.ndarray:
        """State after reset: registers at init, everything else evaluated
        with all-zero inputs."""
        vals = np.zeros((self._n, batch), dtype=np.uint8)
        sch = self.schedule
        if sch.const_ids.size:
            vals[sch.const_ids] = sch.const_vals[:, None]
        if sch.reg_out.size:
            vals[sch.reg_out] = sch.reg_init[:, None]
        self._eval_comb(vals)
        # CLK values at reset: enabled domains show their enable, always-on
        # domains show 1.
        for k in range(sch.clk_out.size):
            en = sch.clk_en[k]
            vals[sch.clk_out[k]] = 1 if en == NO_NET else vals[en]
        return vals

    def _eval_comb(self, vals: np.ndarray) -> None:
        for g in self.schedule.groups:
            a = vals[g.a]
            op = g.op
            if op == Op.BUF:
                vals[g.out] = a
            elif op == Op.NOT:
                vals[g.out] = a ^ 1
            elif op == Op.AND:
                vals[g.out] = a & vals[g.b]
            elif op == Op.OR:
                vals[g.out] = a | vals[g.b]
            elif op == Op.XOR:
                vals[g.out] = a ^ vals[g.b]
            elif op == Op.NAND:
                vals[g.out] = (a & vals[g.b]) ^ 1
            elif op == Op.NOR:
                vals[g.out] = (a | vals[g.b]) ^ 1
            elif op == Op.XNOR:
                vals[g.out] = (a ^ vals[g.b]) ^ 1
            elif op == Op.MUX:
                s = a
                vals[g.out] = (s & vals[g.b]) | ((s ^ 1) & vals[g.c])
            else:  # pragma: no cover - schedule only contains EVAL_OPS
                raise SimulationError(f"unexpected op {op!r} in schedule")

    def comb_eval(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate combinational logic once with the given input values.

        Registers hold their init values.  Intended for functional tests of
        datapath blocks; returns the full value vector.

        Parameters
        ----------
        input_bits:
            uint8 array of shape ``(n_inputs,)`` or ``(n_inputs, batch)``.

        Returns
        -------
        numpy.ndarray
            Net values, shape ``(n_nets, batch)``.
        """
        bits = np.asarray(input_bits, dtype=np.uint8)
        if bits.ndim == 1:
            bits = bits[:, None]
        if bits.shape[0] != self.schedule.input_ids.size:
            raise StimulusError(
                f"got {bits.shape[0]} input bits, design has "
                f"{self.schedule.input_ids.size}"
            )
        vals = self._initial_values(bits.shape[1])
        if self.schedule.input_ids.size:
            vals[self.schedule.input_ids] = bits
        self._eval_comb(vals)
        return vals

    # ------------------------------------------------------------------ #
    def run(
        self,
        stimulus: np.ndarray,
        record: RecordSpec | None = None,
        init_values: np.ndarray | None = None,
        tracer=None,
    ) -> SimResult:
        """Simulate ``stimulus`` and record per the :class:`RecordSpec`.

        Parameters
        ----------
        stimulus:
            uint8 array of shape ``(cycles, n_inputs)`` for a single run or
            ``(batch, cycles, n_inputs)`` for a batched run.  ``n_inputs``
            must equal the number of ``INPUT`` nets, in creation order.
        record:
            What to record; defaults to a full packed trace.
        init_values:
            Full value vector from a previous run's ``final_values`` to
            continue a long simulation in chunks with identical results;
            ``None`` starts from reset.
        tracer:
            Optional :class:`~repro.obs.trace.Tracer`; the cycle loop
            becomes an ``rtl.sim.run`` span (engine, cycles, batch,
            throughput).  Default is the zero-overhead no-op tracer.
        """
        record = record or RecordSpec(full_trace=True)
        stim = np.asarray(stimulus, dtype=np.uint8)
        if stim.ndim == 2:
            stim = stim[None]
        if stim.ndim != 3:
            raise StimulusError(
                f"stimulus must be 2-D or 3-D, got shape {stim.shape}"
            )
        sch = self.schedule
        batch, cycles, n_in = stim.shape
        if n_in != sch.input_ids.size:
            raise StimulusError(
                f"stimulus provides {n_in} input bits, design has "
                f"{sch.input_ids.size}"
            )

        cols = None
        if record.columns is not None:
            cols = np.asarray(record.columns, dtype=np.int64)
            if cols.size and (cols.min() < 0 or cols.max() >= self._n):
                raise SimulationError("record columns out of range")
        acc_weights: dict[str, np.ndarray] = {}
        for name, w in record.accumulators.items():
            w = np.asarray(w, dtype=np.float32)
            if w.shape != (self._n,):
                raise SimulationError(
                    f"accumulator {name!r} has shape {w.shape}, expected "
                    f"({self._n},)"
                )
            # Accumulate in float64: exact upcast of the canonical
            # float32 weights, and _acc_reduce keeps each lane's sum
            # independent of the batch width.
            acc_weights[name] = w.astype(np.float64)

        # Output buffers.
        packed_out = None
        if record.full_trace:
            packed_out = np.empty(
                (cycles, (self._n + 7) // 8, batch), dtype=np.uint8
            )
        cols_out = None
        if cols is not None:
            cols_out = np.empty((batch, cycles, cols.size), dtype=np.uint8)
        acc_out = {
            name: np.empty((batch, cycles), dtype=np.float64)
            for name in acc_weights
        }

        if init_values is not None and init_values.shape != (self._n, batch):
            raise SimulationError(
                f"init_values shape {init_values.shape} != "
                f"({self._n}, {batch})"
            )

        loop = (
            self._run_packed if self.engine == "packed" else self._run_uint8
        )
        with (tracer or NULL_TRACER).span(
            "rtl.sim.run",
            engine=self.engine,
            cycles=cycles,
            batch=batch,
        ) as sp:
            t0 = time.perf_counter()
            final_values = loop(
                stim, cols, acc_weights, packed_out, cols_out, acc_out,
                init_values,
            )
            elapsed = time.perf_counter() - t0
            if sp:
                sp.set(
                    lane_cycles_per_second=(
                        cycles * batch / elapsed if elapsed > 0
                        else float("inf")
                    )
                )

        trace = None
        if packed_out is not None:
            trace = ToggleTrace(
                packed=np.ascontiguousarray(
                    np.transpose(packed_out, (2, 0, 1))
                ),
                n_nets=self._n,
            )
        return SimResult(
            n_cycles=cycles,
            batch=batch,
            trace=trace,
            columns=cols_out,
            accum=acc_out,
            elapsed=elapsed,
            final_values=final_values,
        )

    # ------------------------------------------------------------------ #
    def _run_uint8(
        self,
        stim: np.ndarray,
        cols: np.ndarray | None,
        acc_weights: dict[str, np.ndarray],
        packed_out: np.ndarray | None,
        cols_out: np.ndarray | None,
        acc_out: dict[str, np.ndarray],
        init_values: np.ndarray | None,
    ) -> np.ndarray:
        """Reference cycle loop: one stimulus lane per uint8 byte."""
        sch = self.schedule
        batch, cycles, _n_in = stim.shape
        if init_values is not None:
            v_prev = init_values.astype(np.uint8).copy()
        else:
            v_prev = self._initial_values(batch)
        vals = np.empty_like(v_prev)
        # Pre-gather register enable handling: split always-on vs gated.
        gated_mask = sch.reg_en != NO_NET
        gated_out = sch.reg_out[gated_mask]
        gated_d = sch.reg_d[gated_mask]
        gated_en = sch.reg_en[gated_mask]
        free_out = sch.reg_out[~gated_mask]
        free_d = sch.reg_d[~gated_mask]
        clk_gated = sch.clk_en != NO_NET
        clk_g_out = sch.clk_out[clk_gated]
        clk_g_en = sch.clk_en[clk_gated]
        clk_free_out = sch.clk_out[~clk_gated]

        stim_t = np.ascontiguousarray(np.transpose(stim, (1, 2, 0)))

        for i in range(cycles):
            np.copyto(vals, v_prev)
            # 1. register capture (uses previous-cycle D and enables).
            if free_out.size:
                vals[free_out] = v_prev[free_d]
            if gated_out.size:
                en = v_prev[gated_en]
                vals[gated_out] = np.where(
                    en.astype(bool), v_prev[gated_d], v_prev[gated_out]
                )
            # 2. stimulus.
            if sch.input_ids.size:
                vals[sch.input_ids] = stim_t[i]
            # 3. combinational evaluation.
            self._eval_comb(vals)
            # 4. clock nets.
            if clk_free_out.size:
                vals[clk_free_out] = 1
            if clk_g_out.size:
                vals[clk_g_out] = v_prev[clk_g_en]
            # 5. toggles.
            toggles = vals ^ v_prev
            if clk_free_out.size:
                toggles[clk_free_out] = 1
            if clk_g_out.size:
                toggles[clk_g_out] = vals[clk_g_out]
            # 6. record.
            if packed_out is not None:
                packed_out[i] = np.packbits(toggles, axis=0)
            if cols_out is not None:
                cols_out[:, i, :] = toggles[cols].T
            for name, w in acc_weights.items():
                acc_out[name][:, i] = _acc_reduce(w, toggles)
            v_prev, vals = vals, v_prev

        return v_prev.copy()

    def _run_packed(
        self,
        stim: np.ndarray,
        cols: np.ndarray | None,
        acc_weights: dict[str, np.ndarray],
        packed_out: np.ndarray | None,
        cols_out: np.ndarray | None,
        acc_out: dict[str, np.ndarray],
        init_values: np.ndarray | None,
    ) -> np.ndarray:
        """Bit-parallel cycle loop: 64 stimulus lanes per uint64 word.

        Values live in renumbered storage rows (see ``compile_packed``),
        polarity-folded (``true ^ pol[net]``), so NAND/OR/NOR collapse
        into the AND-run, XNOR into the XOR-run, and each MUX into two
        AND-run product rows plus one XOR.  Every write target is a
        contiguous row slice, so the loop contains no scatter indexing;
        the whole cycle is executed as a precompiled micro-program of
        prebound array views (two variants, one per buffer parity).
        Toggle words are exact because both cycles carry the same
        polarity; each cycle they are gathered back into net-id order and
        appended to a block buffer, so the lane unpacking runs once per
        ``_REC_BLOCK`` cycles on one contiguous array, while the
        accumulator reduction (``_acc_reduce``) keeps the reference
        engine's exact per-cycle call shape — making every recorded
        artifact bit-identical across engines.
        """
        psch = self.packed_schedule
        assert psch is not None
        batch, cycles, n_in = stim.shape
        W = (batch + 63) // 64
        plan = self._plans.get(W)
        if plan is None:
            plan = self._plans[W] = _PackedPlan(psch, W)
        if init_values is not None:
            v0 = np.asarray(init_values, dtype=np.uint8)
        else:
            v0 = self._initial_values(batch)
        pol_col = psch.pol[:, None]
        row_of = psch.row_of_net
        # Stored words in storage-row order; virtual MUX product rows and
        # alias rows are recomputed before use, so zeros are fine there.
        stored = np.zeros((psch.n_rows, batch), dtype=np.uint8)
        stored[row_of] = v0 ^ pol_col
        init_w = pack_lanes(stored)
        bufs = plan.bufs
        np.copyto(bufs[1], init_w)  # v_prev of cycle 0
        bufs[0][psch.sl_const] = init_w[psch.sl_const]  # written once
        # Stimulus as lane words, cycle-major: (cycles, n_in, W).
        stim_w = pack_lanes(
            np.ascontiguousarray(np.transpose(stim, (1, 2, 0)))
        )
        progs = plan.progs
        in_views = plan.in_views
        tr = plan.tog_row
        alias_src = psch.alias_src
        has_alias = alias_src.size > 0
        sl_alias = psch.sl_alias
        sl_clk_free = psch.sl_clk_free
        sl_clk_g = psch.sl_clk_gated
        has_clk_free = sl_clk_free.stop > sl_clk_free.start
        has_clk_g = sl_clk_g.stop > sl_clk_g.start
        need_dense = packed_out is not None or bool(acc_weights)
        # The per-cycle gather restores net-id order (all nets when the
        # dense block is needed, just the selected rows otherwise), so
        # the flush unpacks one contiguous block per _REC_BLOCK cycles.
        if need_dense:
            rec_rows = row_of.astype(np.intp)
        elif cols is not None:
            rec_rows = row_of[cols].astype(np.intp)
        else:
            rec_rows = None
        tb = None
        if rec_rows is not None:
            tb = np.empty(
                (min(_REC_BLOCK, max(cycles, 1)), rec_rows.size, W),
                dtype=np.uint64,
            )
        acc_items = list(acc_weights.items())
        j = 0  # cycles buffered in the toggle block
        blk0 = 0  # first cycle index of the current block

        for i in range(cycles):
            p = i & 1
            vals = bufs[p]
            if n_in:
                np.copyto(in_views[p], stim_w[i])
            for code, a, b, o in progs[p]:
                if code == 0:
                    np.bitwise_xor(a, b, o)
                elif code == 1:
                    np.bitwise_and(a, b, o)
                elif code == 2:
                    a.take(b, 0, o)
                else:
                    np.copyto(o, a)
            if tb is None:
                continue
            # Toggles in storage-row order (polarity cancels in the
            # XOR); alias rows mirror their source, CLK rows report the
            # enable; then one gather into the net-ordered block.
            np.bitwise_xor(vals, bufs[1 - p], tr)
            if has_alias:
                tr.take(alias_src, 0, tr[sl_alias])
            if has_clk_free:
                tr[sl_clk_free] = _WORD_ONES
            if has_clk_g:
                tr[sl_clk_g] = vals[sl_clk_g]
            tr.take(rec_rows, 0, tb[j])
            j += 1
            if j == tb.shape[0] or i == cycles - 1:
                # Flush: one contiguous unpack per block, then record
                # with the reference engine's exact per-cycle GEMV call
                # shape.
                dense = unpack_lanes(tb[:j], batch)
                if need_dense:
                    if packed_out is not None:
                        packed_out[blk0:blk0 + j] = np.packbits(
                            dense, axis=1
                        )
                    if cols_out is not None:
                        cols_out[:, blk0:blk0 + j, :] = dense[
                            :, cols
                        ].transpose(2, 0, 1)
                    for name, w in acc_items:
                        o = acc_out[name]
                        for k in range(j):
                            o[:, blk0 + k] = _acc_reduce(w, dense[k])
                else:
                    cols_out[:, blk0:blk0 + j, :] = dense.transpose(
                        2, 0, 1
                    )
                blk0 = i + 1
                j = 0

        fv = bufs[(cycles - 1) & 1] if cycles else bufs[1]
        if has_alias:
            np.take(fv, alias_src, axis=0, out=fv[sl_alias])
        final = unpack_lanes(np.take(fv, row_of, axis=0), batch)
        return final ^ pol_col


#: Cycles buffered before the packed engine's recording path unpacks a
#: toggle block (amortizes the net-order gather and bit unpacking).
_REC_BLOCK = 32


class _PackedPlan:
    """Per-word-width execution state for the packed engine.

    Holds the double-buffered value arrays plus, for each buffer parity,
    a *micro-program*: a flat tuple of ``(opcode, a, b, out)`` entries
    whose operands are prebound array views (opcodes: 0 = XOR, 1 = AND,
    2 = take, 3 = copy).  Binding every slice once per word width — the
    buffers are reused across runs — removes all indexing overhead from
    the cycle loop.
    """

    def __init__(self, psch: PackedSchedule, W: int) -> None:
        nr = psch.n_rows
        self.bufs = (
            np.zeros((nr, W), dtype=np.uint64),
            np.zeros((nr, W), dtype=np.uint64),
        )
        self.scratch = np.empty((psch.max_gather, W), dtype=np.uint64)
        n_gated = psch.sl_gated.stop - psch.sl_gated.start
        self.en_buf = np.empty((n_gated, W), dtype=np.uint64)
        self.d_buf = np.empty((n_gated, W), dtype=np.uint64)
        self.tog_row = np.empty((nr, W), dtype=np.uint64)
        self.progs = (
            self._build(psch, self.bufs[0], self.bufs[1]),
            self._build(psch, self.bufs[1], self.bufs[0]),
        )
        self.in_views = (
            self.bufs[0][psch.sl_inputs],
            self.bufs[1][psch.sl_inputs],
        )

    def _build(
        self, psch: PackedSchedule, vals: np.ndarray, v_prev: np.ndarray
    ) -> tuple:
        XOR, AND, TAKE, COPY = 0, 1, 2, 3
        P: list[tuple] = []
        # 1. register capture (previous-cycle D and enables).
        if psch.free_d.size:
            o = vals[psch.sl_free]
            P.append((TAKE, v_prev, psch.free_d, o))
            if psch.free_has_inv:
                P.append((XOR, o, psch.free_d_inv, o))
        if psch.gated_d.size:
            en, d = self.en_buf, self.d_buf
            P.append((TAKE, v_prev, psch.gated_en, en))
            if psch.gated_en_has_inv:
                P.append((XOR, en, psch.gated_en_inv, en))
            P.append((TAKE, v_prev, psch.gated_d, d))
            if psch.gated_d_has_inv:
                P.append((XOR, d, psch.gated_d_inv, d))
            q = v_prev[psch.sl_gated]
            # hold-or-capture without a select: q ^ (en & (d ^ q))
            P.append((XOR, d, q, d))
            P.append((AND, d, en, d))
            P.append((XOR, d, q, d))
            P.append((COPY, d, None, vals[psch.sl_gated]))
        # 2. comb readers of a CLK net must observe its previous-cycle
        # value (the uint8 engine's copyto semantics).  Stimulus rows are
        # written by the cycle loop before the program runs.
        if psch.sl_clk_all.stop > psch.sl_clk_all.start:
            P.append(
                (COPY, v_prev[psch.sl_clk_all], None,
                 vals[psch.sl_clk_all])
            )
        # 3. fused combinational evaluation, one level at a time.
        for L in psch.levels:
            g = self.scratch[: L.width]
            P.append((TAKE, vals, L.gather, g))
            if L.has_inv:
                P.append((XOR, g, L.inv, g))
            if L.n_and:
                P.append(
                    (AND, g[L.sl_and_a], g[L.sl_and_b], vals[L.out_and])
                )
            if L.n_xor:
                P.append(
                    (XOR, g[L.sl_xor_a], g[L.sl_xor_b], vals[L.out_xor])
                )
            if L.n_copy:
                P.append((COPY, g[L.sl_copy], None, vals[L.out_copy]))
            if L.n_mux:
                P.append(
                    (XOR, vals[L.sl_u], vals[L.sl_v], vals[L.out_mux])
                )
        # 4. clock nets.
        if psch.sl_clk_free.stop > psch.sl_clk_free.start:
            P.append((COPY, _WORD_ONES, None, vals[psch.sl_clk_free]))
        if psch.clk_g_en.size:
            o = vals[psch.sl_clk_gated]
            P.append((TAKE, v_prev, psch.clk_g_en, o))
            if psch.clk_g_has_inv:
                P.append((XOR, o, psch.clk_g_en_inv, o))
        return tuple(P)
