"""Vectorized cycle-accurate netlist simulator.

Stands in for the paper's VCS RTL simulation (design-time flow) and, in
proxy-capture mode, for the Palladium emulator's selective signal tracing.

Semantics
---------
Each simulated cycle ``i``:

1. registers capture their D values computed during cycle ``i - 1``
   (clock-gated registers hold when their domain enable was 0);
2. ``INPUT`` nets take the cycle-``i`` stimulus;
3. combinational nets evaluate in levelized order;
4. ``CLK`` nets take their (latched) enable value;
5. the toggle vector is ``value[i] XOR value[i-1]`` for ordinary nets and
   the enable itself for ``CLK`` nets — a gated clock toggles exactly when
   its edge is enabled, matching §6 of the paper.

The simulator runs a *batch* of independent stimuli at once (one extra
array axis), which is what makes the GA's per-generation power evaluation
affordable in NumPy.

Recording options per run:

* full packed :class:`~repro.rtl.trace.ToggleTrace` (training data);
* dense toggles of selected columns only (emulator-assisted proxy flow);
* named *accumulators*: per-cycle dot products ``weights . toggles`` used
  by the power analyzer so long runs never materialize a full trace.

Engines
-------
The cycle loop itself is pluggable: each engine is a
:class:`~repro.rtl.backends.base.Backend` that compiles the netlist
once (constructor) and then runs batches.  See
:mod:`repro.rtl.backends` for the built-in engines and the registry;
all engines produce bit-identical results by contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, StimulusError
from repro.obs.trace import NULL_TRACER
from repro.rtl import backends as _backends
from repro.rtl.backends.base import acc_reduce as _acc_reduce  # noqa: F401
from repro.rtl.levelize import LevelSchedule, PackedSchedule, levelize
from repro.rtl.netlist import Netlist
from repro.rtl.trace import ToggleTrace

__all__ = ["RecordSpec", "SimResult", "Simulator", "ENGINES"]

#: Available simulation engines, in registry order.  ``"packed"``
#: (default) packs 64 batch lanes per uint64 word and evaluates fused
#: per-level micro-programs; ``"uint8"`` is the one-lane-per-byte
#: reference implementation; ``"compiled"`` lowers the packed
#: micro-program to a native kernel (Numba or runtime-compiled C) and
#: falls back to the packed loop when neither is available.  All
#: engines produce bit-identical results.
ENGINES = _backends.backend_names()


@dataclass(frozen=True)
class RecordSpec:
    """What a simulation run should record.

    Attributes
    ----------
    full_trace:
        Record the packed toggle bits of every net.
    columns:
        Net ids whose toggle bits are recorded densely (or ``None``).
    accumulators:
        Name -> float32 weight vector (length ``n_nets``); each produces a
        per-cycle weighted toggle sum.
    """

    full_trace: bool = False
    columns: np.ndarray | None = None
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class SimResult:
    """Output of one :meth:`Simulator.run` call."""

    n_cycles: int
    batch: int
    trace: ToggleTrace | None
    columns: np.ndarray | None  # (batch, cycles, n_cols) uint8
    accum: dict[str, np.ndarray]  # name -> (batch, cycles) float64
    elapsed: float
    final_values: np.ndarray | None = None  # (n_nets, batch) uint8

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles (x batch) per wall second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.n_cycles * self.batch / self.elapsed


class Simulator:
    """Compiled simulator for one netlist.

    Compilation (levelization, plus any engine-specific lowering such as
    the packed layout or native op tables) happens once in the
    constructor; ``run`` may be called many times with different stimuli.

    Parameters
    ----------
    netlist:
        The design to simulate.
    engine:
        One of :data:`ENGINES`; ``"packed"`` is the default.  Every
        engine produces bit-identical :class:`SimResult` contents, so
        the choice only affects throughput.
    """

    def __init__(self, netlist: Netlist, engine: str = "packed") -> None:
        cls = _backends.get_backend(engine)
        if cls.requires_little_endian and not np.little_endian:
            cls = _backends.get_backend("uint8")  # pragma: no cover
        self.netlist = netlist
        self.engine = cls.name
        self.schedule: LevelSchedule = levelize(netlist)
        self.backend = cls(netlist, self.schedule)
        self.packed_schedule: PackedSchedule | None = (
            self.backend.packed_schedule
        )
        self._n = netlist.n_nets

    # ------------------------------------------------------------------ #
    def _initial_values(self, batch: int) -> np.ndarray:
        """State after reset: registers at init, everything else evaluated
        with all-zero inputs."""
        return _backends.initial_values(self.schedule, batch)

    def comb_eval(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate combinational logic once with the given input values.

        Registers hold their init values.  Intended for functional tests of
        datapath blocks; returns the full value vector.

        Parameters
        ----------
        input_bits:
            uint8 array of shape ``(n_inputs,)`` or ``(n_inputs, batch)``.

        Returns
        -------
        numpy.ndarray
            Net values, shape ``(n_nets, batch)``.
        """
        bits = np.asarray(input_bits, dtype=np.uint8)
        if bits.ndim == 1:
            bits = bits[:, None]
        if bits.shape[0] != self.schedule.input_ids.size:
            raise StimulusError(
                f"got {bits.shape[0]} input bits, design has "
                f"{self.schedule.input_ids.size}"
            )
        vals = self._initial_values(bits.shape[1])
        if self.schedule.input_ids.size:
            vals[self.schedule.input_ids] = bits
        _backends.eval_comb(self.schedule, vals)
        return vals

    # ------------------------------------------------------------------ #
    def run(
        self,
        stimulus: np.ndarray,
        record: RecordSpec | None = None,
        init_values: np.ndarray | None = None,
        tracer=None,
    ) -> SimResult:
        """Simulate ``stimulus`` and record per the :class:`RecordSpec`.

        Parameters
        ----------
        stimulus:
            uint8 array of shape ``(cycles, n_inputs)`` for a single run or
            ``(batch, cycles, n_inputs)`` for a batched run.  ``n_inputs``
            must equal the number of ``INPUT`` nets, in creation order.
        record:
            What to record; defaults to a full packed trace.
        init_values:
            Full value vector from a previous run's ``final_values`` to
            continue a long simulation in chunks with identical results;
            ``None`` starts from reset.
        tracer:
            Optional :class:`~repro.obs.trace.Tracer`; the cycle loop
            becomes an ``rtl.sim.run`` span (engine, cycles, batch,
            throughput).  Default is the zero-overhead no-op tracer.
        """
        record = record or RecordSpec(full_trace=True)
        stim = np.asarray(stimulus, dtype=np.uint8)
        if stim.ndim == 2:
            stim = stim[None]
        if stim.ndim != 3:
            raise StimulusError(
                f"stimulus must be 2-D or 3-D, got shape {stim.shape}"
            )
        sch = self.schedule
        batch, cycles, n_in = stim.shape
        if n_in != sch.input_ids.size:
            raise StimulusError(
                f"stimulus provides {n_in} input bits, design has "
                f"{sch.input_ids.size}"
            )

        cols = None
        if record.columns is not None:
            cols = np.asarray(record.columns, dtype=np.int64)
            if cols.size and (cols.min() < 0 or cols.max() >= self._n):
                raise SimulationError("record columns out of range")
        acc_weights: dict[str, np.ndarray] = {}
        for name, w in record.accumulators.items():
            w = np.asarray(w, dtype=np.float32)
            if w.shape != (self._n,):
                raise SimulationError(
                    f"accumulator {name!r} has shape {w.shape}, expected "
                    f"({self._n},)"
                )
            # Accumulate in float64: exact upcast of the canonical
            # float32 weights, and acc_reduce keeps each lane's sum
            # independent of the batch width.
            acc_weights[name] = w.astype(np.float64)

        # Output buffers.
        packed_out = None
        if record.full_trace:
            packed_out = np.empty(
                (cycles, (self._n + 7) // 8, batch), dtype=np.uint8
            )
        cols_out = None
        if cols is not None:
            cols_out = np.empty((batch, cycles, cols.size), dtype=np.uint8)
        acc_out = {
            name: np.empty((batch, cycles), dtype=np.float64)
            for name in acc_weights
        }

        if init_values is not None and init_values.shape != (self._n, batch):
            raise SimulationError(
                f"init_values shape {init_values.shape} != "
                f"({self._n}, {batch})"
            )

        with (tracer or NULL_TRACER).span(
            "rtl.sim.run",
            engine=self.engine,
            cycles=cycles,
            batch=batch,
        ) as sp:
            t0 = time.perf_counter()
            final_values = self.backend.run(
                stim, cols, acc_weights, packed_out, cols_out, acc_out,
                init_values,
            )
            elapsed = time.perf_counter() - t0
            if sp:
                sp.set(
                    lane_cycles_per_second=(
                        cycles * batch / elapsed if elapsed > 0
                        else float("inf")
                    )
                )

        trace = None
        if packed_out is not None:
            trace = ToggleTrace(
                packed=np.ascontiguousarray(
                    np.transpose(packed_out, (2, 0, 1))
                ),
                n_nets=self._n,
            )
        return SimResult(
            n_cycles=cycles,
            batch=batch,
            trace=trace,
            columns=cols_out,
            accum=acc_out,
            elapsed=elapsed,
            final_values=final_values,
        )
