"""Vectorized cycle-accurate netlist simulator.

Stands in for the paper's VCS RTL simulation (design-time flow) and, in
proxy-capture mode, for the Palladium emulator's selective signal tracing.

Semantics
---------
Each simulated cycle ``i``:

1. registers capture their D values computed during cycle ``i - 1``
   (clock-gated registers hold when their domain enable was 0);
2. ``INPUT`` nets take the cycle-``i`` stimulus;
3. combinational nets evaluate in levelized order;
4. ``CLK`` nets take their (latched) enable value;
5. the toggle vector is ``value[i] XOR value[i-1]`` for ordinary nets and
   the enable itself for ``CLK`` nets — a gated clock toggles exactly when
   its edge is enabled, matching §6 of the paper.

The simulator runs a *batch* of independent stimuli at once (one extra
array axis), which is what makes the GA's per-generation power evaluation
affordable in NumPy.

Recording options per run:

* full packed :class:`~repro.rtl.trace.ToggleTrace` (training data);
* dense toggles of selected columns only (emulator-assisted proxy flow);
* named *accumulators*: per-cycle dot products ``weights . toggles`` used
  by the power analyzer so long runs never materialize a full trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError, StimulusError
from repro.rtl.cells import Op
from repro.rtl.levelize import LevelSchedule, levelize
from repro.rtl.netlist import NO_NET, Netlist
from repro.rtl.trace import ToggleTrace

__all__ = ["RecordSpec", "SimResult", "Simulator"]


@dataclass(frozen=True)
class RecordSpec:
    """What a simulation run should record.

    Attributes
    ----------
    full_trace:
        Record the packed toggle bits of every net.
    columns:
        Net ids whose toggle bits are recorded densely (or ``None``).
    accumulators:
        Name -> float32 weight vector (length ``n_nets``); each produces a
        per-cycle weighted toggle sum.
    """

    full_trace: bool = False
    columns: np.ndarray | None = None
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class SimResult:
    """Output of one :meth:`Simulator.run` call."""

    n_cycles: int
    batch: int
    trace: ToggleTrace | None
    columns: np.ndarray | None  # (batch, cycles, n_cols) uint8
    accum: dict[str, np.ndarray]  # name -> (batch, cycles) float64
    elapsed: float
    final_values: np.ndarray | None = None  # (n_nets, batch) uint8

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles (x batch) per wall second."""
        if self.elapsed <= 0:
            return float("inf")
        return self.n_cycles * self.batch / self.elapsed


class Simulator:
    """Compiled simulator for one netlist.

    Compilation (levelization) happens once in the constructor; ``run`` may
    be called many times with different stimuli.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.schedule: LevelSchedule = levelize(netlist)
        self._n = netlist.n_nets

    # ------------------------------------------------------------------ #
    def _initial_values(self, batch: int) -> np.ndarray:
        """State after reset: registers at init, everything else evaluated
        with all-zero inputs."""
        vals = np.zeros((self._n, batch), dtype=np.uint8)
        sch = self.schedule
        if sch.const_ids.size:
            vals[sch.const_ids] = sch.const_vals[:, None]
        if sch.reg_out.size:
            vals[sch.reg_out] = sch.reg_init[:, None]
        self._eval_comb(vals)
        # CLK values at reset: enabled domains show their enable, always-on
        # domains show 1.
        for k in range(sch.clk_out.size):
            en = sch.clk_en[k]
            vals[sch.clk_out[k]] = 1 if en == NO_NET else vals[en]
        return vals

    def _eval_comb(self, vals: np.ndarray) -> None:
        for g in self.schedule.groups:
            a = vals[g.a]
            op = g.op
            if op == Op.BUF:
                vals[g.out] = a
            elif op == Op.NOT:
                vals[g.out] = a ^ 1
            elif op == Op.AND:
                vals[g.out] = a & vals[g.b]
            elif op == Op.OR:
                vals[g.out] = a | vals[g.b]
            elif op == Op.XOR:
                vals[g.out] = a ^ vals[g.b]
            elif op == Op.NAND:
                vals[g.out] = (a & vals[g.b]) ^ 1
            elif op == Op.NOR:
                vals[g.out] = (a | vals[g.b]) ^ 1
            elif op == Op.XNOR:
                vals[g.out] = (a ^ vals[g.b]) ^ 1
            elif op == Op.MUX:
                s = a
                vals[g.out] = (s & vals[g.b]) | ((s ^ 1) & vals[g.c])
            else:  # pragma: no cover - schedule only contains EVAL_OPS
                raise SimulationError(f"unexpected op {op!r} in schedule")

    def comb_eval(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate combinational logic once with the given input values.

        Registers hold their init values.  Intended for functional tests of
        datapath blocks; returns the full value vector.

        Parameters
        ----------
        input_bits:
            uint8 array of shape ``(n_inputs,)`` or ``(n_inputs, batch)``.

        Returns
        -------
        numpy.ndarray
            Net values, shape ``(n_nets, batch)``.
        """
        bits = np.asarray(input_bits, dtype=np.uint8)
        if bits.ndim == 1:
            bits = bits[:, None]
        if bits.shape[0] != self.schedule.input_ids.size:
            raise StimulusError(
                f"got {bits.shape[0]} input bits, design has "
                f"{self.schedule.input_ids.size}"
            )
        vals = self._initial_values(bits.shape[1])
        if self.schedule.input_ids.size:
            vals[self.schedule.input_ids] = bits
        self._eval_comb(vals)
        return vals

    # ------------------------------------------------------------------ #
    def run(
        self,
        stimulus: np.ndarray,
        record: RecordSpec | None = None,
        init_values: np.ndarray | None = None,
    ) -> SimResult:
        """Simulate ``stimulus`` and record per the :class:`RecordSpec`.

        Parameters
        ----------
        stimulus:
            uint8 array of shape ``(cycles, n_inputs)`` for a single run or
            ``(batch, cycles, n_inputs)`` for a batched run.  ``n_inputs``
            must equal the number of ``INPUT`` nets, in creation order.
        record:
            What to record; defaults to a full packed trace.
        init_values:
            Full value vector from a previous run's ``final_values`` to
            continue a long simulation in chunks with identical results;
            ``None`` starts from reset.
        """
        record = record or RecordSpec(full_trace=True)
        stim = np.asarray(stimulus, dtype=np.uint8)
        if stim.ndim == 2:
            stim = stim[None]
        if stim.ndim != 3:
            raise StimulusError(
                f"stimulus must be 2-D or 3-D, got shape {stim.shape}"
            )
        sch = self.schedule
        batch, cycles, n_in = stim.shape
        if n_in != sch.input_ids.size:
            raise StimulusError(
                f"stimulus provides {n_in} input bits, design has "
                f"{sch.input_ids.size}"
            )

        cols = None
        if record.columns is not None:
            cols = np.asarray(record.columns, dtype=np.int64)
            if cols.size and (cols.min() < 0 or cols.max() >= self._n):
                raise SimulationError("record columns out of range")
        acc_weights: dict[str, np.ndarray] = {}
        for name, w in record.accumulators.items():
            w = np.asarray(w, dtype=np.float32)
            if w.shape != (self._n,):
                raise SimulationError(
                    f"accumulator {name!r} has shape {w.shape}, expected "
                    f"({self._n},)"
                )
            acc_weights[name] = w

        # Output buffers.
        packed_out = None
        if record.full_trace:
            packed_out = np.empty(
                (cycles, (self._n + 7) // 8, batch), dtype=np.uint8
            )
        cols_out = None
        if cols is not None:
            cols_out = np.empty((batch, cycles, cols.size), dtype=np.uint8)
        acc_out = {
            name: np.empty((batch, cycles), dtype=np.float64)
            for name in acc_weights
        }

        t0 = time.perf_counter()
        if init_values is not None:
            if init_values.shape != (self._n, batch):
                raise SimulationError(
                    f"init_values shape {init_values.shape} != "
                    f"({self._n}, {batch})"
                )
            v_prev = init_values.astype(np.uint8).copy()
        else:
            v_prev = self._initial_values(batch)
        vals = np.empty_like(v_prev)
        # Pre-gather register enable handling: split always-on vs gated.
        gated_mask = sch.reg_en != NO_NET
        gated_out = sch.reg_out[gated_mask]
        gated_d = sch.reg_d[gated_mask]
        gated_en = sch.reg_en[gated_mask]
        free_out = sch.reg_out[~gated_mask]
        free_d = sch.reg_d[~gated_mask]
        clk_gated = sch.clk_en != NO_NET
        clk_g_out = sch.clk_out[clk_gated]
        clk_g_en = sch.clk_en[clk_gated]
        clk_free_out = sch.clk_out[~clk_gated]

        stim_t = np.ascontiguousarray(np.transpose(stim, (1, 2, 0)))

        for i in range(cycles):
            np.copyto(vals, v_prev)
            # 1. register capture (uses previous-cycle D and enables).
            if free_out.size:
                vals[free_out] = v_prev[free_d]
            if gated_out.size:
                en = v_prev[gated_en]
                vals[gated_out] = np.where(
                    en.astype(bool), v_prev[gated_d], v_prev[gated_out]
                )
            # 2. stimulus.
            if sch.input_ids.size:
                vals[sch.input_ids] = stim_t[i]
            # 3. combinational evaluation.
            self._eval_comb(vals)
            # 4. clock nets.
            if clk_free_out.size:
                vals[clk_free_out] = 1
            if clk_g_out.size:
                vals[clk_g_out] = v_prev[clk_g_en]
            # 5. toggles.
            toggles = vals ^ v_prev
            if clk_free_out.size:
                toggles[clk_free_out] = 1
            if clk_g_out.size:
                toggles[clk_g_out] = vals[clk_g_out]
            # 6. record.
            if packed_out is not None:
                packed_out[i] = np.packbits(toggles, axis=0)
            if cols_out is not None:
                cols_out[:, i, :] = toggles[cols].T
            for name, w in acc_weights.items():
                acc_out[name][:, i] = w @ toggles
            v_prev, vals = vals, v_prev

        elapsed = time.perf_counter() - t0
        trace = None
        if packed_out is not None:
            trace = ToggleTrace(
                packed=np.ascontiguousarray(
                    np.transpose(packed_out, (2, 0, 1))
                ),
                n_nets=self._n,
            )
        return SimResult(
            n_cycles=cycles,
            batch=batch,
            trace=trace,
            columns=cols_out,
            accum=acc_out,
            elapsed=elapsed,
            final_values=v_prev.copy(),
        )
