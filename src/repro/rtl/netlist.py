"""Netlist IR: a flat array-of-structs of single-bit nets with hierarchy.

The builder API is designed for programmatic design generation: gates are
appended one at a time (or via the bus-level combinators in
:mod:`repro.rtl.datapath`) and the netlist keeps struct-of-arrays storage so
the simulator can compile it into vectorized NumPy schedules.

Concepts
--------
* **Net** — one single-bit signal driven by one cell (:class:`~repro.rtl.cells.Op`).
* **Unit** — a hierarchy tag (e.g. ``"issue"``, ``"vec0"``); set via the
  :meth:`Netlist.scope` context manager and used for power breakdowns and
  Fig. 15(a)'s proxy distribution.
* **Clock domain** — a group of registers gated by one enable net.  Each
  domain owns a ``CLK`` net modeling its clock-tree branch; the CLK net's
  per-cycle toggle bit equals the (latched) enable, mirroring how APOLLO
  traces gated clocks through their enable signals (§6 of the paper).
* **Bus** — a named ordered list of nets; used by the OPM interface
  generator to share one toggle detector OR-tree per bus.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import NetlistError
from repro.rtl.cells import CELL_LIBRARY, EVAL_OPS, N_FANIN, Op

__all__ = ["Netlist", "ClockDomain"]

NO_NET = -1


@dataclass
class ClockDomain:
    """A gated clock domain.

    Attributes
    ----------
    index:
        Domain id (position in :attr:`Netlist.domains`).
    name:
        Human-readable name, usually the unit it clocks.
    enable:
        Net id of the clock-gate enable, or ``None`` for an always-on
        domain (the root clock).
    clk_net:
        Net id of this domain's ``CLK`` net.
    """

    index: int
    name: str
    enable: int | None
    clk_net: int

    @property
    def gated(self) -> bool:
        return self.enable is not None


class Netlist:
    """A mutable flat netlist of single-bit nets.

    Nets are identified by dense integer ids in creation order.  The class
    exposes low-level primitives (``gate``, ``reg``, ``input_bit``) plus a
    handful of conveniences; wider datapath combinators live in
    :mod:`repro.rtl.datapath`.
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._op: list[int] = []
        self._fanin: list[tuple[int, int, int]] = []
        self._names: list[str] = []
        self._units: list[str] = []
        self._reg_domain: list[int] = []  # parallel to nets; -1 for non-regs
        self._reg_init: list[int] = []  # parallel to nets; 0 for non-regs
        self.domains: list[ClockDomain] = []
        self.buses: dict[str, list[int]] = {}
        self._unit_stack: list[str] = []
        self._name_counts: dict[str, int] = {}
        # Optional physical placement (set by the design generator); used by
        # the OPM routing-overhead model.  Filled lazily; None until set.
        self._xy: np.ndarray | None = None
        # Cached content hash; invalidated by structural edits.
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._op)

    @property
    def n_nets(self) -> int:
        return len(self._op)

    def op_of(self, net: int) -> Op:
        return Op(self._op[net])

    def fanin_of(self, net: int) -> tuple[int, ...]:
        n = N_FANIN[Op(self._op[net])]
        return tuple(self._fanin[net][:n])

    def name_of(self, net: int) -> str:
        return self._names[net]

    def unit_of(self, net: int) -> str:
        return self._units[net]

    def domain_of_reg(self, net: int) -> ClockDomain:
        d = self._reg_domain[net]
        if d < 0:
            raise NetlistError(f"net {net} ({self._names[net]}) is not a REG")
        return self.domains[d]

    @property
    def input_ids(self) -> list[int]:
        return [i for i, op in enumerate(self._op) if op == Op.INPUT]

    @property
    def reg_ids(self) -> list[int]:
        return [i for i, op in enumerate(self._op) if op == Op.REG]

    @property
    def clk_ids(self) -> list[int]:
        return [d.clk_net for d in self.domains]

    def ops_array(self) -> np.ndarray:
        return np.asarray(self._op, dtype=np.int8)

    def fanin_array(self) -> np.ndarray:
        return np.asarray(self._fanin, dtype=np.int32).reshape(-1, 3)

    def units_array(self) -> np.ndarray:
        return np.asarray(self._units, dtype=object)

    def unit_names(self) -> list[str]:
        """Distinct unit tags in first-appearance order."""
        seen: dict[str, None] = {}
        for u in self._units:
            seen.setdefault(u, None)
        return list(seen)

    def nets_in_unit(self, unit: str) -> list[int]:
        return [i for i, u in enumerate(self._units) if u == unit]

    def fanout_counts(self) -> np.ndarray:
        """Number of sinks per net (how many fanin slots reference it)."""
        counts = np.zeros(self.n_nets, dtype=np.int32)
        fanin = self.fanin_array()
        used = fanin[fanin >= 0]
        if used.size:
            np.add.at(counts, used, 1)
        return counts

    def fingerprint(self) -> str:
        """Content hash (hex sha256) of the simulation-relevant structure.

        Covers ops, fanin, register init values and domain assignments,
        and each domain's enable/CLK wiring — everything that determines
        simulation results.  Names, units, buses, and placement are
        deliberately excluded: two netlists with the same fingerprint
        simulate identically, which is what content-addressed evaluation
        caching (:class:`repro.parallel.EvalCache`) keys on.  The hash is
        cached and invalidated by structural edits.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(np.int64(self.n_nets).tobytes())
            h.update(self.ops_array().tobytes())
            h.update(self.fanin_array().tobytes())
            h.update(self.reg_init_array().tobytes())
            h.update(self.reg_domain_array().tobytes())
            for dom in self.domains:
                enable = NO_NET if dom.enable is None else dom.enable
                h.update(np.asarray(
                    [enable, dom.clk_net], dtype=np.int64
                ).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def total_area(self) -> float:
        """Sum of cell areas in gate equivalents."""
        return float(
            sum(CELL_LIBRARY[Op(op)].area for op in self._op)
        )

    def area_by_unit(self) -> dict[str, float]:
        areas: dict[str, float] = {}
        for op, unit in zip(self._op, self._units):
            areas[unit] = areas.get(unit, 0.0) + CELL_LIBRARY[Op(op)].area
        return areas

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def set_positions(self, xy: np.ndarray) -> None:
        """Attach (n_nets, 2) float placement coordinates (arbitrary units)."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.shape != (self.n_nets, 2):
            raise NetlistError(
                f"positions shape {xy.shape} != ({self.n_nets}, 2)"
            )
        self._xy = xy

    @property
    def positions(self) -> np.ndarray | None:
        return self._xy

    # ------------------------------------------------------------------ #
    # hierarchy
    # ------------------------------------------------------------------ #
    @contextmanager
    def scope(self, unit: str) -> Iterator[None]:
        """Tag nets created inside the context with ``unit``.

        Scopes nest with ``/`` separators: ``scope("vec0")`` inside
        ``scope("exec")`` tags nets as ``"exec/vec0"``.
        """
        if self._unit_stack:
            unit = f"{self._unit_stack[-1]}/{unit}"
        self._unit_stack.append(unit)
        try:
            yield
        finally:
            self._unit_stack.pop()

    @property
    def current_unit(self) -> str:
        return self._unit_stack[-1] if self._unit_stack else "top"

    def _fresh_name(self, base: str) -> str:
        key = f"{self.current_unit}/{base}"
        n = self._name_counts.get(key, 0)
        self._name_counts[key] = n + 1
        return key if n == 0 else f"{key}${n}"

    # ------------------------------------------------------------------ #
    # construction primitives
    # ------------------------------------------------------------------ #
    def _append(
        self,
        op: Op,
        fanin: Sequence[int],
        name: str | None,
        domain: int = -1,
        init: int = 0,
    ) -> int:
        want = N_FANIN[op]
        if len(fanin) != want:
            raise NetlistError(
                f"{op.name} takes {want} fanin nets, got {len(fanin)}"
            )
        nid = len(self._op)
        for f in fanin:
            if not (0 <= f < nid):
                raise NetlistError(
                    f"fanin {f} of new net {nid} ({op.name}) does not exist "
                    "yet; nets must be created in topological order"
                )
        padded = tuple(fanin) + (NO_NET,) * (3 - len(fanin))
        self._op.append(int(op))
        self._fanin.append(padded)  # type: ignore[arg-type]
        self._names.append(self._fresh_name(name or op.name.lower()))
        self._units.append(self.current_unit)
        self._reg_domain.append(domain)
        self._reg_init.append(init)
        self._xy = None  # placement invalidated by structural edits
        self._fingerprint = None
        return nid

    def const(self, value: int, name: str | None = None) -> int:
        return self._append(Op.CONST1 if value else Op.CONST0, (), name)

    def input_bit(self, name: str | None = None) -> int:
        return self._append(Op.INPUT, (), name)

    def input_bus(self, name: str, width: int) -> list[int]:
        """Create ``width`` input bits and register them as a bus."""
        bits = [self.input_bit(f"{name}[{i}]") for i in range(width)]
        self.add_bus(name, bits)
        return bits

    def gate(self, op: Op, *fanin: int, name: str | None = None) -> int:
        if op not in EVAL_OPS:
            raise NetlistError(f"{op.name} is not a combinational gate op")
        return self._append(op, fanin, name)

    def buf(self, a: int, name: str | None = None) -> int:
        return self.gate(Op.BUF, a, name=name)

    def not_(self, a: int, name: str | None = None) -> int:
        return self.gate(Op.NOT, a, name=name)

    def and_(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.AND, a, b, name=name)

    def or_(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.OR, a, b, name=name)

    def xor(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.XOR, a, b, name=name)

    def nand(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.NAND, a, b, name=name)

    def nor(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.NOR, a, b, name=name)

    def xnor(self, a: int, b: int, name: str | None = None) -> int:
        return self.gate(Op.XNOR, a, b, name=name)

    def mux(self, sel: int, a: int, b: int, name: str | None = None) -> int:
        """``sel ? a : b``."""
        return self.gate(Op.MUX, sel, a, b, name=name)

    def clock_domain(
        self, name: str, enable: int | None = None
    ) -> ClockDomain:
        """Create a clock domain and its CLK net.

        ``enable`` can be attached later via :meth:`set_domain_enable` when
        the gating logic is built after the registers it gates.
        """
        clk = self._append(Op.CLK, (), f"clk_{name}")
        dom = ClockDomain(
            index=len(self.domains), name=name, enable=enable, clk_net=clk
        )
        self.domains.append(dom)
        return dom

    def set_domain_enable(self, domain: ClockDomain, enable: int) -> None:
        if not (0 <= enable < self.n_nets):
            raise NetlistError(f"enable net {enable} does not exist")
        domain.enable = enable
        self._fingerprint = None

    def reg(
        self,
        d: int,
        domain: ClockDomain,
        init: int = 0,
        name: str | None = None,
    ) -> int:
        """A flip-flop capturing ``d`` on clock edges of ``domain``."""
        if domain is not self.domains[domain.index]:
            raise NetlistError("domain does not belong to this netlist")
        return self._append(
            Op.REG, (d,), name or "reg", domain=domain.index, init=init & 1
        )

    def reg_uninit(
        self, domain: ClockDomain, init: int = 0, name: str | None = None
    ) -> int:
        """A flip-flop whose D input is connected later.

        Sequential feedback (counters, FSM state, accumulators) needs the
        register to exist before the logic computing its next value; use
        :meth:`connect_reg` to attach the D net afterwards.  A netlist with
        unconnected registers fails :meth:`validate`.
        """
        if domain is not self.domains[domain.index]:
            raise NetlistError("domain does not belong to this netlist")
        nid = len(self._op)
        self._op.append(int(Op.REG))
        self._fanin.append((NO_NET, NO_NET, NO_NET))
        self._names.append(self._fresh_name(name or "reg"))
        self._units.append(self.current_unit)
        self._reg_domain.append(domain.index)
        self._reg_init.append(init & 1)
        self._xy = None
        self._fingerprint = None
        return nid

    def connect_reg(self, reg: int, d: int) -> None:
        """Attach the D input of a register created by :meth:`reg_uninit`."""
        if self._op[reg] != Op.REG:
            raise NetlistError(f"net {reg} is not a REG")
        if self._fanin[reg][0] != NO_NET:
            raise NetlistError(f"register {self._names[reg]} already driven")
        if not (0 <= d < self.n_nets):
            raise NetlistError(f"D net {d} does not exist")
        self._fanin[reg] = (d, NO_NET, NO_NET)
        self._fingerprint = None

    def add_bus(self, name: str, nets: Iterable[int]) -> None:
        nets = list(nets)
        if name in self.buses:
            raise NetlistError(f"bus {name!r} already registered")
        for n in nets:
            if not (0 <= n < self.n_nets):
                raise NetlistError(f"bus {name!r} references missing net {n}")
        self.buses[name] = nets

    def bus_of_net(self) -> dict[int, str]:
        """Map net id -> bus name for all nets that belong to a bus."""
        out: dict[int, str] = {}
        for bus, nets in self.buses.items():
            for n in nets:
                out[n] = bus
        return out

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`.

        Creation order already guarantees acyclicity (fanins must exist
        before the net), so this focuses on domain wiring and array
        consistency.
        """
        n = self.n_nets
        if not (
            len(self._fanin)
            == len(self._names)
            == len(self._units)
            == len(self._reg_domain)
            == len(self._reg_init)
            == n
        ):
            raise NetlistError("internal arrays out of sync")
        for dom in self.domains:
            if dom.enable is not None and not (0 <= dom.enable < n):
                raise NetlistError(
                    f"domain {dom.name!r} enable {dom.enable} missing"
                )
            if self._op[dom.clk_net] != Op.CLK:
                raise NetlistError(f"domain {dom.name!r} clk net corrupted")
        for i, op in enumerate(self._op):
            if op == Op.REG:
                d = self._reg_domain[i]
                if not (0 <= d < len(self.domains)):
                    raise NetlistError(
                        f"reg {i} ({self._names[i]}) has bad domain {d}"
                    )
                if self._fanin[i][0] == NO_NET:
                    raise NetlistError(
                        f"register {self._names[i]} has no D connection"
                    )

    def reg_init_array(self) -> np.ndarray:
        return np.asarray(self._reg_init, dtype=np.uint8)

    def reg_domain_array(self) -> np.ndarray:
        return np.asarray(self._reg_domain, dtype=np.int32)

    def summary(self) -> dict[str, int]:
        """Counts by op category, for logging and tests."""
        ops = self.ops_array()
        return {
            "nets": self.n_nets,
            "inputs": int(np.count_nonzero(ops == Op.INPUT)),
            "regs": int(np.count_nonzero(ops == Op.REG)),
            "comb": int(
                np.count_nonzero(
                    np.isin(ops, [int(o) for o in EVAL_OPS])
                )
            ),
            "clk": len(self.domains),
            "buses": len(self.buses),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.summary()
        return (
            f"Netlist({self.name!r}, nets={s['nets']}, regs={s['regs']}, "
            f"comb={s['comb']}, domains={s['clk']})"
        )
