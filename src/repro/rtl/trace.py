"""Packed per-cycle toggle traces.

A :class:`ToggleTrace` stores one toggle bit per net per cycle (per batch
element) with bit-packing along the net axis — the Python analogue of the
VCD/FSDB dumps in the paper's flow, but 8x denser than a byte per bit.
Column extraction is done without unpacking the full matrix, so selecting
the Q proxy columns out of tens of thousands of nets stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import SimulationError

__all__ = ["ToggleTrace", "pack_lanes", "unpack_lanes"]


# ---------------------------------------------------------------------- #
# Lane-word packing (bit-parallel simulation engine)
# ---------------------------------------------------------------------- #
# The packed simulator stores 64 batch lanes per uint64 word: lane ``l``
# lives in bit ``l`` of word ``l // 64``.  Packing along the last axis via
# little-endian ``packbits`` plus a uint64 reinterpretation keeps every
# conversion on the contiguous fast path; the reinterpretation assumes a
# little-endian host (checked at call time).


def _require_little_endian() -> None:
    if not np.little_endian:  # pragma: no cover - no BE host to test on
        raise SimulationError(
            "lane-word packing requires a little-endian host; "
            "use Simulator(engine='uint8') on this platform"
        )


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis into uint64 lane words.

    ``bits`` has shape ``(..., lanes)`` (uint8, values 0/1); the result has
    shape ``(..., ceil(lanes / 64))`` with lane ``l`` in bit ``l`` of word
    ``l // 64``.  Lanes beyond the input are zero-padded.
    """
    _require_little_endian()
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    lanes = bits.shape[-1]
    n_words = (lanes + 63) // 64
    packed = np.packbits(bits, axis=-1, bitorder="little")
    out = np.zeros(bits.shape[:-1] + (n_words * 8,), dtype=np.uint8)
    out[..., : packed.shape[-1]] = packed
    return out.view(np.uint64)


def unpack_lanes(words: np.ndarray, lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: the first ``lanes`` bits as uint8.

    ``words`` must be C-contiguous along its last axis; the result is a
    fresh C-contiguous array of shape ``(..., lanes)``.
    """
    _require_little_endian()
    if not words.flags.c_contiguous:
        words = np.ascontiguousarray(words)
    return np.unpackbits(
        words.view(np.uint8), axis=-1, count=lanes, bitorder="little"
    )


@dataclass
class ToggleTrace:
    """Bit-packed toggle activity for ``n_nets`` nets over ``n_cycles``.

    ``packed`` has shape ``(batch, n_cycles, ceil(n_nets / 8))`` with bits
    packed MSB-first along the last axis (NumPy ``packbits`` convention).
    """

    packed: np.ndarray
    n_nets: int

    def __post_init__(self) -> None:
        if self.packed.ndim != 3:
            raise SimulationError(
                f"packed trace must be 3-D, got shape {self.packed.shape}"
            )
        need = (self.n_nets + 7) // 8
        if self.packed.shape[2] != need:
            raise SimulationError(
                f"packed width {self.packed.shape[2]} != ceil({self.n_nets}/8)"
            )
        if self.packed.dtype != np.uint8:
            raise SimulationError("packed trace must be uint8")

    # ------------------------------------------------------------------ #
    @property
    def batch(self) -> int:
        return int(self.packed.shape[0])

    @property
    def n_cycles(self) -> int:
        return int(self.packed.shape[1])

    @property
    def nbytes(self) -> int:
        """Storage footprint of the packed trace in bytes."""
        return int(self.packed.nbytes)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ToggleTrace":
        """Pack a dense uint8 array of shape (batch, cycles, n_nets)."""
        dense = np.asarray(dense, dtype=np.uint8)
        if dense.ndim == 2:
            dense = dense[None]
        packed = np.packbits(dense, axis=2)
        return cls(packed=packed, n_nets=int(dense.shape[2]))

    def dense(self, cols: np.ndarray | None = None) -> np.ndarray:
        """Extract toggle bits as uint8.

        Parameters
        ----------
        cols:
            Net ids to extract; ``None`` extracts every net.

        Returns
        -------
        numpy.ndarray
            Shape ``(batch, n_cycles, len(cols))``.
        """
        if cols is None:
            full = np.unpackbits(self.packed, axis=2, count=self.n_nets)
            return full
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_nets):
            raise SimulationError("column ids out of range")
        byte_idx = cols // 8
        shift = (7 - (cols % 8)).astype(np.uint8)
        gathered = self.packed[:, :, byte_idx]
        return (gathered >> shift) & np.uint8(1)

    def column(self, net: int) -> np.ndarray:
        """One net's toggle bits, shape (batch, n_cycles)."""
        return self.dense(np.asarray([net]))[:, :, 0]

    def toggle_counts(self) -> np.ndarray:
        """Total toggles per net summed over batch and cycles (int64)."""
        full = self.dense()
        return full.sum(axis=(0, 1), dtype=np.int64)

    def flatten_batch(self) -> "ToggleTrace":
        """Concatenate batch elements along the cycle axis (batch -> 1)."""
        b, c, w = self.packed.shape
        return ToggleTrace(
            packed=self.packed.reshape(1, b * c, w), n_nets=self.n_nets
        )

    def slice_cycles(self, start: int, stop: int) -> "ToggleTrace":
        return ToggleTrace(
            packed=self.packed[:, start:stop], n_nets=self.n_nets
        )

    def iter_chunks(
        self,
        chunk_cycles: int,
        cols: np.ndarray | None = None,
        batch_index: int = 0,
    ):
        """Yield ``(start_cycle, dense_block)`` over fixed-size chunks.

        Each block is the dense uint8 toggle matrix of one batch element
        for ``cols`` (or all nets), shape ``(chunk, len(cols))``; the
        final block may be shorter.  Only one chunk's selected columns
        are ever unpacked at a time, so iterating a long trace stays
        bounded-memory regardless of its length.
        """
        if chunk_cycles < 1:
            raise SimulationError("chunk_cycles must be >= 1")
        if not (0 <= batch_index < self.batch):
            raise SimulationError(
                f"batch index {batch_index} out of range "
                f"[0, {self.batch})"
            )
        for start in range(0, self.n_cycles, chunk_cycles):
            stop = min(start + chunk_cycles, self.n_cycles)
            block = self.slice_cycles(start, stop).dense(cols)[batch_index]
            yield start, block

    @classmethod
    def concat_cycles(cls, traces: list["ToggleTrace"]) -> "ToggleTrace":
        """Concatenate traces (equal batch and n_nets) along cycles."""
        if not traces:
            raise SimulationError("cannot concat zero traces")
        n = traces[0].n_nets
        b = traces[0].batch
        for t in traces[1:]:
            if t.n_nets != n or t.batch != b:
                raise SimulationError("trace shapes do not match for concat")
        return cls(
            packed=np.concatenate([t.packed for t in traces], axis=1),
            n_nets=n,
        )

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path, packed=self.packed, n_nets=np.int64(self.n_nets)
        )

    @classmethod
    def load(cls, path: str | Path) -> "ToggleTrace":
        with np.load(path) as data:
            return cls(
                packed=data["packed"], n_nets=int(data["n_nets"])
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ToggleTrace(batch={self.batch}, cycles={self.n_cycles}, "
            f"nets={self.n_nets}, {self.nbytes / 1e6:.1f} MB)"
        )
