"""RTL substrate: netlist IR, levelization, and a vectorized cycle simulator.

This package replaces the proprietary RTL + commercial simulator (VCS) used
by the paper.  A :class:`~repro.rtl.netlist.Netlist` holds single-bit nets
(gates, registers, inputs, gated-clock nets) with hierarchy tags; the
:class:`~repro.rtl.simulator.Simulator` evaluates it cycle-by-cycle
(optionally batched over independent stimuli) and records per-cycle toggle
bits — the features APOLLO trains on.
"""

from repro.rtl.cells import Op, CELL_LIBRARY, CellInfo
from repro.rtl.netlist import Netlist, ClockDomain
from repro.rtl.levelize import (
    levelize,
    LevelSchedule,
    PackedSchedule,
    compile_packed,
)
from repro.rtl.trace import ToggleTrace, pack_lanes, unpack_lanes
from repro.rtl.simulator import Simulator, SimResult, RecordSpec, ENGINES

__all__ = [
    "Op",
    "CELL_LIBRARY",
    "CellInfo",
    "Netlist",
    "ClockDomain",
    "levelize",
    "LevelSchedule",
    "PackedSchedule",
    "compile_packed",
    "ToggleTrace",
    "pack_lanes",
    "unpack_lanes",
    "Simulator",
    "SimResult",
    "RecordSpec",
    "ENGINES",
]
