"""VCD (Value Change Dump) export/import for toggle traces.

The paper's conventional flow dumps simulation traces as VCD/FSDB files
for the power tool to consume (Fig. 7a); this module provides the same
interchange format so traces from this simulator can be inspected with
standard waveform viewers (GTKWave etc.) and external VCDs can be turned
into :class:`~repro.rtl.trace.ToggleTrace` features.

Toggle traces record *transitions*, not levels; export reconstructs a
consistent level waveform by starting every signal at 0 and flipping it
on each recorded toggle (gated-clock nets, whose "toggle" is the enable,
are emitted as one full 0->1->0 pulse in their cycle).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import IO, Iterable

import numpy as np

from repro.errors import SimulationError
from repro.rtl.netlist import Netlist
from repro.rtl.trace import ToggleTrace

__all__ = ["write_vcd", "read_vcd", "vcd_identifiers"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def vcd_identifiers(count: int) -> list[str]:
    """The first ``count`` VCD short identifiers (base-94 strings)."""
    out = []
    for i in range(count):
        s = ""
        n = i
        while True:
            s += _ID_CHARS[n % 94]
            n = n // 94 - 1
            if n < 0:
                break
        out.append(s)
    return out


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_./\[\]$]", "_", name)


def write_vcd(
    trace: ToggleTrace,
    path: str | Path,
    netlist: Netlist | None = None,
    nets: Iterable[int] | None = None,
    timescale: str = "1ns",
    batch: int = 0,
) -> int:
    """Write (selected nets of) a toggle trace as a VCD file.

    Parameters
    ----------
    trace:
        The toggle trace to export.
    netlist:
        Optional; provides signal names and gated-clock identification.
        Without it, nets are named ``net<i>``.
    nets:
        Net ids to export (default: all — can be large!).

    Returns
    -------
    int
        Number of value changes written.
    """
    if batch >= trace.batch:
        raise SimulationError(f"batch {batch} out of range")
    ids = (
        np.asarray(sorted(set(int(n) for n in nets)))
        if nets is not None
        else np.arange(trace.n_nets)
    )
    dense = trace.dense(ids)[batch]  # (cycles, k)
    k = ids.size
    short = vcd_identifiers(k)
    clk_nets: set[int] = set()
    names = [f"net{i}" for i in ids]
    if netlist is not None:
        names = [_sanitize(netlist.name_of(int(i))) for i in ids]
        clk_nets = {d.clk_net for d in netlist.domains}

    changes = 0
    with open(path, "w") as fh:
        fh.write("$date repro $end\n")
        fh.write("$version repro.rtl.vcd $end\n")
        fh.write(f"$timescale {timescale} $end\n")
        fh.write("$scope module top $end\n")
        for sid, name in zip(short, names):
            fh.write(f"$var wire 1 {sid} {name} $end\n")
        fh.write("$upscope $end\n$enddefinitions $end\n")
        # Initial values: everything 0.
        fh.write("#0\n$dumpvars\n")
        for sid in short:
            fh.write(f"0{sid}\n")
        fh.write("$end\n")
        level = np.zeros(k, dtype=np.uint8)
        for cyc in range(dense.shape[0]):
            row = dense[cyc]
            lines: list[str] = []
            pulse_back: list[str] = []
            for j in np.nonzero(row)[0]:
                if int(ids[j]) in clk_nets:
                    # enable pulse: rise now, fall at the half cycle
                    lines.append(f"1{short[j]}")
                    pulse_back.append(f"0{short[j]}")
                else:
                    level[j] ^= 1
                    lines.append(f"{level[j]}{short[j]}")
            if lines:
                fh.write(f"#{(cyc + 1) * 10}\n")
                fh.write("\n".join(lines) + "\n")
                changes += len(lines)
            if pulse_back:
                fh.write(f"#{(cyc + 1) * 10 + 5}\n")
                fh.write("\n".join(pulse_back) + "\n")
                changes += len(pulse_back)
    return changes


def read_vcd(
    path: str | Path, cycle_time: int = 10
) -> tuple[ToggleTrace, list[str]]:
    """Parse a single-bit VCD into a toggle trace.

    Value changes within one ``cycle_time`` window count as that cycle's
    toggles (multiple flips in a cycle still record a single toggle bit —
    toggle traces are per-cycle transition indicators).

    Returns
    -------
    (trace, names):
        The toggle trace (batch 1) and the signal names in column order.
    """
    ids: dict[str, int] = {}
    names: list[str] = []
    changes: list[tuple[int, int]] = []  # (cycle, column)
    time = 0
    in_defs = True
    with open(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if in_defs:
                if line.startswith("$var"):
                    parts = line.split()
                    # $var wire 1 <id> <name> $end
                    if len(parts) < 6 or parts[2] != "1":
                        raise SimulationError(
                            f"only 1-bit vars supported: {line!r}"
                        )
                    ids[parts[3]] = len(names)
                    names.append(parts[4])
                elif line.startswith("$enddefinitions"):
                    in_defs = False
                continue
            if line.startswith("#"):
                time = int(line[1:])
                continue
            if line.startswith("$"):
                continue
            value, sid = line[0], line[1:]
            if value not in "01xz":
                raise SimulationError(f"unsupported value line {line!r}")
            if sid not in ids:
                raise SimulationError(f"undeclared identifier {sid!r}")
            # Cycle c's events are written at times in
            # [(c + 1) * cycle_time, (c + 2) * cycle_time).
            cycle = max(0, time // cycle_time - 1)
            if time > 0:
                changes.append((cycle, ids[sid]))

    n_cycles = 1 + max((c for c, _ in changes), default=0)
    dense = np.zeros((1, n_cycles, len(names)), dtype=np.uint8)
    for cyc, col in changes:
        dense[0, cyc, col] = 1
    return ToggleTrace.from_dense(dense), names
