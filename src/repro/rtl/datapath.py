"""Bus-level datapath combinators over the single-bit netlist API.

A *bus* here is simply a ``list[int]`` of net ids, least-significant bit
first.  These helpers generate real gate-level structures (ripple-carry
adders, array multipliers, barrel shifters, mux trees), so datapath toggle
activity is genuinely data-dependent — the property APOLLO's per-cycle
features rely on.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NetlistError
from repro.rtl.netlist import ClockDomain, Netlist

__all__ = [
    "const_bus",
    "bus_not",
    "bus_and",
    "bus_or",
    "bus_xor",
    "mux_bus",
    "mux_tree",
    "reduce_or",
    "reduce_and",
    "reduce_xor",
    "full_adder",
    "ripple_adder",
    "incrementer",
    "subtractor",
    "equality",
    "less_than",
    "array_multiplier",
    "barrel_shifter",
    "decoder",
    "register_bus",
    "register_bus_uninit",
    "connect_register_bus",
    "and_bus_with_bit",
]

Bus = Sequence[int]


def _check_same_width(a: Bus, b: Bus) -> None:
    if len(a) != len(b):
        raise NetlistError(
            f"bus width mismatch: {len(a)} vs {len(b)}"
        )


def const_bus(nl: Netlist, value: int, width: int) -> list[int]:
    """A constant bus holding ``value`` (LSB first)."""
    return [nl.const((value >> i) & 1) for i in range(width)]


def bus_not(nl: Netlist, a: Bus) -> list[int]:
    return [nl.not_(x) for x in a]


def bus_and(nl: Netlist, a: Bus, b: Bus) -> list[int]:
    _check_same_width(a, b)
    return [nl.and_(x, y) for x, y in zip(a, b)]


def bus_or(nl: Netlist, a: Bus, b: Bus) -> list[int]:
    _check_same_width(a, b)
    return [nl.or_(x, y) for x, y in zip(a, b)]


def bus_xor(nl: Netlist, a: Bus, b: Bus) -> list[int]:
    _check_same_width(a, b)
    return [nl.xor(x, y) for x, y in zip(a, b)]


def and_bus_with_bit(nl: Netlist, a: Bus, bit: int) -> list[int]:
    """Mask every bit of ``a`` with a single enable bit."""
    return [nl.and_(x, bit) for x in a]


def mux_bus(nl: Netlist, sel: int, a: Bus, b: Bus) -> list[int]:
    """Per-bit ``sel ? a : b``."""
    _check_same_width(a, b)
    return [nl.mux(sel, x, y) for x, y in zip(a, b)]


def mux_tree(nl: Netlist, sel_bits: Bus, choices: Sequence[Bus]) -> list[int]:
    """Select among ``2**len(sel_bits)`` equal-width buses.

    ``choices`` may be shorter than the full ``2**k``; missing entries reuse
    the last provided choice (common for sparsely-populated opcode maps).
    """
    k = len(sel_bits)
    n = 1 << k
    filled = list(choices) + [choices[-1]] * (n - len(choices))
    if len(filled) != n:
        raise NetlistError(
            f"mux_tree got {len(choices)} choices for {k} select bits"
        )
    level: list[Bus] = list(filled)
    for s in sel_bits:
        nxt: list[Bus] = []
        for i in range(0, len(level), 2):
            nxt.append(mux_bus(nl, s, level[i + 1], level[i]))
        level = nxt
    return list(level[0])


def _reduce(nl: Netlist, op, a: Bus) -> int:
    if not a:
        raise NetlistError("cannot reduce an empty bus")
    work = list(a)
    while len(work) > 1:
        nxt = []
        for i in range(0, len(work) - 1, 2):
            nxt.append(op(work[i], work[i + 1]))
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]


def reduce_or(nl: Netlist, a: Bus) -> int:
    """Balanced OR tree over a bus (e.g. bus-toggle detection)."""
    return _reduce(nl, nl.or_, a)


def reduce_and(nl: Netlist, a: Bus) -> int:
    return _reduce(nl, nl.and_, a)


def reduce_xor(nl: Netlist, a: Bus) -> int:
    """Parity of a bus."""
    return _reduce(nl, nl.xor, a)


def full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """One full adder; returns ``(sum, carry_out)``."""
    axb = nl.xor(a, b)
    s = nl.xor(axb, cin)
    carry = nl.or_(nl.and_(a, b), nl.and_(axb, cin))
    return s, carry


def ripple_adder(
    nl: Netlist, a: Bus, b: Bus, cin: int | None = None
) -> tuple[list[int], int]:
    """Ripple-carry adder; returns ``(sum_bits, carry_out)``."""
    _check_same_width(a, b)
    carry = cin if cin is not None else nl.const(0)
    out = []
    for x, y in zip(a, b):
        s, carry = full_adder(nl, x, y, carry)
        out.append(s)
    return out, carry


def incrementer(nl: Netlist, a: Bus) -> list[int]:
    """``a + 1`` (wrapping), using half adders."""
    carry = nl.const(1)
    out = []
    for x in a:
        out.append(nl.xor(x, carry))
        carry = nl.and_(x, carry)
    return out


def subtractor(nl: Netlist, a: Bus, b: Bus) -> tuple[list[int], int]:
    """``a - b`` via two's complement; returns ``(diff, not_borrow)``."""
    return ripple_adder(nl, a, bus_not(nl, b), cin=nl.const(1))


def equality(nl: Netlist, a: Bus, b: Bus) -> int:
    """Single bit: 1 iff the buses are equal (XNOR + AND tree)."""
    _check_same_width(a, b)
    eq_bits = [nl.xnor(x, y) for x, y in zip(a, b)]
    return reduce_and(nl, eq_bits)


def less_than(nl: Netlist, a: Bus, b: Bus) -> int:
    """Unsigned ``a < b`` (borrow out of a - b)."""
    _, not_borrow = subtractor(nl, a, b)
    return nl.not_(not_borrow)


def array_multiplier(
    nl: Netlist, a: Bus, b: Bus, out_width: int | None = None
) -> list[int]:
    """Unsigned array multiplier (AND partial products + ripple adders).

    The result is truncated to ``out_width`` (default ``len(a)``), which
    matches fixed-width datapath multipliers and keeps gate count bounded.
    """
    w = out_width if out_width is not None else len(a)
    acc = and_bus_with_bit(nl, list(a)[:w], b[0])
    acc += [nl.const(0)] * (w - len(acc))
    for i, bb in enumerate(list(b)[1:], start=1):
        if i >= w:
            break
        pp = and_bus_with_bit(nl, list(a)[: w - i], bb)
        hi = acc[i:]
        if len(pp) < len(hi):
            pp = pp + [nl.const(0)] * (len(hi) - len(pp))
        summed, _ = ripple_adder(nl, hi, pp)
        acc = acc[:i] + summed
    return acc[:w]


def barrel_shifter(nl: Netlist, a: Bus, shamt: Bus) -> list[int]:
    """Logical left shifter built from mux layers (one per shamt bit)."""
    zero = nl.const(0)
    cur = list(a)
    for k, s in enumerate(shamt):
        dist = 1 << k
        shifted = [zero] * min(dist, len(cur)) + cur[: max(0, len(cur) - dist)]
        cur = mux_bus(nl, s, shifted, cur)
    return cur


def decoder(nl: Netlist, sel: Bus) -> list[int]:
    """One-hot decoder: ``2**len(sel)`` output bits."""
    outs = [nl.const(1)]
    for s in sel:
        ns = nl.not_(s)
        outs = [nl.and_(o, ns) for o in outs] + [nl.and_(o, s) for o in outs]
    return outs


def register_bus(
    nl: Netlist,
    d: Bus,
    domain: ClockDomain,
    name: str = "r",
    init: int = 0,
) -> list[int]:
    """A bank of flip-flops capturing bus ``d`` (LSB first)."""
    return [
        nl.reg(bit, domain, init=(init >> i) & 1, name=f"{name}[{i}]")
        for i, bit in enumerate(d)
    ]


def register_bus_uninit(
    nl: Netlist,
    width: int,
    domain: ClockDomain,
    name: str = "r",
    init: int = 0,
) -> list[int]:
    """A bank of flip-flops to be driven later (sequential feedback)."""
    return [
        nl.reg_uninit(domain, init=(init >> i) & 1, name=f"{name}[{i}]")
        for i in range(width)
    ]


def connect_register_bus(nl: Netlist, regs: Bus, d: Bus) -> None:
    _check_same_width(regs, d)
    for r, bit in zip(regs, d):
        nl.connect_reg(r, bit)
