"""Pluggable simulation backends.

Importing this package registers the built-in engines — ``"packed"``
(default), ``"uint8"`` (reference), and ``"compiled"`` (native kernel)
— with the registry in :mod:`repro.rtl.backends.base`.  All backends
are bit-identical by contract; they differ only in throughput.
"""

from repro.rtl.backends.base import (
    Backend,
    acc_reduce,
    backend_names,
    eval_comb,
    get_backend,
    initial_values,
    register_backend,
)

# Importing the engine modules registers them (order defines the public
# ENGINES order: packed first, as it is the default).
from repro.rtl.backends.packed import PackedBackend
from repro.rtl.backends.uint8 import Uint8Backend
from repro.rtl.backends.compiled import CompiledBackend, compiled_impl

__all__ = [
    "Backend",
    "CompiledBackend",
    "PackedBackend",
    "Uint8Backend",
    "acc_reduce",
    "backend_names",
    "compiled_impl",
    "eval_comb",
    "get_backend",
    "initial_values",
    "register_backend",
]
