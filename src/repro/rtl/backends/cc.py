"""Runtime-compiled C implementation of the compiled-backend kernel.

A line-for-line transliteration of :func:`repro.rtl.backends.kernel.
run_cycles`, compiled once per host with the system C compiler and
loaded via :mod:`ctypes`.  The shared object is cached under
``~/.cache/repro-apollo`` keyed by a hash of the source, so the compile
cost (a fraction of a second) is paid once per machine, not per
process.  Every failure mode — no compiler, compile error, unwritable
cache — degrades to ``None`` and the compiled backend falls back to
the next implementation; nothing here may raise at import time.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load_kernel", "run_cycles_cc"]

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef uint64_t u64;

static void exec_prog(const int64_t *prog, int64_t n_ops, u64 *arena,
                      const int64_t *idx_pool, const u64 *mask_pool,
                      int64_t W) {
    for (int64_t k = 0; k < n_ops; k++) {
        const int64_t *op = prog + 5 * k;
        const int64_t code = op[0], n = op[4];
        u64 *out = arena + op[1] * W;
        const u64 *pa = arena + op[2] * W;
        const int64_t b = op[3];
        switch (code) {
        case 0: { /* XOR */
            const u64 *pb = arena + b * W;
            for (int64_t t = 0; t < n * W; t++) out[t] = pa[t] ^ pb[t];
            break;
        }
        case 1: { /* AND */
            const u64 *pb = arena + b * W;
            for (int64_t t = 0; t < n * W; t++) out[t] = pa[t] & pb[t];
            break;
        }
        case 2: { /* TAKE */
            const int64_t *idx = idx_pool + b;
            for (int64_t j = 0; j < n; j++)
                memcpy(out + j * W, arena + idx[j] * W, (size_t)W * 8);
            break;
        }
        case 3: /* COPY */
            memcpy(out, pa, (size_t)(n * W) * 8);
            break;
        case 4: { /* XORMASK (in place: out == a) */
            const u64 *m = mask_pool + b;
            for (int64_t j = 0; j < n; j++) {
                const u64 mm = m[j];
                for (int64_t w = 0; w < W; w++)
                    out[j * W + w] = pa[j * W + w] ^ mm;
            }
            break;
        }
        default: /* FILL1 */
            for (int64_t t = 0; t < n * W; t++) out[t] = ~(u64)0;
        }
    }
}

void repro_run_cycles(
    const int64_t *par, u64 *arena, u64 *tog,
    const int64_t *prog0, int64_t n0,
    const int64_t *prog1, int64_t n1,
    const int64_t *idx_pool, const u64 *mask_pool,
    const u64 *stim, const int64_t *net_rows, const int64_t *alias_src,
    const double *acc_w, double *acc_out, double *lane_sum,
    const int64_t *col_rows, uint8_t *cols_out, uint8_t *trace_out) {
    const int64_t nr = par[0], W = par[1], cycles = par[2];
    const int64_t batch = par[3], n_in = par[4], in_row = par[5];
    const int64_t n_nets = par[6], n_acc = par[7], has_trace = par[8];
    const int64_t nbytes = par[9], n_cols = par[10], n_alias = par[11];
    const int64_t alias_start = par[12];
    const int64_t clk_free_start = par[13], n_clk_free = par[14];
    const int64_t clk_g_start = par[15], n_clk_g = par[16];
    const int64_t need_tog = par[17];

    for (int64_t i = 0; i < cycles; i++) {
        const int64_t p = i & 1;
        u64 *vals = arena + p * nr * W;
        const u64 *prev = arena + (1 - p) * nr * W;
        if (n_in)
            memcpy(vals + in_row * W, stim + i * n_in * W,
                   (size_t)(n_in * W) * 8);
        if (p)
            exec_prog(prog1, n1, arena, idx_pool, mask_pool, W);
        else
            exec_prog(prog0, n0, arena, idx_pool, mask_pool, W);
        if (!need_tog)
            continue;
        for (int64_t t = 0; t < nr * W; t++) tog[t] = vals[t] ^ prev[t];
        for (int64_t j = 0; j < n_alias; j++)
            memcpy(tog + (alias_start + j) * W, tog + alias_src[j] * W,
                   (size_t)W * 8);
        for (int64_t t = 0; t < n_clk_free * W; t++)
            tog[clk_free_start * W + t] = ~(u64)0;
        if (n_clk_g)
            memcpy(tog + clk_g_start * W, vals + clk_g_start * W,
                   (size_t)(n_clk_g * W) * 8);
        for (int64_t a_i = 0; a_i < n_acc; a_i++) {
            for (int64_t t = 0; t < W * 64; t++) lane_sum[t] = 0.0;
            const double *w = acc_w + a_i * n_nets;
            for (int64_t t = 0; t < n_nets; t++) {
                const double wt = w[t];
                const u64 *tr = tog + net_rows[t] * W;
                for (int64_t wi = 0; wi < W; wi++) {
                    const u64 word = tr[wi];
                    if (!word) continue;
                    double *ls = lane_sum + wi * 64;
                    /* Branchless over the active lanes: wt * 0 adds
                       +-0.0, which is the identity (the running sum is
                       never -0.0), so this is the exact reference
                       accumulation order. */
                    const int64_t nb =
                        (batch - wi * 64 < 64) ? batch - wi * 64 : 64;
                    for (int64_t b = 0; b < nb; b++)
                        ls[b] += wt * (double)((word >> b) & 1);
                }
            }
            double *ao = acc_out + a_i * batch * cycles;
            for (int64_t b = 0; b < batch; b++)
                ao[b * cycles + i] = lane_sum[b];
        }
        if (has_trace) {
            /* Eight nets x eight lanes at a time via a 64-bit 8x8 bit
               transpose: input byte 7-k holds net 8j+k's lane octet,
               so output byte b is lane b's MSB-first packbits byte. */
            uint8_t *tb = trace_out + i * nbytes * batch;
            const int64_t n_oct = (batch + 7) >> 3;
            for (int64_t j = 0; j < nbytes; j++) {
                uint8_t *orow = tb + j * batch;
                const int64_t base = 8 * j;
                const int64_t kmax =
                    (n_nets - base < 8) ? n_nets - base : 8;
                for (int64_t lo = 0; lo < n_oct; lo++) {
                    const int64_t wi = lo >> 3;
                    const int sh8 = (int)((lo & 7) * 8);
                    u64 x = 0;
                    for (int64_t k = 0; k < kmax; k++)
                        x |= ((tog[net_rows[base + k] * W + wi] >> sh8)
                              & 0xFF) << (8 * (7 - k));
                    u64 t2;
                    t2 = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
                    x = x ^ t2 ^ (t2 << 7);
                    t2 = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
                    x = x ^ t2 ^ (t2 << 14);
                    t2 = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
                    x = x ^ t2 ^ (t2 << 28);
                    const int64_t bmax =
                        (batch - lo * 8 < 8) ? batch - lo * 8 : 8;
                    for (int64_t b = 0; b < bmax; b++)
                        orow[lo * 8 + b] = (uint8_t)(x >> (8 * b));
                }
            }
        }
        for (int64_t j = 0; j < n_cols; j++) {
            const u64 *tr = tog + col_rows[j] * W;
            for (int64_t b = 0; b < batch; b++)
                cols_out[(b * cycles + i) * n_cols + j] =
                    (uint8_t)((tr[b >> 6] >> (b & 63)) & 1);
        }
    }
}
"""

_FN = None  # memoized ctypes function (or False after a failed attempt)


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CC_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-apollo"


def _compile(so_path: Path) -> bool:
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if not compiler:
        return False
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=so_path.parent) as td:
            src = Path(td) / "kernel.c"
            src.write_text(_C_SOURCE)
            tmp_so = Path(td) / "kernel.so"
            # -ffp-contract=off: no FMA contraction, so the accumulator
            # floats follow IEEE mul-then-add exactly like NumPy.
            # -march=native lets the lane loops vectorize; retried
            # without it for compilers/targets that reject the flag.
            for extra in (
                ["-march=native", "-ffp-contract=off"],
                ["-ffp-contract=off"],
                [],
            ):
                res = subprocess.run(
                    [compiler, "-O3", *extra, "-shared", "-fPIC",
                     "-o", str(tmp_so), str(src)],
                    capture_output=True,
                    timeout=120,
                )
                if res.returncode == 0:
                    os.replace(tmp_so, so_path)
                    return True
            return False
    except (OSError, subprocess.SubprocessError):
        return False


def load_kernel():
    """The compiled ``repro_run_cycles`` entry point, or ``None``."""
    global _FN
    if _FN is not None:
        return _FN or None
    _FN = False
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    so_path = _cache_dir() / f"ckernel-{digest}.so"
    if not so_path.exists() and not _compile(so_path):
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_run_cycles
    except (OSError, AttributeError):
        return None
    fn.restype = None
    _FN = fn
    return fn


def _ptr(arr: np.ndarray):
    if arr.size == 0:
        return None  # ctypes NULL; the kernel never dereferences it
    return arr.ctypes.data_as(ctypes.c_void_p)


def run_cycles_cc(par, arena, tog, prog0, prog1, idx_pool, mask_pool,
                  stim, net_rows, alias_src, acc_w, acc_out, lane_sum,
                  col_rows, cols_out, trace_out) -> None:
    """Call the C kernel with the Python-kernel argument convention."""
    fn = load_kernel()
    assert fn is not None  # impl selection guarantees availability
    fn(
        _ptr(par), _ptr(arena), _ptr(tog),
        _ptr(prog0), ctypes.c_int64(prog0.shape[0]),
        _ptr(prog1), ctypes.c_int64(prog1.shape[0]),
        _ptr(idx_pool), _ptr(mask_pool),
        _ptr(stim), _ptr(net_rows), _ptr(alias_src),
        _ptr(acc_w), _ptr(acc_out), _ptr(lane_sum),
        _ptr(col_rows), _ptr(cols_out), _ptr(trace_out),
    )
