"""Backend interface and registry for the cycle-accurate simulator.

A :class:`Backend` owns the two halves of a simulation engine:

* a *compile* step, run once per netlist in the constructor (levelized
  schedules, packed layouts, op tables — whatever the engine needs);
* the *hot loop* :meth:`Backend.run`, called per stimulus batch with
  preallocated output buffers.

Backends register themselves with :func:`register_backend`;
:data:`repro.rtl.simulator.ENGINES` is derived from the registry, so a
new engine becomes visible to the ``engine=`` flag everywhere
(``Simulator``, CLI, flows, workers) by virtue of registering.

The hard contract shared by every backend is *bit-identity*: all
recorded artifacts — packed traces, column bits, accumulator floats,
final values — must equal the uint8 reference engine's, bit for bit.
:func:`acc_reduce` is the canonical accumulator reduction every backend
must reproduce exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.rtl.cells import Op
from repro.rtl.levelize import LevelSchedule
from repro.rtl.netlist import NO_NET, Netlist

__all__ = [
    "Backend",
    "acc_reduce",
    "backend_names",
    "eval_comb",
    "get_backend",
    "initial_values",
    "register_backend",
]

WORD_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def acc_reduce(w64: np.ndarray, toggles: np.ndarray) -> np.ndarray:
    """Weighted per-lane toggle sum, independent of the batch width.

    For two or more lanes, ``sum(axis=0)`` over the C-contiguous
    ``(n_nets, batch)`` product reduces along a *strided* axis, which
    NumPy implements as plain sequential accumulation in net-id order —
    so lane ``b`` of the result is a pure function of ``toggles[:, b]``
    and never of how many other lanes share the call.  That is what
    makes sharded, cached, and elite-reusing evaluation paths
    (:mod:`repro.parallel`) bit-identical to one monolithic batched
    call.  A float32 BLAS GEMV (``w @ toggles``) lacks this property:
    its reduction order changes with the batch width.

    The one-lane case needs care: a ``(n, 1)`` product column is
    contiguous, which flips NumPy onto its *pairwise* reduction kernel
    and (for ``n > 8``) a different summation order than every other
    width — a real contract violation observed as last-ulp divergence
    between ``batch=1`` runs and the same lane inside a wider batch.
    Padding the product with a zero column forces the strided
    sequential kernel for every width.
    """
    prod = w64[:, None] * toggles
    if prod.shape[1] == 1:
        padded = np.zeros((prod.shape[0], 2), dtype=prod.dtype)
        padded[:, :1] = prod
        return padded.sum(axis=0)[:1]
    return prod.sum(axis=0)


def eval_comb(schedule: LevelSchedule, vals: np.ndarray) -> None:
    """Evaluate combinational groups of ``schedule`` in place on uint8
    values of shape ``(n_nets, batch)``."""
    for g in schedule.groups:
        a = vals[g.a]
        op = g.op
        if op == Op.BUF:
            vals[g.out] = a
        elif op == Op.NOT:
            vals[g.out] = a ^ 1
        elif op == Op.AND:
            vals[g.out] = a & vals[g.b]
        elif op == Op.OR:
            vals[g.out] = a | vals[g.b]
        elif op == Op.XOR:
            vals[g.out] = a ^ vals[g.b]
        elif op == Op.NAND:
            vals[g.out] = (a & vals[g.b]) ^ 1
        elif op == Op.NOR:
            vals[g.out] = (a | vals[g.b]) ^ 1
        elif op == Op.XNOR:
            vals[g.out] = (a ^ vals[g.b]) ^ 1
        elif op == Op.MUX:
            s = a
            vals[g.out] = (s & vals[g.b]) | ((s ^ 1) & vals[g.c])
        else:  # pragma: no cover - schedule only contains EVAL_OPS
            raise SimulationError(f"unexpected op {op!r} in schedule")


def initial_values(schedule: LevelSchedule, batch: int) -> np.ndarray:
    """State after reset: registers at init, everything else evaluated
    with all-zero inputs."""
    vals = np.zeros((schedule.n_nets, batch), dtype=np.uint8)
    if schedule.const_ids.size:
        vals[schedule.const_ids] = schedule.const_vals[:, None]
    if schedule.reg_out.size:
        vals[schedule.reg_out] = schedule.reg_init[:, None]
    eval_comb(schedule, vals)
    # CLK values at reset: enabled domains show their enable, always-on
    # domains show 1.
    for k in range(schedule.clk_out.size):
        en = schedule.clk_en[k]
        vals[schedule.clk_out[k]] = 1 if en == NO_NET else vals[en]
    return vals


class Backend:
    """One simulation engine: compile step plus the per-run hot loop.

    Subclasses set :attr:`name`, register with :func:`register_backend`,
    do their compile work in ``__init__``, and implement :meth:`run`.
    """

    #: Registry key; also the public ``engine=`` flag value.
    name: str = ""
    #: Engines that reinterpret lane words need a little-endian host;
    #: the simulator falls back to ``"uint8"`` otherwise.
    requires_little_endian: bool = False

    def __init__(self, netlist: Netlist, schedule: LevelSchedule) -> None:
        self.netlist = netlist
        self.schedule = schedule
        #: Set by packed-layout backends; ``None`` for byte-wise ones.
        self.packed_schedule = None

    def initial_values(self, batch: int) -> np.ndarray:
        return initial_values(self.schedule, batch)

    def run(
        self,
        stim: np.ndarray,
        cols: np.ndarray | None,
        acc_weights: dict[str, np.ndarray],
        packed_out: np.ndarray | None,
        cols_out: np.ndarray | None,
        acc_out: dict[str, np.ndarray],
        init_values: np.ndarray | None,
    ) -> np.ndarray:
        """Simulate ``stim`` (batch, cycles, n_in), filling the provided
        output buffers; returns the final value vector (n_nets, batch)."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Class decorator: make ``cls`` selectable via its :attr:`name`."""
    if not cls.name:  # pragma: no cover - developer error
        raise ValueError(f"backend {cls!r} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> type[Backend]:
    """Look up a backend class; raise :class:`SimulationError` listing
    the available engines on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine {name!r}; expected one of {backend_names()}"
        ) from None
