"""Reference kernel for the compiled backend, in a Numba-jittable subset.

This is the *logic* source of truth for both accelerated paths:

* the Numba path wraps this exact function in ``numba.njit`` — no
  separate implementation to drift;
* the C path (:mod:`repro.rtl.backends.cc`) is a line-for-line
  transliteration.

Interpreted (un-jitted) execution is available as the ``"python"``
implementation so the kernel's logic is testable on hosts without
Numba — slow, but bit-exact, which is all the property tests need.

Float exactness
---------------
The accumulator loop must reproduce ``acc_reduce`` (NumPy's strided
``sum(axis=0)``) bit for bit.  That reduction is plain sequential
accumulation in net-id order starting from ``0.0``, so the kernel adds
``w[t]`` for each set toggle bit in the same order.  Skipping zero bits
(and all-zero words) is exact: the running sum starts at ``+0.0`` and
can never become ``-0.0`` under round-to-nearest, so adding ``w*0``
(``±0.0``) is always the identity.

Layouts (all arrays flat, C-order):

* ``arena``: ``(arena_rows, W)`` uint64 — see
  :mod:`repro.rtl.backends.tables` for the row map.
* ``stim``: ``(cycles, n_in, W)`` uint64 lane words.
* ``acc_w``: ``(n_acc, n_nets)`` float64; ``acc_out``:
  ``(n_acc, batch, cycles)`` float64.
* ``trace_out``: ``(cycles, nbytes, batch)`` uint8, bits MSB-first per
  byte along the net axis (NumPy ``packbits`` convention).
* ``cols_out``: ``(batch, cycles, n_cols)`` uint8.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_cycles", "PAR_FIELDS"]

#: Order of the scalar parameters packed into the int64 ``par`` vector.
PAR_FIELDS = (
    "nr", "W", "cycles", "batch", "n_in", "in_row", "n_nets", "n_acc",
    "has_trace", "nbytes", "n_cols", "n_alias", "alias_start",
    "clk_free_start", "n_clk_free", "clk_g_start", "n_clk_g", "need_tog",
)


def run_cycles(par, arena, tog, prog0, prog1, idx_pool, mask_pool,
               stim, net_rows, alias_src, acc_w, acc_out, lane_sum,
               col_rows, cols_out, trace_out):
    nr = par[0]
    W = par[1]
    cycles = par[2]
    batch = par[3]
    n_in = par[4]
    in_row = par[5]
    n_nets = par[6]
    n_acc = par[7]
    has_trace = par[8]
    nbytes = par[9]
    n_cols = par[10]
    n_alias = par[11]
    alias_start = par[12]
    clk_free_start = par[13]
    n_clk_free = par[14]
    clk_g_start = par[15]
    n_clk_g = par[16]
    need_tog = par[17]
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    one = np.uint64(1)
    ff = np.uint64(0xFF)
    # 8x8 bit-transpose masks (Hacker's Delight 7-3).
    tm1 = np.uint64(0x00AA00AA00AA00AA)
    tm2 = np.uint64(0x0000CCCC0000CCCC)
    tm3 = np.uint64(0x00000000F0F0F0F0)
    ts1 = np.uint64(7)
    ts2 = np.uint64(14)
    ts3 = np.uint64(28)

    for i in range(cycles):
        p = i & 1
        vb = p * nr * W
        pvb = (1 - p) * nr * W
        if n_in:
            base = vb + in_row * W
            sbase = i * n_in * W
            for t in range(n_in * W):
                arena[base + t] = stim[sbase + t]
        prog = prog1 if p else prog0
        for k in range(prog.shape[0]):
            code = prog[k, 0]
            out = prog[k, 1] * W
            a = prog[k, 2] * W
            b = prog[k, 3]
            n = prog[k, 4]
            if code == 0:  # XOR
                bb = b * W
                for t in range(n * W):
                    arena[out + t] = arena[a + t] ^ arena[bb + t]
            elif code == 1:  # AND
                bb = b * W
                for t in range(n * W):
                    arena[out + t] = arena[a + t] & arena[bb + t]
            elif code == 2:  # TAKE (gather)
                for j in range(n):
                    src = idx_pool[b + j] * W
                    dst = out + j * W
                    for w in range(W):
                        arena[dst + w] = arena[src + w]
            elif code == 3:  # COPY
                for t in range(n * W):
                    arena[out + t] = arena[a + t]
            elif code == 4:  # XORMASK
                for j in range(n):
                    m = mask_pool[b + j]
                    dst = out + j * W
                    for w in range(W):
                        arena[dst + w] = arena[dst + w] ^ m
            else:  # FILL1
                for t in range(n * W):
                    arena[out + t] = ones
        if not need_tog:
            continue
        # Toggles in storage-row order; alias rows mirror their source,
        # CLK rows report the enable (matching the packed engine).
        for t in range(nr * W):
            tog[t] = arena[vb + t] ^ arena[pvb + t]
        for j in range(n_alias):
            src = alias_src[j] * W
            dst = (alias_start + j) * W
            for w in range(W):
                tog[dst + w] = tog[src + w]
        for t in range(n_clk_free * W):
            tog[clk_free_start * W + t] = ones
        for t in range(n_clk_g * W):
            tog[clk_g_start * W + t] = arena[vb + clk_g_start * W + t]
        # Accumulators: sequential add in net-id order.  Branchless over
        # the active lanes of each nonzero word — adding ``wt * 0``
        # (``±0.0``) is the identity (see module docstring), and the
        # data-independent inner loop avoids one unpredictable branch
        # per toggle bit.
        for a_i in range(n_acc):
            for t in range(W * 64):
                lane_sum[t] = 0.0
            wbase = a_i * n_nets
            for t in range(n_nets):
                wt = acc_w[wbase + t]
                rb = net_rows[t] * W
                for wi in range(W):
                    word = tog[rb + wi]
                    if word == 0:
                        continue
                    lb = wi * 64
                    nb = batch - lb
                    if nb > 64:
                        nb = 64
                    for b_l in range(nb):
                        lane_sum[lb + b_l] += wt * np.float64(
                            (word >> np.uint64(b_l)) & one
                        )
            obase = a_i * batch * cycles
            for b_l in range(batch):
                acc_out[obase + b_l * cycles + i] = lane_sum[b_l]
        # Full packed trace: MSB-first bytes along the net axis, built
        # eight nets x eight lanes at a time with a 64-bit 8x8 bit
        # transpose.  Input byte ``7-k`` holds net ``8j+k``'s lane
        # octet, so output byte ``b`` is lane ``b``'s packbits byte.
        if has_trace:
            tbase = i * nbytes * batch
            n_oct = (batch + 7) >> 3
            for j in range(nbytes):
                obase = tbase + j * batch
                base = 8 * j
                kmax = n_nets - base
                if kmax > 8:
                    kmax = 8
                for lo in range(n_oct):
                    wi = lo >> 3
                    sh8 = np.uint64((lo & 7) * 8)
                    x = np.uint64(0)
                    for k in range(kmax):
                        byte = (
                            tog[net_rows[base + k] * W + wi] >> sh8
                        ) & ff
                        x = x | (byte << np.uint64(8 * (7 - k)))
                    t2 = (x ^ (x >> ts1)) & tm1
                    x = x ^ t2 ^ (t2 << ts1)
                    t2 = (x ^ (x >> ts2)) & tm2
                    x = x ^ t2 ^ (t2 << ts2)
                    t2 = (x ^ (x >> ts3)) & tm3
                    x = x ^ t2 ^ (t2 << ts3)
                    bmax = batch - lo * 8
                    if bmax > 8:
                        bmax = 8
                    ob = obase + lo * 8
                    for b_l in range(bmax):
                        trace_out[ob + b_l] = np.uint8(
                            (x >> np.uint64(8 * b_l)) & ff
                        )
        # Dense column records.
        if n_cols:
            for j in range(n_cols):
                rb = col_rows[j] * W
                for b_l in range(batch):
                    word = tog[rb + (b_l >> 6)]
                    cols_out[(b_l * cycles + i) * n_cols + j] = np.uint8(
                        (word >> np.uint64(b_l & 63)) & one
                    )
