"""Compiled backend: the packed micro-program lowered to a native kernel.

The ``"compiled"`` engine runs the same polarity-folded, renumbered
micro-program as the ``"packed"`` engine, but as flat op tables executed
by a single native cycle loop — toggle recording and the accumulator
reduction included — instead of one NumPy ufunc call per program entry.
That removes the per-op dispatch overhead *and* the dominant costs of
the packed engine's recording path (lane unpacking and the per-cycle
NumPy reduction), which is where the ≥10x over the uint8 reference
comes from.

Implementation selection, best available first:

1. ``"numba"`` — :func:`repro.rtl.backends.kernel.run_cycles` wrapped
   in ``numba.njit`` (install via ``pip install .[compiled]``);
2. ``"cc"`` — the same kernel transliterated to C, compiled at runtime
   with the system compiler (:mod:`repro.rtl.backends.cc`);
3. ``"numpy"`` — falls back to the packed engine's vectorized loop
   (correct everywhere, no speedup).

``REPRO_COMPILED_IMPL`` forces one of ``numba``/``cc``/``numpy``/
``python`` (the last interprets the kernel un-jitted: slow, used to
test the Numba kernel's logic on hosts without Numba).  All
implementations are bit-identical; selection can never change results,
only throughput.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SimulationError
from repro.rtl.backends import cc as _cc
from repro.rtl.backends import kernel as _kernel
from repro.rtl.backends.packed import PackedBackend
from repro.rtl.backends.base import register_backend
from repro.rtl.backends.tables import CompiledTables, build_tables
from repro.rtl.trace import pack_lanes, unpack_lanes

__all__ = ["CompiledBackend", "compiled_impl"]

_IMPLS = ("numba", "cc", "numpy", "python")
_NUMBA_FN = None  # memoized njit kernel (or False if numba is absent)


def _numba_kernel():
    global _NUMBA_FN
    if _NUMBA_FN is not None:
        return _NUMBA_FN or None
    try:
        import numba
    except ImportError:
        _NUMBA_FN = False
        return None
    _NUMBA_FN = numba.njit(cache=True, nogil=True)(_kernel.run_cycles)
    return _NUMBA_FN


_SELECTED = None


def compiled_impl() -> str:
    """Which implementation the ``"compiled"`` engine uses on this host."""
    global _SELECTED
    if _SELECTED is None:
        _SELECTED = _select_impl()
    return _SELECTED


def _select_impl() -> str:
    forced = os.environ.get("REPRO_COMPILED_IMPL", "").strip().lower()
    if forced:
        if forced not in _IMPLS:
            raise SimulationError(
                f"REPRO_COMPILED_IMPL={forced!r}; expected one of {_IMPLS}"
            )
        if forced == "numba" and _numba_kernel() is None:
            raise SimulationError(
                "REPRO_COMPILED_IMPL=numba but numba is not importable; "
                "install with: pip install .[compiled]"
            )
        if forced == "cc" and _cc.load_kernel() is None:
            raise SimulationError(
                "REPRO_COMPILED_IMPL=cc but no working C compiler found"
            )
        return forced
    if _numba_kernel() is not None:
        return "numba"
    if _cc.load_kernel() is not None:
        return "cc"
    return "numpy"


@register_backend
class CompiledBackend(PackedBackend):
    """Native-kernel engine; falls back to the packed loop sans kernel."""

    name = "compiled"
    requires_little_endian = True

    def __init__(self, netlist, schedule) -> None:
        super().__init__(netlist, schedule)
        self.impl = compiled_impl()
        self._tables: CompiledTables | None = (
            build_tables(self.packed_schedule)
            if self.impl != "numpy"
            else None
        )

    def run(
        self,
        stim: np.ndarray,
        cols: np.ndarray | None,
        acc_weights: dict[str, np.ndarray],
        packed_out: np.ndarray | None,
        cols_out: np.ndarray | None,
        acc_out: dict[str, np.ndarray],
        init_values: np.ndarray | None,
    ) -> np.ndarray:
        if self.impl == "numpy":
            return super().run(
                stim, cols, acc_weights, packed_out, cols_out, acc_out,
                init_values,
            )
        psch = self.packed_schedule
        tab = self._tables
        batch, cycles, n_in = stim.shape
        W = (batch + 63) // 64
        nr = tab.n_rows
        if init_values is not None:
            v0 = np.asarray(init_values, dtype=np.uint8)
        else:
            v0 = self.initial_values(batch)
        pol_col = psch.pol[:, None]
        stored = np.zeros((nr, batch), dtype=np.uint8)
        stored[psch.row_of_net] = v0 ^ pol_col
        init_w = pack_lanes(stored)
        arena = np.zeros((tab.arena_rows, W), dtype=np.uint64)
        arena[nr:2 * nr] = init_w  # v_prev of cycle 0
        arena[:nr][psch.sl_const] = init_w[psch.sl_const]
        stim_w = pack_lanes(
            np.ascontiguousarray(np.transpose(stim, (1, 2, 0)))
        )
        n_acc = len(acc_weights)
        acc_names = list(acc_weights)
        if n_acc:
            acc_mat = np.stack([acc_weights[k] for k in acc_names])
            acc_res = np.empty((n_acc, batch, cycles), dtype=np.float64)
        else:
            acc_mat = np.zeros((0, 0), dtype=np.float64)
            acc_res = np.zeros(0, dtype=np.float64)
        if cols is not None:
            col_rows = tab.net_rows[cols]
        else:
            col_rows = np.zeros(0, dtype=np.int64)
        n_cols = col_rows.size
        has_trace = packed_out is not None
        nbytes = packed_out.shape[1] if has_trace else 0
        trace_buf = (
            packed_out if has_trace else np.zeros(0, dtype=np.uint8)
        )
        cols_buf = (
            cols_out if cols_out is not None else np.zeros(0, np.uint8)
        )
        need_tog = has_trace or n_acc > 0 or n_cols > 0
        par = np.asarray(
            [nr, W, cycles, batch, n_in, tab.in_row, psch.n_nets, n_acc,
             int(has_trace), nbytes, n_cols, tab.alias_src.size,
             tab.alias_start, tab.clk_free_start, tab.n_clk_free,
             tab.clk_g_start, tab.n_clk_g, int(need_tog)],
            dtype=np.int64,
        )
        tog = np.zeros(nr * W, dtype=np.uint64)
        lane_sum = np.zeros(W * 64, dtype=np.float64)

        if cycles:
            if self.impl == "cc":
                fn = _cc.run_cycles_cc
            elif self.impl == "numba":
                fn = _numba_kernel()
            else:
                fn = _kernel.run_cycles
            fn(
                par, arena.ravel(), tog, tab.prog0, tab.prog1,
                tab.idx_pool, tab.mask_pool, stim_w.ravel(),
                tab.net_rows, tab.alias_src,
                acc_mat.ravel(), acc_res.ravel(), lane_sum,
                col_rows, cols_buf.ravel(), trace_buf.ravel(),
            )

        for a_i, name in enumerate(acc_names):
            acc_out[name][:] = acc_res[a_i]
        p_last = (cycles - 1) & 1 if cycles else 1
        fv = arena[p_last * nr:(p_last + 1) * nr]
        if tab.alias_src.size:
            np.take(fv, tab.alias_src, axis=0, out=fv[psch.sl_alias])
        final = unpack_lanes(np.take(fv, psch.row_of_net, axis=0), batch)
        return final ^ pol_col
